"""Dataset generators: Table 5 fidelity, determinism, known correlations."""

import math

import numpy as np
import pytest

from repro.datasets import LOADERS, TABLE5, load_dataset
from repro.datasets.synthetic import (
    NodeSpec,
    cpt_from_logits,
    random_binary_table,
    random_network_specs,
    sample_network,
)
from repro.data.attribute import Attribute
from repro.infotheory.measures import mutual_information_from_table


class TestRegistry:
    def test_all_four_datasets(self):
        assert set(LOADERS) == {"nltcs", "acs", "adult", "br2000"}

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("census2020")


@pytest.mark.parametrize("name", ["nltcs", "acs", "adult", "br2000"])
class TestSchemaFidelity:
    def test_dimensionality_matches_table5(self, name):
        table = load_dataset(name, n=500, seed=0)
        assert table.d == TABLE5[name][1]

    def test_default_cardinality_matches_table5(self, name):
        # Only check the cheap metadata path: build a small table but
        # verify the documented default matches the paper.
        from repro.datasets import acs, adult, br2000, nltcs

        defaults = {
            "nltcs": nltcs.DEFAULT_N,
            "acs": acs.DEFAULT_N,
            "adult": adult.DEFAULT_N,
            "br2000": br2000.DEFAULT_N,
        }
        assert defaults[name] == TABLE5[name][0]

    def test_domain_size_order_of_magnitude(self, name):
        table = load_dataset(name, n=500, seed=0)
        log_dom = math.log2(table.domain_size)
        paper = TABLE5[name][2]
        assert abs(log_dom - paper) <= 3.0  # same order of magnitude

    def test_deterministic_given_seed(self, name):
        t1 = load_dataset(name, n=400, seed=3)
        t2 = load_dataset(name, n=400, seed=3)
        for attr in t1.attribute_names:
            assert (t1.column(attr) == t2.column(attr)).all()

    def test_different_seeds_differ(self, name):
        t1 = load_dataset(name, n=400, seed=1)
        t2 = load_dataset(name, n=400, seed=2)
        assert any(
            (t1.column(a) != t2.column(a)).any() for a in t1.attribute_names
        )


class TestKnownCorrelations:
    def test_nltcs_implications(self):
        table = load_dataset("nltcs", n=8000, seed=0)
        # Outside mobility ↔ traveling is a hard-wired implication.
        mi = mutual_information_from_table(
            table, "traveling", ["getting_about_outside"]
        )
        assert mi > 0.1

    def test_acs_dwelling_mortgage(self):
        table = load_dataset("acs", n=8000, seed=0)
        mi = mutual_information_from_table(table, "has_mortgage", ["owns_dwelling"])
        assert mi > 0.1

    def test_adult_education_salary(self):
        table = load_dataset("adult", n=8000, seed=0)
        mi = mutual_information_from_table(table, "salary", ["education"])
        assert mi > 0.02

    def test_adult_taxonomies_attached(self):
        table = load_dataset("adult", n=200, seed=0)
        assert table.attribute("workclass").taxonomy is not None
        assert table.attribute("native_country").taxonomy is not None
        assert table.attribute("age").taxonomy is not None  # binned continuous

    def test_adult_workclass_matches_figure3(self):
        table = load_dataset("adult", n=200, seed=0)
        tax = table.attribute("workclass").taxonomy
        assert tax.level_labels(1) == (
            "Self-employed",
            "Government",
            "Private",
            "Unemployed",
        )

    def test_br2000_income_cars(self):
        table = load_dataset("br2000", n=8000, seed=0)
        mi = mutual_information_from_table(table, "n_cars", ["income"])
        assert mi > 0.05

    def test_br2000_age_children(self):
        table = load_dataset("br2000", n=8000, seed=0)
        mi = mutual_information_from_table(table, "n_children", ["age"])
        assert mi > 0.1


class TestSyntheticGenerators:
    def test_sample_network_from_specs(self, rng):
        a = Attribute.binary("a")
        b = Attribute.binary("b")
        specs = [
            NodeSpec(a, (), np.array([[0.2, 0.8]])),
            NodeSpec(b, ("a",), np.array([[0.9, 0.1], [0.1, 0.9]])),
        ]
        table = sample_network(specs, 50_000, rng)
        assert table.column("a").mean() == pytest.approx(0.8, abs=0.01)
        agree = (table.column("a") == table.column("b")).mean()
        assert agree == pytest.approx(0.9, abs=0.01)

    def test_cpt_validation(self):
        a = Attribute.binary("a")
        with pytest.raises(ValueError, match="sum to 1"):
            NodeSpec(a, (), np.array([[0.5, 0.6]]))
        with pytest.raises(ValueError, match="shape"):
            NodeSpec(a, (), np.array([[0.5, 0.25, 0.25]]))

    def test_random_network_specs_valid(self, rng):
        attrs = [Attribute.binary(f"x{i}") for i in range(6)]
        specs = random_network_specs(attrs, 2, rng)
        placed = set()
        for spec in specs:
            assert set(spec.parents) <= placed
            assert len(spec.parents) <= 2
            placed.add(spec.attribute.name)

    def test_random_binary_table(self):
        table = random_binary_table(500, 8, seed=1)
        assert table.n == 500
        assert table.d == 8
        assert all(a.size == 2 for a in table.attributes)

    def test_random_binary_table_structure_seed(self):
        t1 = random_binary_table(300, 5, seed=1, structure_seed=9)
        t2 = random_binary_table(300, 5, seed=2, structure_seed=9)
        # Same structure, different draws.
        assert any(
            (t1.column(a) != t2.column(a)).any() for a in t1.attribute_names
        )

    def test_cpt_from_logits_stochastic(self):
        rows = cpt_from_logits(np.array([[0.0, 1.0], [3.0, -3.0]]))
        assert np.allclose(rows.sum(axis=1), 1.0)
        assert rows[0, 1] > rows[0, 0]
