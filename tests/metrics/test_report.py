"""Utility report: exactness on identical tables, degradation with noise."""

import numpy as np
import pytest

from repro.core.privbayes import PrivBayes
from repro.metrics import utility_report


class TestIdenticalTables:
    def test_zero_distances(self, binary_table):
        report = utility_report(binary_table, binary_table)
        assert report.mean_attribute_tvd == pytest.approx(0.0)
        assert report.mean_pair_tvd == pytest.approx(0.0)
        assert report.mean_mi_retained == pytest.approx(1.0)

    def test_counts(self, binary_table):
        report = utility_report(binary_table, binary_table)
        assert len(report.attributes) == 4
        assert len(report.pairs) == 6


class TestNoisyRelease:
    def test_degrades_with_less_budget(self, binary_table):
        def mean_tvd(eps, seed):
            rng = np.random.default_rng(seed)
            synthetic = PrivBayes(epsilon=eps).fit_sample(binary_table, rng=rng)
            return utility_report(binary_table, synthetic).mean_pair_tvd

        loose = np.mean([mean_tvd(0.02, s) for s in range(5)])
        tight = np.mean([mean_tvd(8.0, s) for s in range(5)])
        assert tight < loose

    def test_mi_retention_meaningful(self, binary_table, rng):
        synthetic = PrivBayes(epsilon=8.0).fit_sample(binary_table, rng=rng)
        report = utility_report(binary_table, synthetic)
        assert 0.0 <= report.mean_mi_retained <= 1.0

    def test_worst_lists_sorted(self, binary_table, rng):
        synthetic = PrivBayes(epsilon=0.5).fit_sample(binary_table, rng=rng)
        report = utility_report(binary_table, synthetic)
        worst = report.worst_pairs(6)
        tvds = [p.tvd for p in worst]
        assert tvds == sorted(tvds, reverse=True)

    def test_render_contains_sections(self, binary_table, rng):
        synthetic = PrivBayes(epsilon=1.0).fit_sample(binary_table, rng=rng)
        text = utility_report(binary_table, synthetic).render()
        assert "mean 1-way marginal TVD" in text
        assert "worst pairs" in text


class TestOptions:
    def test_max_pairs_cap(self, binary_table):
        report = utility_report(binary_table, binary_table, max_pairs=3)
        assert len(report.pairs) == 3

    def test_max_pairs_deterministic(self, binary_table):
        r1 = utility_report(binary_table, binary_table, max_pairs=3, seed=5)
        r2 = utility_report(binary_table, binary_table, max_pairs=3, seed=5)
        assert [p.names for p in r1.pairs] == [p.names for p in r2.pairs]

    def test_schema_mismatch_rejected(self, binary_table, mixed_table):
        with pytest.raises(ValueError, match="schemas"):
            utility_report(binary_table, mixed_table)

    def test_mi_retained_clamps(self):
        from repro.metrics.report import PairReport

        inflated = PairReport(("a", "b"), 0.0, mi_original=0.1, mi_synthetic=0.5)
        assert inflated.mi_retained == 1.0
        zero = PairReport(("a", "b"), 0.0, mi_original=0.0, mi_synthetic=0.0)
        assert zero.mi_retained == 1.0
