"""The encoding-aware release wrapper and method registry."""

import numpy as np
import pytest

from repro.release import METHODS, parse_method, release_synthetic


class TestParseMethod:
    def test_all_four_methods(self):
        assert parse_method("binary-F") == ("binary", "F")
        assert parse_method("gray-F") == ("gray", "F")
        assert parse_method("vanilla-R") == ("vanilla", "R")
        assert parse_method("hierarchical-R") == ("hierarchical", "R")

    def test_case_insensitive(self):
        assert parse_method("Hierarchical-r") == ("hierarchical", "R")

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown method"):
            parse_method("onehot-Q")


class TestReleaseSynthetic:
    def test_schema_preserved(self, mixed_table, rng):
        for method in METHODS:
            synthetic = release_synthetic(mixed_table, 1.0, method=method, rng=rng)
            assert synthetic.attribute_names == mixed_table.attribute_names
            assert synthetic.n == mixed_table.n

    def test_n_override(self, mixed_table, rng):
        synthetic = release_synthetic(
            mixed_table, 1.0, method="vanilla-R", rng=rng, n=123
        )
        assert synthetic.n == 123

    def test_codes_in_domain_after_bitwise_decode(self, mixed_table, rng):
        synthetic = release_synthetic(mixed_table, 0.5, method="gray-F", rng=rng)
        for attr in mixed_table.attributes:
            col = synthetic.column(attr.name)
            assert col.min() >= 0 and col.max() < attr.size

    def test_config_overrides_forwarded(self, mixed_table, rng):
        synthetic = release_synthetic(
            mixed_table, 1.0, method="vanilla-R", rng=rng, first_attribute="color"
        )
        assert synthetic.n == mixed_table.n

    def test_utility_orders_by_epsilon(self, binary_table):
        from repro.metrics import utility_report

        def err(eps, seed):
            synthetic = release_synthetic(
                binary_table, eps, method="vanilla-R",
                rng=np.random.default_rng(seed),
            )
            return utility_report(binary_table, synthetic).mean_pair_tvd

        loose = np.mean([err(0.02, s) for s in range(5)])
        tight = np.mean([err(8.0, s) for s in range(5)])
        assert tight < loose
