"""Two-table release: linkage bookkeeping, truncation, end-to-end DP."""

import numpy as np
import pytest

from repro.data.attribute import Attribute
from repro.data.table import Table
from repro.multitable import LinkedTables, release_two_tables


def _linked(n_individuals=600, seed=0):
    """Households (region, wealthy) owning 0..5 vehicles (kind, old)."""
    rng = np.random.default_rng(seed)
    region = rng.integers(0, 3, n_individuals)
    wealthy = (rng.random(n_individuals) < 0.3 + 0.2 * (region == 0)).astype(
        np.int64
    )
    primary = Table(
        [Attribute("region", ("n", "c", "s")), Attribute.binary("wealthy")],
        {"region": region, "wealthy": wealthy},
    )
    fanout = rng.poisson(0.6 + 1.8 * wealthy)
    owners = np.repeat(np.arange(n_individuals), fanout)
    total = owners.size
    owner_wealthy = wealthy[owners]
    kind = np.where(
        rng.random(total) < 0.25 + 0.5 * owner_wealthy,
        rng.integers(1, 3, total),
        0,
    ).astype(np.int64)
    old = (rng.random(total) < 0.6 - 0.3 * owner_wealthy).astype(np.int64)
    child = Table(
        [Attribute("kind", ("bike", "car", "truck")), Attribute.binary("old")],
        {"kind": kind, "old": old},
    )
    return LinkedTables(primary, child, owners)


class TestLinkedTables:
    def test_fanout_counts(self):
        linked = _linked()
        counts = linked.fanout_counts()
        assert counts.sum() == linked.n_child_rows
        assert counts.size == linked.n_individuals

    def test_children_of(self):
        linked = _linked()
        owner = int(linked.owners[0])
        rows = linked.children_of(owner)
        assert rows.n == int((linked.owners == owner).sum())

    def test_children_of_out_of_range(self):
        with pytest.raises(IndexError):
            _linked().children_of(10_000)

    def test_owner_validation(self):
        linked = _linked()
        with pytest.raises(ValueError, match="outside"):
            LinkedTables(
                linked.primary,
                linked.child,
                np.full(linked.child.n, linked.primary.n + 5),
            )

    def test_owner_shape_validation(self):
        linked = _linked()
        with pytest.raises(ValueError, match="shape"):
            LinkedTables(linked.primary, linked.child, np.zeros(3, dtype=int))

    def test_truncate_bounds_fanout(self):
        linked = _linked()
        truncated = linked.truncate(2, np.random.default_rng(0))
        assert truncated.max_fanout() <= 2
        assert truncated.n_individuals == linked.n_individuals

    def test_truncate_keeps_under_limit_rows(self):
        linked = _linked()
        bound = linked.max_fanout()
        same = linked.truncate(bound)
        assert same.n_child_rows == linked.n_child_rows

    def test_truncate_negative_rejected(self):
        with pytest.raises(ValueError):
            _linked().truncate(-1)


class TestRelease:
    def test_budget_fully_accounted(self, rng):
        linked = _linked()
        release = release_two_tables(linked, 2.0, max_fanout=3, rng=rng)
        assert release.accountant.spent == pytest.approx(2.0)

    def test_sampled_schema_matches(self, rng):
        linked = _linked()
        release = release_two_tables(linked, 2.0, max_fanout=3, rng=rng)
        synthetic = release.sample(rng=rng)
        assert synthetic.primary.attribute_names == linked.primary.attribute_names
        assert synthetic.child.attribute_names == linked.child.attribute_names
        assert synthetic.n_individuals == linked.n_individuals

    def test_sampled_fanout_bounded(self, rng):
        linked = _linked()
        release = release_two_tables(linked, 2.0, max_fanout=3, rng=rng)
        synthetic = release.sample(rng=rng)
        assert synthetic.max_fanout() <= 3

    def test_owner_indices_valid(self, rng):
        linked = _linked()
        release = release_two_tables(linked, 2.0, max_fanout=3, rng=rng)
        synthetic = release.sample(200, rng)
        assert synthetic.n_individuals == 200
        if synthetic.n_child_rows:
            assert synthetic.owners.max() < 200

    def test_fanout_distribution_learned(self, rng):
        """At a generous budget the synthetic mean fanout tracks the true
        (truncated) mean."""
        linked = _linked(n_individuals=2000)
        release = release_two_tables(linked, 50.0, max_fanout=4, rng=rng)
        truncated = linked.truncate(4)
        truth = truncated.fanout_counts().mean()
        synthetic = release.sample(rng=rng)
        assert synthetic.fanout_counts().mean() == pytest.approx(truth, abs=0.25)

    def test_child_budget_scaled_by_fanout(self, rng):
        """Group privacy: the child pipeline runs at ε_child / max_fanout."""
        linked = _linked()
        release = release_two_tables(
            linked, 2.0, max_fanout=4, split=(0.4, 0.2, 0.4), rng=rng
        )
        child_epsilon = release.child_model.accountant.total_epsilon
        assert child_epsilon == pytest.approx(2.0 * 0.4 / 4)

    def test_invalid_epsilon(self, rng):
        with pytest.raises(ValueError):
            release_two_tables(_linked(), 0.0, rng=rng)

    def test_invalid_split(self, rng):
        with pytest.raises(ValueError, match="split"):
            release_two_tables(_linked(), 1.0, split=(0.5, 0.5, 0.5), rng=rng)

    def test_privbayes_kwargs_forwarded(self, rng):
        linked = _linked()
        release = release_two_tables(
            linked, 2.0, max_fanout=3, rng=rng, theta=8.0
        )
        assert release.primary_model.config.theta == pytest.approx(8.0)


class TestScoringCacheSharing:
    """The PR 2 ``scoring_cache`` parameter of ``release_two_tables``."""

    @staticmethod
    def _fingerprint(release, seed=17):
        """Sampled columns + fanout distribution, for bit-level comparison."""
        synthetic = release.sample(rng=np.random.default_rng(seed))
        columns = {
            name: synthetic.primary.column(name)
            for name in synthetic.primary.attribute_names
        }
        columns.update(
            {
                "child." + name: synthetic.child.column(name)
                for name in synthetic.child.attribute_names
            }
        )
        return release.fanout_distribution, synthetic.owners, columns

    def test_cache_is_a_pure_optimization(self):
        """Same rng stream with and without the cache → identical release."""
        from repro.core.scoring import ScoringCache

        linked = _linked()
        plain = release_two_tables(
            linked, 2.0, max_fanout=3, rng=np.random.default_rng(9)
        )
        cached = release_two_tables(
            linked, 2.0, max_fanout=3, rng=np.random.default_rng(9),
            scoring_cache=ScoringCache(),
        )
        fp_plain, fp_cached = self._fingerprint(plain), self._fingerprint(cached)
        np.testing.assert_array_equal(fp_plain[0], fp_cached[0])
        np.testing.assert_array_equal(fp_plain[1], fp_cached[1])
        for name in fp_plain[2]:
            np.testing.assert_array_equal(fp_plain[2][name], fp_cached[2][name])

    def test_both_tables_registered_in_shared_cache(self):
        """One release fits two pipelines into the *same* cache: the
        truncated primary and child tables must both land in it (that is
        the sharing the parameter exists for)."""
        from repro.core.scoring import ScoringCache

        linked = _linked()
        cache = ScoringCache()
        release_two_tables(
            linked, 2.0, max_fanout=3, rng=np.random.default_rng(9),
            scoring_cache=cache,
        )
        assert len(cache._tables) == 2  # truncated primary + truncated child
        assert len(cache._scorers) >= 2

    def test_sweep_over_shared_cache_matches_fresh_caches(self):
        """An ε sweep threading one cache is bit-identical to fresh caches.

        Truncation builds fresh tables per release, so repeated releases
        miss (the cache keys on table identity) — the guarantee that
        matters is that stale entries never leak across fits.
        """
        from repro.core.scoring import ScoringCache

        linked = _linked()
        shared = ScoringCache()
        for epsilon in (0.4, 0.8, 1.6):
            with_shared = release_two_tables(
                linked, epsilon, max_fanout=3,
                # repro: allow[PRIV001] -- epsilon doubles as a distinct test-seed source here
                rng=np.random.default_rng(int(epsilon * 10)),
                scoring_cache=shared,
            )
            fresh = release_two_tables(
                linked, epsilon, max_fanout=3,
                # repro: allow[PRIV001] -- epsilon doubles as a distinct test-seed source here
                rng=np.random.default_rng(int(epsilon * 10)),
                scoring_cache=ScoringCache(),
            )
            fp_shared, fp_fresh = (
                self._fingerprint(with_shared),
                self._fingerprint(fresh),
            )
            np.testing.assert_array_equal(fp_shared[0], fp_fresh[0])
            for name in fp_shared[2]:
                np.testing.assert_array_equal(
                    fp_shared[2][name], fp_fresh[2][name]
                )
