"""The candidate scorer's caching and count layout (greedy inner loop)."""

import numpy as np
import pytest

from repro.core.greedy_bayes import _CandidateScorer
from repro.data.marginals import marginal_counts


class TestCounts:
    def test_counts_match_marginal_counts(self, binary_table):
        scorer = _CandidateScorer(binary_table, "I")
        counts, child_size = scorer.counts("b", (("a", 0),))
        reference = marginal_counts(binary_table, ["a", "b"])
        assert child_size == 2
        assert np.allclose(counts, reference)

    def test_empty_parent_set(self, binary_table):
        scorer = _CandidateScorer(binary_table, "I")
        counts, _ = scorer.counts("a", ())
        assert np.allclose(counts, marginal_counts(binary_table, ["a"]))

    def test_generalized_parent_counts(self, mixed_table):
        scorer = _CandidateScorer(mixed_table, "R")
        counts, child_size = scorer.counts("warm_flag", (("color", 1),))
        assert counts.size == 2 * 2  # generalized color (2) x flag (2)
        assert counts.sum() == mixed_table.n

    def test_parent_flat_cache_reused(self, binary_table):
        scorer = _CandidateScorer(binary_table, "I")
        scorer.counts("c", (("a", 0), ("b", 0)))
        cached = scorer._parent_index_cache._flat[(("a", 0), ("b", 0))]
        scorer.counts("d", (("a", 0), ("b", 0)))
        assert (
            scorer._parent_index_cache._flat[(("a", 0), ("b", 0))] is cached
        )

    def test_unknown_score_rejected(self, binary_table):
        with pytest.raises(ValueError, match="unknown score"):
            _CandidateScorer(binary_table, "Z")


class TestScoring:
    def test_scores_match_direct_formulas(self, binary_table):
        from repro.core.scores import score_I, score_R

        scorer_i = _CandidateScorer(binary_table, "I")
        scorer_r = _CandidateScorer(binary_table, "R")
        counts = marginal_counts(binary_table, ["a", "b"])
        joint = counts / binary_table.n
        assert scorer_i("b", (("a", 0),)) == pytest.approx(score_I(joint, 2))
        assert scorer_r("b", (("a", 0),)) == pytest.approx(score_R(joint, 2))

    def test_strong_pair_scores_higher(self, binary_table):
        scorer = _CandidateScorer(binary_table, "F")
        strong = scorer("b", (("a", 0),))  # b follows a
        weak = scorer("c", (("a", 0),))    # c independent of a
        assert strong > weak

    def test_F_non_binary_child_rejected(self, mixed_table):
        scorer = _CandidateScorer(mixed_table, "F")
        with pytest.raises(ValueError, match="binary child"):
            scorer("color", (("warm_flag", 0),))
