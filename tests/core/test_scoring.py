"""The incremental scoring engine: memoization, batching, shared caches."""

import numpy as np
import pytest

from repro.core.scoring import (
    CandidateScorer,
    MutualInformationCache,
    ScoringCache,
)
from repro.infotheory.measures import mutual_information_from_table


def _fixed_k_candidates(table, k=2):
    """All (child, parent-set) candidates over a few greedy rounds."""
    import itertools

    names = list(table.attribute_names)
    placed = names[:1]
    remaining = names[1:]
    rounds = []
    for _ in range(len(remaining)):
        width = min(k, len(placed))
        candidates = []
        for child in remaining:
            for parents in itertools.combinations(placed, width):
                candidates.append((child, tuple((p, 0) for p in parents)))
        rounds.append(candidates)
        placed.append(remaining.pop(0))
    return rounds


class TestMemoization:
    def test_batch_matches_single(self, binary_table):
        batched = CandidateScorer(binary_table, "R")
        single = CandidateScorer(binary_table, "R", incremental=False)
        for candidates in _fixed_k_candidates(binary_table):
            scores = batched.score_batch(candidates)
            reference = np.array(
                [single(child, parents) for child, parents in candidates]
            )
            assert np.array_equal(scores, reference)  # bit-identical

    def test_each_candidate_scored_once(self, binary_table, monkeypatch):
        """The kernel sees each candidate exactly once across all rounds."""
        import repro.core.scoring as scoring_module

        scorer = CandidateScorer(binary_table, "I")
        scored = []
        original = scoring_module.score_I_segments

        def counting(values, offsets, lengths, child_sizes):
            result = original(values, offsets, lengths, child_sizes)
            scored.extend(range(result.size))
            return result

        monkeypatch.setattr(scoring_module, "score_I_segments", counting)
        rounds = _fixed_k_candidates(binary_table)
        for candidates in rounds:
            scorer.score_batch(candidates)
        unique = {cand for candidates in rounds for cand in candidates}
        assert len(scored) == len(unique)
        # Re-scoring every round is free.
        for candidates in rounds:
            scorer.score_batch(candidates)
        assert len(scored) == len(unique)

    def test_non_incremental_mode_recomputes(self, binary_table):
        scorer = CandidateScorer(binary_table, "R", incremental=False)
        scorer.score_batch([("b", (("a", 0),))])
        assert scorer._score_memo == {}

    def test_f_score_batched(self, binary_table):
        batched = CandidateScorer(binary_table, "F")
        fresh = CandidateScorer(binary_table, "F", incremental=False)
        candidates = [
            ("c", (("a", 0), ("b", 0))),
            ("d", (("a", 0), ("b", 0))),
            ("d", (("a", 0),)),
        ]
        scores = batched.score_batch(candidates)
        reference = np.array([fresh(ch, pa) for ch, pa in candidates])
        assert np.array_equal(scores, reference)

    def test_f_non_binary_child_rejected_in_batch(self, mixed_table):
        scorer = CandidateScorer(mixed_table, "F")
        with pytest.raises(ValueError, match="binary child"):
            scorer.score_batch([("color", (("warm_flag", 0),))])

    def test_generalized_parents_batched(self, mixed_table):
        batched = CandidateScorer(mixed_table, "R")
        fresh = CandidateScorer(mixed_table, "R", incremental=False)
        candidates = [
            ("warm_flag", (("color", 1),)),
            ("size", (("color", 1),)),
        ]
        scores = batched.score_batch(candidates)
        reference = np.array([fresh(ch, pa) for ch, pa in candidates])
        assert np.array_equal(scores, reference)


class TestSensitivity:
    def test_constant_scores_collapse_to_one_value(self, binary_table):
        scorer = CandidateScorer(binary_table, "F")
        candidates = [("b", (("a", 0),)), ("c", (("a", 0),))]
        value = scorer.selection_sensitivity(candidates)
        assert value == pytest.approx(1.0 / binary_table.n)

    def test_i_sensitivity_uses_domain_shape(self, mixed_table):
        scorer = CandidateScorer(mixed_table, "I")
        # color (4 values) with a ternary parent: non-binary branch.
        wide = scorer.sensitivity("color", (("size", 0),))
        narrow = scorer.sensitivity("warm_flag", (("size", 0),))
        assert narrow != wide  # binary child takes the tighter bound

    def test_matches_non_incremental(self, mixed_table):
        cached = CandidateScorer(mixed_table, "I")
        fresh = CandidateScorer(mixed_table, "I", incremental=False)
        candidates = [
            ("color", (("size", 0),)),
            ("warm_flag", (("color", 0), ("size", 0))),
        ]
        assert cached.selection_sensitivity(candidates) == fresh.selection_sensitivity(
            candidates
        )

    def test_empty_candidates_rejected(self, binary_table):
        with pytest.raises(ValueError, match="non-empty"):
            CandidateScorer(binary_table, "F").selection_sensitivity([])


class TestMutualInformationCache:
    def test_matches_direct_computation(self, binary_table):
        cache = MutualInformationCache(binary_table)
        direct = mutual_information_from_table(binary_table, "b", ["a"])
        assert cache.mi("b", ("a",)) == direct
        assert cache.mi("b", ("a",)) == direct  # cached hit

    def test_pair_mi_handles_generalized_parents(self, mixed_table):
        from repro.bn.quality import pair_joint_distribution
        from repro.infotheory.measures import mutual_information

        cache = MutualInformationCache(mixed_table)
        joint, child_size = pair_joint_distribution(
            mixed_table, "warm_flag", [("color", 1)]
        )
        assert cache.pair_mi("warm_flag", (("color", 1),)) == mutual_information(
            joint, child_size
        )

    def test_network_quality_with_cache(self, binary_table):
        from repro.bn.network import APPair, BayesianNetwork
        from repro.bn.quality import network_mutual_information

        network = BayesianNetwork(
            [APPair.make("a", []), APPair.make("b", ["a"])]
        )
        cache = MutualInformationCache(binary_table)
        assert network_mutual_information(
            binary_table, network, mi_cache=cache
        ) == network_mutual_information(binary_table, network)


class TestScoringCache:
    def test_scorer_reused_per_table_and_score(self, binary_table, mixed_table):
        registry = ScoringCache()
        first = registry.scorer(binary_table, "F")
        assert registry.scorer(binary_table, "F") is first
        assert registry.scorer(binary_table, "I") is not first
        assert registry.scorer(mixed_table, "F") is not first

    def test_mi_cache_reused(self, binary_table):
        registry = ScoringCache()
        assert registry.mi_cache(binary_table) is registry.mi_cache(binary_table)

    def test_joint_counter_reused_and_shares_parent_index(self, binary_table):
        registry = ScoringCache()
        counter = registry.joint_counter(binary_table)
        assert registry.joint_counter(binary_table) is counter
        # Scorer and counter flatten parent sets through one shared cache.
        scorer = registry.scorer(binary_table, "F")
        assert scorer._parent_index_cache is counter._parent_index
        assert registry.parent_index(binary_table) is counter._parent_index

    def test_registry_bounded_fifo_eviction(self, binary_table, mixed_table):
        from repro.core.scoring import _MAX_CACHED_TABLES
        from repro.data.attribute import Attribute
        from repro.data.table import Table

        registry = ScoringCache()
        registry.scorer(binary_table, "F")
        churn = [
            Table(
                [Attribute.binary("a")],
                {"a": np.zeros(4, dtype=np.int64) + (i % 2)},
            )
            for i in range(_MAX_CACHED_TABLES + 3)
        ]
        for t in churn:
            registry.joint_counter(t)
        assert len(registry._tables) <= _MAX_CACHED_TABLES
        # Oldest (binary_table) evicted; the most recent churn tables live.
        assert id(binary_table) not in registry._tables
        assert id(churn[-1]) in registry._tables
        # A fresh lookup after eviction simply rebuilds.
        assert registry.scorer(binary_table, "F").table is binary_table

    def test_scorer_table_mismatch_rejected(self, binary_table, mixed_table):
        from repro.core.greedy_bayes import greedy_bayes_fixed_k

        scorer = CandidateScorer(mixed_table, "F")
        with pytest.raises(ValueError, match="different table"):
            greedy_bayes_fixed_k(binary_table, 1, None, scorer=scorer)

    def test_scorer_score_mismatch_rejected(self, binary_table):
        from repro.core.greedy_bayes import greedy_bayes_fixed_k

        scorer = CandidateScorer(binary_table, "I")
        with pytest.raises(ValueError, match="score"):
            greedy_bayes_fixed_k(binary_table, 1, None, score="F", scorer=scorer)


class TestRNGPreservation:
    """Sharing a scorer must not perturb the seeded draw sequence."""

    def test_greedy_identical_with_and_without_shared_scorer(self, binary_table):
        from repro.core.greedy_bayes import greedy_bayes_fixed_k

        fresh = greedy_bayes_fixed_k(
            binary_table, 2, 0.5, rng=np.random.default_rng(7),
            first_attribute="a",
        )
        scorer = CandidateScorer(binary_table, "F")
        warm = greedy_bayes_fixed_k(
            binary_table, 2, 0.5, rng=np.random.default_rng(7),
            first_attribute="a", scorer=scorer,
        )
        # Run again with the now fully warmed memo: still identical.
        warmest = greedy_bayes_fixed_k(
            binary_table, 2, 0.5, rng=np.random.default_rng(7),
            first_attribute="a", scorer=scorer,
        )
        assert fresh == warm == warmest

    def test_theta_identical_with_naive_scorer(self, mixed_table):
        from repro.core.greedy_bayes import greedy_bayes_theta

        incremental = greedy_bayes_theta(
            mixed_table, 0.5, 0.5, theta=2.0, rng=np.random.default_rng(11),
            first_attribute="color",
        )
        naive = greedy_bayes_theta(
            mixed_table, 0.5, 0.5, theta=2.0, rng=np.random.default_rng(11),
            first_attribute="color",
            scorer=CandidateScorer(mixed_table, "R", incremental=False),
        )
        assert incremental == naive


def test_network_quality_rejects_foreign_cache(binary_table, mixed_table):
    from repro.bn.network import APPair, BayesianNetwork
    from repro.bn.quality import network_mutual_information

    network = BayesianNetwork([APPair.make("a", []), APPair.make("b", ["a"])])
    cache = MutualInformationCache(mixed_table)
    with pytest.raises(ValueError, match="different table"):
        network_mutual_information(binary_table, network, mi_cache=cache)
