"""θ-usefulness: Lemma 4.8 ratios, automatic k selection, τ bound."""

import pytest

from repro.core.theta import (
    choose_k_binary,
    usefulness_ratio_binary,
    usefulness_tau,
)


class TestUsefulnessRatio:
    def test_lemma_4_8_formula(self):
        # n=1000, d=10, k=2, eps2=0.8: 1000*0.8 / (8 * 16) = 6.25.
        assert usefulness_ratio_binary(1000, 10, 2, 0.8) == pytest.approx(6.25)

    def test_ratio_decreases_with_k(self):
        ratios = [usefulness_ratio_binary(10_000, 12, k, 1.0) for k in range(8)]
        assert ratios == sorted(ratios, reverse=True)

    def test_out_of_range_k(self):
        with pytest.raises(ValueError):
            usefulness_ratio_binary(100, 5, 5, 1.0)
        with pytest.raises(ValueError):
            usefulness_ratio_binary(100, 5, -1, 1.0)


class TestChooseK:
    def test_large_budget_allows_large_k(self):
        k_small = choose_k_binary(20_000, 16, 0.05, theta=4.0)
        k_large = choose_k_binary(20_000, 16, 1.5, theta=4.0)
        assert k_large >= k_small

    def test_chosen_k_is_theta_useful(self):
        n, d, eps2, theta = 21_574, 16, 0.7, 4.0
        k = choose_k_binary(n, d, eps2, theta)
        assert k >= 1
        assert usefulness_ratio_binary(n, d, k, eps2) >= theta
        # And k+1 would not be (k is the largest).
        if k + 1 < d:
            assert usefulness_ratio_binary(n, d, k + 1, eps2) < theta

    def test_falls_back_to_zero(self):
        # Tiny data + tiny budget: even k=1 is not theta-useful.
        assert choose_k_binary(50, 16, 0.01, theta=4.0) == 0

    def test_single_attribute(self):
        assert choose_k_binary(1000, 1, 1.0, theta=4.0) == 0

    def test_larger_theta_gives_smaller_k(self):
        k_loose = choose_k_binary(30_000, 16, 1.0, theta=1.0)
        k_strict = choose_k_binary(30_000, 16, 1.0, theta=12.0)
        assert k_strict <= k_loose


class TestTau:
    def test_formula(self):
        # tau = n*eps2 / (2*d*theta).
        assert usefulness_tau(1000, 10, 0.8, 4.0) == pytest.approx(10.0)

    def test_monotone_in_budget(self):
        assert usefulness_tau(1000, 10, 1.6, 4.0) > usefulness_tau(1000, 10, 0.1, 4.0)

    def test_monotone_in_theta(self):
        assert usefulness_tau(1000, 10, 1.0, 2.0) > usefulness_tau(1000, 10, 1.0, 8.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            usefulness_tau(0, 10, 1.0, 4.0)
        with pytest.raises(ValueError):
            usefulness_tau(100, 10, 0.0, 4.0)
        with pytest.raises(ValueError):
            usefulness_tau(100, 10, 1.0, -1.0)
