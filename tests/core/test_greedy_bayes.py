"""GreedyBayes (Algorithms 2 & 4): structural invariants, Chow-Liu check."""

import itertools

import numpy as np
import pytest

from repro.bn.network import BayesianNetwork
from repro.core.greedy_bayes import greedy_bayes_fixed_k, greedy_bayes_theta
from repro.data.attribute import Attribute
from repro.data.table import Table
from repro.infotheory.measures import mutual_information_from_table


class TestFixedK:
    def test_structure_is_valid_network(self, binary_table, rng):
        network = greedy_bayes_fixed_k(binary_table, 2, 1.0, "F", rng)
        assert isinstance(network, BayesianNetwork)
        assert network.d == binary_table.d
        assert network.degree <= 2

    def test_first_k_pairs_take_all_placed(self, binary_table, rng):
        """Algorithm 2: for i <= k the parent set is all of {X_1..X_{i-1}},
        which underpins the Algorithm 1 derivation (Section 3)."""
        network = greedy_bayes_fixed_k(binary_table, 2, 1.0, "F", rng)
        pairs = network.pairs
        assert pairs[0].parents == ()
        assert set(pairs[1].parent_names) == {pairs[0].child}
        assert set(pairs[2].parent_names) == {pairs[0].child, pairs[1].child}
        # Pair k+1 has exactly k parents drawn from the first k attributes.
        assert len(pairs[3].parents) == 2

    def test_k_zero_yields_independent_network(self, binary_table, rng):
        network = greedy_bayes_fixed_k(binary_table, 0, 1.0, "I", rng)
        assert network.degree == 0

    def test_first_attribute_override(self, binary_table, rng):
        network = greedy_bayes_fixed_k(
            binary_table, 1, 1.0, "F", rng, first_attribute="c"
        )
        assert network.pairs[0].child == "c"

    def test_unknown_first_attribute(self, binary_table, rng):
        with pytest.raises(ValueError, match="unknown first"):
            greedy_bayes_fixed_k(binary_table, 1, 1.0, "F", rng, first_attribute="zz")

    def test_F_rejects_non_binary(self, mixed_table, rng):
        with pytest.raises(ValueError, match="binary"):
            greedy_bayes_fixed_k(mixed_table, 1, 1.0, "F", rng)

    def test_negative_k_rejected(self, binary_table, rng):
        with pytest.raises(ValueError):
            greedy_bayes_fixed_k(binary_table, -1, 1.0, "F", rng)

    def test_nonpositive_epsilon_rejected(self, binary_table, rng):
        with pytest.raises(ValueError):
            greedy_bayes_fixed_k(binary_table, 1, 0.0, "F", rng)

    def test_nonprivate_chow_liu_matches_bruteforce(self, rng):
        """k=1 argmax greedy = Chow-Liu: picks the max-MI edge each step."""
        n = 3000
        a = rng.integers(0, 2, n)
        b = np.where(rng.random(n) < 0.95, a, 1 - a)   # I(a,b) large
        c = np.where(rng.random(n) < 0.75, b, 1 - b)   # I(b,c) medium
        d = rng.integers(0, 2, n)                      # independent
        table = Table(
            [Attribute.binary(x) for x in "abcd"],
            {"a": a, "b": b, "c": c, "d": d},
        )
        network = greedy_bayes_fixed_k(
            table, 1, None, "I", rng, first_attribute="a"
        )
        parents = {p.child: p.parent_names for p in network.pairs}
        assert parents["b"] == ("a",)
        assert parents["c"] == ("b",)

    def test_nonprivate_greedy_beats_private_on_average(self, binary_table):
        def quality(net):
            return sum(
                mutual_information_from_table(
                    binary_table, p.child, list(p.parent_names)
                )
                for p in net.pairs
            )

        best = quality(
            greedy_bayes_fixed_k(
                binary_table, 1, None, "I", np.random.default_rng(0), first_attribute="a"
            )
        )
        noisy = [
            quality(
                greedy_bayes_fixed_k(
                    binary_table,
                    1,
                    0.05,
                    "I",
                    np.random.default_rng(seed),
                    first_attribute="a",
                )
            )
            for seed in range(10)
        ]
        assert best >= max(noisy) - 1e-9
        assert best >= np.mean(noisy)


class TestThetaVariant:
    def test_structure_valid(self, mixed_table, rng):
        network = greedy_bayes_theta(mixed_table, 0.3, 0.7, 4.0, "R", rng=rng)
        assert network.d == mixed_table.d
        order = network.attribute_order
        for pair in network.pairs:
            for name in pair.parent_names:
                assert order.index(name) < order.index(pair.child)

    def test_domain_budget_respected(self, mixed_table, rng):
        from repro.core.theta import usefulness_tau

        theta = 4.0
        eps2 = 0.7
        tau = usefulness_tau(mixed_table.n, mixed_table.d, eps2, theta)
        network = greedy_bayes_theta(mixed_table, 0.3, eps2, theta, "R", rng=rng)
        for pair in network.pairs:
            size = pair and 1
            size = 1
            for name, level in pair.parents:
                attr = mixed_table.attribute(name)
                size *= (
                    attr.size
                    if level == 0
                    else attr.taxonomy.level_size(level)
                )
            # Pr[X, Π] must be θ-useful: |dom(X)| * |dom(Π)| <= tau.
            if pair.parents:
                assert size * mixed_table.attribute(pair.child).size <= tau + 1e-9

    def test_tiny_budget_yields_independent_attributes(self, mixed_table, rng):
        network = greedy_bayes_theta(mixed_table, 0.001, 0.002, 12.0, "R", rng=rng)
        assert network.degree == 0

    def test_generalized_parents_marked(self, rng):
        """With a tight budget and taxonomies, some parent should appear at
        a generalized level rather than being dropped entirely."""
        from repro.data.taxonomy import TaxonomyTree

        n = 4000
        tax = TaxonomyTree.from_groups(
            tuple("abcdefgh"),
            (
                ("g0", ("a", "b")),
                ("g1", ("c", "d")),
                ("g2", ("e", "f")),
                ("g3", ("g", "h")),
            ),
        )
        base = rng.integers(0, 8, n)
        follow = (base // 2 + rng.integers(0, 2, n) * 0) % 4
        table = Table(
            [
                Attribute("wide", tuple("abcdefgh"), taxonomy=tax),
                Attribute("grp", ("0", "1", "2", "3")),
            ],
            {"wide": base, "grp": follow},
        )
        # tau total = n*eps2/(2*d*theta) = 4000*0.4/(2*2*4) = 100 — generous;
        # shrink with a tiny n override by lowering eps2 instead.
        network = greedy_bayes_theta(
            table, 0.3, 0.032, 4.0, "R", generalize=True, rng=rng,
            first_attribute="wide",
        )
        # tau = 4000*0.032/16 = 8; child grp (4) allows parent domain <= 2,
        # so 'wide' can only participate generalized (level >= 1).
        pair = network.pair_for("grp")
        if pair.parents:
            assert all(level >= 1 for _, level in pair.parents)

    def test_nonprivate_mode(self, mixed_table):
        network = greedy_bayes_theta(
            mixed_table, None, 0.7, 4.0, "R", rng=np.random.default_rng(0)
        )
        assert network.d == mixed_table.d

    def test_score_F_guard_on_non_binary_child(self, mixed_table, rng):
        with pytest.raises(ValueError, match="binary"):
            greedy_bayes_theta(
                mixed_table, 0.3, 0.7, 4.0, "F", rng=rng, first_attribute="color"
            )
