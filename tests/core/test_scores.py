"""Score functions I, F, R: known values, paper examples, sensitivities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scores import (
    score_F,
    score_F_bruteforce,
    score_I,
    score_R,
    sensitivity_F,
    sensitivity_I,
    sensitivity_R,
)


def _counts_strategy(max_columns=6, max_per_cell=12):
    """Random small contingency tables (binary child)."""
    return st.lists(
        st.tuples(
            st.integers(0, max_per_cell), st.integers(0, max_per_cell)
        ),
        min_size=1,
        max_size=max_columns,
    )


class TestScoreF:
    def test_maximum_joint_distribution_scores_zero(self):
        # Table 3(b)-style: one non-zero per column, each row mass 1/2.
        n = 10
        counts = np.array([[5, 0], [0, 3], [0, 2]], dtype=float).reshape(-1)
        assert score_F(counts, n) == pytest.approx(0.0)

    def test_paper_table3_example(self):
        # Table 3(a): n=10 scaled version of (.6, .1/.1/.1/.1): the minimum
        # L1 distance to a maximum joint distribution is 0.4 → F = -0.2.
        counts = np.array(
            [[6, 1], [0, 1], [0, 1], [0, 1]], dtype=float
        ).reshape(-1)
        assert score_F(counts, 10) == pytest.approx(-0.2)

    def test_uniform_independent(self):
        # All four cells equal: K0 = K1 = 1/4 → shortfall 1/4 + 1/4.
        counts = np.array([[2, 2], [2, 2]], dtype=float).reshape(-1)
        assert score_F(counts, 8) == pytest.approx(-0.5)

    def test_empty_parent_set_column(self):
        counts = np.array([[4, 4]], dtype=float).reshape(-1)
        # Single column: only one of K0/K1 can be fed → best = -0.5.
        assert score_F(counts, 8) == pytest.approx(-0.5)

    def test_nonnegative_range(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            cols = rng.integers(1, 6)
            counts = rng.integers(0, 10, size=(cols, 2)).astype(float)
            n = int(counts.sum())
            if n == 0:
                continue
            f = score_F(counts.reshape(-1), n)
            assert -1.0 <= f <= 0.0

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError, match="binary child"):
            score_F(np.ones(3), 3)

    def test_wrong_total_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            score_F(np.array([1.0, 1.0]), 5)

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            score_F(np.array([0.5, 0.5]), 1)

    @given(_counts_strategy())
    @settings(max_examples=150, deadline=None)
    def test_dp_matches_bruteforce(self, cells):
        counts = np.array(cells, dtype=float)
        n = int(counts.sum())
        if n == 0:
            return
        flat = counts.reshape(-1)
        assert score_F(flat, n) == pytest.approx(
            score_F_bruteforce(flat, n), abs=1e-12
        )

    @given(_counts_strategy(max_columns=4, max_per_cell=6), st.data())
    @settings(max_examples=100, deadline=None)
    def test_sensitivity_bound_on_neighbors(self, cells, data):
        """Theorem 4.5: |F(D1) - F(D2)| <= 1/n on neighboring datasets."""
        counts = np.array(cells, dtype=float)
        n = int(counts.sum())
        if n < 1:
            return
        # Move one tuple from an occupied cell to any other cell.
        occupied = np.argwhere(counts > 0)
        if occupied.size == 0:
            return
        src = tuple(occupied[data.draw(st.integers(0, len(occupied) - 1))])
        dst_row = data.draw(st.integers(0, counts.shape[0] - 1))
        dst_col = data.draw(st.integers(0, 1))
        neighbor = counts.copy()
        neighbor[src] -= 1
        neighbor[dst_row, dst_col] += 1
        f1 = score_F(counts.reshape(-1), n)
        f2 = score_F(neighbor.reshape(-1), n)
        assert abs(f1 - f2) <= sensitivity_F(n) + 1e-12


class TestScoreR:
    def test_independent_is_zero(self):
        joint = np.full(4, 0.25)
        assert score_R(joint, 2) == pytest.approx(0.0)

    def test_perfectly_correlated_binary(self):
        joint = np.array([0.5, 0.0, 0.0, 0.5])
        # Independent product is uniform 0.25; L1 distance = 1 → R = 0.5.
        assert score_R(joint, 2) == pytest.approx(0.5)

    def test_pinsker_bound(self):
        """R <= sqrt(I * ln2 / 2) (end of Section 5.3)."""
        rng = np.random.default_rng(1)
        for _ in range(100):
            joint = rng.dirichlet(np.ones(12))
            r = score_R(joint, 3)
            i = score_I(joint, 3)
            assert r <= np.sqrt(np.log(2) / 2.0 * i) + 1e-9

    def test_works_on_non_binary_domains(self):
        rng = np.random.default_rng(2)
        joint = rng.dirichlet(np.ones(15))
        assert 0.0 <= score_R(joint, 5) <= 1.0

    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_sensitivity_bound_on_neighbors(self, data):
        """Theorem 5.3: |R(D1) - R(D2)| <= 3/n + 2/n² on neighbors."""
        rows = data.draw(st.integers(1, 4))
        cols = data.draw(st.integers(2, 4))
        rng = np.random.default_rng(data.draw(st.integers(0, 100_000)))
        counts = rng.integers(0, 8, size=(rows, cols)).astype(float)
        n = int(counts.sum())
        if n < 1:
            return
        occupied = np.argwhere(counts > 0)
        src = tuple(occupied[data.draw(st.integers(0, len(occupied) - 1))])
        dst = (
            data.draw(st.integers(0, rows - 1)),
            data.draw(st.integers(0, cols - 1)),
        )
        neighbor = counts.copy()
        neighbor[src] -= 1
        neighbor[dst] += 1
        r1 = score_R(counts.reshape(-1) / n, cols)
        r2 = score_R(neighbor.reshape(-1) / n, cols)
        assert abs(r1 - r2) <= sensitivity_R(n) + 1e-12


class TestSensitivities:
    def test_sensitivity_I_binary_formula(self):
        n = 100
        expected = (1 / n) * np.log2(n) + ((n - 1) / n) * np.log2(n / (n - 1))
        assert sensitivity_I(n, binary=True) == pytest.approx(expected)

    def test_sensitivity_I_general_formula(self):
        n = 100
        expected = (2 / n) * np.log2((n + 1) / 2) + ((n - 1) / n) * np.log2(
            (n + 1) / (n - 1)
        )
        assert sensitivity_I(n, binary=False) == pytest.approx(expected)

    def test_general_dominates_binary(self):
        for n in (10, 100, 10_000):
            assert sensitivity_I(n, binary=False) >= sensitivity_I(n, binary=True)

    def test_F_beats_I_by_log_n(self):
        """S(F) < S(I)/log2(n) (Section 4.3)."""
        for n in (100, 1000, 100_000):
            assert sensitivity_F(n) < sensitivity_I(n, binary=True)
            assert sensitivity_F(n) <= (1 / n) * np.log2(n)

    def test_F_a_third_of_R(self):
        """S(F) = 1/n vs S(R) ≈ 3/n (Section 6.2's '1/3' comparison)."""
        n = 10_000
        assert sensitivity_R(n) / sensitivity_F(n) == pytest.approx(3.0, rel=1e-3)

    def test_sensitivity_I_on_neighbors(self):
        """Empirical check of Lemma 4.1 on random binary neighbors."""
        rng = np.random.default_rng(3)
        for _ in range(200):
            counts = rng.integers(0, 10, size=(2, 2)).astype(float)
            n = int(counts.sum())
            if n < 2:
                continue
            occupied = np.argwhere(counts > 0)
            src = tuple(occupied[rng.integers(len(occupied))])
            dst = (int(rng.integers(2)), int(rng.integers(2)))
            neighbor = counts.copy()
            neighbor[src] -= 1
            neighbor[dst] += 1
            i1 = score_I(counts.reshape(-1) / n, 2)
            i2 = score_I(neighbor.reshape(-1) / n, 2)
            assert abs(i1 - i2) <= sensitivity_I(n, binary=True) + 1e-9

    def test_positive_n_required(self):
        with pytest.raises(ValueError):
            sensitivity_F(0)
        with pytest.raises(ValueError):
            sensitivity_R(0)
