"""The compiled-kernel tier: selection, caching, fallback, end-to-end parity.

Three contracts:

* **Selection** — ``REPRO_KERNEL_BACKEND`` picks the mode; ``auto``
  degrades to NumPy *silently* when no toolchain exists, ``native``
  raises a :class:`~repro.core.kernel_backend.KernelBackendError` naming
  what is missing, ``numpy`` never touches the compiler.
* **Caching** — artifacts are keyed on ABI version + source digest and
  honor ``REPRO_KERNEL_CACHE``.
* **End-to-end invisibility** — a full ``PrivBayes.fit_sample`` release
  produces the *identical* network and synthetic-data fingerprint under
  both backends (fresh interpreter per backend, so the import-time
  selection is what is actually exercised).
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import kernel_backend

NATIVE_AVAILABLE = True
try:
    kernel_backend.load_native()
except kernel_backend.KernelBackendError:
    NATIVE_AVAILABLE = False

needs_native = pytest.mark.skipif(
    not NATIVE_AVAILABLE, reason="no C toolchain for native kernel"
)

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run(code, **env_overrides):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env
    )


class TestSelection:
    def test_requested_mode_default_and_validation(self, monkeypatch):
        monkeypatch.delenv(kernel_backend.BACKEND_ENV, raising=False)
        assert kernel_backend.requested_mode() == "auto"
        monkeypatch.setenv(kernel_backend.BACKEND_ENV, "NumPy")
        assert kernel_backend.requested_mode() == "numpy"
        monkeypatch.setenv(kernel_backend.BACKEND_ENV, "cython")
        with pytest.raises(kernel_backend.KernelBackendError, match="cython"):
            kernel_backend.requested_mode()

    def test_numpy_mode_never_builds(self, monkeypatch):
        def exploding_build(force=False):  # pragma: no cover - must not run
            raise AssertionError("numpy mode must not touch the compiler")

        monkeypatch.setattr(kernel_backend, "build_native", exploding_build)
        assert kernel_backend.resolve("numpy") == ("numpy", None)

    def test_auto_falls_back_silently_without_toolchain(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(kernel_backend, "compiler", lambda: None)
        monkeypatch.setenv(kernel_backend.CACHE_ENV, str(tmp_path / "empty"))
        selected, kernel = kernel_backend.resolve("auto")
        assert selected == "numpy"
        assert kernel is None

    def test_native_mode_names_missing_toolchain(self, monkeypatch, tmp_path):
        monkeypatch.setattr(kernel_backend, "compiler", lambda: None)
        monkeypatch.setenv(kernel_backend.CACHE_ENV, str(tmp_path / "empty"))
        with pytest.raises(
            kernel_backend.KernelBackendError, match="no C toolchain"
        ):
            kernel_backend.resolve("native")

    def test_no_toolchain_fallback_still_scores(self, monkeypatch, tmp_path):
        """Under auto-without-compiler the F kernel keeps working (NumPy)."""
        from repro.core import score_kernels
        from repro.core.score_kernels import score_F_batch, score_F_dp

        monkeypatch.setattr(kernel_backend, "compiler", lambda: None)
        monkeypatch.setenv(kernel_backend.CACHE_ENV, str(tmp_path / "empty"))
        selected, kernel = kernel_backend.resolve("auto")
        monkeypatch.setattr(kernel_backend, "NATIVE_KERNEL", kernel)
        monkeypatch.setattr(kernel_backend, "SELECTED_BACKEND", selected)
        rng = np.random.default_rng(11)
        counts = rng.multinomial(300, np.ones(30) / 30, size=4)
        got = score_F_batch(counts, 300)
        ref = np.array([score_F_dp(row, 300) for row in counts])
        assert np.array_equal(got, ref)
        assert score_kernels._native_for(None) is None


class TestArtifactCache:
    def test_cache_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(kernel_backend.CACHE_ENV, str(tmp_path))
        assert kernel_backend.cache_dir() == tmp_path
        assert kernel_backend.artifact_path().parent == tmp_path

    def test_artifact_name_keys_abi_and_source(self):
        name = kernel_backend.artifact_path().name
        assert name.startswith(f"scoref-abi{kernel_backend.ABI_VERSION}-")
        assert name.endswith(".so")

    @needs_native
    def test_build_into_fresh_cache_and_load(self, monkeypatch, tmp_path):
        monkeypatch.setenv(kernel_backend.CACHE_ENV, str(tmp_path))
        built = kernel_backend.build_native()
        assert built.exists() and built.parent == tmp_path
        kernel = kernel_backend.NativeKernel(built)
        out = kernel.score_f_batch(
            np.array([[3, 2]], dtype=np.int64),
            np.array([[1, 4]], dtype=np.int64),
            10,
        )
        assert out.shape == (1,)


class TestDiagnosticCLI:
    def test_cli_reports_and_exits_zero(self):
        result = _run("import repro.kernels, sys; sys.exit(repro.kernels.main())")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "selected backend" in result.stdout
        assert "bit-identical" in result.stdout

    @needs_native
    def test_cli_native_mode(self):
        result = _run(
            "import repro.kernels, sys; sys.exit(repro.kernels.main())",
            REPRO_KERNEL_BACKEND="native",
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "selected backend : native" in result.stdout


_FINGERPRINT_CODE = """
import zlib
import numpy as np
from repro.core.privbayes import PrivBayes
from repro.core.scoring import ScoringCache
from repro.datasets import load_dataset

table = load_dataset("nltcs", n=600, seed=0)
model = PrivBayes(epsilon=1.6, beta=0.3, theta=4.0, score="F", mode="binary")
rng = np.random.default_rng(97)
fitted = model.fit(table, rng, scoring_cache=ScoringCache())
synthetic = fitted.sample(rng=rng)
rows = np.stack(
    [synthetic.column(a) for a in synthetic.attribute_names]
)
print(fitted.network.stable_fingerprint())
print(zlib.crc32(np.ascontiguousarray(rows).tobytes()))
"""


@needs_native
class TestEndToEndParity:
    def test_fit_sample_fingerprint_identical_across_backends(self):
        """A whole release is bit-identical under numpy and native backends.

        Fresh interpreter per backend so the import-time selection (not a
        per-call override) is what is tested.
        """
        runs = {}
        for mode in ("numpy", "native"):
            result = _run(_FINGERPRINT_CODE, REPRO_KERNEL_BACKEND=mode)
            assert result.returncode == 0, result.stderr
            runs[mode] = result.stdout
        assert runs["numpy"] == runs["native"]
        assert runs["numpy"].strip()
