"""Maximal parent sets (Algorithms 5 & 6): vs brute force, invariants."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parent_sets import (
    ParentSetCache,
    maximal_parent_sets,
    maximal_parent_sets_generalized,
    parent_set_domain_size,
)
from repro.data.attribute import Attribute
from repro.data.marginals import domain_size
from repro.data.taxonomy import TaxonomyTree


def _attrs(sizes):
    return [
        Attribute(f"x{i}", tuple(f"v{j}" for j in range(s)))
        for i, s in enumerate(sizes)
    ]


def _bruteforce_maximal(attrs, tau):
    """Reference: enumerate all subsets, keep feasible maximal ones."""
    if tau < 1.0:
        return set()
    feasible = []
    for r in range(len(attrs) + 1):
        for combo in itertools.combinations(attrs, r):
            size = domain_size([a.size for a in combo]) if combo else 1
            if size <= tau:
                feasible.append(frozenset((a.name, 0) for a in combo))
    maximal = {
        s
        for s in feasible
        if not any(s < other for other in feasible)
    }
    return maximal


class TestAlgorithm5:
    def test_tau_below_one_admits_nothing(self):
        assert maximal_parent_sets(_attrs([2, 2]), 0.5) == []

    def test_empty_attrs_admit_empty_set(self):
        assert maximal_parent_sets([], 4.0) == [frozenset()]

    def test_all_fit(self):
        attrs = _attrs([2, 2])
        result = maximal_parent_sets(attrs, 4.0)
        assert result == [frozenset({("x0", 0), ("x1", 0)})]

    def test_budget_excludes_large_combination(self):
        attrs = _attrs([2, 3])
        result = set(maximal_parent_sets(attrs, 3.0))
        # 2*3=6 > 3, so the maximal sets are the singletons.
        assert result == {
            frozenset({("x0", 0)}),
            frozenset({("x1", 0)}),
        }

    def test_no_set_dominates_another(self):
        attrs = _attrs([2, 3, 4, 2])
        result = maximal_parent_sets(attrs, 12.0)
        for a, b in itertools.combinations(result, 2):
            assert not a < b and not b < a

    def test_every_set_within_budget(self):
        attrs = _attrs([2, 3, 4, 2])
        by_name = {a.name: a for a in attrs}
        for parent_set in maximal_parent_sets(attrs, 12.0):
            assert parent_set_domain_size(parent_set, by_name) <= 12

    @given(
        sizes=st.lists(st.integers(2, 5), min_size=0, max_size=5),
        tau=st.floats(0.5, 200.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_bruteforce(self, sizes, tau):
        attrs = _attrs(sizes)
        result = set(maximal_parent_sets(attrs, tau))
        assert result == _bruteforce_maximal(attrs, tau)


class TestAlgorithm6:
    def _taxonomied_attrs(self):
        tax4 = TaxonomyTree.from_groups(
            ("a", "b", "c", "d"),
            (("ab", ("a", "b")), ("cd", ("c", "d"))),
        )
        return [
            Attribute("p", ("a", "b", "c", "d"), taxonomy=tax4),
            Attribute("q", ("0", "1")),
        ]

    def test_generalization_used_when_budget_tight(self):
        attrs = self._taxonomied_attrs()
        # tau=4: {p(0), q} costs 8 > 4; {p(1), q} costs 4 ✓.
        result = set(maximal_parent_sets_generalized(attrs, 4.0))
        assert frozenset({("p", 1), ("q", 0)}) in result

    def test_prefers_less_generalized_when_it_fits(self):
        attrs = self._taxonomied_attrs()
        result = set(maximal_parent_sets_generalized(attrs, 8.0))
        assert result == {frozenset({("p", 0), ("q", 0)})}

    def test_no_taxonomy_reduces_to_algorithm5(self):
        attrs = _attrs([2, 3, 4])
        for tau in (1.0, 3.0, 6.0, 24.0, 100.0):
            gen = set(maximal_parent_sets_generalized(attrs, tau))
            plain = set(maximal_parent_sets(attrs, tau))
            assert gen == plain

    def test_tau_below_one(self):
        assert maximal_parent_sets_generalized(self._taxonomied_attrs(), 0.9) == []

    def test_domain_budget_respected(self):
        attrs = self._taxonomied_attrs()
        by_name = {a.name: a for a in attrs}
        for tau in (1.0, 2.0, 4.0, 8.0, 16.0):
            for parent_set in maximal_parent_sets_generalized(attrs, tau):
                assert parent_set_domain_size(parent_set, by_name) <= tau

    def test_no_member_refinable(self):
        """Maximality: refining any member one level must bust the budget."""
        attrs = self._taxonomied_attrs()
        by_name = {a.name: a for a in attrs}
        for tau in (2.0, 4.0, 8.0):
            for parent_set in maximal_parent_sets_generalized(attrs, tau):
                for name, level in parent_set:
                    if level == 0:
                        continue
                    refined = (parent_set - {(name, level)}) | {(name, level - 1)}
                    assert parent_set_domain_size(refined, by_name) > tau


def _shuffle(items, order_seed):
    shuffled = list(items)
    np.random.default_rng(order_seed).shuffle(shuffled)
    return shuffled


class TestMemoization:
    """The ParentSetCache path is equivalent to the brute-force recursion.

    The greedy θ-mode loop relies on two properties: a shared memo returns
    exactly what a fresh recursion computes, and the computed *set* of
    maximal parent sets does not depend on the attribute order (greedy
    passes the placed attributes newest-first so each round's subproblems
    hit the previous round's memo entries).
    """

    @given(
        sizes=st.lists(st.integers(2, 5), min_size=0, max_size=5),
        taus=st.lists(st.floats(0.5, 200.0), min_size=1, max_size=4),
        order_seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_cached_and_shuffled_match_bruteforce(self, sizes, taus, order_seed):
        attrs = _attrs(sizes)
        cache = ParentSetCache()  # shared across every call below
        for tau in taus:
            reference = _bruteforce_maximal(attrs, tau)
            assert set(maximal_parent_sets(attrs, tau, cache=cache)) == reference
            shuffled = _shuffle(attrs, order_seed)
            assert (
                set(maximal_parent_sets(shuffled, tau, cache=cache)) == reference
            )

    @given(
        spec=st.lists(
            st.tuples(st.integers(2, 5), st.booleans()), min_size=0, max_size=5
        ),
        taus=st.lists(st.floats(0.5, 200.0), min_size=1, max_size=4),
        order_seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_generalized_cached_and_shuffled_match_recursion(
        self, spec, taus, order_seed
    ):
        tax = TaxonomyTree.from_groups(
            ("a", "b", "c", "d"), (("ab", ("a", "b")), ("cd", ("c", "d")))
        )
        attrs = []
        for i, (size, taxed) in enumerate(spec):
            if taxed:
                attrs.append(
                    Attribute(f"x{i}", ("a", "b", "c", "d"), taxonomy=tax)
                )
            else:
                attrs.append(
                    Attribute(f"x{i}", tuple(f"v{j}" for j in range(size)))
                )
        cache = ParentSetCache()
        for tau in taus:
            reference = set(maximal_parent_sets_generalized(attrs, tau))
            assert (
                set(maximal_parent_sets_generalized(attrs, tau, cache=cache))
                == reference
            )
            shuffled = _shuffle(attrs, order_seed)
            assert (
                set(maximal_parent_sets_generalized(shuffled, tau, cache=cache))
                == reference
            )

    def test_cache_not_confused_by_same_names_different_sizes(self):
        """Keys carry domain sizes, so schema collisions are impossible."""
        cache = ParentSetCache()
        small = _attrs([2, 2])
        assert maximal_parent_sets(small, 4.0, cache=cache) == [
            frozenset({("x0", 0), ("x1", 0)})
        ]
        large = _attrs([3, 3])  # same names x0/x1, wider domains
        assert set(maximal_parent_sets(large, 4.0, cache=cache)) == {
            frozenset({("x0", 0)}),
            frozenset({("x1", 0)}),
        }

    def test_cache_populates_tail_subproblems(self):
        """Tail subproblems land in the memo, so a later call whose full
        problem is a previous call's tail is a pure cache hit — the
        mechanism greedy's newest-first ordering exploits."""
        cache = ParentSetCache()
        attrs = _attrs([2, 3, 4])
        maximal_parent_sets(attrs, 12.0, cache=cache)
        entries = len(cache._plain)
        result = maximal_parent_sets(attrs[1:], 12.0, cache=cache)
        assert len(cache._plain) == entries  # no new subproblems computed
        assert set(result) == _bruteforce_maximal(attrs[1:], 12.0)


class TestDomainSize:
    def test_empty_set(self):
        assert parent_set_domain_size(frozenset(), {}) == 1

    def test_generalized_member(self):
        tax = TaxonomyTree.from_groups(
            ("a", "b", "c", "d"), (("ab", ("a", "b")), ("cd", ("c", "d")))
        )
        attr = Attribute("p", ("a", "b", "c", "d"), taxonomy=tax)
        assert parent_set_domain_size(frozenset({("p", 0)}), {"p": attr}) == 4
        assert parent_set_domain_size(frozenset({("p", 1)}), {"p": attr}) == 2
