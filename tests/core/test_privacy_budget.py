"""The accountant bounds total ε spend — including the Algorithm 1 fallback.

Satellite coverage for two end-to-end guarantees:

* no execution path spends more than the configured total ε (the fallback
  branch of ``noisy_conditionals_fixed_k`` charges an *extra* share, and
  the accountant must refuse it rather than silently overdraw);
* a fixed seed makes ``PrivBayes.fit`` fully deterministic, so the
  scoring-engine caches can be validated against recorded fingerprints.
"""

import numpy as np
import pytest

from repro.bn.network import APPair, BayesianNetwork
from repro.core.noisy_conditionals import noisy_conditionals_fixed_k
from repro.core.privbayes import PrivBayes
from repro.dp.accountant import PrivacyAccountant, PrivacyBudgetError


class TestBudgetNeverExceeded:
    @pytest.mark.parametrize("epsilon", [0.1, 1.0, 4.0])
    def test_binary_fit_spends_at_most_epsilon(self, binary_table, epsilon):
        model = PrivBayes(epsilon=epsilon, k=2).fit(
            binary_table, rng=np.random.default_rng(0)
        )
        # repro: allow[PRIV001] -- float-tolerance assertion of the never-exceed-epsilon invariant
        assert model.accountant.spent <= epsilon + 1e-9
        model.accountant.assert_exhausted()

    @pytest.mark.parametrize("epsilon", [0.1, 1.0])
    def test_general_fit_spends_at_most_epsilon(self, mixed_table, epsilon):
        model = PrivBayes(epsilon=epsilon, generalize=True).fit(
            mixed_table, rng=np.random.default_rng(0)
        )
        # repro: allow[PRIV001] -- float-tolerance assertion of the never-exceed-epsilon invariant
        assert model.accountant.spent <= epsilon + 1e-9
        model.accountant.assert_exhausted()

    def test_algorithm1_fallback_cannot_overdraw(self, binary_table):
        """A network violating the Algorithm 2 structural guarantee forces
        the fallback branch, whose extra per-marginal share would overdraw
        ε₂ — the accountant must refuse the charge."""
        network = BayesianNetwork(
            [
                APPair.make("a", []),
                APPair.make("b", []),  # anchor for k=1: names {b} only
                APPair.make("c", ["a"]),
                APPair.make("d", ["c"]),
            ]
        )
        epsilon2 = 0.5
        accountant = PrivacyAccountant(epsilon2)
        with pytest.raises(PrivacyBudgetError):
            noisy_conditionals_fixed_k(
                network=network,
                table=binary_table,
                k=1,
                epsilon2=epsilon2,
                rng=np.random.default_rng(0),
                accountant=accountant,
            )
        # Even at the point of refusal, nothing beyond the budget was spent.
        # repro: allow[PRIV001] -- float-tolerance assertion of the never-exceed-epsilon invariant
        assert accountant.spent <= epsilon2 + 1e-9

    def test_fallback_without_accountant_still_works(self, binary_table):
        """The ledger-free path keeps the seed behavior (no refusal): it is
        the caller's responsibility to pass an accountant when the input
        network may violate the structural guarantee."""
        network = BayesianNetwork(
            [
                APPair.make("a", []),
                APPair.make("b", []),
                APPair.make("c", ["a"]),
                APPair.make("d", ["c"]),
            ]
        )
        model = noisy_conditionals_fixed_k(
            network=network,
            table=binary_table,
            k=1,
            epsilon2=0.5,
            rng=np.random.default_rng(0),
        )
        assert {t.child for t in model.conditionals} == {"a", "b", "c", "d"}

    def test_algorithm2_networks_never_hit_fallback(self, binary_table):
        """Networks built by Algorithm 2 satisfy the structural guarantee,
        so no ledger entry is a fallback charge."""
        model = PrivBayes(epsilon=1.0, k=2).fit(
            binary_table, rng=np.random.default_rng(3)
        )
        labels = [label for label, _ in model.accountant.ledger]
        assert not any("fallback" in label for label in labels)


class TestSeededDeterminism:
    def test_fit_is_bit_identical_across_runs(self, binary_table):
        def run():
            model = PrivBayes(epsilon=1.0, k=2, first_attribute="a").fit(
                binary_table, rng=np.random.default_rng(42)
            )
            return model

        first, second = run(), run()
        assert first.network == second.network
        for left, right in zip(first.noisy.conditionals, second.noisy.conditionals):
            assert left.child == right.child
            assert np.array_equal(left.matrix, right.matrix)

    def test_shared_scoring_cache_is_bit_identical(self, binary_table):
        from repro.core.scoring import ScoringCache

        cache = ScoringCache()

        def run(scoring_cache):
            return PrivBayes(epsilon=1.0, k=2, first_attribute="a").fit(
                binary_table,
                rng=np.random.default_rng(42),
                scoring_cache=scoring_cache,
            )

        cold = run(None)
        warm = run(cache)
        warmest = run(cache)  # second pass: every score is a memo hit
        assert cold.network == warm.network == warmest.network
        for a, b in zip(cold.noisy.conditionals, warmest.noisy.conditionals):
            assert np.array_equal(a.matrix, b.matrix)
