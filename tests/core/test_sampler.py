"""Ancestral sampling: schema fidelity and distribution convergence."""

import numpy as np
import pytest

from repro.bn.network import APPair, BayesianNetwork
from repro.core.noisy_conditionals import (
    ConditionalTable,
    NoisyModel,
    noisy_conditionals_general,
)
from repro.core.sampler import sample_synthetic
from repro.data.attribute import Attribute
from repro.data.marginals import joint_distribution
from repro.data.table import Table
from repro.data.taxonomy import TaxonomyTree


def _manual_model():
    """Hand-built model: a ~ Bern(0.3); b = a with prob 0.9."""
    attrs = [Attribute.binary("a"), Attribute.binary("b")]
    network = BayesianNetwork(
        [APPair.make("a", []), APPair.make("b", ["a"])]
    )
    conditionals = (
        ConditionalTable("a", (), (), 2, np.array([[0.7, 0.3]])),
        ConditionalTable(
            "b", (("a", 0),), (2,), 2, np.array([[0.9, 0.1], [0.1, 0.9]])
        ),
    )
    return NoisyModel(network, conditionals), attrs


class TestSampling:
    def test_schema_and_size(self):
        model, attrs = _manual_model()
        synthetic = sample_synthetic(model, attrs, 500, np.random.default_rng(0))
        assert synthetic.n == 500
        assert synthetic.attribute_names == ("a", "b")

    def test_zero_rows(self):
        model, attrs = _manual_model()
        synthetic = sample_synthetic(model, attrs, 0, np.random.default_rng(0))
        assert synthetic.n == 0

    def test_negative_rows_rejected(self):
        model, attrs = _manual_model()
        with pytest.raises(ValueError):
            sample_synthetic(model, attrs, -1, np.random.default_rng(0))

    def test_unplaced_schema_attribute_rejected_up_front(self):
        """A truncated/custom network that does not place every schema
        attribute raises a ValueError naming the gaps, not a KeyError."""
        model, attrs = _manual_model()
        extra = attrs + [Attribute.binary("c"), Attribute.binary("d")]
        with pytest.raises(ValueError, match=r"\['c', 'd'\]") as excinfo:
            sample_synthetic(model, extra, 10, np.random.default_rng(0))
        assert "does not place" in str(excinfo.value)

    def test_network_attribute_missing_from_schema_rejected(self):
        model, attrs = _manual_model()
        with pytest.raises(ValueError, match=r"\['b'\]"):
            sample_synthetic(model, attrs[:1], 10, np.random.default_rng(0))

    def test_row_cdfs_cached_and_readonly(self):
        model, attrs = _manual_model()
        conditional = model.conditionals[1]
        cdf = conditional.row_cdfs
        assert conditional.row_cdfs is cdf  # computed once, cached
        expected = np.cumsum(conditional.matrix, axis=1)
        expected[:, -1] = 1.0
        np.testing.assert_array_equal(cdf, expected)
        with pytest.raises(ValueError):
            cdf[0, 0] = 0.5

    def test_binary_fast_path_matches_general_cdf_inversion(self):
        """child_size == 2 takes a one-comparison path; codes must equal
        the generic count-of-exceeded-CDF-entries inversion."""
        from repro.core.sampler import _sample_rows

        model, _ = _manual_model()
        conditional = model.conditionals[1]
        rows = np.random.default_rng(0).integers(0, 2, 5000)
        draws = _sample_rows(conditional, rows, np.random.default_rng(9))
        cdf = conditional.row_cdfs
        uniforms = np.random.default_rng(9).random(rows.shape[0])
        reference = (
            (uniforms[:, None] > cdf[rows]).sum(axis=1).astype(np.int64)
        )
        np.testing.assert_array_equal(draws, reference)

    def test_marginal_converges(self):
        model, attrs = _manual_model()
        synthetic = sample_synthetic(
            model, attrs, 100_000, np.random.default_rng(1)
        )
        assert synthetic.column("a").mean() == pytest.approx(0.3, abs=0.01)

    def test_conditional_converges(self):
        model, attrs = _manual_model()
        synthetic = sample_synthetic(
            model, attrs, 100_000, np.random.default_rng(2)
        )
        a = synthetic.column("a")
        b = synthetic.column("b")
        agree = (a == b).mean()
        assert agree == pytest.approx(0.9, abs=0.01)

    def test_end_to_end_distribution_recovery(self, binary_table):
        """Sampling from a noiseless model reproduces the joint closely."""
        names = list(binary_table.attribute_names)
        network = BayesianNetwork(
            [APPair.make(names[0], [])]
            + [
                APPair.make(cur, [prev])
                for prev, cur in zip(names, names[1:])
            ]
        )
        model = noisy_conditionals_general(
            binary_table, network, None, np.random.default_rng(0)
        )
        synthetic = sample_synthetic(
            model, binary_table.attributes, 80_000, np.random.default_rng(3)
        )
        for prev, cur in zip(names, names[1:]):
            truth = joint_distribution(binary_table, [prev, cur])
            sampled = joint_distribution(synthetic, [prev, cur])
            assert np.abs(truth - sampled).max() < 0.02

    def test_generalized_parent_sampling(self):
        """A child conditioned on a generalized parent maps raw draws
        through the taxonomy before indexing the conditional."""
        tax = TaxonomyTree.from_groups(
            ("a", "b", "c", "d"), (("ab", ("a", "b")), ("cd", ("c", "d")))
        )
        attrs = [
            Attribute("p", ("a", "b", "c", "d"), taxonomy=tax),
            Attribute.binary("q"),
        ]
        network = BayesianNetwork(
            [APPair.make("p", []), APPair.make("q", [("p", 1)])]
        )
        conditionals = (
            ConditionalTable("p", (), (), 4, np.array([[0.25, 0.25, 0.25, 0.25]])),
            # q = 1 iff p generalizes to group "cd".
            ConditionalTable(
                "q", (("p", 1),), (2,), 2, np.array([[1.0, 0.0], [0.0, 1.0]])
            ),
        )
        model = NoisyModel(network, conditionals)
        synthetic = sample_synthetic(model, attrs, 20_000, np.random.default_rng(4))
        p = synthetic.column("p")
        q = synthetic.column("q")
        assert ((p >= 2) == (q == 1)).all()
