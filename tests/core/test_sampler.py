"""Ancestral sampling: schema fidelity and distribution convergence."""

import numpy as np
import pytest

from repro.bn.network import APPair, BayesianNetwork
from repro.core.noisy_conditionals import (
    ConditionalTable,
    NoisyModel,
    noisy_conditionals_general,
)
from repro.core.sampler import sample_synthetic
from repro.data.attribute import Attribute
from repro.data.marginals import joint_distribution
from repro.data.table import Table
from repro.data.taxonomy import TaxonomyTree


def _manual_model():
    """Hand-built model: a ~ Bern(0.3); b = a with prob 0.9."""
    attrs = [Attribute.binary("a"), Attribute.binary("b")]
    network = BayesianNetwork(
        [APPair.make("a", []), APPair.make("b", ["a"])]
    )
    conditionals = (
        ConditionalTable("a", (), (), 2, np.array([[0.7, 0.3]])),
        ConditionalTable(
            "b", (("a", 0),), (2,), 2, np.array([[0.9, 0.1], [0.1, 0.9]])
        ),
    )
    return NoisyModel(network, conditionals), attrs


class TestSampling:
    def test_schema_and_size(self):
        model, attrs = _manual_model()
        synthetic = sample_synthetic(model, attrs, 500, np.random.default_rng(0))
        assert synthetic.n == 500
        assert synthetic.attribute_names == ("a", "b")

    def test_zero_rows(self):
        model, attrs = _manual_model()
        synthetic = sample_synthetic(model, attrs, 0, np.random.default_rng(0))
        assert synthetic.n == 0

    def test_negative_rows_rejected(self):
        model, attrs = _manual_model()
        with pytest.raises(ValueError):
            sample_synthetic(model, attrs, -1, np.random.default_rng(0))

    def test_unplaced_schema_attribute_rejected_up_front(self):
        """A truncated/custom network that does not place every schema
        attribute raises a ValueError naming the gaps, not a KeyError."""
        model, attrs = _manual_model()
        extra = attrs + [Attribute.binary("c"), Attribute.binary("d")]
        with pytest.raises(ValueError, match=r"\['c', 'd'\]") as excinfo:
            sample_synthetic(model, extra, 10, np.random.default_rng(0))
        assert "does not place" in str(excinfo.value)

    def test_network_attribute_missing_from_schema_rejected(self):
        model, attrs = _manual_model()
        with pytest.raises(ValueError, match=r"\['b'\]"):
            sample_synthetic(model, attrs[:1], 10, np.random.default_rng(0))

    def test_row_cdfs_cached_and_readonly(self):
        model, attrs = _manual_model()
        conditional = model.conditionals[1]
        cdf = conditional.row_cdfs
        assert conditional.row_cdfs is cdf  # computed once, cached
        expected = np.cumsum(conditional.matrix, axis=1)
        expected[:, -1] = 1.0
        np.testing.assert_array_equal(cdf, expected)
        with pytest.raises(ValueError):
            cdf[0, 0] = 0.5

    def test_binary_fast_path_matches_general_cdf_inversion(self):
        """child_size == 2 takes a one-comparison path; codes must equal
        the generic count-of-exceeded-CDF-entries inversion."""
        from repro.core.sampler import _sample_rows

        model, _ = _manual_model()
        conditional = model.conditionals[1]
        rows = np.random.default_rng(0).integers(0, 2, 5000)
        draws = _sample_rows(conditional, rows, np.random.default_rng(9))
        cdf = conditional.row_cdfs
        uniforms = np.random.default_rng(9).random(rows.shape[0])
        reference = (
            (uniforms[:, None] > cdf[rows]).sum(axis=1).astype(np.int64)
        )
        np.testing.assert_array_equal(draws, reference)

    def test_marginal_converges(self):
        model, attrs = _manual_model()
        synthetic = sample_synthetic(
            model, attrs, 100_000, np.random.default_rng(1)
        )
        assert synthetic.column("a").mean() == pytest.approx(0.3, abs=0.01)

    def test_conditional_converges(self):
        model, attrs = _manual_model()
        synthetic = sample_synthetic(
            model, attrs, 100_000, np.random.default_rng(2)
        )
        a = synthetic.column("a")
        b = synthetic.column("b")
        agree = (a == b).mean()
        assert agree == pytest.approx(0.9, abs=0.01)

    def test_end_to_end_distribution_recovery(self, binary_table):
        """Sampling from a noiseless model reproduces the joint closely."""
        names = list(binary_table.attribute_names)
        network = BayesianNetwork(
            [APPair.make(names[0], [])]
            + [
                APPair.make(cur, [prev])
                for prev, cur in zip(names, names[1:])
            ]
        )
        model = noisy_conditionals_general(
            binary_table, network, None, np.random.default_rng(0)
        )
        synthetic = sample_synthetic(
            model, binary_table.attributes, 80_000, np.random.default_rng(3)
        )
        for prev, cur in zip(names, names[1:]):
            truth = joint_distribution(binary_table, [prev, cur])
            sampled = joint_distribution(synthetic, [prev, cur])
            assert np.abs(truth - sampled).max() < 0.02

    def test_generalized_parent_sampling(self):
        """A child conditioned on a generalized parent maps raw draws
        through the taxonomy before indexing the conditional."""
        tax = TaxonomyTree.from_groups(
            ("a", "b", "c", "d"), (("ab", ("a", "b")), ("cd", ("c", "d")))
        )
        attrs = [
            Attribute("p", ("a", "b", "c", "d"), taxonomy=tax),
            Attribute.binary("q"),
        ]
        network = BayesianNetwork(
            [APPair.make("p", []), APPair.make("q", [("p", 1)])]
        )
        conditionals = (
            ConditionalTable("p", (), (), 4, np.array([[0.25, 0.25, 0.25, 0.25]])),
            # q = 1 iff p generalizes to group "cd".
            ConditionalTable(
                "q", (("p", 1),), (2,), 2, np.array([[1.0, 0.0], [0.0, 1.0]])
            ),
        )
        model = NoisyModel(network, conditionals)
        synthetic = sample_synthetic(model, attrs, 20_000, np.random.default_rng(4))
        p = synthetic.column("p")
        q = synthetic.column("q")
        assert ((p >= 2) == (q == 1)).all()


class TestCdfInversion:
    """invert_row_cdfs must agree with the broadcast reference bit for bit."""

    @pytest.mark.parametrize("child_size", [1, 2, 3, 5, 17])
    def test_matches_broadcast_reference(self, child_size):
        from repro.core.sampler import (
            broadcast_invert_row_cdfs,
            invert_row_cdfs,
        )

        rng = np.random.default_rng(child_size)
        n_rows = 11
        probs = rng.dirichlet(np.ones(child_size), size=n_rows)
        cdf = np.cumsum(probs, axis=1)
        cdf[:, -1] = 1.0
        rows = rng.integers(0, n_rows, 4000)
        uniforms = rng.random(4000)
        np.testing.assert_array_equal(
            invert_row_cdfs(cdf, rows, uniforms),
            broadcast_invert_row_cdfs(cdf, rows, uniforms),
        )

    def test_zero_probability_cells_and_duplicates(self):
        """Repeated CDF values (zero-mass cells) must resolve identically:
        both inversions count entries *strictly below* the uniform."""
        from repro.core.sampler import (
            broadcast_invert_row_cdfs,
            invert_row_cdfs,
        )

        cdf = np.array(
            [
                [0.0, 0.0, 0.5, 0.5, 1.0],
                [0.2, 0.2, 0.2, 0.2, 1.0],
                [1.0, 1.0, 1.0, 1.0, 1.0],
            ]
        )
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 3, 2000)
        uniforms = rng.random(2000)
        np.testing.assert_array_equal(
            invert_row_cdfs(cdf, rows, uniforms),
            broadcast_invert_row_cdfs(cdf, rows, uniforms),
        )

    def test_uniform_exactly_on_cdf_entry(self):
        """u == cdf entry is the tie case: `cdf < u` is False there, so the
        entry's own cell is selected — by both implementations."""
        from repro.core.sampler import (
            broadcast_invert_row_cdfs,
            invert_row_cdfs,
        )

        cdf = np.array([[0.25, 0.5, 0.75, 1.0]])
        rows = np.zeros(4, dtype=np.int64)
        uniforms = np.array([0.25, 0.5, 0.75, 0.0])
        result = invert_row_cdfs(cdf, rows, uniforms)
        np.testing.assert_array_equal(result, [0, 1, 2, 0])
        np.testing.assert_array_equal(
            result, broadcast_invert_row_cdfs(cdf, rows, uniforms)
        )

    def test_empty_batch(self):
        from repro.core.sampler import invert_row_cdfs

        result = invert_row_cdfs(
            np.array([[0.5, 1.0]]),
            np.zeros(0, dtype=np.int64),
            np.zeros(0),
        )
        assert result.shape == (0,)


class TestChunkedSampling:
    def test_chunks_concatenate_to_full_release(self):
        from repro.core.sampler import sample_synthetic_chunks
        from repro.data.table import Table

        model, attrs = _manual_model()
        chunks = list(
            sample_synthetic_chunks(
                model, attrs, 1000, np.random.default_rng(6), chunk_rows=256
            )
        )
        assert [c.n for c in chunks] == [256, 256, 256, 232]
        release = Table.from_chunks(
            attrs, ({n: c.column(n) for n in c.attribute_names} for c in chunks)
        )
        assert release.n == 1000
        assert release.attribute_names == ("a", "b")

    @pytest.mark.parametrize("chunk_rows", [1, 7, 999, 1000, 1013])
    def test_chunk_size_invariance(self, chunk_rows):
        """One spawned stream per attribute: the concatenated release is
        the same for every chunk size under a fixed seed."""
        from repro.core.sampler import sample_synthetic_chunks
        from repro.data.table import Table

        model, attrs = _manual_model()

        def release(rows):
            return Table.from_chunks(
                attrs,
                (
                    {n: c.column(n) for n in c.attribute_names}
                    for c in sample_synthetic_chunks(
                        model, attrs, 1000, np.random.default_rng(6), rows
                    )
                ),
            )

        reference = release(256)
        got = release(chunk_rows)
        for name in reference.attribute_names:
            np.testing.assert_array_equal(
                got.column(name), reference.column(name)
            )

    def test_zero_rows_yields_single_empty_chunk(self):
        from repro.core.sampler import sample_synthetic_chunks

        model, attrs = _manual_model()
        chunks = list(
            sample_synthetic_chunks(model, attrs, 0, np.random.default_rng(0))
        )
        assert len(chunks) == 1
        assert chunks[0].n == 0
        assert chunks[0].attribute_names == ("a", "b")

    def test_negative_rows_and_bad_chunk_rows_rejected(self):
        from repro.core.sampler import sample_synthetic_chunks

        model, attrs = _manual_model()
        with pytest.raises(ValueError):
            list(
                sample_synthetic_chunks(
                    model, attrs, -1, np.random.default_rng(0)
                )
            )
        with pytest.raises(ValueError):
            list(
                sample_synthetic_chunks(
                    model, attrs, 10, np.random.default_rng(0), chunk_rows=0
                )
            )

    def test_chunked_marginals_converge(self):
        """The spawned-stream draw is a different stream than the
        monolithic sampler, but it targets the same distribution."""
        from repro.core.sampler import sample_synthetic_chunks

        model, attrs = _manual_model()
        total = 0
        ones = 0
        agree = 0
        for chunk in sample_synthetic_chunks(
            model, attrs, 100_000, np.random.default_rng(8), chunk_rows=8192
        ):
            a = chunk.column("a")
            b = chunk.column("b")
            total += chunk.n
            ones += int(a.sum())
            agree += int((a == b).sum())
        assert total == 100_000
        assert ones / total == pytest.approx(0.3, abs=0.01)
        assert agree / total == pytest.approx(0.9, abs=0.01)

    def test_model_sample_chunks_smoke(self, binary_table):
        """PrivBayesModel.sample_chunks streams the fitted release."""
        from repro.core.privbayes import PrivBayes
        from repro.data.table import Table

        model = PrivBayes(epsilon=1.0, k=1, mode="binary").fit(
            binary_table, np.random.default_rng(11)
        )
        chunks = list(
            model.sample_chunks(rng=np.random.default_rng(12), chunk_rows=700)
        )
        assert sum(c.n for c in chunks) == binary_table.n
        assert all(
            c.attribute_names == binary_table.attribute_names for c in chunks
        )
        release = Table.from_chunks(
            binary_table.attributes,
            ({n: c.column(n) for n in c.attribute_names} for c in chunks),
        )
        assert release.n == binary_table.n
