"""Distribution learning (Algorithms 1 & 3): structure, noise, derivation."""

import numpy as np
import pytest

from repro.bn.network import APPair, BayesianNetwork
from repro.core.greedy_bayes import greedy_bayes_fixed_k
from repro.core.noisy_conditionals import (
    ConditionalTable,
    JointCounter,
    noisy_conditionals_fixed_k,
    noisy_conditionals_general,
)
from repro.data.marginals import joint_distribution, marginal_counts
from repro.dp.accountant import PrivacyAccountant, PrivacyBudgetError


def _chain_network(names):
    pairs = [APPair.make(names[0], [])]
    for prev, cur in zip(names, names[1:]):
        pairs.append(APPair.make(cur, [prev]))
    return BayesianNetwork(pairs)


class TestGeneral:
    def test_rows_stochastic(self, mixed_table, rng):
        network = _chain_network(list(mixed_table.attribute_names))
        model = noisy_conditionals_general(mixed_table, network, 0.7, rng)
        for cond in model.conditionals:
            assert np.allclose(cond.matrix.sum(axis=1), 1.0)
            assert (cond.matrix >= 0).all()

    def test_one_conditional_per_pair(self, mixed_table, rng):
        network = _chain_network(list(mixed_table.attribute_names))
        model = noisy_conditionals_general(mixed_table, network, 0.7, rng)
        assert len(model.conditionals) == network.d
        assert [c.child for c in model.conditionals] == list(
            network.attribute_order
        )

    def test_budget_charged_per_marginal(self, mixed_table, rng):
        network = _chain_network(list(mixed_table.attribute_names))
        accountant = PrivacyAccountant(0.7)
        noisy_conditionals_general(mixed_table, network, 0.7, rng, accountant)
        assert accountant.spent == pytest.approx(0.7)
        assert len(accountant.ledger) == network.d

    def test_overspend_detected(self, mixed_table, rng):
        network = _chain_network(list(mixed_table.attribute_names))
        accountant = PrivacyAccountant(0.5)
        with pytest.raises(PrivacyBudgetError):
            noisy_conditionals_general(mixed_table, network, 0.7, rng, accountant)

    def test_oracle_mode_is_exact(self, mixed_table, rng):
        network = _chain_network(list(mixed_table.attribute_names))
        model = noisy_conditionals_general(mixed_table, network, None, rng)
        # The root's conditional must equal the empirical marginal exactly.
        root = model.conditionals[0]
        truth = joint_distribution(mixed_table, [root.child])
        assert np.allclose(root.matrix[0], truth)

    def test_noise_shrinks_with_epsilon(self, mixed_table):
        network = _chain_network(list(mixed_table.attribute_names))
        truth = joint_distribution(mixed_table, [network.attribute_order[0]])

        def error(eps, seed):
            model = noisy_conditionals_general(
                mixed_table, network, eps, np.random.default_rng(seed)
            )
            return np.abs(model.conditionals[0].matrix[0] - truth).sum()

        loose = np.mean([error(0.05, s) for s in range(10)])
        tight = np.mean([error(10.0, s) for s in range(10)])
        assert tight < loose

    def test_invalid_epsilon(self, mixed_table, rng):
        network = _chain_network(list(mixed_table.attribute_names))
        with pytest.raises(ValueError):
            noisy_conditionals_general(mixed_table, network, -1.0, rng)


class TestJointCounter:
    def test_counts_match_direct_marginals(self, mixed_table):
        counter = JointCounter(mixed_table)
        names = list(mixed_table.attribute_names)
        pair = APPair.make(names[2], [names[0], names[1]])
        counts, sizes = counter.counts(pair)
        expected = marginal_counts(
            mixed_table, [name for name, _ in pair.parents] + [pair.child]
        )
        np.testing.assert_array_equal(counts, expected.astype(np.int64))
        assert counts.sum() == mixed_table.n
        assert sizes == tuple(
            mixed_table.attribute(name).size
            for name in [n for n, _ in pair.parents] + [pair.child]
        )

    def test_warm_groups_by_parent_set(self, mixed_table):
        """Pairs sharing a parent set are counted in one batched pass and
        each segment equals the per-pair scan."""
        names = list(mixed_table.attribute_names)
        shared = ((names[0], 0),)
        pairs = [
            APPair(names[1], shared),
            APPair(names[2], shared),
            APPair.make(names[0], []),
        ]
        counter = JointCounter(mixed_table)
        counter.warm(pairs)
        assert set(counter._counts) == {(p.child, p.parents) for p in pairs}
        for pair in pairs:
            counts, _ = counter.counts(pair)
            expected = marginal_counts(
                mixed_table, [n for n, _ in pair.parents] + [pair.child]
            )
            np.testing.assert_array_equal(counts, expected.astype(np.int64))

    def test_counts_memoized_and_readonly(self, mixed_table):
        counter = JointCounter(mixed_table)
        pair = APPair.make(mixed_table.attribute_names[1], [])
        first, _ = counter.counts(pair)
        second, _ = counter.counts(pair)
        assert first is second
        with pytest.raises(ValueError):
            first[0] = 99

    def test_generalized_parents(self, mixed_table):
        """Counts over taxonomy-generalized parents match bn.quality."""
        from repro.bn.quality import pair_joint_distribution

        pair = APPair("warm_flag", (("color", 1),))
        counter = JointCounter(mixed_table)
        counts, sizes = counter.counts(pair)
        expected, _child = pair_joint_distribution(
            mixed_table, "warm_flag", [("color", 1)]
        )
        np.testing.assert_allclose(counts / mixed_table.n, expected)
        assert sizes == (2, 2)

    def test_counter_for_wrong_table_rejected(self, mixed_table, binary_table, rng):
        network = _chain_network(list(mixed_table.attribute_names))
        with pytest.raises(ValueError, match="different table"):
            noisy_conditionals_general(
                mixed_table, network, 0.7, rng, counter=JointCounter(binary_table)
            )

    def test_batched_and_naive_models_identical(self, mixed_table):
        network = _chain_network(list(mixed_table.attribute_names))
        batched = noisy_conditionals_general(
            mixed_table, network, 0.7, np.random.default_rng(5)
        )
        naive = noisy_conditionals_general(
            mixed_table, network, 0.7, np.random.default_rng(5), batched=False
        )
        for a, b in zip(batched.conditionals, naive.conditionals):
            np.testing.assert_array_equal(a.matrix, b.matrix)


class TestFixedK:
    def test_first_k_derived_from_anchor(self, binary_table, rng):
        """Algorithm 1: pairs 1..k never touch the data directly."""
        k = 2
        network = greedy_bayes_fixed_k(binary_table, k, 1.0, "F", rng)
        accountant = PrivacyAccountant(0.7)
        model = noisy_conditionals_fixed_k(
            binary_table, network, k, 0.7, rng, accountant
        )
        # Only d - k marginals are charged.
        assert len(accountant.ledger) == binary_table.d - k
        assert accountant.spent == pytest.approx(0.7)
        assert len(model.conditionals) == binary_table.d

    def test_derived_conditionals_consistent_with_anchor(self, binary_table, rng):
        """The derived Pr*[X_1] must equal the anchor joint's marginal."""
        k = 2
        network = greedy_bayes_fixed_k(binary_table, k, 1.0, "F", rng)
        model = noisy_conditionals_fixed_k(binary_table, network, k, 5.0, rng)
        pairs = network.pairs
        root_cond = model.conditional_for(pairs[0].child)
        anchor_cond = model.conditional_for(pairs[k].child)
        # Rebuild the anchor joint: parents of pair k+1 are the first k
        # attributes; its conditional rows were derived from the same noisy
        # joint the root marginal came from — check the root is a proper
        # distribution and matches the anchor's parent marginal direction.
        assert np.allclose(root_cond.matrix.sum(), 1.0)

    def test_k_zero_charges_every_pair(self, binary_table, rng):
        network = _chain_network(list(binary_table.attribute_names))
        # Rebuild as independent structure for k=0.
        independent = BayesianNetwork(
            [APPair.make(name, []) for name in binary_table.attribute_names]
        )
        accountant = PrivacyAccountant(1.0)
        noisy_conditionals_fixed_k(
            binary_table, independent, 0, 1.0, rng, accountant
        )
        assert len(accountant.ledger) == binary_table.d

    def test_invalid_k(self, binary_table, rng):
        network = _chain_network(list(binary_table.attribute_names))
        with pytest.raises(ValueError):
            noisy_conditionals_fixed_k(binary_table, network, 99, 1.0, rng)

    def test_conditional_table_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            ConditionalTable(
                child="x",
                parents=(),
                parent_sizes=(),
                child_size=2,
                matrix=np.ones((2, 2)),
            )

    def test_conditional_for_unknown_child(self, binary_table, rng):
        network = _chain_network(list(binary_table.attribute_names))
        model = noisy_conditionals_general(binary_table, network, 1.0, rng)
        with pytest.raises(KeyError):
            model.conditional_for("nope")

    def test_conditional_for_is_indexed(self, binary_table, rng):
        # Lookups go through a precomputed child -> table dict, not a scan.
        network = _chain_network(list(binary_table.attribute_names))
        model = noisy_conditionals_general(binary_table, network, 1.0, rng)
        for conditional in model.conditionals:
            assert model.conditional_for(conditional.child) is conditional
        assert model._by_child.keys() == {
            t.child for t in model.conditionals
        }
