"""The central RNG fallback sink (repro.core.rng)."""

import numpy as np

from repro.core.rng import fallback_rng


def test_given_generator_is_returned_unchanged():
    rng = np.random.default_rng(42)
    assert fallback_rng(rng) is rng


def test_seeded_path_is_the_identity_for_draws():
    # Routing through fallback_rng must not perturb a seeded stream.
    direct = np.random.default_rng(7).random(5)
    routed = fallback_rng(np.random.default_rng(7)).random(5)
    assert np.array_equal(direct, routed)


def test_none_yields_fresh_generators():
    a = fallback_rng(None)
    b = fallback_rng()
    assert isinstance(a, np.random.Generator)
    assert isinstance(b, np.random.Generator)
    assert a is not b
