"""Statistical behaviour of exponential-mechanism structure selection.

These tests pin the *reason* the score functions matter: with the same
budget, selection through F/R finds better networks than through I, and
more budget means better networks — the mechanisms behind Figure 4.
"""

import numpy as np
import pytest

from repro.bn.quality import network_mutual_information
from repro.core.greedy_bayes import greedy_bayes_fixed_k, greedy_bayes_theta
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def nltcs():
    return load_dataset("nltcs", n=3000, seed=0)


def _mean_quality_fixed_k(table, score, epsilon1, seeds, k=1):
    values = []
    for seed in seeds:
        network = greedy_bayes_fixed_k(
            table, k, epsilon1, score=score,
            rng=np.random.default_rng(seed),
            first_attribute=table.attribute_names[0],
        )
        values.append(network_mutual_information(table, network))
    return float(np.mean(values))


class TestBudgetMonotonicity:
    def test_more_budget_better_networks(self, nltcs):
        seeds = range(8)
        starved = _mean_quality_fixed_k(nltcs, "F", 0.001, seeds)
        funded = _mean_quality_fixed_k(nltcs, "F", 5.0, seeds)
        assert funded > starved

    def test_high_budget_approaches_nonprivate(self, nltcs):
        best = _mean_quality_fixed_k(nltcs, "I", None, [0])
        funded = _mean_quality_fixed_k(nltcs, "F", 50.0, range(5))
        assert funded >= 0.9 * best


class TestScoreFunctionAdvantage:
    def test_F_beats_I_at_small_budget(self, nltcs):
        """The Figure 4 effect: at tight ε₁, F's smaller sensitivity finds
        strictly better structures on average."""
        seeds = range(10)
        with_f = _mean_quality_fixed_k(nltcs, "F", 0.05, seeds)
        with_i = _mean_quality_fixed_k(nltcs, "I", 0.05, seeds)
        assert with_f > with_i

    def test_R_beats_I_at_small_budget_general(self):
        table = load_dataset("br2000", n=3000, seed=0)
        first = table.attribute_names[0]

        def mean_quality(score):
            values = []
            for seed in range(8):
                network = greedy_bayes_theta(
                    table, 0.05, 0.3, 4.0, score=score,
                    rng=np.random.default_rng(seed), first_attribute=first,
                )
                values.append(network_mutual_information(table, network))
            return float(np.mean(values))

        assert mean_quality("R") > mean_quality("I")
