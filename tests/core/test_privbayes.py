"""End-to-end PrivBayes pipeline: modes, budgets, config validation."""

import numpy as np
import pytest

from repro.core.privbayes import PrivBayes, PrivBayesConfig
from repro.data.marginals import joint_distribution
from repro.dp.accountant import PrivacyAccountant, PrivacyBudgetError
from repro.infotheory.measures import total_variation_distance


class TestConfig:
    def test_defaults(self):
        config = PrivBayesConfig(epsilon=1.0)
        assert config.beta == pytest.approx(0.3)
        assert config.theta == pytest.approx(4.0)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            PrivBayesConfig(epsilon=0.0)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            PrivBayesConfig(epsilon=1.0, beta=1.0)

    def test_beta_zero_rejected_at_construction(self):
        # beta = 0 used to be accepted here and only fail deep inside
        # greedy_bayes_* with "epsilon1 must be positive".
        with pytest.raises(ValueError, match="beta must be in \\(0, 1\\)"):
            PrivBayesConfig(epsilon=1.0, beta=0.0)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError, match="k must be non-negative"):
            PrivBayesConfig(epsilon=1.0, k=-1)

    def test_k_rejected_in_general_mode(self):
        # k used to be silently ignored outside binary mode.
        with pytest.raises(ValueError, match="only used in binary mode"):
            PrivBayesConfig(epsilon=1.0, mode="general", k=2)

    def test_k_rejected_when_auto_resolves_to_general(self, mixed_table, rng):
        pipeline = PrivBayes(epsilon=1.0, k=2)  # auto mode: legal config
        with pytest.raises(ValueError, match="only used in binary mode"):
            pipeline.fit(mixed_table, rng=rng)

    def test_invalid_score(self):
        with pytest.raises(ValueError):
            PrivBayesConfig(epsilon=1.0, score="Z")

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            PrivBayesConfig(epsilon=1.0, mode="weird")

    def test_kwargs_override_config(self):
        pipeline = PrivBayes(PrivBayesConfig(epsilon=1.0), beta=0.5)
        assert pipeline.config.beta == pytest.approx(0.5)


class TestBinaryMode:
    def test_fit_sample_roundtrip(self, binary_table, rng):
        synthetic = PrivBayes(epsilon=1.0).fit_sample(binary_table, rng=rng)
        assert synthetic.n == binary_table.n
        assert synthetic.attribute_names == binary_table.attribute_names

    def test_budget_accounted(self, binary_table, rng):
        model = PrivBayes(epsilon=1.0, k=2).fit(binary_table, rng=rng)
        assert model.accountant.spent <= 1.0 + 1e-9
        assert model.accountant.spent == pytest.approx(1.0)

    def test_k_zero_gives_independent_network_and_full_budget(self, binary_table, rng):
        model = PrivBayes(epsilon=1.0, k=0).fit(binary_table, rng=rng)
        assert model.network.degree == 0
        # Footnote 6: no EM charge; everything goes to the marginals.
        labels = [label for label, _ in model.accountant.ledger]
        assert all(label.startswith("marginal") for label in labels)

    def test_theta_chooses_k_automatically(self, binary_table, rng):
        model = PrivBayes(epsilon=1.0).fit(binary_table, rng=rng)
        assert model.k is not None
        assert 0 <= model.k < binary_table.d

    def test_sample_smaller_n(self, binary_table, rng):
        model = PrivBayes(epsilon=1.0).fit(binary_table, rng=rng)
        assert model.sample(10, rng).n == 10

    def test_utility_improves_with_epsilon(self, binary_table):
        def error(eps, seed):
            rng = np.random.default_rng(seed)
            synthetic = PrivBayes(epsilon=eps).fit_sample(binary_table, rng=rng)
            total = 0.0
            for name in binary_table.attribute_names:
                total += total_variation_distance(
                    joint_distribution(binary_table, [name]),
                    joint_distribution(synthetic, [name]),
                )
            return total

        loose = np.mean([error(0.02, s) for s in range(6)])
        tight = np.mean([error(8.0, s) for s in range(6)])
        assert tight < loose

    def test_empty_table_rejected(self, rng):
        from repro.data.attribute import Attribute
        from repro.data.table import Table

        empty = Table([Attribute.binary("a")], {"a": np.array([], dtype=int)})
        with pytest.raises(ValueError, match="empty"):
            PrivBayes(epsilon=1.0).fit(empty, rng=rng)


class TestGeneralMode:
    def test_fit_sample_roundtrip(self, mixed_table, rng):
        synthetic = PrivBayes(epsilon=1.0).fit_sample(mixed_table, rng=rng)
        assert synthetic.n == mixed_table.n
        assert synthetic.attribute_names == mixed_table.attribute_names
        # Codes within domains.
        for attr in mixed_table.attributes:
            col = synthetic.column(attr.name)
            assert col.min() >= 0 and col.max() < attr.size

    def test_auto_mode_detection(self, binary_table, mixed_table, rng):
        binary_model = PrivBayes(epsilon=1.0).fit(binary_table, rng=rng)
        assert binary_model.k is not None  # binary path taken
        general_model = PrivBayes(epsilon=1.0).fit(mixed_table, rng=rng)
        assert general_model.k is None  # general path taken

    def test_generalize_flag(self, mixed_table, rng):
        synthetic = PrivBayes(epsilon=1.0, generalize=True).fit_sample(
            mixed_table, rng=rng
        )
        assert synthetic.n == mixed_table.n

    def test_budget_accounted(self, mixed_table, rng):
        model = PrivBayes(epsilon=0.8).fit(mixed_table, rng=rng)
        assert model.accountant.spent == pytest.approx(0.8)

    def test_F_rejected_in_general_mode(self, mixed_table, rng):
        with pytest.raises(ValueError, match="not computable"):
            PrivBayes(epsilon=1.0, score="F", mode="general").fit(
                mixed_table, rng=rng
            )


class TestOracles:
    def test_oracle_network_skips_em_charge(self, binary_table, rng):
        model = PrivBayes(epsilon=1.0, k=2, oracle_network=True).fit(
            binary_table, rng=rng
        )
        labels = [label for label, _ in model.accountant.ledger]
        assert all(label.startswith("marginal") for label in labels)

    def test_oracle_marginals_are_exact(self, binary_table, rng):
        model = PrivBayes(
            epsilon=1.0, k=1, oracle_marginals=True, first_attribute="a"
        ).fit(binary_table, rng=rng)
        root = model.noisy.conditionals[0]
        truth = joint_distribution(binary_table, [root.child])
        # Root marginal equals the exact empirical marginal (derived from
        # the noiseless anchor joint, which marginalizes exactly).
        assert np.allclose(root.matrix[0], truth)
        anchor = model.noisy.conditionals[model.k]
        assert np.allclose(anchor.matrix.sum(axis=1), 1.0)

    def test_oracles_beat_private_pipeline(self, binary_table):
        """BestMarginal should dominate PrivBayes on marginal error."""

        def error(oracle_marginals, seed):
            rng = np.random.default_rng(seed)
            synthetic = PrivBayes(
                epsilon=0.05, oracle_marginals=oracle_marginals
            ).fit_sample(binary_table, rng=rng)
            total = 0.0
            for name in binary_table.attribute_names:
                total += total_variation_distance(
                    joint_distribution(binary_table, [name]),
                    joint_distribution(synthetic, [name]),
                )
            return total

        private = np.mean([error(False, s) for s in range(8)])
        oracle = np.mean([error(True, s) for s in range(8)])
        assert oracle <= private + 1e-6


class TestExternalAccountant:
    """PrivBayes.fit(..., accountant=...): cumulative ε across fits."""

    def test_fit_charges_whole_epsilon_into_external_ledger(self, binary_table):
        shared = PrivacyAccountant(2.5)
        PrivBayes(epsilon=1.0).fit(
            binary_table, np.random.default_rng(0), accountant=shared
        )
        assert shared.spent == pytest.approx(1.0)
        assert [label for label, _ in shared.ledger] == ["privbayes-fit"]

    def test_repeated_fits_compose_and_then_refuse(self, binary_table):
        shared = PrivacyAccountant(2.0)
        pipeline = PrivBayes(epsilon=1.0)
        pipeline.fit(binary_table, np.random.default_rng(0), accountant=shared)
        pipeline.fit(binary_table, np.random.default_rng(1), accountant=shared)
        assert shared.remaining == pytest.approx(0.0, abs=1e-9)
        with pytest.raises(PrivacyBudgetError):
            pipeline.fit(
                binary_table, np.random.default_rng(2), accountant=shared
            )
        # The refused fit left no partial charge behind.
        assert len(shared.ledger) == 2

    def test_refusal_happens_before_counts(self, binary_table):
        """An unaffordable fit must not touch the data at all."""

        class TripwireTable:
            """Delegates schema probes; explodes on any data access."""

            def __init__(self, inner):
                self._inner = inner
                self.d = inner.d
                self.n = inner.n

            def __getattr__(self, name):
                raise AssertionError(
                    f"fit accessed table.{name} after the budget refusal"
                )

        exhausted = PrivacyAccountant(1.0)
        exhausted.spend("earlier-release", 1.0)
        with pytest.raises(PrivacyBudgetError):
            PrivBayes(epsilon=0.5, mode="binary").fit(
                TripwireTable(binary_table),
                np.random.default_rng(0),
                accountant=exhausted,
            )

    def test_external_accountant_is_bit_identical_to_default(self, binary_table):
        """The reservation consumes no randomness: same seed, same release."""
        plain = PrivBayes(epsilon=1.0).fit_sample(
            binary_table, np.random.default_rng(7)
        )
        shared = PrivacyAccountant(4.0)
        ledgered = PrivBayes(epsilon=1.0).fit_sample(
            binary_table, np.random.default_rng(7), accountant=shared
        )
        for name in binary_table.attribute_names:
            np.testing.assert_array_equal(
                plain.column(name), ledgered.column(name)
            )

    def test_model_keeps_its_own_per_phase_ledger(self, binary_table):
        shared = PrivacyAccountant(3.0)
        model = PrivBayes(epsilon=1.0).fit(
            binary_table, np.random.default_rng(0), accountant=shared
        )
        assert model.accountant is not shared
        assert model.accountant.total_epsilon == 1.0
        # Internal per-phase charges exhaust the fit's own ε as always.
        assert model.accountant.remaining == pytest.approx(0.0, abs=1e-6)

    def test_fit_sample_forwards_accountant(self, binary_table):
        shared = PrivacyAccountant(1.5)
        PrivBayes(epsilon=1.0).fit_sample(
            binary_table, np.random.default_rng(0), accountant=shared
        )
        # Sampling is post-processing: only the fit's reservation landed.
        assert shared.spent == pytest.approx(1.0)
