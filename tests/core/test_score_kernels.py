"""The batched score-kernel layer: bit-identity, validation, parameters.

The kernels promise *bit-identical* floats to the per-candidate reference
implementations on every input — these tests enforce that with
``np.array_equal`` (never ``approx``) across randomized grids, the
enumeration/DP crossover, and the degenerate edges (zero-count cells,
``n = 0``, ``n = 1``, empty batches, forced one-sided candidates).

The ``F`` cross-check grids run under **both** kernel backends (the
pure-NumPy blocked DP and the compiled C frontier merge) whenever a C
toolchain is available, so the native tier is held to the exact same
bit-identity contract — not a looser "close enough" one.  Environments
without a compiler skip the native side cleanly and still enforce the
NumPy contract in full.
"""

import numpy as np
import pytest

from repro.core import kernel_backend
from repro.core.score_kernels import (
    DEFAULT_ENUM_MAX_CELLS,
    MaskCache,
    score_F_batch,
    score_F_dp,
    score_I_batch,
    score_I_segments,
    score_R_batch,
    score_R_segments,
    validate_F_counts,
)
from repro.core.scores import (
    score_F,
    score_F_bruteforce,
    score_I,
    score_R,
)
from repro.infotheory.measures import mutual_information


def _native_available() -> bool:
    try:
        kernel_backend.load_native()
        return True
    except kernel_backend.KernelBackendError:
        return False


#: Both kernel backends; the native side skips (not silently passes) when
#: the environment has no C toolchain.
BACKENDS = [
    "numpy",
    pytest.param(
        "native",
        marks=pytest.mark.skipif(
            not _native_available(), reason="no C toolchain for native kernel"
        ),
    ),
]


def _random_batch(rng, cells, count, zero_heavy=False):
    """Random integer count matrices with a shared total n per candidate."""
    high = 4 if zero_heavy else 9
    matrices = rng.integers(0, high, size=(count, cells, 2)).astype(np.int64)
    if zero_heavy:
        # Knock whole sides out so one-sided folding and empty cells occur.
        kill = rng.random(size=(count, cells, 2)) < 0.5
        matrices[kill] = 0
    totals = matrices.reshape(count, -1).sum(axis=1)
    n = int(totals.max()) + 1
    # Top up the first cell so every candidate sums to the same n.
    matrices[:, 0, 0] += n - totals
    return matrices, n


@pytest.mark.parametrize("backend", BACKENDS)
class TestBlockedKernelCrossCheck:
    @pytest.mark.parametrize("cells", list(range(1, 21)))
    def test_kernel_matches_dp_domains_1_to_20(self, cells, backend):
        """Blocked kernel == per-candidate DP, bitwise, domains 1..20."""
        rng = np.random.default_rng(1000 + cells)
        matrices, n = _random_batch(rng, cells, count=13)
        got = score_F_batch(matrices, n, backend=backend)
        ref = np.array([score_F_dp(m.reshape(-1), n) for m in matrices])
        assert np.array_equal(got, ref)
        # Forcing the DP regime on small domains changes nothing either
        # (under "native" this is where the C kernel actually runs).
        blocked = score_F_batch(matrices, n, enum_max_cells=0, backend=backend)
        assert np.array_equal(blocked, ref)

    @pytest.mark.parametrize("cells", [1, 2, 3, 5, 8, 11, 13, 14])
    def test_kernel_matches_bruteforce(self, cells, backend):
        """Kernel == exponential-time oracle wherever the oracle is feasible."""
        rng = np.random.default_rng(2000 + cells)
        matrices, n = _random_batch(rng, cells, count=5)
        got = score_F_batch(matrices, n, enum_max_cells=0, backend=backend)
        oracle = np.array(
            [score_F_bruteforce(m.reshape(-1), n) for m in matrices]
        )
        assert np.array_equal(got, oracle)

    @pytest.mark.parametrize("cells", [4, 9, 15, 18])
    def test_zero_heavy_counts(self, cells, backend):
        """Zero-count cells and fully one-sided candidates stay exact."""
        rng = np.random.default_rng(3000 + cells)
        matrices, n = _random_batch(rng, cells, count=17, zero_heavy=True)
        got = score_F_batch(matrices, n, enum_max_cells=0, backend=backend)
        ref = np.array([score_F_dp(m.reshape(-1), n) for m in matrices])
        assert np.array_equal(got, ref)

    def test_all_one_sided_candidate(self, backend):
        """Every cell forced: the DP loop never runs, bases decide alone."""
        matrices = np.array(
            [[[5, 0], [0, 3], [7, 0], [0, 5]]], dtype=np.int64
        )
        n = 20
        got = score_F_batch(matrices, n, enum_max_cells=0, backend=backend)
        assert np.array_equal(
            got, np.array([score_F_dp(matrices[0].reshape(-1), n)])
        )

    def test_n_zero(self, backend):
        matrices = np.zeros((3, 15, 2), dtype=np.int64)
        assert np.array_equal(
            score_F_batch(matrices, 0, backend=backend), np.full(3, -0.5)
        )
        assert score_F_dp(matrices[0].reshape(-1), 0) == -0.5

    def test_n_one(self, backend):
        matrices = np.zeros((2, 14, 2), dtype=np.int64)
        matrices[0, 3, 0] = 1
        matrices[1, 9, 1] = 1
        got = score_F_batch(matrices, 1, enum_max_cells=0, backend=backend)
        ref = np.array([score_F_dp(m.reshape(-1), 1) for m in matrices])
        assert np.array_equal(got, ref)

    def test_empty_batch(self, backend):
        batch = np.zeros((0, 13, 2), dtype=np.int64)
        assert score_F_batch(batch, 7, backend=backend).size == 0

    def test_single_flat_joint_promoted(self, backend):
        flat = np.array([4, 1, 0, 3, 2, 2], dtype=np.int64)
        assert score_F_batch(flat, 12, backend=backend).shape == (1,)
        assert score_F_batch(flat, 12, backend=backend)[0] == score_F_dp(
            flat, 12
        )

    def test_huge_n_wide_domain(self, backend):
        """n too wide for the NumPy path's packed bit fields stays exact.

        The NumPy side falls back to the per-candidate reference DP; the
        native side needs no fallback (its coordinates are never packed).
        Either way the scores match the reference bitwise.
        """
        rng = np.random.default_rng(4000)
        matrices, small_n = _random_batch(rng, 18, count=3)
        n = (1 << 40) + small_n
        matrices[:, 0, 0] += n - small_n
        got = score_F_batch(matrices, n, backend=backend)
        ref = np.array([score_F_dp(m.reshape(-1), n) for m in matrices])
        assert np.array_equal(got, ref)

    def test_scalar_wrapper_delegates(self, backend):
        rng = np.random.default_rng(7)
        matrices, n = _random_batch(rng, 16, count=4)
        for m in matrices:
            assert score_F(m.reshape(-1), n) == score_F_dp(m.reshape(-1), n)
            assert score_F_batch(m.reshape(-1), n, backend=backend)[
                0
            ] == score_F_dp(m.reshape(-1), n)


class TestEnumerationThreshold:
    """The crossover is a speed knob only — every value scores identically."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("threshold", [0, 1, 3, 7, 12, 16, 30])
    def test_any_threshold_is_bit_identical(self, threshold, backend):
        rng = np.random.default_rng(42)
        matrices, n = _random_batch(rng, 13, count=9)
        reference = score_F_batch(
            matrices, n, enum_max_cells=DEFAULT_ENUM_MAX_CELLS
        )
        got = score_F_batch(
            matrices, n, enum_max_cells=threshold, backend=backend
        )
        assert np.array_equal(got, reference)

    def test_unknown_backend_rejected(self):
        matrices = np.zeros((1, 2, 2), dtype=np.int64)
        with pytest.raises(ValueError, match="backend"):
            score_F_batch(matrices, 0, backend="fortran")

    @pytest.mark.parametrize("block_cells", [1, 2, 5, 12])
    def test_any_block_width_is_bit_identical(self, block_cells):
        rng = np.random.default_rng(43)
        matrices, n = _random_batch(rng, 17, count=9)
        reference = score_F_batch(matrices, n, enum_max_cells=0)
        got = score_F_batch(
            matrices, n, enum_max_cells=0, block_cells=block_cells
        )
        assert np.array_equal(got, reference)

    def test_invalid_parameters_rejected(self):
        matrices = np.zeros((1, 2, 2), dtype=np.int64)
        with pytest.raises(ValueError, match="enum_max_cells"):
            score_F_batch(matrices, 0, enum_max_cells=-1)
        with pytest.raises(ValueError, match="block_cells"):
            score_F_batch(matrices, 0, block_cells=0)

    def test_private_mask_cache_usable(self):
        rng = np.random.default_rng(44)
        matrices, n = _random_batch(rng, 6, count=3)
        cache = MaskCache()
        got = score_F_batch(matrices, n, mask_cache=cache)
        assert np.array_equal(
            got, np.array([score_F_dp(m.reshape(-1), n) for m in matrices])
        )
        assert 6 in cache._masks


class TestValidationUnified:
    """Batched and scalar paths reject malformed counts identically."""

    def test_odd_length_rejected_everywhere(self):
        with pytest.raises(ValueError, match="binary child"):
            score_F(np.ones(3), 3)
        with pytest.raises(ValueError, match="binary child"):
            validate_F_counts(np.ones((2, 3)), 3)

    def test_non_integer_rejected_everywhere(self):
        with pytest.raises(ValueError, match="integer"):
            score_F(np.array([0.5, 0.5]), 1)
        with pytest.raises(ValueError, match="integer"):
            score_F_batch(np.array([[0.5, 0.5], [1.0, 0.0]]), 1)

    def test_wrong_total_rejected_everywhere(self):
        with pytest.raises(ValueError, match="sum"):
            score_F(np.array([1.0, 1.0]), 5)
        with pytest.raises(ValueError, match="sum"):
            score_F_dp(np.array([1.0, 1.0]), 5)
        # The batched path names the first offending candidate's total.
        batch = np.array([[2.0, 3.0], [1.0, 1.0]])
        with pytest.raises(ValueError, match="counts sum to 2"):
            score_F_batch(batch, 5)

    def test_wrong_total_checked_per_candidate_in_groups(self):
        """The grouped path validates each candidate, not just the first."""
        batch = np.array([[3.0, 2.0], [4.0, 2.0]])
        with pytest.raises(ValueError, match="counts sum to 6"):
            score_F_batch(batch, 5)

    def test_float_integers_accepted(self):
        flat = np.array([4.0, 1.0, 3.0, 2.0])
        assert score_F_batch(flat, 10)[0] == score_F_dp(flat, 10)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="flat joints"):
            validate_F_counts(np.zeros((2, 3, 4)), 0)


class TestIRBatchKernels:
    def test_score_I_batch_matches_scalar(self):
        rng = np.random.default_rng(5)
        for child_size in (2, 3, 5):
            joints = rng.dirichlet(
                np.ones(4 * child_size), size=11
            )
            got = score_I_batch(joints, child_size)
            ref = np.array(
                [mutual_information(j, child_size) for j in joints]
            )
            assert np.array_equal(got, ref)
            assert score_I(joints[0], child_size) == ref[0]

    def test_score_R_batch_matches_scalar(self):
        rng = np.random.default_rng(6)
        for child_size in (2, 4):
            joints = rng.dirichlet(np.ones(6 * child_size), size=9)
            got = score_R_batch(joints, child_size)
            for j, value in zip(joints, got):
                assert score_R(j, child_size) == value

    def test_sparse_joints_with_zero_cells(self):
        rng = np.random.default_rng(8)
        joints = rng.dirichlet(np.ones(12), size=8)
        joints[joints < 0.08] = 0.0
        got_i = score_I_batch(joints, 3)
        got_r = score_R_batch(joints, 3)
        for j, vi, vr in zip(joints, got_i, got_r):
            assert mutual_information(j, 3) == vi
            assert score_R(j, 3) == vr

    def test_all_zero_joint(self):
        """n = 0 tables produce all-zero joints; kernels must not blow up."""
        joints = np.zeros((2, 4, 2))
        assert np.array_equal(
            score_I_batch(joints, 2),
            np.array([mutual_information(np.zeros(8), 2)] * 2),
        )
        assert np.array_equal(
            score_R_batch(joints, 2),
            np.array([score_R(np.zeros(8), 2)] * 2),
        )

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="joints"):
            score_I_batch(np.zeros((2, 3, 4)), 2)

    @staticmethod
    def _ragged_batch(rng, count):
        """Concatenated flat joints of mixed child sizes and parent domains."""
        parts, offsets, lengths, sizes = [], [], [], []
        position = 0
        for _ in range(count):
            child_size = int(rng.integers(2, 6))
            parent_dom = int(rng.integers(1, 9))
            joint = rng.dirichlet(np.ones(parent_dom * child_size))
            joint[joint < 0.05] = 0.0
            parts.append(joint)
            offsets.append(position)
            lengths.append(joint.size)
            sizes.append(child_size)
            position += joint.size
        return np.concatenate(parts), offsets, lengths, sizes

    def test_score_I_segments_matches_scalar(self):
        rng = np.random.default_rng(9)
        flat, offsets, lengths, sizes = self._ragged_batch(rng, 60)
        got = score_I_segments(flat, offsets, lengths, sizes)
        ref = np.array(
            [
                mutual_information(flat[o : o + l], cs)
                for o, l, cs in zip(offsets, lengths, sizes)
            ]
        )
        assert np.array_equal(got, ref)

    def test_score_R_segments_matches_scalar(self):
        rng = np.random.default_rng(10)
        flat, offsets, lengths, sizes = self._ragged_batch(rng, 40)
        got = score_R_segments(flat, offsets, lengths, sizes)
        ref = np.array(
            [
                score_R(flat[o : o + l], cs)
                for o, l, cs in zip(offsets, lengths, sizes)
            ]
        )
        assert np.array_equal(got, ref)

    def test_segments_empty_batch(self):
        assert score_I_segments(np.zeros(0), [], [], []).size == 0
        assert score_R_segments(np.zeros(0), [], [], []).size == 0

    def test_segments_misaligned_args_rejected(self):
        with pytest.raises(ValueError, match="align"):
            score_I_segments(np.zeros(4), [0], [4, 0], [2])

    def test_segments_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="bounds"):
            score_I_segments(np.zeros(4), [2], [4], [2])


class TestEngineIntegration:
    """The scorer routes every domain size through the kernels, bit-exact."""

    @pytest.fixture()
    def wide_binary_table(self):
        from repro.data.attribute import Attribute
        from repro.data.table import Table

        rng = np.random.default_rng(123)
        names = [f"x{i}" for i in range(8)]
        columns = {
            name: (rng.random(400) < rng.uniform(0.15, 0.85)).astype(np.int64)
            for name in names
        }
        return Table([Attribute.binary(name) for name in names], columns)

    def test_large_domain_f_batch_matches_reference(self, wide_binary_table):
        """Parent domains of 32 and 64 cells (> enum threshold) through
        score_batch equal the non-incremental per-candidate path."""
        import itertools

        from repro.core.scoring import CandidateScorer

        table = wide_binary_table
        names = list(table.attribute_names)
        batched = CandidateScorer(table, "F")
        reference = CandidateScorer(table, "F", incremental=False)
        for width in (5, 6):
            candidates = []
            for parents in itertools.combinations(names[:-1], width):
                candidates.append(
                    (names[-1], tuple((p, 0) for p in parents))
                )
            got = batched.score_batch(candidates)
            ref = np.array([reference(c, p) for c, p in candidates])
            assert np.array_equal(got, ref)

    def test_f_enum_max_cells_forwarded(self, wide_binary_table):
        from repro.core.scoring import CandidateScorer

        table = wide_binary_table
        names = list(table.attribute_names)
        default = CandidateScorer(table, "F")
        forced_dp = CandidateScorer(table, "F", f_enum_max_cells=0)
        candidates = [
            (names[-1], tuple((p, 0) for p in names[:3])),
            (names[-2], tuple((p, 0) for p in names[:3])),
        ]
        assert forced_dp.f_enum_max_cells == 0
        assert np.array_equal(
            default.score_batch(candidates), forced_dp.score_batch(candidates)
        )

    def test_pairwise_mi_batch_matches_direct(self, wide_binary_table):
        from repro.bn.structure_search import pairwise_mutual_information
        from repro.infotheory.measures import mutual_information_from_table

        weights = pairwise_mutual_information(wide_binary_table)
        for (a, b), value in weights.items():
            assert value == mutual_information_from_table(
                wide_binary_table, b, [a]
            )

    def test_network_mi_group_path_matches_pairwise(self, wide_binary_table):
        from repro.bn.network import APPair, BayesianNetwork
        from repro.bn.quality import (
            network_mutual_information,
            pair_joint_distribution,
        )
        from repro.core.scoring import MutualInformationCache

        names = list(wide_binary_table.attribute_names)
        # A fan-out network: many children share the same parent set.
        pairs = [APPair.make(names[0], [])]
        pairs += [APPair.make(c, [names[0]]) for c in names[1:5]]
        pairs += [APPair.make(c, [names[0], names[1]]) for c in names[5:]]
        network = BayesianNetwork(pairs)
        expected = 0.0
        for pair in network:
            if pair.parents:
                joint, child_size = pair_joint_distribution(
                    wide_binary_table, pair.child, pair.parents
                )
                expected += mutual_information(joint, child_size)
        got_plain = network_mutual_information(wide_binary_table, network)
        cache = MutualInformationCache(wide_binary_table)
        got_cached = network_mutual_information(
            wide_binary_table, network, mi_cache=cache
        )
        assert got_plain == expected
        assert got_cached == expected
