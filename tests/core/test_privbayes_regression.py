"""Golden-fingerprint regression: the engine refactors are bit-exact.

The fingerprints below were recorded from the pre-refactor (seed) pipeline.
Neither scoring, parent-set enumeration, nor contingency counting consumes
randomness, so the incremental scoring engine (PR 1) and the batched
distribution-learning / cached-CDF sampling engine must reproduce the exact
RNG draw sequence — and therefore the exact networks, noisy conditionals,
and synthetic tuples — of the original per-pair/per-call code.  Any drift
in candidate enumeration order, score floats, count integers, selection
sensitivity, or CDF inversion changes these hashes.
"""

import hashlib

import numpy as np
import pytest

from repro.core.noisy_conditionals import (
    JointCounter,
    noisy_conditionals_fixed_k,
    noisy_conditionals_general,
)
from repro.core.privbayes import PrivBayes
from repro.datasets import load_dataset


def _fingerprint(model):
    structure = hashlib.sha256()
    full = hashlib.sha256()
    for pair in model.network:
        blob = repr((pair.child, pair.parents)).encode()
        structure.update(blob)
        full.update(blob)
    for conditional in model.noisy.conditionals:
        full.update(conditional.child.encode())
        full.update(np.ascontiguousarray(conditional.matrix).tobytes())
    return structure.hexdigest(), full.hexdigest()


def _table_fingerprint(table):
    digest = hashlib.sha256()
    for name in table.attribute_names:
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(table.column(name)).tobytes())
    return digest.hexdigest()


GOLDEN_BINARY = (
    "4431772099da4586936a28f2110d36264edab1da91d59d65115b89ecf41f1b9f",
    "126bd73a0afa648001913fdfa7cf7d25935a17605a2d29d835a77b41a25a1fab",
)

GOLDEN_GENERAL = (
    "0c7746a3aef5153d62de18e6ccd1ef984c5a2751a56f8a9ae1bbef303c96992f",
    "fded50610628ed06c5d61adc07598addd7b5d6474678fcabbe8c9d349c650c22",
)

#: model.sample(500, default_rng(777)) from the GOLDEN_BINARY model.
GOLDEN_BINARY_SAMPLE = (
    "f5875a3c11b0f81afc8d845eaea55927c5b57e8f5bc6166653114529e09f56c9"
)

#: Two successive model.sample(300, ...) calls sharing default_rng(2024):
#: the second draw batch runs entirely off the cached row CDFs.
GOLDEN_BINARY_SAMPLE_SEQ = (
    "b492ced861842c9503dcfe204001d3cf6710d8ed76d159fd439faadd9ad4cc56",
    "6059707c4ff62a2bb135ec5c19ece9dcb3b843cc81af13ac3e78124136933b67",
)

#: model.sample(400, default_rng(42)) from the GOLDEN_GENERAL model.
GOLDEN_GENERAL_SAMPLE = (
    "405bca60559aebccdf029042dd4bdf7210c2361df7684aeeb5fb727fe3d1fe55"
)

#: End-to-end fit_sample fingerprints (fit and sample share one generator).
GOLDEN_BINARY_FIT_SAMPLE = (
    "634ed17064e58969e948475824f849eae5d62a6d6d6453f4f02483cf0589555e"
)
GOLDEN_GENERAL_FIT_SAMPLE = (
    "65a62b4e7d2b423769fa2e4da917fb11132d3fefbe324248a70bfd197b5bda6f"
)


def test_binary_mode_matches_seed_pipeline():
    table = load_dataset("nltcs", n=800, seed=3)
    model = PrivBayes(
        epsilon=1.0, k=2, first_attribute=table.attribute_names[0]
    ).fit(table, rng=np.random.default_rng(1234))
    assert _fingerprint(model) == GOLDEN_BINARY


def test_general_mode_matches_seed_pipeline():
    table = load_dataset("adult", n=1500, seed=5)
    model = PrivBayes(epsilon=4.0, theta=2.0, generalize=True).fit(
        table, rng=np.random.default_rng(99)
    )
    fingerprint = _fingerprint(model)
    assert fingerprint == GOLDEN_GENERAL
    # Sanity: the general run actually exercises multi-parent candidates.
    assert max(pair.degree for pair in model.network) >= 2


def test_binary_mode_matches_seed_with_shared_cache():
    from repro.core.scoring import ScoringCache

    table = load_dataset("nltcs", n=800, seed=3)
    cache = ScoringCache()
    for _ in range(2):  # second fit runs entirely off the memo
        model = PrivBayes(
            epsilon=1.0, k=2, first_attribute=table.attribute_names[0]
        ).fit(table, rng=np.random.default_rng(1234), scoring_cache=cache)
        assert _fingerprint(model) == GOLDEN_BINARY


def _golden_binary_model(scoring_cache=None):
    table = load_dataset("nltcs", n=800, seed=3)
    return PrivBayes(
        epsilon=1.0, k=2, first_attribute=table.attribute_names[0]
    ).fit(table, rng=np.random.default_rng(1234), scoring_cache=scoring_cache)


def test_sampling_matches_seed_pipeline():
    """Cached-CDF sampling (with the binary fast path) is bit-exact."""
    model = _golden_binary_model()
    synthetic = model.sample(500, np.random.default_rng(777))
    assert _table_fingerprint(synthetic) == GOLDEN_BINARY_SAMPLE


def test_repeated_sampling_runs_off_cached_cdfs():
    """Draws 2..N reuse the cached row CDFs and stay bit-identical."""
    model = _golden_binary_model()
    rng = np.random.default_rng(2024)
    first = model.sample(300, rng)
    # The second call must find every conditional's CDF already cached.
    cached = [
        getattr(cond, "_row_cdfs", None) for cond in model.noisy.conditionals
    ]
    assert all(c is not None for c in cached)
    second = model.sample(300, rng)
    for cond, before in zip(model.noisy.conditionals, cached):
        assert cond.row_cdfs is before  # same object: no recomputation
    assert _table_fingerprint(first) == GOLDEN_BINARY_SAMPLE_SEQ[0]
    assert _table_fingerprint(second) == GOLDEN_BINARY_SAMPLE_SEQ[1]


def test_general_sampling_matches_seed_pipeline():
    table = load_dataset("adult", n=1500, seed=5)
    model = PrivBayes(epsilon=4.0, theta=2.0, generalize=True).fit(
        table, rng=np.random.default_rng(99)
    )
    synthetic = model.sample(400, np.random.default_rng(42))
    assert _table_fingerprint(synthetic) == GOLDEN_GENERAL_SAMPLE


def test_fit_sample_matches_seed_pipeline():
    """The full pipeline — batched learning + cached sampling — is pinned."""
    table = load_dataset("nltcs", n=800, seed=3)
    synthetic = PrivBayes(
        epsilon=1.0, k=2, first_attribute=table.attribute_names[0]
    ).fit_sample(table, rng=np.random.default_rng(555))
    assert _table_fingerprint(synthetic) == GOLDEN_BINARY_FIT_SAMPLE

    table_g = load_dataset("adult", n=1500, seed=5)
    synthetic_g = PrivBayes(epsilon=4.0, theta=2.0, generalize=True).fit_sample(
        table_g, rng=np.random.default_rng(556), n=600
    )
    assert _table_fingerprint(synthetic_g) == GOLDEN_GENERAL_FIT_SAMPLE


def test_batched_distribution_learning_matches_naive_path():
    """batched / shared-counter / per-pair paths emit identical matrices."""
    table = load_dataset("nltcs", n=800, seed=3)
    network = _golden_binary_model().network
    variants = [
        dict(batched=False),                      # seed per-pair scan
        dict(batched=True),                       # fresh grouped counter
        dict(counter=JointCounter(table)),        # caller-shared counter
    ]
    models = [
        noisy_conditionals_fixed_k(
            table, network, 2, 0.7, np.random.default_rng(31), **kwargs
        )
        for kwargs in variants
    ]
    for other in models[1:]:
        for a, b in zip(models[0].conditionals, other.conditionals):
            assert a.child == b.child
            np.testing.assert_array_equal(a.matrix, b.matrix)


def test_shared_counter_reused_across_fits_is_bit_exact():
    """A warm JointCounter (second fit scans no data) changes nothing."""
    table = load_dataset("adult", n=1500, seed=5)
    model = PrivBayes(epsilon=4.0, theta=2.0, generalize=True).fit(
        table, rng=np.random.default_rng(99)
    )
    counter = JointCounter(table)
    reference = noisy_conditionals_general(
        table, model.network, 1.3, np.random.default_rng(8), batched=False
    )
    for _ in range(2):  # second pass hits the count memo for every pair
        again = noisy_conditionals_general(
            table, model.network, 1.3, np.random.default_rng(8), counter=counter
        )
        for a, b in zip(reference.conditionals, again.conditionals):
            np.testing.assert_array_equal(a.matrix, b.matrix)
