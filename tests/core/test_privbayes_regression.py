"""Golden-fingerprint regression: the scoring refactor is bit-exact.

The fingerprints below were recorded from the pre-refactor (seed) pipeline.
Scoring consumes no randomness, so the incremental scoring engine must
reproduce the exact RNG draw sequence — and therefore the exact networks
and noisy conditionals — of the original per-round rescoring loop.  Any
drift in candidate enumeration order, score floats, or selection
sensitivity changes these hashes.
"""

import hashlib

import numpy as np
import pytest

from repro.core.privbayes import PrivBayes
from repro.datasets import load_dataset


def _fingerprint(model):
    structure = hashlib.sha256()
    full = hashlib.sha256()
    for pair in model.network:
        blob = repr((pair.child, pair.parents)).encode()
        structure.update(blob)
        full.update(blob)
    for conditional in model.noisy.conditionals:
        full.update(conditional.child.encode())
        full.update(np.ascontiguousarray(conditional.matrix).tobytes())
    return structure.hexdigest(), full.hexdigest()


GOLDEN_BINARY = (
    "4431772099da4586936a28f2110d36264edab1da91d59d65115b89ecf41f1b9f",
    "126bd73a0afa648001913fdfa7cf7d25935a17605a2d29d835a77b41a25a1fab",
)

GOLDEN_GENERAL = (
    "0c7746a3aef5153d62de18e6ccd1ef984c5a2751a56f8a9ae1bbef303c96992f",
    "fded50610628ed06c5d61adc07598addd7b5d6474678fcabbe8c9d349c650c22",
)


def test_binary_mode_matches_seed_pipeline():
    table = load_dataset("nltcs", n=800, seed=3)
    model = PrivBayes(
        epsilon=1.0, k=2, first_attribute=table.attribute_names[0]
    ).fit(table, rng=np.random.default_rng(1234))
    assert _fingerprint(model) == GOLDEN_BINARY


def test_general_mode_matches_seed_pipeline():
    table = load_dataset("adult", n=1500, seed=5)
    model = PrivBayes(epsilon=4.0, theta=2.0, generalize=True).fit(
        table, rng=np.random.default_rng(99)
    )
    fingerprint = _fingerprint(model)
    assert fingerprint == GOLDEN_GENERAL
    # Sanity: the general run actually exercises multi-parent candidates.
    assert max(pair.degree for pair in model.network) >= 2


def test_binary_mode_matches_seed_with_shared_cache():
    from repro.core.scoring import ScoringCache

    table = load_dataset("nltcs", n=800, seed=3)
    cache = ScoringCache()
    for _ in range(2):  # second fit runs entirely off the memo
        model = PrivBayes(
            epsilon=1.0, k=2, first_attribute=table.attribute_names[0]
        ).fit(table, rng=np.random.default_rng(1234), scoring_cache=cache)
        assert _fingerprint(model) == GOLDEN_BINARY
