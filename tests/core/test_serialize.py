"""Model serialization: JSON round trips, resampling equivalence."""

import json

import numpy as np
import pytest

from repro.core.privbayes import PrivBayes
from repro.core.sampler import sample_synthetic
from repro.core.serialize import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.data.marginals import joint_distribution


@pytest.fixture
def fitted(mixed_table, rng):
    model = PrivBayes(epsilon=1.0, generalize=True).fit(mixed_table, rng=rng)
    return model, mixed_table


class TestRoundTrip:
    def test_dict_roundtrip_preserves_structure(self, fitted):
        model, table = fitted
        data = model_to_dict(model.noisy, table.attributes)
        restored, attributes = model_from_dict(data)
        assert restored.network == model.noisy.network
        assert [a.name for a in attributes] == list(table.attribute_names)

    def test_dict_roundtrip_preserves_conditionals(self, fitted):
        model, table = fitted
        restored, _ = model_from_dict(model_to_dict(model.noisy, table.attributes))
        for original, loaded in zip(model.noisy.conditionals, restored.conditionals):
            assert original.child == loaded.child
            assert original.parents == loaded.parents
            assert np.allclose(original.matrix, loaded.matrix)

    def test_file_roundtrip(self, fitted, tmp_path):
        model, table = fitted
        path = tmp_path / "model.json"
        save_model(model.noisy, table.attributes, path)
        restored, attributes = load_model(path)
        assert restored.network == model.noisy.network

    def test_taxonomies_survive(self, fitted, tmp_path):
        model, table = fitted
        path = tmp_path / "model.json"
        save_model(model.noisy, table.attributes, path)
        _, attributes = load_model(path)
        color = next(a for a in attributes if a.name == "color")
        assert color.taxonomy is not None
        assert color.taxonomy.height == table.attribute("color").taxonomy.height
        assert (
            color.taxonomy.leaf_to_level(1).tolist()
            == table.attribute("color").taxonomy.leaf_to_level(1).tolist()
        )

    def test_json_is_plain(self, fitted):
        model, table = fitted
        text = json.dumps(model_to_dict(model.noisy, table.attributes))
        assert isinstance(text, str)  # no numpy leakage

    def test_resampling_from_restored_model(self, fitted, tmp_path):
        """A reloaded model samples from the same distribution."""
        model, table = fitted
        path = tmp_path / "model.json"
        save_model(model.noisy, table.attributes, path)
        restored, attributes = load_model(path)
        s1 = sample_synthetic(
            model.noisy, table.attributes, 40_000, np.random.default_rng(5)
        )
        s2 = sample_synthetic(restored, attributes, 40_000, np.random.default_rng(6))
        for name in table.attribute_names:
            m1 = joint_distribution(s1, [name])
            m2 = joint_distribution(s2, [name])
            assert np.abs(m1 - m2).max() < 0.02

    def test_version_check(self, fitted):
        model, table = fitted
        data = model_to_dict(model.noisy, table.attributes)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            model_from_dict(data)


class TestAtomicSave:
    def test_truncated_file_raises_valueerror_naming_path(self, fitted, tmp_path):
        """Regression fixture for the historical non-atomic write path.

        A crash mid-write used to leave a JSON prefix on disk; loading it
        must fail loudly as a ValueError naming the file, not as opaque
        downstream garbage.
        """
        model, table = fitted
        path = tmp_path / "model.json"
        save_model(model.noisy, table.attributes, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # simulate the old crash
        with pytest.raises(ValueError, match="model.json"):
            load_model(path)

    def test_crash_mid_write_preserves_previous_model(
        self, fitted, tmp_path, monkeypatch
    ):
        """If the replace step dies, the old complete document survives."""
        import os as os_module

        model, table = fitted
        path = tmp_path / "model.json"
        save_model(model.noisy, table.attributes, path)
        before = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os_module, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_model(model.noisy, table.attributes, path)
        monkeypatch.undo()
        assert path.read_text() == before
        load_model(path)  # still a complete, valid document
        # ... and the aborted temp file was cleaned up.
        assert [p.name for p in tmp_path.iterdir()] == ["model.json"]

    def test_save_leaves_only_the_target(self, fitted, tmp_path):
        model, table = fitted
        path = tmp_path / "model.json"
        save_model(model.noisy, table.attributes, path)
        save_model(model.noisy, table.attributes, path)  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["model.json"]


class TestLoadValidation:
    """model_from_dict refuses malformed documents, naming the conditional."""

    @pytest.fixture
    def doc(self, fitted):
        model, table = fitted
        return model_to_dict(model.noisy, table.attributes)

    def test_wrong_matrix_shape(self, doc):
        entry = doc["conditionals"][-1]
        entry["matrix"] = entry["matrix"][:-1]  # drop a row
        with pytest.raises(ValueError, match=rf"{entry['child']}.*shape"):
            model_from_dict(doc)

    def test_ragged_matrix(self, doc):
        entry = doc["conditionals"][-1]
        entry["matrix"] = [row[:-1] for row in entry["matrix"][:1]] + entry[
            "matrix"
        ][1:]
        with pytest.raises(ValueError, match=entry["child"]):
            model_from_dict(doc)

    def test_non_finite_entries(self, doc):
        entry = doc["conditionals"][0]
        entry["matrix"][0][0] = float("nan")
        with pytest.raises(ValueError, match=f"{entry['child']}.*non-finite"):
            model_from_dict(doc)

    def test_negative_probability(self, doc):
        entry = doc["conditionals"][0]
        entry["matrix"][0][0] = -0.25
        with pytest.raises(ValueError, match=f"{entry['child']}.*negative"):
            model_from_dict(doc)

    def test_rows_must_sum_to_one(self, doc):
        entry = doc["conditionals"][0]
        entry["matrix"][0] = [value * 0.5 for value in entry["matrix"][0]]
        with pytest.raises(ValueError, match=f"{entry['child']}.*row 0 sums"):
            model_from_dict(doc)

    def test_network_child_without_conditional(self, doc):
        dropped = doc["conditionals"].pop()
        with pytest.raises(
            ValueError, match=f"missing conditionals.*{dropped['child']}"
        ):
            model_from_dict(doc)

    def test_duplicate_conditional(self, doc):
        doc["conditionals"].append(doc["conditionals"][0])
        with pytest.raises(ValueError, match="duplicate conditional"):
            model_from_dict(doc)

    def test_conditional_parents_must_match_network(self, doc):
        entry = doc["network"][-1]
        if not entry["parents"]:
            pytest.skip("last pair has no parents in this fit")
        bad = dict(doc)
        bad["network"] = doc["network"][:-1] + [
            {"child": entry["child"], "parents": []}
        ]
        with pytest.raises(ValueError, match="parents"):
            model_from_dict(bad)

    def test_child_size_must_match_schema(self, doc):
        entry = doc["conditionals"][0]
        entry["child_size"] = entry["child_size"] + 1
        with pytest.raises(ValueError, match=entry["child"]):
            model_from_dict(doc)

    def test_missing_section(self, doc):
        del doc["conditionals"]
        with pytest.raises(ValueError, match="missing section"):
            model_from_dict(doc)

    def test_good_document_still_loads(self, doc):
        model, attributes = model_from_dict(doc)
        assert len(model.conditionals) == len(attributes)
