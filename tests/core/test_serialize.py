"""Model serialization: JSON round trips, resampling equivalence."""

import json

import numpy as np
import pytest

from repro.core.privbayes import PrivBayes
from repro.core.sampler import sample_synthetic
from repro.core.serialize import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.data.marginals import joint_distribution


@pytest.fixture
def fitted(mixed_table, rng):
    model = PrivBayes(epsilon=1.0, generalize=True).fit(mixed_table, rng=rng)
    return model, mixed_table


class TestRoundTrip:
    def test_dict_roundtrip_preserves_structure(self, fitted):
        model, table = fitted
        data = model_to_dict(model.noisy, table.attributes)
        restored, attributes = model_from_dict(data)
        assert restored.network == model.noisy.network
        assert [a.name for a in attributes] == list(table.attribute_names)

    def test_dict_roundtrip_preserves_conditionals(self, fitted):
        model, table = fitted
        restored, _ = model_from_dict(model_to_dict(model.noisy, table.attributes))
        for original, loaded in zip(model.noisy.conditionals, restored.conditionals):
            assert original.child == loaded.child
            assert original.parents == loaded.parents
            assert np.allclose(original.matrix, loaded.matrix)

    def test_file_roundtrip(self, fitted, tmp_path):
        model, table = fitted
        path = tmp_path / "model.json"
        save_model(model.noisy, table.attributes, path)
        restored, attributes = load_model(path)
        assert restored.network == model.noisy.network

    def test_taxonomies_survive(self, fitted, tmp_path):
        model, table = fitted
        path = tmp_path / "model.json"
        save_model(model.noisy, table.attributes, path)
        _, attributes = load_model(path)
        color = next(a for a in attributes if a.name == "color")
        assert color.taxonomy is not None
        assert color.taxonomy.height == table.attribute("color").taxonomy.height
        assert (
            color.taxonomy.leaf_to_level(1).tolist()
            == table.attribute("color").taxonomy.leaf_to_level(1).tolist()
        )

    def test_json_is_plain(self, fitted):
        model, table = fitted
        text = json.dumps(model_to_dict(model.noisy, table.attributes))
        assert isinstance(text, str)  # no numpy leakage

    def test_resampling_from_restored_model(self, fitted, tmp_path):
        """A reloaded model samples from the same distribution."""
        model, table = fitted
        path = tmp_path / "model.json"
        save_model(model.noisy, table.attributes, path)
        restored, attributes = load_model(path)
        s1 = sample_synthetic(
            model.noisy, table.attributes, 40_000, np.random.default_rng(5)
        )
        s2 = sample_synthetic(restored, attributes, 40_000, np.random.default_rng(6))
        for name in table.attribute_names:
            m1 = joint_distribution(s1, [name])
            m2 = joint_distribution(s2, [name])
            assert np.abs(m1 - m2).max() < 0.02

    def test_version_check(self, fitted):
        model, table = fitted
        data = model_to_dict(model.noisy, table.attributes)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            model_from_dict(data)
