"""Table: construction, projections, splits, record round trips."""

import numpy as np
import pytest

from repro.data.attribute import Attribute
from repro.data.table import Table


def _small():
    attrs = [Attribute.binary("a"), Attribute("b", ("x", "y", "z"))]
    return Table(attrs, {"a": np.array([0, 1, 1, 0]), "b": np.array([2, 0, 1, 1])})


class TestConstruction:
    def test_basic_shape(self):
        t = _small()
        assert t.n == 4
        assert t.d == 2
        assert len(t) == 4
        assert t.attribute_names == ("a", "b")

    def test_domain_size(self):
        assert _small().domain_size == 6

    def test_missing_column_rejected(self):
        with pytest.raises(ValueError, match="do not match"):
            Table([Attribute.binary("a")], {})

    def test_extra_column_rejected(self):
        with pytest.raises(ValueError, match="do not match"):
            Table(
                [Attribute.binary("a")],
                {"a": np.zeros(2, dtype=int), "b": np.zeros(2, dtype=int)},
            )

    def test_out_of_domain_codes_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            Table([Attribute.binary("a")], {"a": np.array([0, 2])})

    def test_negative_codes_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            Table([Attribute.binary("a")], {"a": np.array([-1, 0])})

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="differing lengths"):
            Table(
                [Attribute.binary("a"), Attribute.binary("b")],
                {"a": np.zeros(2, dtype=int), "b": np.zeros(3, dtype=int)},
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table(
                [Attribute.binary("a"), Attribute.binary("a")],
                {"a": np.zeros(2, dtype=int)},
            )

    def test_empty_table_allowed(self):
        t = Table([Attribute.binary("a")], {"a": np.array([], dtype=int)})
        assert t.n == 0


class TestDerivations:
    def test_project_keeps_order(self):
        t = _small()
        p = t.project(["b"])
        assert p.attribute_names == ("b",)
        assert p.column("b").tolist() == [2, 0, 1, 1]

    def test_project_unknown_attribute(self):
        with pytest.raises(KeyError):
            _small().project(["zz"])

    def test_take_reorders_rows(self):
        t = _small().take(np.array([3, 0]))
        assert t.column("a").tolist() == [0, 0]
        assert t.column("b").tolist() == [1, 2]

    def test_head(self):
        assert _small().head(2).n == 2

    def test_split_partitions_rows(self):
        t = _small()
        left, right = t.split(0.5, np.random.default_rng(0))
        assert left.n + right.n == t.n
        assert left.n == 2

    def test_split_fraction_validated(self):
        with pytest.raises(ValueError):
            _small().split(1.5, np.random.default_rng(0))

    def test_with_column(self):
        t = _small().with_column(Attribute.binary("c"), np.array([1, 0, 1, 0]))
        assert t.d == 3
        assert t.column("c").tolist() == [1, 0, 1, 0]

    def test_with_duplicate_column_rejected(self):
        with pytest.raises(ValueError, match="already present"):
            _small().with_column(Attribute.binary("a"), np.zeros(4, dtype=int))

    def test_drop(self):
        t = _small().drop(["a"])
        assert t.attribute_names == ("b",)


class TestTrustedConstruction:
    def test_matches_validating_constructor(self):
        attrs = [Attribute.binary("a"), Attribute("b", ("x", "y", "z"))]
        columns = {"a": np.array([0, 1, 1, 0]), "b": np.array([2, 0, 1, 1])}
        trusted = Table.from_trusted_columns(attrs, columns)
        validated = Table(attrs, columns)
        assert trusted.n == validated.n == 4
        assert trusted.attribute_names == validated.attribute_names
        for name in trusted.attribute_names:
            np.testing.assert_array_equal(
                trusted.column(name), validated.column(name)
            )
            assert trusted.column(name).dtype == np.int64

    def test_schema_consistency_still_enforced(self):
        attrs = [Attribute.binary("a")]
        with pytest.raises(ValueError, match="do not match"):
            Table.from_trusted_columns(attrs, {})
        with pytest.raises(ValueError, match="differing lengths"):
            Table.from_trusted_columns(
                [Attribute.binary("a"), Attribute.binary("b")],
                {"a": np.zeros(3, dtype=int), "b": np.zeros(4, dtype=int)},
            )
        with pytest.raises(ValueError, match="1-dimensional"):
            Table.from_trusted_columns(
                attrs, {"a": np.zeros((2, 2), dtype=int)}
            )

    def test_empty_table(self):
        t = Table.from_trusted_columns(
            [Attribute.binary("a")], {"a": np.zeros(0, dtype=int)}
        )
        assert t.n == 0


class TestRecords:
    def test_records_roundtrip(self):
        t = _small()
        rebuilt = Table.from_records(t.attributes, t.records())
        assert rebuilt.column("a").tolist() == t.column("a").tolist()
        assert rebuilt.column("b").tolist() == t.column("b").tolist()

    def test_decoded_records(self):
        rows = _small().decoded_records(limit=2)
        assert rows == [("0", "z"), ("1", "x")]

    def test_from_labels(self):
        attrs = [Attribute.binary("a"), Attribute("b", ("x", "y", "z"))]
        t = Table.from_labels(attrs, [("0", "z"), ("1", "x")])
        assert t.column("a").tolist() == [0, 1]
        assert t.column("b").tolist() == [2, 0]

    def test_from_records_shape_check(self):
        with pytest.raises(ValueError, match="does not match"):
            Table.from_records([Attribute.binary("a")], np.zeros((2, 2), dtype=int))
