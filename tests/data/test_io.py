"""CSV import/export: schema inference, round trips, validation."""

import numpy as np
import pytest

from repro.data.attribute import AttributeKind
from repro.data.io import infer_attribute, read_csv, write_csv
from repro.datasets import load_adult


class TestInferAttribute:
    def test_binary_inference(self):
        attr, codes = infer_attribute("x", ["yes", "no", "yes", "yes"])
        assert attr.kind is AttributeKind.BINARY
        assert attr.size == 2
        assert codes.tolist() == [1, 0, 1, 1]  # sorted: no, yes

    def test_single_value_column_padded_to_binary(self):
        attr, codes = infer_attribute("x", ["only", "only"])
        assert attr.size == 2
        assert codes.tolist() == [0, 0]

    def test_categorical_inference(self):
        attr, codes = infer_attribute("x", ["r", "g", "b", "r"])
        assert attr.kind is AttributeKind.CATEGORICAL
        assert attr.size == 3

    def test_continuous_inference(self):
        values = [str(v) for v in np.linspace(0, 100, 60)]
        attr, codes = infer_attribute("x", values)
        assert attr.kind is AttributeKind.CONTINUOUS
        assert attr.size == 16  # default bins

    def test_numeric_with_few_values_stays_categorical(self):
        attr, _ = infer_attribute("x", ["1", "2", "3", "1"])
        assert attr.kind is AttributeKind.CATEGORICAL

    def test_empty_column_rejected(self):
        with pytest.raises(ValueError):
            infer_attribute("x", [])


class TestRoundTrip:
    def test_write_read_identity_for_discrete(self, tmp_path, mixed_table):
        path = tmp_path / "t.csv"
        write_csv(mixed_table, path)
        loaded = read_csv(path)
        assert loaded.n == mixed_table.n
        assert loaded.attribute_names == mixed_table.attribute_names
        # Discrete labels round-trip exactly (codes may be permuted since
        # inference sorts labels; compare decoded labels instead).
        for name in mixed_table.attribute_names:
            original = mixed_table.attribute(name).decode(
                mixed_table.column(name)
            )
            reloaded = loaded.attribute(name).decode(loaded.column(name))
            assert original == reloaded

    def test_adult_roundtrip_preserves_shape(self, tmp_path):
        table = load_adult(n=300, seed=0)
        path = tmp_path / "adult.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.n == 300
        assert loaded.d == 15

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_csv(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="no data"):
            read_csv(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="fields"):
            read_csv(path)

    def test_custom_delimiter(self, tmp_path, mixed_table):
        path = tmp_path / "t.tsv"
        write_csv(mixed_table, path, delimiter="\t")
        loaded = read_csv(path, delimiter="\t")
        assert loaded.d == mixed_table.d
