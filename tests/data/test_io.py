"""CSV import/export: schema inference, round trips, validation."""

import numpy as np
import pytest

from repro.data.attribute import AttributeKind
from repro.data.io import infer_attribute, read_csv, write_csv
from repro.datasets import load_adult


class TestInferAttribute:
    def test_binary_inference(self):
        attr, codes = infer_attribute("x", ["yes", "no", "yes", "yes"])
        assert attr.kind is AttributeKind.BINARY
        assert attr.size == 2
        assert codes.tolist() == [1, 0, 1, 1]  # sorted: no, yes

    def test_single_value_column_padded_to_binary(self):
        attr, codes = infer_attribute("x", ["only", "only"])
        assert attr.size == 2
        assert codes.tolist() == [0, 0]

    def test_categorical_inference(self):
        attr, codes = infer_attribute("x", ["r", "g", "b", "r"])
        assert attr.kind is AttributeKind.CATEGORICAL
        assert attr.size == 3

    def test_continuous_inference(self):
        values = [str(v) for v in np.linspace(0, 100, 60)]
        attr, codes = infer_attribute("x", values)
        assert attr.kind is AttributeKind.CONTINUOUS
        assert attr.size == 16  # default bins

    def test_numeric_with_few_values_stays_categorical(self):
        attr, _ = infer_attribute("x", ["1", "2", "3", "1"])
        assert attr.kind is AttributeKind.CATEGORICAL

    def test_empty_column_rejected(self):
        with pytest.raises(ValueError):
            infer_attribute("x", [])


class TestRoundTrip:
    def test_write_read_identity_for_discrete(self, tmp_path, mixed_table):
        path = tmp_path / "t.csv"
        write_csv(mixed_table, path)
        loaded = read_csv(path)
        assert loaded.n == mixed_table.n
        assert loaded.attribute_names == mixed_table.attribute_names
        # Discrete labels round-trip exactly (codes may be permuted since
        # inference sorts labels; compare decoded labels instead).
        for name in mixed_table.attribute_names:
            original = mixed_table.attribute(name).decode(
                mixed_table.column(name)
            )
            reloaded = loaded.attribute(name).decode(loaded.column(name))
            assert original == reloaded

    def test_adult_roundtrip_preserves_shape(self, tmp_path):
        table = load_adult(n=300, seed=0)
        path = tmp_path / "adult.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.n == 300
        assert loaded.d == 15

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_csv(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="no data"):
            read_csv(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="fields"):
            read_csv(path)

    def test_custom_delimiter(self, tmp_path, mixed_table):
        path = tmp_path / "t.tsv"
        write_csv(mixed_table, path, delimiter="\t")
        loaded = read_csv(path, delimiter="\t")
        assert loaded.d == mixed_table.d


class TestCsvSource:
    """The streaming reader must match read_csv for every chunk size."""

    @pytest.mark.parametrize("chunk_rows", [1, 7, 299, 300, 313])
    def test_matches_read_csv_on_adult(self, tmp_path, chunk_rows):
        """Adult has binary, categorical AND continuous columns — the
        two-pass schema inference must agree with the resident path on
        all three, codes included."""
        from repro.data.io import CsvSource
        from repro.data.table import Table

        table = load_adult(n=300, seed=0)
        path = tmp_path / "adult.csv"
        write_csv(table, path)
        resident = read_csv(path)
        source = CsvSource(path, chunk_rows=chunk_rows)
        assert source.n == resident.n
        assert source.attributes == resident.attributes
        streamed = Table.from_chunks(source.attributes, source.chunks())
        for name in resident.attribute_names:
            np.testing.assert_array_equal(
                streamed.column(name), resident.column(name)
            )

    def test_source_is_reiterable(self, tmp_path, mixed_table):
        from repro.data.io import CsvSource

        path = tmp_path / "t.csv"
        write_csv(mixed_table, path)
        source = CsvSource(path, chunk_rows=400)
        first = [
            {k: v.copy() for k, v in chunk.items()}
            for chunk in source.chunks()
        ]
        second = list(source.chunks())
        assert len(first) == len(second)
        for a, b in zip(first, second):
            for name in a:
                np.testing.assert_array_equal(a[name], b[name])

    def test_file_drift_detected(self, tmp_path, mixed_table):
        from repro.data.io import CsvSource

        path = tmp_path / "t.csv"
        write_csv(mixed_table, path)
        source = CsvSource(path, chunk_rows=100)
        with path.open("a", newline="") as handle:
            handle.write("red,0,S\n")
        with pytest.raises(ValueError, match="changed between"):
            list(source.chunks())

    def test_invalid_chunk_rows(self, tmp_path, mixed_table):
        from repro.data.io import CsvSource

        path = tmp_path / "t.csv"
        write_csv(mixed_table, path)
        with pytest.raises(ValueError, match="chunk_rows"):
            CsvSource(path, chunk_rows=0)

    def test_fit_on_csv_source_matches_resident(self, tmp_path, binary_table):
        """End to end: fitting on the streaming reader equals fitting on
        the resident load of the same file."""
        from repro.core.privbayes import PrivBayes
        from repro.data.io import CsvSource

        path = tmp_path / "b.csv"
        write_csv(binary_table, path)
        resident = read_csv(path)
        source = CsvSource(path, chunk_rows=170)
        config = dict(epsilon=1.0, k=1, mode="binary")
        model_a = PrivBayes(**config).fit(resident, np.random.default_rng(21))
        model_b = PrivBayes(**config).fit(source, np.random.default_rng(21))
        assert list(model_a.network) == list(model_b.network)
        for a, b in zip(
            model_a.noisy.conditionals, model_b.noisy.conditionals
        ):
            np.testing.assert_array_equal(a.matrix, b.matrix)


class TestSingleValuePlaceholder:
    def test_other_placeholder_roundtrip(self, tmp_path):
        """Pins the documented ``__other_<label>`` behavior: a constant
        column is padded to binary, the placeholder never appears in the
        encoded input, and a written release round-trips the labels."""
        path = tmp_path / "const.csv"
        path.write_text("flag,val\nyes,only\nno,only\nyes,only\n")
        table = read_csv(path)
        val = table.attribute("val")
        assert val.size == 2
        assert val.values == ("only", "__other_only")
        assert table.column("val").tolist() == [0, 0, 0]
        out = tmp_path / "roundtrip.csv"
        write_csv(table, out)
        reloaded = read_csv(out)
        # The placeholder label itself round-trips: writing decodes code 0
        # back to "only", and rereading re-pads to the same domain.
        assert reloaded.attribute("val").values == ("only", "__other_only")
        assert reloaded.column("val").tolist() == [0, 0, 0]


class TestVectorizedWrite:
    def test_write_matches_per_cell_reference(self, tmp_path, mixed_table):
        """The np.take-per-attribute writer must produce byte-identical
        output to the naive per-row, per-cell decode loop."""
        import csv as csv_module

        fast_path = tmp_path / "fast.csv"
        write_csv(mixed_table, fast_path)
        naive_path = tmp_path / "naive.csv"
        with naive_path.open("w", newline="") as handle:
            writer = csv_module.writer(handle)
            writer.writerow(mixed_table.attribute_names)
            for i in range(mixed_table.n):
                writer.writerow(
                    [
                        attr.values[mixed_table.column(attr.name)[i]]
                        for attr in mixed_table.attributes
                    ]
                )
        assert fast_path.read_bytes() == naive_path.read_bytes()

    def test_write_from_chunk_iterator_matches_resident(
        self, tmp_path, mixed_table
    ):
        """Streaming a table out as chunk tables writes the same bytes as
        writing it resident."""
        resident_path = tmp_path / "resident.csv"
        write_csv(mixed_table, resident_path)

        def chunk_tables():
            for start in range(0, mixed_table.n, 217):
                yield mixed_table.take(
                    np.arange(start, min(start + 217, mixed_table.n))
                )

        streamed_path = tmp_path / "streamed.csv"
        write_csv(chunk_tables(), streamed_path)
        assert streamed_path.read_bytes() == resident_path.read_bytes()

    def test_write_from_chunked_source(self, tmp_path, mixed_table):
        from repro.data.chunks import TableChunks

        source_path = tmp_path / "source.csv"
        write_csv(TableChunks(mixed_table, 123), source_path)
        resident_path = tmp_path / "resident.csv"
        write_csv(mixed_table, resident_path)
        assert source_path.read_bytes() == resident_path.read_bytes()

    def test_empty_chunk_stream_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty chunk stream"):
            write_csv(iter(()), tmp_path / "nope.csv")
