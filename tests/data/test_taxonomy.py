"""TaxonomyTree: construction, level maps, invariants."""

import numpy as np
import pytest

from repro.data.taxonomy import TaxonomyTree


class TestConstruction:
    def test_leaves_only(self):
        tax = TaxonomyTree(("a", "b", "c"))
        assert tax.height == 1
        assert tax.leaf_count == 3
        assert tax.level_labels(0) == ("a", "b", "c")

    def test_explicit_level(self):
        tax = TaxonomyTree(("a", "b", "c", "d"), [([0, 0, 1, 1], ["ab", "cd"])])
        assert tax.height == 2
        assert tax.level_size(1) == 2
        assert tax.leaf_to_level(1).tolist() == [0, 0, 1, 1]

    def test_empty_leaves_rejected(self):
        with pytest.raises(ValueError, match="at least one leaf"):
            TaxonomyTree(())

    def test_level_must_shrink(self):
        with pytest.raises(ValueError, match="strictly smaller"):
            TaxonomyTree(("a", "b"), [([0, 1], ["x", "y"])])

    def test_parent_assignment_must_cover(self):
        with pytest.raises(ValueError, match="cover"):
            TaxonomyTree(("a", "b", "c"), [([0, 0, 0], ["x", "y"])])

    def test_wrong_parent_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            TaxonomyTree(("a", "b", "c"), [([0, 0], ["x"])])


class TestLevelMaps:
    def test_identity_at_level_zero(self):
        tax = TaxonomyTree(("a", "b", "c", "d"), [([0, 0, 1, 1], ["ab", "cd"])])
        assert tax.leaf_to_level(0).tolist() == [0, 1, 2, 3]

    def test_composition_over_two_levels(self):
        tax = TaxonomyTree(
            ("a", "b", "c", "d"),
            [
                ([0, 0, 1, 1], ["ab", "cd"]),
            ],
        )
        assert tax.leaf_to_level(1).tolist() == [0, 0, 1, 1]

    def test_out_of_range_level(self):
        tax = TaxonomyTree(("a", "b"))
        with pytest.raises(ValueError, match="out of range"):
            tax.leaf_to_level(1)


class TestBalancedBinary:
    def test_sixteen_leaves_has_four_levels(self):
        tax = TaxonomyTree.balanced_binary([str(i) for i in range(16)])
        assert tax.height == 4
        assert [tax.level_size(i) for i in range(4)] == [16, 8, 4, 2]

    def test_adjacent_leaves_share_parents(self):
        tax = TaxonomyTree.balanced_binary(list("abcdefgh"))
        level1 = tax.leaf_to_level(1)
        assert level1.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_odd_leaf_count(self):
        tax = TaxonomyTree.balanced_binary(list("abcde"))
        level1 = tax.leaf_to_level(1)
        assert level1.tolist() == [0, 0, 1, 1, 2]

    def test_two_leaves_no_extra_levels(self):
        tax = TaxonomyTree.balanced_binary(["a", "b"])
        assert tax.height == 1


class TestFromGroups:
    def test_workclass_example(self):
        # Figure 3 of the paper.
        leaves = (
            "Self-emp-inc", "Self-emp-not-inc", "Federal-gov", "State-gov",
            "Local-gov", "Private", "Without-pay", "Never-worked",
        )
        tax = TaxonomyTree.from_groups(
            leaves,
            (
                ("Self-employed", ("Self-emp-inc", "Self-emp-not-inc")),
                ("Government", ("Federal-gov", "State-gov", "Local-gov")),
                ("Private", ("Private",)),
                ("Unemployed", ("Without-pay", "Never-worked")),
            ),
        )
        assert tax.height == 2
        assert tax.level_labels(1) == (
            "Self-employed", "Government", "Private", "Unemployed",
        )
        assert tax.leaf_to_level(1).tolist() == [0, 0, 1, 1, 1, 2, 3, 3]

    def test_unknown_member_rejected(self):
        with pytest.raises(ValueError, match="not a leaf"):
            TaxonomyTree.from_groups(("a", "b"), (("g", ("a", "z")),))

    def test_double_assignment_rejected(self):
        with pytest.raises(ValueError, match="two groups"):
            TaxonomyTree.from_groups(
                ("a", "b", "c"), (("g1", ("a", "b")), ("g2", ("b",)))
            )

    def test_uncovered_leaf_rejected(self):
        with pytest.raises(ValueError, match="not covered"):
            TaxonomyTree.from_groups(("a", "b", "c"), (("g1", ("a",)), ("g2", ("b",))))
