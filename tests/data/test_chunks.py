"""Chunked-vs-monolithic equivalence: the streaming data plane's contract.

Every test here pins the same invariant from a different layer: a
``ChunkedSource`` view of a table must produce *bit-identical* integers,
floats, and releases to the resident path, for any chunk size — including
single-row chunks, ragged final chunks, chunks larger than the data, and
explicit empty trailing chunks.
"""

import numpy as np
import pytest

from repro.bn.network import APPair
from repro.data.attribute import Attribute
from repro.core.noisy_conditionals import JointCounter
from repro.core.privbayes import PrivBayes
from repro.core.scoring import CandidateScorer, ScoringCache
from repro.data.chunks import (
    ChunkedSource,
    IterableChunks,
    TableChunks,
    stream_grouped_joint_counts,
    stream_stacked_joint_counts,
    to_table,
)
from repro.data.marginals import marginal_counts
from repro.data.table import Table
from repro.datasets import load_dataset


def chunk_size_grid(n):
    """The ISSUE's adversarial chunk sizes: degenerate, ragged, exact, over."""
    return sorted({1, 7, max(n - 1, 1), max(n, 1), n + 13})


@pytest.fixture(scope="module")
def nltcs():
    return load_dataset("nltcs", n=400, seed=0)


class TestSourceMetadata:
    def test_mirrors_table_surface(self, mixed_table):
        source = TableChunks(mixed_table, 64)
        assert source.n == mixed_table.n
        assert source.d == mixed_table.d
        assert source.attributes == mixed_table.attributes
        assert source.attribute_names == mixed_table.attribute_names
        assert source.attribute("color") is mixed_table.attribute("color")
        assert source.domain_size == mixed_table.domain_size
        with pytest.raises(KeyError):
            source.attribute("nope")

    def test_invalid_chunk_rows(self, mixed_table):
        with pytest.raises(ValueError):
            TableChunks(mixed_table, 0)

    def test_chunks_concatenate_to_table(self, mixed_table):
        for chunk_rows in chunk_size_grid(mixed_table.n):
            source = TableChunks(mixed_table, chunk_rows)
            rebuilt = to_table(source)
            for name in mixed_table.attribute_names:
                np.testing.assert_array_equal(
                    rebuilt.column(name), mixed_table.column(name)
                )

    def test_reiterable(self, mixed_table):
        source = TableChunks(mixed_table, 100)
        first = [
            {k: v.copy() for k, v in chunk.items()}
            for chunk in source.chunks()
        ]
        second = list(source.chunks())
        assert len(first) == len(second)
        for a, b in zip(first, second):
            for name in a:
                np.testing.assert_array_equal(a[name], b[name])

    def test_empty_table_yields_one_empty_chunk(self):
        table = Table(
            [Attribute.binary("a")], {"a": np.zeros(0, dtype=np.int64)}
        )
        chunks = list(TableChunks(table, 10).chunks())
        assert len(chunks) == 1
        assert chunks[0]["a"].shape == (0,)

    def test_iterable_chunks_validation(self, binary_table):
        attrs = binary_table.attributes
        good = list(TableChunks(binary_table, 700).chunks())
        source = IterableChunks(attrs, good)
        assert source.n == binary_table.n
        with pytest.raises(ValueError, match="do not match schema"):
            IterableChunks(attrs, [{"a": np.zeros(3, dtype=np.int64)}])
        bad = {name: binary_table.column(name) for name in "abcd"}
        bad["d"] = bad["d"][:-1]
        with pytest.raises(ValueError, match="differing lengths"):
            IterableChunks(attrs, [bad])


class TestFromChunks:
    def test_from_chunks_roundtrip(self, binary_table):
        source = TableChunks(binary_table, 123)
        rebuilt = Table.from_chunks(source.attributes, source.chunks())
        for name in binary_table.attribute_names:
            np.testing.assert_array_equal(
                rebuilt.column(name), binary_table.column(name)
            )

    def test_from_chunks_empty_stream(self, binary_table):
        rebuilt = Table.from_chunks(binary_table.attributes, [])
        assert rebuilt.n == 0
        assert rebuilt.attribute_names == binary_table.attribute_names

    def test_from_chunks_schema_mismatch(self, binary_table):
        with pytest.raises(ValueError, match="do not match schema"):
            Table.from_chunks(
                binary_table.attributes,
                [{"a": np.zeros(2, dtype=np.int64)}],
            )

    def test_from_chunks_validates_codes(self, binary_table):
        bad = {
            name: np.zeros(4, dtype=np.int64)
            for name in binary_table.attribute_names
        }
        bad["a"] = np.array([0, 1, 2, 0])  # out of the binary domain
        with pytest.raises(ValueError, match="outside"):
            Table.from_chunks(binary_table.attributes, [bad])


class TestStreamingCounts:
    def test_marginal_counts_all_chunk_sizes(self, nltcs):
        names = list(nltcs.attribute_names[:3])
        resident = marginal_counts(nltcs, names)
        for chunk_rows in chunk_size_grid(nltcs.n):
            streamed = marginal_counts(TableChunks(nltcs, chunk_rows), names)
            np.testing.assert_array_equal(streamed, resident)

    def test_marginal_counts_empty_names(self, nltcs):
        np.testing.assert_array_equal(
            marginal_counts(TableChunks(nltcs, 64), []),
            marginal_counts(nltcs, []),
        )

    def test_single_group_counts(self, mixed_table):
        parents = (("color", 1), ("size", 0))
        children = ("warm_flag",)
        counter = JointCounter(mixed_table)
        pair = APPair(child="warm_flag", parents=parents)
        expected, expected_sizes = counter.counts(pair)
        for chunk_rows in chunk_size_grid(mixed_table.n):
            block, offsets, lengths, parent_sizes, child_sizes = (
                stream_stacked_joint_counts(
                    TableChunks(mixed_table, chunk_rows), parents, children
                )
            )
            np.testing.assert_array_equal(
                block[offsets[0] : offsets[0] + lengths[0]], expected
            )
            assert tuple(parent_sizes) + (child_sizes[0],) == expected_sizes

    def test_grouped_counts_match_per_group(self, nltcs):
        names = nltcs.attribute_names
        groups = [
            ((), (names[0], names[1])),
            (((names[0], 0),), (names[1], names[2], names[3])),
            (((names[1], 0), (names[2], 0)), (names[4],)),
        ]
        source = TableChunks(nltcs, 97)
        streamed = stream_grouped_joint_counts(source, groups)
        for (parents, children), counted in zip(groups, streamed):
            single = [
                stream_stacked_joint_counts(nltcs, parents, [child])
                for child in children
            ]
            block, offsets, lengths, _, _ = counted
            for position, child_counts in enumerate(single):
                sblock, soff, slen, _, _ = child_counts
                np.testing.assert_array_equal(
                    block[
                        offsets[position] : offsets[position]
                        + lengths[position]
                    ],
                    sblock[soff[0] : soff[0] + slen[0]],
                )

    def test_empty_trailing_chunk_changes_nothing(self, binary_table):
        attrs = binary_table.attributes
        chunks = list(TableChunks(binary_table, 611).chunks())
        empty = {
            name: np.zeros(0, dtype=np.int64)
            for name in binary_table.attribute_names
        }
        padded = IterableChunks(attrs, chunks + [empty])
        assert padded.n == binary_table.n
        names = list(binary_table.attribute_names[:2])
        np.testing.assert_array_equal(
            marginal_counts(padded, names),
            marginal_counts(binary_table, names),
        )
        block_a, *_ = stream_stacked_joint_counts(
            padded, ((names[0], 0),), [names[1]]
        )
        block_b, *_ = stream_stacked_joint_counts(
            binary_table, ((names[0], 0),), [names[1]]
        )
        np.testing.assert_array_equal(block_a, block_b)

    def test_sourceless_chunks_derive_layout(self):
        """A source yielding no chunks at all still reports a full layout."""

        class NoChunks(ChunkedSource):
            def __init__(self, attributes):
                self._attributes = tuple(attributes)
                self._n = 0

            def chunks(self):
                return iter(())

        attrs = (Attribute.binary("a"), Attribute("b", ("x", "y", "z")))
        block, offsets, lengths, parent_sizes, child_sizes = (
            stream_stacked_joint_counts(NoChunks(attrs), (("a", 0),), ["b"])
        )
        assert block.shape == (6,)
        assert not block.any()
        assert offsets == (0,) and lengths == (6,)
        assert tuple(parent_sizes) == (2,) and tuple(child_sizes) == (3,)


class TestCounterAndScorerEquivalence:
    def test_joint_counter_warm_and_miss(self, mixed_table):
        pairs = [
            APPair(child="color", parents=()),
            APPair(child="warm_flag", parents=(("color", 0),)),
            APPair(child="size", parents=(("color", 1),)),
        ]
        resident = JointCounter(mixed_table)
        resident.warm(pairs)
        for chunk_rows in chunk_size_grid(mixed_table.n):
            chunked = JointCounter(TableChunks(mixed_table, chunk_rows))
            chunked.warm(pairs[:2])  # pairs[2] exercises the miss path
            for pair in pairs:
                counts_a, sizes_a = resident.counts(pair)
                counts_b, sizes_b = chunked.counts(pair)
                np.testing.assert_array_equal(counts_a, counts_b)
                assert tuple(sizes_a) == tuple(sizes_b)

    def test_joint_counter_rejects_foreign_parent_index(self, mixed_table):
        from repro.bn.quality import ParentIndexCache

        index = ParentIndexCache(mixed_table)
        with pytest.raises(ValueError):
            JointCounter(TableChunks(mixed_table, 64), parent_index=index)

    @pytest.mark.parametrize("score", ["I", "R", "F"])
    def test_scorer_scores_identical(self, nltcs, score):
        names = nltcs.attribute_names
        candidates = [
            (names[1], ()),
            (names[2], ((names[0], 0),)),
            (names[3], ((names[0], 0),)),
            (names[4], ((names[0], 0), (names[1], 0))),
        ]
        resident = CandidateScorer(nltcs, score)
        expected = resident.score_batch(candidates)
        for chunk_rows in (1, 113, nltcs.n + 13):
            chunked = CandidateScorer(TableChunks(nltcs, chunk_rows), score)
            np.testing.assert_array_equal(
                chunked.score_batch(candidates), expected
            )
            # Memo hits and the single-candidate path agree too.
            for child, parents in candidates:
                assert chunked.score_candidate(child, parents) == pytest.approx(
                    resident.score_candidate(child, parents), abs=0
                )

    def test_scorer_sensitivity_identical(self, nltcs):
        source = TableChunks(nltcs, 150)
        names = nltcs.attribute_names
        candidates = [(names[2], ((names[0], 0),))]
        for score in ("I", "F", "R"):
            assert CandidateScorer(source, score).selection_sensitivity(
                candidates
            ) == CandidateScorer(nltcs, score).selection_sensitivity(candidates)

    def test_scoring_cache_parent_index_none_for_sources(self, nltcs):
        cache = ScoringCache()
        assert cache.parent_index(TableChunks(nltcs, 64)) is None
        assert cache.parent_index(nltcs) is not None


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("chunk_rows", [1, 7, 399, 400, 413])
    def test_fit_identical_on_nltcs(self, nltcs, chunk_rows):
        """The whole pipeline: chunked fit == resident fit, bit for bit."""
        fit_args = dict(epsilon=1.0, k=2, mode="binary")
        resident = PrivBayes(**fit_args).fit(
            nltcs, np.random.default_rng(77)
        )
        chunked = PrivBayes(**fit_args).fit(
            TableChunks(nltcs, chunk_rows), np.random.default_rng(77)
        )
        assert [p for p in resident.network] == [p for p in chunked.network]
        for a, b in zip(
            resident.noisy.conditionals, chunked.noisy.conditionals
        ):
            assert a.child == b.child and a.parents == b.parents
            np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_fit_sample_identical_general_mode(self, mixed_table):
        """θ-mode (Algorithm 4) with generalized parents, end to end."""
        config = dict(epsilon=1.0, mode="general", generalize=True)
        resident = PrivBayes(**config).fit_sample(
            mixed_table, np.random.default_rng(5)
        )
        for chunk_rows in (1, 7, mixed_table.n - 1, mixed_table.n + 13):
            chunked = PrivBayes(**config).fit_sample(
                TableChunks(mixed_table, chunk_rows),
                np.random.default_rng(5),
            )
            for name in resident.attribute_names:
                np.testing.assert_array_equal(
                    chunked.column(name), resident.column(name)
                )

    def test_batched_false_requires_resident(self, nltcs):
        from repro.core.noisy_conditionals import noisy_conditionals_general

        network = PrivBayes(epsilon=1.0, k=2, mode="binary").fit(
            nltcs, np.random.default_rng(3)
        ).network
        with pytest.raises(ValueError, match="resident"):
            noisy_conditionals_general(
                TableChunks(nltcs, 64),
                network,
                0.7,
                np.random.default_rng(0),
                batched=False,
            )
