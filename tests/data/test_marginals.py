"""Mixed-radix indexing, marginal materialization, normalization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.attribute import Attribute
from repro.data.marginals import (
    conditional_from_joint,
    domain_size,
    flatten_index,
    joint_distribution,
    marginal_counts,
    normalize_distribution,
    project_distribution,
    unflatten_index,
)
from repro.data.table import Table


class TestFlatten:
    def test_flatten_basic(self):
        codes = np.array([[0, 0], [0, 1], [1, 0], [1, 2]])
        flat = flatten_index(codes, [2, 3])
        assert flat.tolist() == [0, 1, 3, 5]

    def test_unflatten_inverse(self):
        flat = np.arange(6)
        codes = unflatten_index(flat, [2, 3])
        assert flatten_index(codes, [2, 3]).tolist() == flat.tolist()

    def test_int64_overflow_rejected(self):
        # 2**40 * 2**40 cells overflows int64; must raise, not wrap.
        codes = np.zeros((4, 2), dtype=np.int64)
        with pytest.raises(ValueError, match="int64 indexing limit"):
            flatten_index(codes, [2**40, 2**40])

    def test_domain_size_is_exact_python_int(self):
        total = domain_size([2**40, 2**40])
        assert total == 2**80  # no wraparound: plain Python int

    def test_widest_legal_domain_accepted(self):
        codes = np.zeros((2, 2), dtype=np.int64)
        flat = flatten_index(codes, [2**31, 2**31])  # 2**62 cells: fits
        assert flat.tolist() == [0, 0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            flatten_index(np.zeros((3, 2), dtype=int), [2])

    @given(
        sizes=st.lists(st.integers(2, 5), min_size=1, max_size=4),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, sizes, data):
        rows = data.draw(st.integers(1, 20))
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        codes = np.stack(
            [rng.integers(0, s, rows) for s in sizes], axis=1
        )
        flat = flatten_index(codes, sizes)
        assert (flat >= 0).all() and (flat < domain_size(sizes)).all()
        assert (unflatten_index(flat, sizes) == codes).all()


class TestMarginals:
    def _table(self):
        attrs = [Attribute.binary("a"), Attribute("b", ("x", "y", "z"))]
        return Table(
            attrs, {"a": np.array([0, 0, 1, 1]), "b": np.array([0, 0, 1, 2])}
        )

    def test_counts_sum_to_n(self):
        counts = marginal_counts(self._table(), ["a", "b"])
        assert counts.sum() == 4
        assert counts.size == 6

    def test_counts_layout_child_last(self):
        counts = marginal_counts(self._table(), ["a", "b"])
        # index = a*3 + b
        assert counts[0] == 2  # (a=0, b=0)
        assert counts[4] == 1  # (a=1, b=1)
        assert counts[5] == 1  # (a=1, b=2)

    def test_empty_names_total_count(self):
        assert marginal_counts(self._table(), []).tolist() == [4.0]

    def test_joint_distribution_normalized(self):
        joint = joint_distribution(self._table(), ["a"])
        assert joint.tolist() == [0.5, 0.5]

    def test_single_attribute(self):
        counts = marginal_counts(self._table(), ["b"])
        assert counts.tolist() == [2.0, 1.0, 1.0]


class TestNormalize:
    def test_clips_negatives(self):
        out = normalize_distribution(np.array([0.5, -0.2, 0.5]))
        assert out.tolist() == [0.5, 0.0, 0.5]

    def test_renormalizes(self):
        out = normalize_distribution(np.array([2.0, 2.0]))
        assert out.tolist() == [0.5, 0.5]

    def test_all_negative_falls_back_to_uniform(self):
        out = normalize_distribution(np.array([-1.0, -2.0, -3.0, -4.0]))
        assert np.allclose(out, 0.25)

    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_always_a_distribution(self, values):
        out = normalize_distribution(np.array(values))
        assert (out >= 0).all()
        assert np.isclose(out.sum(), 1.0)


class TestProjection:
    def test_project_to_first_axis(self):
        joint = np.array([0.1, 0.2, 0.3, 0.4])  # sizes (2, 2)
        out = project_distribution(joint, [2, 2], [0])
        assert np.allclose(out, [0.3, 0.7])

    def test_project_to_second_axis(self):
        joint = np.array([0.1, 0.2, 0.3, 0.4])
        out = project_distribution(joint, [2, 2], [1])
        assert np.allclose(out, [0.4, 0.6])

    def test_project_with_permutation(self):
        joint = np.arange(8, dtype=float) / 28.0  # sizes (2, 2, 2)
        swapped = project_distribution(joint, [2, 2, 2], [1, 0])
        direct = project_distribution(joint, [2, 2, 2], [0, 1])
        assert np.allclose(
            swapped.reshape(2, 2), direct.reshape(2, 2).T
        )

    def test_identity_projection(self):
        joint = np.array([0.25, 0.25, 0.25, 0.25])
        out = project_distribution(joint, [2, 2], [0, 1])
        assert np.allclose(out, joint)


class TestConditional:
    def test_rows_stochastic(self):
        joint = np.array([0.1, 0.3, 0.2, 0.4])
        cond = conditional_from_joint(joint, 2)
        assert np.allclose(cond.sum(axis=1), 1.0)
        assert np.allclose(cond[0], [0.25, 0.75])

    def test_zero_rows_become_uniform(self):
        joint = np.array([0.0, 0.0, 0.5, 0.5])
        cond = conditional_from_joint(joint, 2)
        assert np.allclose(cond[0], [0.5, 0.5])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            conditional_from_joint(np.ones(5) / 5, 2)
