"""Attribute descriptor behaviour: domains, kinds, generalization, coding."""

import numpy as np
import pytest

from repro.data.attribute import Attribute, AttributeKind, discretize_continuous
from repro.data.taxonomy import TaxonomyTree


class TestAttributeBasics:
    def test_size_is_domain_cardinality(self):
        attr = Attribute("x", ("a", "b", "c"))
        assert attr.size == 3

    def test_binary_constructor(self):
        attr = Attribute.binary("flag")
        assert attr.kind is AttributeKind.BINARY
        assert attr.size == 2
        assert attr.is_binary

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError, match="empty domain"):
            Attribute("x", ())

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Attribute("x", ("a", "a"))

    def test_binary_kind_requires_two_values(self):
        with pytest.raises(ValueError, match="exactly 2"):
            Attribute("x", ("a", "b", "c"), AttributeKind.BINARY)

    def test_taxonomy_leaf_count_must_match(self):
        tax = TaxonomyTree(("a", "b"))
        with pytest.raises(ValueError, match="leaves"):
            Attribute("x", ("a", "b", "c"), taxonomy=tax)


class TestEncodeDecode:
    def test_roundtrip(self):
        attr = Attribute("x", ("a", "b", "c"))
        codes = attr.encode(["c", "a", "b", "b"])
        assert codes.tolist() == [2, 0, 1, 1]
        assert attr.decode(codes) == ["c", "a", "b", "b"]

    def test_unknown_label_rejected(self):
        attr = Attribute("x", ("a", "b"))
        with pytest.raises(ValueError, match="not in domain"):
            attr.encode(["z"])


class TestGeneralization:
    def _taxonomied(self):
        tax = TaxonomyTree.from_groups(
            ("a", "b", "c", "d"),
            (("ab", ("a", "b")), ("cd", ("c", "d"))),
        )
        return Attribute("x", ("a", "b", "c", "d"), taxonomy=tax)

    def test_level_zero_is_identity(self):
        attr = self._taxonomied()
        assert attr.generalized(0) is attr
        assert attr.generalization_map(0).tolist() == [0, 1, 2, 3]

    def test_level_one_merges_groups(self):
        attr = self._taxonomied()
        gen = attr.generalized(1)
        assert gen.size == 2
        assert attr.generalization_map(1).tolist() == [0, 0, 1, 1]

    def test_height_without_taxonomy_is_one(self):
        assert Attribute("x", ("a", "b")).height == 1

    def test_generalize_without_taxonomy_fails(self):
        with pytest.raises(ValueError, match="no taxonomy"):
            Attribute("x", ("a", "b")).generalized(1)


class TestDiscretizeContinuous:
    def test_bin_count_and_range(self):
        data = np.linspace(0.0, 100.0, 500)
        attr, codes = discretize_continuous("v", data, bins=8)
        assert attr.size == 8
        assert codes.min() == 0 and codes.max() == 7
        assert attr.kind is AttributeKind.CONTINUOUS

    def test_values_outside_range_clamped(self):
        attr, codes = discretize_continuous(
            "v", np.array([-5.0, 500.0]), bins=4, low=0.0, high=100.0
        )
        assert codes.tolist() == [0, 3]

    def test_binary_taxonomy_attached(self):
        attr, _ = discretize_continuous("v", np.arange(16.0), bins=16)
        assert attr.taxonomy is not None
        # 16 -> 8 -> 4 -> 2 levels.
        assert attr.taxonomy.height == 4

    def test_monotone_binning(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        _, codes = discretize_continuous("v", data, bins=4)
        assert sorted(codes.tolist()) == codes.tolist()

    def test_constant_column(self):
        attr, codes = discretize_continuous("v", np.full(10, 3.0), bins=4)
        assert attr.size == 4
        assert np.all(codes >= 0) and np.all(codes < 4)

    def test_too_few_bins_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            discretize_continuous("v", np.arange(4.0), bins=1)
