"""Entropy / mutual information / KL / TVD: known values and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory.measures import (
    conditional_entropy,
    entropy,
    entropy_segmented,
    kl_divergence,
    mutual_information,
    mutual_information_from_table,
    segment_sums,
    total_variation_distance,
)


def _ragged_segments(rng, count, max_len=40):
    """Concatenated random vectors (with zeros) and their segment ids."""
    lengths = rng.integers(0, max_len, size=count)
    values = rng.random(int(lengths.sum()))
    values[rng.random(values.size) < 0.3] = 0.0
    ids = np.repeat(np.arange(count, dtype=np.int64), lengths)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    return values, ids, offsets, lengths


class TestSegmentSums:
    """Exact-sum contract: bit-equal to each segment's standalone .sum()."""

    def test_bit_identical_to_per_segment_sums(self):
        rng = np.random.default_rng(21)
        values, ids, offsets, lengths = _ragged_segments(rng, 200)
        got = segment_sums(values, ids, 200)
        want = np.array(
            [values[o : o + l].sum() for o, l in zip(offsets, lengths)]
        )
        assert np.array_equal(got, want)

    def test_long_segments_cross_pairwise_blocks(self):
        """Lengths beyond NumPy's pairwise-summation block size stay exact."""
        rng = np.random.default_rng(22)
        lengths = [1, 7, 129, 500, 1000]
        values = rng.random(sum(lengths))
        ids = np.repeat(np.arange(len(lengths)), lengths)
        got = segment_sums(values, ids, len(lengths))
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        want = np.array(
            [values[o : o + l].sum() for o, l in zip(offsets, lengths)]
        )
        assert np.array_equal(got, want)

    def test_empty_segments_are_zero(self):
        got = segment_sums(np.array([1.5, 2.5]), np.array([1, 1]), 4)
        assert np.array_equal(got, np.array([0.0, 4.0, 0.0, 0.0]))

    def test_empty_input(self):
        assert np.array_equal(segment_sums(np.zeros(0), np.zeros(0), 3), np.zeros(3))
        assert segment_sums(np.zeros(0), np.zeros(0), 0).size == 0

    def test_unsorted_ids_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            segment_sums(np.ones(3), np.array([0, 2, 1]), 3)

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(ValueError, match="num_segments"):
            segment_sums(np.ones(2), np.array([0, 5]), 3)
        with pytest.raises(ValueError, match="num_segments"):
            segment_sums(np.ones(2), np.array([-1, 0]), 3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            segment_sums(np.ones(3), np.array([0, 1]), 2)


class TestEntropySegmented:
    """Each output is bit-equal to entropy() on that segment alone."""

    def test_bit_identical_to_scalar_entropy(self):
        rng = np.random.default_rng(23)
        values, ids, offsets, lengths = _ragged_segments(rng, 150)
        got = entropy_segmented(values, ids, 150)
        want = np.array(
            [entropy(values[o : o + l]) for o, l in zip(offsets, lengths)]
        )
        assert np.array_equal(got, want)

    def test_all_zero_segment_matches_scalar(self):
        """entropy() of an all-zero vector is -0.0; segmented agrees."""
        values = np.array([0.0, 0.0, 0.5, 0.5])
        ids = np.array([0, 0, 1, 1])
        got = entropy_segmented(values, ids, 2)
        assert got[0] == entropy(np.zeros(2))
        assert got[1] == entropy(np.array([0.5, 0.5]))

    def test_single_segment_matches_entropy(self):
        rng = np.random.default_rng(24)
        p = rng.dirichlet(np.ones(40))
        p[p < 0.01] = 0.0
        got = entropy_segmented(p, np.zeros(p.size, dtype=np.int64), 1)
        assert got.shape == (1,)
        assert got[0] == entropy(p)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            entropy_segmented(np.ones(3), np.array([0, 1]), 2)


class TestEntropy:
    def test_uniform_binary_is_one_bit(self):
        assert entropy(np.array([0.5, 0.5])) == pytest.approx(1.0)

    def test_deterministic_is_zero(self):
        assert entropy(np.array([1.0, 0.0])) == pytest.approx(0.0)

    def test_uniform_k_is_log_k(self):
        assert entropy(np.full(8, 1 / 8)) == pytest.approx(3.0)

    @given(st.lists(st.floats(0.001, 1.0), min_size=2, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, weights):
        p = np.array(weights)
        p /= p.sum()
        h = entropy(p)
        assert -1e-9 <= h <= np.log2(p.size) + 1e-9


class TestMutualInformation:
    def test_independent_is_zero(self):
        # Pr[Π, X] with child innermost; independent uniform bits.
        joint = np.full(4, 0.25)
        assert mutual_information(joint, 2) == pytest.approx(0.0)

    def test_identical_binary_is_one_bit(self):
        joint = np.array([0.5, 0.0, 0.0, 0.5])
        assert mutual_information(joint, 2) == pytest.approx(1.0)

    def test_paper_example_4_4(self):
        # Both maximum joint distributions of Example 4.4 have I = 1.
        left = np.array([[0.5, 0.0], [0.0, 0.5], [0.0, 0.0]]).reshape(-1)
        right = np.array([[0.0, 0.5], [0.2, 0.0], [0.3, 0.0]]).reshape(-1)
        assert mutual_information(left, 2) == pytest.approx(1.0)
        assert mutual_information(right, 2) == pytest.approx(1.0)

    def test_never_negative(self):
        rng = np.random.default_rng(5)
        for _ in range(30):
            joint = rng.dirichlet(np.ones(12))
            assert mutual_information(joint, 3) >= 0.0

    def test_bounded_by_min_entropy(self):
        rng = np.random.default_rng(6)
        for _ in range(30):
            joint = rng.dirichlet(np.ones(8))
            matrix = joint.reshape(4, 2)
            hx = entropy(matrix.sum(axis=0))
            hp = entropy(matrix.sum(axis=1))
            assert mutual_information(joint, 2) <= min(hx, hp) + 1e-9

    def test_from_table(self, binary_table):
        mi_ab = mutual_information_from_table(binary_table, "b", ["a"])
        mi_ac = mutual_information_from_table(binary_table, "c", ["a"])
        assert mi_ab > 0.3  # b strongly follows a
        assert mi_ac < 0.05  # c independent of a

    def test_from_table_empty_parents(self, binary_table):
        assert mutual_information_from_table(binary_table, "a", []) == 0.0


class TestConditionalEntropy:
    def test_chain_rule(self):
        rng = np.random.default_rng(7)
        joint = rng.dirichlet(np.ones(6))
        h_joint = entropy(joint)
        h_parent = entropy(joint.reshape(-1, 2).sum(axis=1))
        assert conditional_entropy(joint, 2) == pytest.approx(h_joint - h_parent)

    def test_deterministic_child_zero(self):
        joint = np.array([0.5, 0.0, 0.0, 0.5])
        assert conditional_entropy(joint, 2) == pytest.approx(0.0)


class TestKL:
    def test_zero_for_identical(self):
        p = np.array([0.3, 0.7])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_infinite_when_support_missing(self):
        assert kl_divergence(np.array([0.5, 0.5]), np.array([1.0, 0.0])) == float(
            "inf"
        )

    def test_nonnegative(self):
        rng = np.random.default_rng(8)
        for _ in range(30):
            p = rng.dirichlet(np.ones(6))
            q = rng.dirichlet(np.ones(6))
            assert kl_divergence(p, q) >= -1e-9

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence(np.ones(2) / 2, np.ones(3) / 3)


class TestTVD:
    def test_identical_is_zero(self):
        p = np.array([0.2, 0.8])
        assert total_variation_distance(p, p) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation_distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)

    def test_symmetric(self):
        rng = np.random.default_rng(9)
        p = rng.dirichlet(np.ones(5))
        q = rng.dirichlet(np.ones(5))
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p)
        )

    @given(st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_bounds_property(self, seed):
        rng = np.random.default_rng(seed)
        p = rng.dirichlet(np.ones(6))
        q = rng.dirichlet(np.ones(6))
        assert 0.0 <= total_variation_distance(p, q) <= 1.0
