"""Numeric gradient checks for the SVM objectives (optimizer correctness)."""

import numpy as np
import pytest

from repro.svm.linear import HuberSVM, LinearSVM, _smoothed_hinge


def _numeric_gradient(fn, w, fd_step=1e-6):
    grad = np.zeros_like(w)
    for i in range(w.size):
        up = w.copy()
        down = w.copy()
        up[i] += fd_step
        down[i] -= fd_step
        grad[i] = (fn(up) - fn(down)) / (2 * fd_step)
    return grad


@pytest.fixture
def xy(rng):
    n, p = 200, 6
    X = rng.standard_normal((n, p)) / np.sqrt(p)
    w_true = rng.standard_normal(p)
    y = np.sign(X @ w_true + 0.1 * rng.standard_normal(n))
    y[y == 0] = 1.0
    return X, y


class TestSmoothedHinge:
    def test_zero_above_corner(self):
        value, grad = _smoothed_hinge(np.array([1.5, 2.0]), 0.1)
        assert np.all(value == 0.0)
        assert np.all(grad == 0.0)

    def test_linear_below_corner(self):
        value, grad = _smoothed_hinge(np.array([-1.0]), 0.1)
        assert grad[0] == -1.0
        assert value[0] == pytest.approx(2.0)

    def test_continuous_at_boundaries(self):
        delta = 0.1
        fd_step = 1e-9
        lo, _ = _smoothed_hinge(np.array([1.0 - delta - fd_step]), delta)
        hi, _ = _smoothed_hinge(np.array([1.0 - delta + fd_step]), delta)
        assert lo[0] == pytest.approx(hi[0], abs=1e-6)

    def test_derivative_matches_numeric(self):
        delta = 0.05
        margins = np.linspace(0.5, 1.5, 21)
        _, grad = _smoothed_hinge(margins, delta)
        fd_step = 1e-7
        up, _ = _smoothed_hinge(margins + fd_step, delta)
        down, _ = _smoothed_hinge(margins - fd_step, delta)
        numeric = (up - down) / (2 * fd_step)
        assert np.allclose(grad, numeric, atol=1e-4)


class TestObjectiveGradients:
    def test_linear_svm_gradient(self, xy, rng):
        X, y = xy
        model = LinearSVM(C=1.0, smoothing=1e-2)
        delta = model.smoothing

        def objective_value(w):
            margins = y * (X @ w)
            loss, _ = _smoothed_hinge(margins, delta)
            return 0.5 * w @ w + model.C * loss.sum()

        def objective_grad(w):
            margins = y * (X @ w)
            _, grad_margin = _smoothed_hinge(margins, delta)
            return w + model.C * (X.T @ (grad_margin * y))

        w = rng.standard_normal(X.shape[1]) * 0.3
        assert np.allclose(
            objective_grad(w), _numeric_gradient(objective_value, w), atol=1e-4
        )

    def test_huber_svm_gradient(self, xy, rng):
        X, y = xy
        model = HuberSVM(lam=0.05, huber_h=0.5)
        n = X.shape[0]
        b = rng.standard_normal(X.shape[1])

        def objective_value(w):
            margins = y * (X @ w)
            loss, _ = model._huber_loss(margins)
            return loss.mean() + 0.5 * model.lam * (w @ w) + (b @ w) / n

        def objective_grad(w):
            margins = y * (X @ w)
            _, grad_margin = model._huber_loss(margins)
            return (X.T @ (grad_margin * y)) / n + model.lam * w + b / n

        w = rng.standard_normal(X.shape[1]) * 0.3
        assert np.allclose(
            objective_grad(w), _numeric_gradient(objective_value, w), atol=1e-4
        )

    def test_huber_loss_continuity(self):
        model = HuberSVM(lam=0.1, huber_h=0.5)
        fd_step = 1e-9
        for corner in (0.5, 1.5):
            lo, _ = model._huber_loss(np.array([corner - fd_step]))
            hi, _ = model._huber_loss(np.array([corner + fd_step]))
            assert lo[0] == pytest.approx(hi[0], abs=1e-6)
