"""SVM substrate: featurization, hinge/Huber trainers."""

import numpy as np
import pytest

from repro.data.attribute import Attribute
from repro.data.table import Table
from repro.svm.features import BinaryTask, featurize
from repro.svm.linear import HuberSVM, LinearSVM, misclassification_rate


def _task_table(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    x1 = rng.integers(0, 2, n)
    x2 = rng.integers(0, 3, n)
    label = ((x1 == 1) | (x2 == 2)).astype(np.int64)
    label = np.where(rng.random(n) < 0.95, label, 1 - label)
    attrs = [
        Attribute.binary("x1"),
        Attribute("x2", ("a", "b", "c")),
        Attribute.binary("y", ("neg", "pos")),
    ]
    return Table(attrs, {"x1": x1, "x2": x2, "y": label})


class TestFeaturize:
    def test_shapes(self):
        table = _task_table()
        task = BinaryTask("t", "y", ("pos",))
        X, y = featurize(table, task)
        # x1 (2) + x2 (3) + bias = 6 columns; target excluded.
        assert X.shape == (table.n, 6)
        assert set(np.unique(y)) == {-1.0, 1.0}

    def test_rows_unit_norm(self):
        X, _ = featurize(_task_table(), BinaryTask("t", "y", ("pos",)))
        norms = np.linalg.norm(X, axis=1)
        assert np.allclose(norms, 1.0)

    def test_labels_match_positive_set(self):
        table = _task_table()
        task = BinaryTask("t", "y", ("pos",))
        _, y = featurize(table, task)
        assert ((y > 0) == (table.column("y") == 1)).all()

    def test_multi_value_positive_set(self):
        table = _task_table()
        task = BinaryTask("t", "x2", ("b", "c"))
        y = task.labels(table)
        assert ((y > 0) == (table.column("x2") >= 1)).all()


class TestLinearSVM:
    def test_learns_separable_concept(self):
        table = _task_table()
        task = BinaryTask("t", "y", ("pos",))
        X, y = featurize(table, task)
        model = LinearSVM().fit(X, y)
        assert misclassification_rate(model, X, y) < 0.12

    def test_generalizes(self):
        train = _task_table(seed=0)
        test = _task_table(seed=1)
        task = BinaryTask("t", "y", ("pos",))
        Xtr, ytr = featurize(train, task)
        Xte, yte = featurize(test, task)
        model = LinearSVM().fit(Xtr, ytr)
        assert misclassification_rate(model, Xte, yte) < 0.12

    def test_beats_majority(self):
        table = _task_table()
        task = BinaryTask("t", "y", ("pos",))
        X, y = featurize(table, task)
        base = min((y > 0).mean(), (y < 0).mean())
        model = LinearSVM().fit(X, y)
        assert misclassification_rate(model, X, y) < base

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearSVM().predict(np.zeros((1, 3)))

    def test_invalid_C(self):
        with pytest.raises(ValueError):
            LinearSVM(C=0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros((3, 2)), np.zeros(4))


class TestHuberSVM:
    def test_learns_separable_concept(self):
        table = _task_table()
        task = BinaryTask("t", "y", ("pos",))
        X, y = featurize(table, task)
        model = HuberSVM(lam=1e-3).fit(X, y)
        assert misclassification_rate(model, X, y) < 0.12

    def test_perturbation_shifts_solution(self):
        table = _task_table()
        X, y = featurize(table, BinaryTask("t", "y", ("pos",)))
        clean = HuberSVM(lam=1e-2).fit(X, y).weights
        rng = np.random.default_rng(0)
        shifted = (
            HuberSVM(lam=1e-2)
            .fit(X, y, perturbation=rng.standard_normal(X.shape[1]) * 50.0)
            .weights
        )
        assert not np.allclose(clean, shifted)

    def test_extra_regularization_shrinks_weights(self):
        table = _task_table()
        X, y = featurize(table, BinaryTask("t", "y", ("pos",)))
        loose = HuberSVM(lam=1e-3).fit(X, y).weights
        tight = HuberSVM(lam=1e-3).fit(X, y, extra_regularization=10.0).weights
        assert np.linalg.norm(tight) < np.linalg.norm(loose)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HuberSVM(lam=0.0)
        with pytest.raises(ValueError):
            HuberSVM(huber_h=0.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            HuberSVM().predict(np.zeros((1, 3)))
