"""Privacy accountant: sequential composition bookkeeping."""

import pytest

from repro.dp.accountant import (
    PrivacyAccountant,
    PrivacyBudgetError,
    scale_for_group_privacy,
    split_epsilon,
    split_epsilon_even,
)


class TestAccountant:
    def test_charges_accumulate(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("a", 0.3)
        acc.charge("b", 0.2)
        assert acc.spent == pytest.approx(0.5)
        assert acc.remaining == pytest.approx(0.5)

    def test_overspend_rejected(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("a", 0.9)
        with pytest.raises(PrivacyBudgetError, match="exceeds remaining"):
            acc.charge("b", 0.2)

    def test_overspend_leaves_ledger_unchanged(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("a", 0.9)
        try:
            acc.charge("b", 0.2)
        except PrivacyBudgetError:
            pass
        assert acc.spent == pytest.approx(0.9)
        assert len(acc.ledger) == 1

    def test_exact_spend_allowed(self):
        acc = PrivacyAccountant(1.0)
        for _ in range(10):
            acc.charge("x", 0.1)
        assert acc.remaining == pytest.approx(0.0, abs=1e-9)

    def test_float_tolerance(self):
        # 7 charges of 1/7 must not trip on rounding.
        acc = PrivacyAccountant(1.0)
        for _ in range(7):
            acc.charge("x", 1.0 / 7.0)

    def test_nonpositive_total_rejected(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(0.0)

    def test_nonpositive_charge_rejected(self):
        acc = PrivacyAccountant(1.0)
        with pytest.raises(ValueError):
            acc.charge("x", 0.0)

    def test_ledger_records_labels(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("network", 0.3)
        acc.charge("marginal[a]", 0.35)
        labels = [label for label, _ in acc.ledger]
        assert labels == ["network", "marginal[a]"]

    def test_assert_exhausted(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("x", 1.0)
        acc.assert_exhausted()

    def test_assert_exhausted_raises_when_unspent(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("x", 0.5)
        with pytest.raises(PrivacyBudgetError, match="not exhausted"):
            acc.assert_exhausted()

    def test_spend_is_the_primary_name_and_charge_aliases_it(self):
        acc = PrivacyAccountant(1.0)
        granted = acc.spend("a", 0.25)
        assert granted == 0.25
        assert PrivacyAccountant.charge is PrivacyAccountant.spend
        acc.charge("b", 0.25)
        assert acc.spent == pytest.approx(0.5)

    def test_overspend_is_a_value_error(self):
        acc = PrivacyAccountant(1.0)
        acc.spend("a", 0.9)
        with pytest.raises(ValueError):
            acc.spend("b", 0.2)
        # ... and still a RuntimeError for historical handlers.
        with pytest.raises(RuntimeError):
            acc.spend("b", 0.2)

    def test_exact_boundary_spend_then_any_more_raises(self):
        acc = PrivacyAccountant(2.0)
        acc.spend("all", 2.0)
        assert acc.remaining == pytest.approx(0.0, abs=1e-12)
        acc.assert_exhausted()
        with pytest.raises(PrivacyBudgetError):
            acc.spend("extra", 1e-6)

    def test_split_method_matches_module_function(self):
        acc = PrivacyAccountant(1.7)
        assert acc.split((0.3,), remainder=True) == split_epsilon(
            1.7, (0.3,), remainder=True
        )
        # split() only computes shares; nothing is recorded.
        assert acc.spent == 0.0


class TestSplitEpsilon:
    def test_beta_remainder_split_is_bit_identical_to_inline_form(self):
        # PrivBayes' historical split: epsilon1 = beta*eps; epsilon2 = eps - epsilon1.
        for eps in (0.1, 0.8, 1.0, 1.6, 3.2, 10.0):
            for beta in (0.1, 0.3, 0.5, 0.85):
                e1, e2 = split_epsilon(eps, (beta,), remainder=True)
                # repro: allow[PRIV001] -- the historical inline split is the reference this bit-identity test compares against
                assert e1 == beta * eps
                assert e2 == eps - beta * eps  # repro: allow[PRIV001] -- the historical inline split is the reference this bit-identity test compares against

    def test_explicit_fractions_split(self):
        shares = split_epsilon(2.0, (0.25, 0.25, 0.5))
        assert shares == (0.5, 0.5, 1.0)

    def test_fractions_summing_past_one_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            split_epsilon(1.0, (0.7, 0.7))

    def test_nonpositive_inputs_rejected(self):
        with pytest.raises(ValueError):
            split_epsilon(0.0, (0.5,))
        with pytest.raises(ValueError):
            split_epsilon(1.0, (-0.1,))
        with pytest.raises(ValueError):
            split_epsilon(1.0, ())

    def test_full_fraction_leaves_no_remainder(self):
        with pytest.raises(ValueError, match="remainder"):
            split_epsilon(1.0, (1.0,), remainder=True)

    def test_even_split_is_exact_division(self):
        for eps in (0.5, 1.0, 1.6):
            for parts in (1, 2, 4, 7):
                assert split_epsilon_even(eps, parts) == eps / parts  # repro: allow[PRIV001] -- plain division is the reference this bit-identity test compares against

    def test_even_split_validation(self):
        with pytest.raises(ValueError):
            split_epsilon_even(-1.0, 2)
        with pytest.raises(ValueError):
            split_epsilon_even(1.0, 0)


class TestGroupPrivacy:
    def test_scale_divides_by_group_size(self):
        assert scale_for_group_privacy(1.6, 4) == 1.6 / 4
        assert scale_for_group_privacy(0.8, 1) == 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_for_group_privacy(0.0, 3)
        with pytest.raises(ValueError):
            scale_for_group_privacy(1.0, 0)


class TestThreadSafety:
    def test_sixteen_threads_never_overgrant(self):
        """The concurrent-overdraw race: grants must sum to <= the budget.

        The historical spend was an unsynchronized check-then-append; 16
        threads racing could each pass the check before any append landed
        and jointly overdraw.  With the lock, at most budget/charge
        charges are granted in total and every loser raises
        PrivacyBudgetError.
        """
        import threading

        acc = PrivacyAccountant(1.0)
        barrier = threading.Barrier(16)
        granted, refused = [], []
        lock = threading.Lock()

        def racer():
            barrier.wait()
            for _ in range(4):  # 16 threads x 4 x 0.125 = 8.0 attempted
                try:
                    amount = acc.spend("race", 0.125)
                except PrivacyBudgetError:
                    with lock:
                        refused.append(1)
                else:
                    with lock:
                        granted.append(amount)

        threads = [threading.Thread(target=racer) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(granted) <= 1.0 + 1e-9
        assert len(granted) == 8  # exactly budget / charge
        assert len(refused) == 16 * 4 - 8
        # remaining stays consistent with the grants actually made.
        assert acc.spent == pytest.approx(sum(granted))
        assert acc.remaining == pytest.approx(1.0 - sum(granted))
        assert len(acc.ledger) == len(granted)

    def test_spent_is_running_total_not_resum(self):
        """spent tracks the ledger exactly (incremental == left-to-right sum)."""
        acc = PrivacyAccountant(1.0)
        for _ in range(7):
            acc.spend("x", 1.0 / 7.0)
        assert acc.spent == sum(amount for _, amount in acc.ledger)

    def test_pickle_roundtrip_recreates_lock(self):
        import pickle

        acc = PrivacyAccountant(1.0)
        acc.spend("a", 0.25)
        clone = pickle.loads(pickle.dumps(acc))
        assert clone.total_epsilon == 1.0
        assert clone.spent == acc.spent
        assert clone.ledger == acc.ledger
        clone.spend("b", 0.5)  # the restored lock works
        assert clone.remaining == pytest.approx(0.25)

    def test_prefilled_ledger_seeds_running_total(self):
        acc = PrivacyAccountant(1.0, [("replayed", 0.3), ("replayed", 0.2)])
        assert acc.spent == pytest.approx(0.5)
        with pytest.raises(PrivacyBudgetError):
            acc.spend("over", 0.6)


class TestUnwind:
    def test_unwind_restores_budget(self):
        acc = PrivacyAccountant(1.0)
        acc.spend("keep", 0.3)
        acc.spend("rollback", 0.5)
        acc.unwind()
        assert acc.spent == pytest.approx(0.3)
        assert [label for label, _ in acc.ledger] == ["keep"]
        acc.spend("again", 0.7)  # the unwound ε is spendable again

    def test_unwind_matches_resum_bitwise(self):
        acc = PrivacyAccountant(1.0)
        for _ in range(7):
            acc.spend("x", 1.0 / 7.0)
        acc.unwind(2)
        assert acc.spent == sum(amount for _, amount in acc.ledger)

    def test_unwind_validation(self):
        acc = PrivacyAccountant(1.0)
        acc.spend("a", 0.1)
        with pytest.raises(ValueError, match="cannot unwind"):
            acc.unwind(2)
        with pytest.raises(ValueError):
            acc.unwind(-1)
