"""Privacy accountant: sequential composition bookkeeping."""

import pytest

from repro.dp.accountant import PrivacyAccountant, PrivacyBudgetError


class TestAccountant:
    def test_charges_accumulate(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("a", 0.3)
        acc.charge("b", 0.2)
        assert acc.spent == pytest.approx(0.5)
        assert acc.remaining == pytest.approx(0.5)

    def test_overspend_rejected(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("a", 0.9)
        with pytest.raises(PrivacyBudgetError, match="exceeds remaining"):
            acc.charge("b", 0.2)

    def test_overspend_leaves_ledger_unchanged(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("a", 0.9)
        try:
            acc.charge("b", 0.2)
        except PrivacyBudgetError:
            pass
        assert acc.spent == pytest.approx(0.9)
        assert len(acc.ledger) == 1

    def test_exact_spend_allowed(self):
        acc = PrivacyAccountant(1.0)
        for _ in range(10):
            acc.charge("x", 0.1)
        assert acc.remaining == pytest.approx(0.0, abs=1e-9)

    def test_float_tolerance(self):
        # 7 charges of 1/7 must not trip on rounding.
        acc = PrivacyAccountant(1.0)
        for _ in range(7):
            acc.charge("x", 1.0 / 7.0)

    def test_nonpositive_total_rejected(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(0.0)

    def test_nonpositive_charge_rejected(self):
        acc = PrivacyAccountant(1.0)
        with pytest.raises(ValueError):
            acc.charge("x", 0.0)

    def test_ledger_records_labels(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("network", 0.3)
        acc.charge("marginal[a]", 0.35)
        labels = [label for label, _ in acc.ledger]
        assert labels == ["network", "marginal[a]"]

    def test_assert_exhausted(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("x", 1.0)
        acc.assert_exhausted()

    def test_assert_exhausted_raises_when_unspent(self):
        acc = PrivacyAccountant(1.0)
        acc.charge("x", 0.5)
        with pytest.raises(PrivacyBudgetError, match="not exhausted"):
            acc.assert_exhausted()
