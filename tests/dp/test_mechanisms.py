"""Laplace and exponential mechanisms: calibration and sampling behaviour."""

import numpy as np
import pytest

from repro.dp.mechanisms import exponential_mechanism, laplace_mechanism, laplace_noise


class TestLaplaceNoise:
    def test_zero_scale_is_noiseless(self):
        noise = laplace_noise(0.0, 100, np.random.default_rng(0))
        assert np.all(noise == 0.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            laplace_noise(-1.0, 10, np.random.default_rng(0))

    def test_empirical_scale(self):
        rng = np.random.default_rng(1)
        noise = laplace_noise(2.0, 200_000, rng)
        # E|Lap(b)| = b; Var = 2b².
        assert abs(np.abs(noise).mean() - 2.0) < 0.05
        assert abs(noise.var() - 8.0) < 0.3

    def test_symmetric(self):
        rng = np.random.default_rng(2)
        noise = laplace_noise(1.0, 200_000, rng)
        assert abs(noise.mean()) < 0.02


class TestLaplaceMechanism:
    def test_shape_preserved(self):
        rng = np.random.default_rng(3)
        values = np.zeros((4, 5))
        out = laplace_mechanism(values, 1.0, 1.0, rng)
        assert out.shape == (4, 5)

    def test_noise_scale_matches_sensitivity_over_epsilon(self):
        rng = np.random.default_rng(4)
        out = laplace_mechanism(np.zeros(200_000), sensitivity=3.0, epsilon=1.5, rng=rng)
        assert abs(np.abs(out).mean() - 2.0) < 0.05  # scale = 3/1.5 = 2

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            laplace_mechanism(np.zeros(3), 1.0, 0.0, np.random.default_rng(0))

    def test_invalid_sensitivity(self):
        with pytest.raises(ValueError):
            laplace_mechanism(np.zeros(3), -1.0, 1.0, np.random.default_rng(0))


class TestExponentialMechanism:
    def test_sampling_proportional_to_exp_scores(self):
        rng = np.random.default_rng(5)
        scores = np.array([0.0, 1.0])
        sensitivity, epsilon = 1.0, 2.0
        # P(1)/P(0) = exp((1-0) * eps / (2*sens)) = e.
        draws = np.array(
            [
                exponential_mechanism(scores, sensitivity, epsilon, rng)
                for _ in range(30_000)
            ]
        )
        ratio = (draws == 1).sum() / max((draws == 0).sum(), 1)
        assert abs(ratio - np.e) / np.e < 0.12

    def test_probabilities_out(self):
        out = []
        exponential_mechanism(
            np.array([0.0, 1.0]), 1.0, 2.0, np.random.default_rng(0), out
        )
        probs = out[0]
        assert np.isclose(probs.sum(), 1.0)
        assert probs[1] / probs[0] == pytest.approx(np.e)

    def test_zero_sensitivity_picks_argmax(self):
        idx = exponential_mechanism(
            np.array([0.3, 0.9, 0.1]), 0.0, 1.0, np.random.default_rng(0)
        )
        assert idx == 1

    def test_returns_valid_index(self):
        rng = np.random.default_rng(6)
        for _ in range(50):
            idx = exponential_mechanism(np.array([1.0, 2.0, 3.0]), 1.0, 0.1, rng)
            assert idx in (0, 1, 2)

    def test_numerical_stability_with_huge_scores(self):
        idx = exponential_mechanism(
            np.array([1e6, 1e6 + 1]), 1e-6, 1.0, np.random.default_rng(0)
        )
        assert idx in (0, 1)

    def test_empty_scores_rejected(self):
        with pytest.raises(ValueError):
            exponential_mechanism(np.array([]), 1.0, 1.0, np.random.default_rng(0))

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            exponential_mechanism(np.array([1.0]), 1.0, -1.0, np.random.default_rng(0))

    def test_small_epsilon_flattens_distribution(self):
        out = []
        exponential_mechanism(
            np.array([0.0, 1.0]), 1.0, 1e-6, np.random.default_rng(0), out
        )
        probs = out[0]
        assert abs(probs[0] - 0.5) < 1e-3
