"""Shared fixtures: small deterministic tables used across the suite."""

import numpy as np
import pytest

from repro.data.attribute import Attribute, AttributeKind
from repro.data.table import Table
from repro.data.taxonomy import TaxonomyTree


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def binary_table(rng):
    """Four correlated binary attributes, n = 2000."""
    n = 2000
    a = rng.integers(0, 2, n)
    b = np.where(rng.random(n) < 0.85, a, 1 - a)  # strongly follows a
    c = rng.integers(0, 2, n)
    d = np.where(rng.random(n) < 0.7, b ^ c, rng.integers(0, 2, n))
    attrs = [Attribute.binary(name) for name in "abcd"]
    return Table(attrs, {"a": a, "b": b, "c": c, "d": d})


@pytest.fixture
def mixed_table(rng):
    """Binary + categorical + taxonomied attributes, n = 1500."""
    n = 1500
    color_tax = TaxonomyTree.from_groups(
        ("red", "orange", "blue", "cyan"),
        (("warm", ("red", "orange")), ("cold", ("blue", "cyan"))),
    )
    color = rng.integers(0, 4, n)
    flag = (color < 2).astype(np.int64)
    flag = np.where(rng.random(n) < 0.9, flag, 1 - flag)
    size = rng.integers(0, 3, n)
    attrs = [
        Attribute(
            "color",
            ("red", "orange", "blue", "cyan"),
            AttributeKind.CATEGORICAL,
            taxonomy=color_tax,
        ),
        Attribute.binary("warm_flag"),
        Attribute("size", ("S", "M", "L")),
    ]
    return Table(attrs, {"color": color, "warm_flag": flag, "size": size})
