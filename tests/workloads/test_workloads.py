"""Workloads: Q_alpha enumeration, TVD aggregation, SVM task definitions."""

import math

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.workloads import (
    all_alpha_marginals,
    average_variation_distance,
    synthetic_marginals,
    tasks_for,
)
from repro.workloads.svm_tasks import SVM_TASKS


class TestQAlpha:
    def test_count_is_binomial(self, binary_table):
        assert len(all_alpha_marginals(binary_table, 2)) == math.comb(4, 2)
        assert len(all_alpha_marginals(binary_table, 3)) == math.comb(4, 3)

    def test_alpha_bounds(self, binary_table):
        with pytest.raises(ValueError):
            all_alpha_marginals(binary_table, 0)
        with pytest.raises(ValueError):
            all_alpha_marginals(binary_table, 5)

    def test_marginals_are_unique(self, binary_table):
        workload = all_alpha_marginals(binary_table, 2)
        assert len(set(workload)) == len(workload)


class TestEvaluation:
    def test_zero_distance_for_exact_answers(self, binary_table):
        workload = all_alpha_marginals(binary_table, 2)
        released = synthetic_marginals(binary_table, workload)
        assert average_variation_distance(
            binary_table, released, workload
        ) == pytest.approx(0.0)

    def test_synthetic_evaluation_positive_for_noise(self, binary_table, rng):
        from repro.core.privbayes import PrivBayes

        workload = all_alpha_marginals(binary_table, 2)
        synthetic = PrivBayes(epsilon=0.1).fit_sample(binary_table, rng=rng)
        released = synthetic_marginals(synthetic, workload)
        err = average_variation_distance(binary_table, released, workload)
        assert err > 0.0

    def test_empty_workload_rejected(self, binary_table):
        with pytest.raises(ValueError):
            average_variation_distance(binary_table, {}, [])


class TestSVMTasks:
    @pytest.mark.parametrize("dataset", ["nltcs", "acs", "adult", "br2000"])
    def test_four_tasks_each(self, dataset):
        table = load_dataset(dataset, n=300, seed=0)
        tasks = tasks_for(dataset, table)
        assert len(tasks) == 4

    @pytest.mark.parametrize("dataset", ["nltcs", "acs", "adult", "br2000"])
    def test_labels_are_binary_and_nondegenerate(self, dataset):
        table = load_dataset(dataset, n=4000, seed=0)
        for task in tasks_for(dataset, table):
            labels = task.labels(table)
            assert set(np.unique(labels)) == {-1.0, 1.0}, task.name
            positive_rate = (labels > 0).mean()
            assert 0.02 < positive_rate < 0.98, (task.name, positive_rate)

    def test_adult_education_binarization(self):
        table = load_dataset("adult", n=2000, seed=0)
        task = [t for t in tasks_for("adult", table) if "education" in t.name][0]
        labels = task.labels(table)
        education = table.column("education")
        attr = table.attribute("education")
        postsec = {
            attr.values.index(v)
            for v in ("Bachelors", "Masters", "Prof-school", "Doctorate")
        }
        assert ((labels > 0) == np.isin(education, list(postsec))).all()

    def test_br2000_age_threshold(self):
        table = load_dataset("br2000", n=2000, seed=0)
        task = [t for t in tasks_for("br2000", table) if "age" in t.name][0]
        labels = task.labels(table)
        # Positive iff the age bin's lower edge >= 18.75 (bins of 6.25 yrs).
        assert ((labels > 0) == (table.column("age") >= 3)).all()

    def test_unknown_dataset(self, binary_table):
        with pytest.raises(ValueError, match="no SVM tasks"):
            tasks_for("unknown", binary_table)
