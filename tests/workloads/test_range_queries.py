"""Range-count query workloads over binned attributes."""

import numpy as np
import pytest

from repro.core.privbayes import PrivBayes
from repro.datasets import load_adult
from repro.workloads.range_queries import (
    RangeQuery,
    average_range_error,
    ordered_attributes,
    random_range_queries,
)


@pytest.fixture(scope="module")
def adult():
    return load_adult(n=3000, seed=0)


class TestRangeQuery:
    def test_count_full_range_is_n(self, adult):
        attr = adult.attribute("age")
        query = RangeQuery((("age", 0, attr.size - 1),))
        assert query.count(adult) == adult.n
        assert query.fraction(adult) == pytest.approx(1.0)

    def test_empty_range(self, adult):
        query = RangeQuery((("age", 3, 2),))  # lo > hi: empty
        assert query.count(adult) == 0

    def test_conjunction_is_intersection(self, adult):
        q_age = RangeQuery((("age", 0, 7),))
        q_hours = RangeQuery((("hours_per_week", 0, 7),))
        q_both = RangeQuery((("age", 0, 7), ("hours_per_week", 0, 7)))
        assert q_both.count(adult) <= min(q_age.count(adult), q_hours.count(adult))

    def test_complementary_ranges_partition(self, adult):
        attr = adult.attribute("age")
        low = RangeQuery((("age", 0, 7),)).count(adult)
        high = RangeQuery((("age", 8, attr.size - 1),)).count(adult)
        assert low + high == adult.n


class TestGeneration:
    def test_ordered_attributes_are_continuous(self, adult):
        ordered = ordered_attributes(adult)
        assert "age" in ordered and "hours_per_week" in ordered
        assert "workclass" not in ordered

    def test_random_queries_shape(self, adult):
        queries = random_range_queries(
            adult, 20, dimensions=2, rng=np.random.default_rng(0)
        )
        assert len(queries) == 20
        for q in queries:
            assert len(q.conditions) == 2

    def test_ranges_are_valid(self, adult):
        for q in random_range_queries(
            adult, 50, dimensions=1, rng=np.random.default_rng(1)
        ):
            for name, lo, hi in q.conditions:
                size = adult.attribute(name).size
                assert 0 <= lo <= hi < size

    def test_invalid_count(self, adult):
        with pytest.raises(ValueError):
            random_range_queries(adult, 0)

    def test_invalid_dimensions(self, adult):
        with pytest.raises(ValueError):
            random_range_queries(adult, 5, dimensions=99)

    def test_explicit_attribute_pool(self, adult):
        queries = random_range_queries(
            adult, 10, dimensions=1, rng=np.random.default_rng(2),
            attributes=["age"],
        )
        assert all(q.conditions[0][0] == "age" for q in queries)


class TestEvaluation:
    def test_zero_error_on_identical_tables(self, adult):
        queries = random_range_queries(
            adult, 20, rng=np.random.default_rng(3)
        )
        assert average_range_error(adult, adult, queries) == pytest.approx(0.0)

    def test_error_shrinks_with_budget(self, adult):
        queries = random_range_queries(
            adult, 25, rng=np.random.default_rng(4)
        )

        def err(eps, seed):
            rng = np.random.default_rng(seed)
            synthetic = PrivBayes(epsilon=eps).fit_sample(adult, rng=rng)
            return average_range_error(adult, synthetic, queries)

        loose = np.mean([err(0.05, s) for s in range(3)])
        tight = np.mean([err(5.0, s) for s in range(3)])
        assert tight < loose

    def test_empty_query_list_rejected(self, adult):
        with pytest.raises(ValueError):
            average_range_error(adult, adult, [])
