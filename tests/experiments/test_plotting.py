"""ASCII chart rendering of experiment results."""

import pytest

from repro.experiments.framework import ExperimentResult
from repro.experiments.plotting import render_chart


@pytest.fixture
def result():
    r = ExperimentResult("fig-x", "demo", "epsilon", "error", x=[0.1, 0.4, 1.6])
    r.add("down", [0.9, 0.5, 0.1])
    r.add("flat", [0.5, 0.5, 0.5])
    return r


class TestRenderChart:
    def test_contains_title_and_legend(self, result):
        text = render_chart(result)
        assert "demo" in text
        assert "o=down" in text
        assert "x=flat" in text

    def test_contains_axis_bounds(self, result):
        text = render_chart(result)
        assert "0.9000" in text  # y max
        assert "0.1000" in text  # y min
        assert "0.1" in text and "1.6" in text  # x bounds

    def test_glyphs_plotted(self, result):
        text = render_chart(result, width=30, height=8)
        plot_lines = [l for l in text.splitlines() if "|" in l]
        assert any("o" in l for l in plot_lines)
        assert any("x" in l for l in plot_lines)

    def test_monotone_series_has_monotone_rows(self, result):
        text = render_chart(result, width=30, height=10, logx=True)
        rows = {}
        for i, line in enumerate(l for l in text.splitlines() if "|" in l):
            for j, ch in enumerate(line.split("|", 1)[1]):
                if ch == "o":
                    rows[j] = i
        cols = sorted(rows)
        # Decreasing series: later columns plot on lower rows (larger i).
        assert rows[cols[0]] < rows[cols[-1]]

    def test_log_axis_requires_positive(self):
        r = ExperimentResult("f", "t", "x", "y", x=[0.0, 1.0])
        r.add("s", [1.0, 2.0])
        with pytest.raises(ValueError, match="positive"):
            render_chart(r, logx=True)

    def test_empty_result_rejected(self):
        r = ExperimentResult("f", "t", "x", "y", x=[1])
        with pytest.raises(ValueError, match="no series"):
            render_chart(r)

    def test_constant_series_handled(self):
        r = ExperimentResult("f", "t", "x", "y", x=[1, 2])
        r.add("c", [0.5, 0.5])
        text = render_chart(r)
        assert "c" in text
