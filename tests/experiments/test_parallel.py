"""The sweep-execution engine: cells, seeds, executor, reduction."""

import numpy as np
import pytest

from repro.experiments.framework import stable_series_seed
from repro.experiments.parallel import (
    SweepCell,
    SweepExecutor,
    cell_seed,
    clear_worker_state,
    get_worker_state,
    mean_reduce,
    set_worker_state,
)


def _metric_cell(cell):
    """Top-level (picklable) toy worker: a pure function of the cell."""
    # repro: allow[PRIV001] -- toy worker metric mixes the cell fields, no budget is spent
    return float(cell.rng().random() + cell.epsilon)


def _state_cell(cell):
    """Top-level worker reading fork-inherited state."""
    return get_worker_state("test_parallel.offset") + cell.seed


class TestSweepCell:
    def test_param_lookup_and_default(self):
        cell = SweepCell("nltcs", 0.4, 1, 7, params=(("beta", 0.3),))
        assert cell.param("beta") == 0.3
        assert cell.param("theta") is None
        assert cell.param("theta", 4.0) == 4.0

    def test_rng_is_fresh_and_seed_determined(self):
        cell = SweepCell("nltcs", 0.4, 0, 99)
        first = cell.rng().random(3)
        second = cell.rng().random(3)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(
            first, np.random.default_rng(99).random(3)
        )

    def test_picklable(self):
        import pickle

        cell = SweepCell("acs", 0.1, 2, 5, series="Laplace", params=(("a", 1),))
        assert pickle.loads(pickle.dumps(cell)) == cell


class TestCellSeed:
    def test_pure_arithmetic_without_series(self):
        assert cell_seed(7000, 123) == 7123

    def test_series_offset_is_stable_series_seed(self):
        for name in ("Laplace", "Fourier", "Uniform", "MWEM"):
            assert cell_seed(10, 5, series=name) == 15 + stable_series_seed(
                name
            )

    def test_distinct_series_get_distinct_streams(self):
        assert cell_seed(0, 0, series="Laplace") != cell_seed(
            0, 0, series="Fourier"
        )


class TestSweepExecutor:
    def test_jobs_validated(self):
        with pytest.raises(ValueError):
            SweepExecutor(0)
        with pytest.raises(ValueError):
            SweepExecutor(-2)
        with pytest.raises(ValueError):
            SweepExecutor(1.5)

    def test_serial_map_preserves_order(self):
        cells = [SweepCell("d", 0.1 * i, 0, i) for i in range(6)]
        assert SweepExecutor(1).map(_metric_cell, cells) == [
            _metric_cell(c) for c in cells
        ]

    @pytest.mark.slow
    def test_pool_matches_serial(self):
        cells = [SweepCell("d", 0.1 * i, 0, 1000 + i) for i in range(9)]
        serial = SweepExecutor(1).map(_metric_cell, cells)
        pooled = SweepExecutor(2).map(_metric_cell, cells)
        assert serial == pooled

    @pytest.mark.slow
    def test_pool_is_order_stable_under_shuffled_submission(self):
        cells = [SweepCell("d", 0.1, 0, 50 + i) for i in range(8)]
        shuffled = [cells[i] for i in (3, 0, 7, 1, 6, 2, 5, 4)]
        pooled = SweepExecutor(3).map(_metric_cell, shuffled)
        # Results line up with the submitted cells, not completion order.
        assert pooled == [_metric_cell(c) for c in shuffled]

    @pytest.mark.slow
    def test_pool_inherits_worker_state(self):
        set_worker_state("test_parallel.offset", 1000)
        try:
            cells = [SweepCell("d", 0.1, 0, i) for i in range(5)]
            assert SweepExecutor(2).map(_state_cell, cells) == [
                1000 + i for i in range(5)
            ]
        finally:
            clear_worker_state("test_parallel.offset")

    def test_missing_worker_state_raises(self):
        with pytest.raises(RuntimeError, match="set_worker_state"):
            get_worker_state("test_parallel.never-set")

    def test_clear_worker_state_is_idempotent(self):
        set_worker_state("test_parallel.tmp", object())
        clear_worker_state("test_parallel.tmp")
        clear_worker_state("test_parallel.tmp")  # second clear is a no-op
        with pytest.raises(RuntimeError):
            get_worker_state("test_parallel.tmp")

    def test_harness_sweeps_leave_no_state_behind(self):
        # The figure harnesses must drop their fixtures after the sweep so
        # run_all's dozens of panels don't accumulate in one process.
        from repro.experiments import run_beta_sweep, run_marginals_comparison
        from repro.experiments.parallel import _WORKER_STATE

        run_beta_sweep(
            dataset="nltcs", kind="count", betas=(0.3,), epsilons=(1.6,),
            repeats=1, n=300, max_marginals=3, seed=0,
        )
        run_marginals_comparison(
            dataset="nltcs", alpha=2, epsilons=(1.6,), repeats=1, n=300,
            max_marginals=3, include_full_domain_baselines=False, seed=0,
        )
        assert "sweep_common.context" not in _WORKER_STATE
        assert "fig12_15.state" not in _WORKER_STATE

    def test_single_cell_runs_in_process(self):
        # len(cells) <= 1 short-circuits the pool entirely.
        cells = [SweepCell("d", 0.2, 0, 3)]
        assert SweepExecutor(8).map(_metric_cell, cells) == [
            _metric_cell(cells[0])
        ]


class TestMeanReduce:
    def test_groups_in_submission_order(self):
        assert mean_reduce([1.0, 3.0, 10.0, 20.0], 2) == [2.0, 15.0]

    def test_repeats_of_one(self):
        assert mean_reduce([1.5, 2.5], 1) == [1.5, 2.5]

    def test_mismatched_length_raises(self):
        with pytest.raises(ValueError, match="groups of 3"):
            mean_reduce([1.0, 2.0], 3)

    def test_nonpositive_repeats_raises(self):
        with pytest.raises(ValueError, match="positive"):
            mean_reduce([], 0)

    def test_empty_series_raises_cleanly(self):
        # Zero metrics with positive repeats → no grid points, empty list.
        assert mean_reduce([], 2) == []
