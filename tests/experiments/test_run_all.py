"""The run_all battery driver and result serialization."""

import json

import pytest

from repro.experiments.framework import ExperimentResult
from repro.experiments.run_all import SCALES, battery, main


class TestResultSerialization:
    def test_roundtrip(self):
        result = ExperimentResult("fig-x", "t", "eps", "err", x=[0.1, 0.4])
        result.add("m1", [0.5, 0.25])
        restored = ExperimentResult.from_dict(result.to_dict())
        assert restored.experiment == "fig-x"
        assert restored.series == {"m1": [0.5, 0.25]}

    def test_json_compatible(self):
        result = ExperimentResult("fig-x", "t", "eps", "err", x=[0.1])
        result.add("m", [1.0])
        json.dumps(result.to_dict())  # must not raise


class TestBattery:
    def test_panel_inventory_covers_every_figure(self):
        names = [name for name, _ in battery(SCALES["fast"])]
        for token in ("fig4", "fig5/6", "fig7/8", "fig9", "fig10", "fig11",
                      "fig12-15", "fig16-19"):
            assert any(token in name for name in names), token

    def test_scales_defined(self):
        assert set(SCALES) == {"fast", "medium", "paper"}

    def test_filtered_run_writes_outputs(self, tmp_path, capsys):
        rc = main(
            [
                "--scale", "fast", "--out", str(tmp_path),
                "--only", "fig4-nltcs",
            ]
        )
        assert rc == 0
        assert (tmp_path / "report.txt").exists()
        json_files = list(tmp_path.glob("fig4-nltcs.json"))
        assert len(json_files) == 1
        data = json.loads(json_files[0].read_text())
        assert "NoPrivacy" in data["series"]
