"""The run_all battery driver and result serialization."""

import json

import pytest

from repro.experiments.framework import ExperimentResult
from repro.experiments.run_all import SCALES, battery, main


class TestResultSerialization:
    def test_roundtrip(self):
        result = ExperimentResult("fig-x", "t", "eps", "err", x=[0.1, 0.4])
        result.add("m1", [0.5, 0.25])
        restored = ExperimentResult.from_dict(result.to_dict())
        assert restored.experiment == "fig-x"
        assert restored.series == {"m1": [0.5, 0.25]}

    def test_json_compatible(self):
        result = ExperimentResult("fig-x", "t", "eps", "err", x=[0.1])
        result.add("m", [1.0])
        json.dumps(result.to_dict())  # must not raise

    def test_roundtrip_through_json_text(self):
        """The exact path run_all uses: to_dict → json → from_dict."""
        result = ExperimentResult("fig-y", "t", "eps", "err", x=[0.1, 0.4])
        result.add("PrivBayes", [0.5, 0.25])
        result.add("Laplace", [0.75, 0.5])
        restored = ExperimentResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored.to_dict() == result.to_dict()

    def test_roundtrip_empty_series_dict(self):
        """No series at all round-trips (a panel before any add())."""
        result = ExperimentResult("fig-z", "t", "eps", "err", x=[1])
        restored = ExperimentResult.from_dict(result.to_dict())
        assert restored.series == {}

    def test_from_dict_missing_keys_is_a_clear_error(self):
        with pytest.raises(ValueError, match="missing keys.*series"):
            ExperimentResult.from_dict({"experiment": "fig-x"})
        with pytest.raises(ValueError, match="missing keys"):
            ExperimentResult.from_dict({})

    def test_from_dict_preserves_length_validation(self):
        data = ExperimentResult("fig-x", "t", "eps", "err", x=[1, 2]).to_dict()
        data["series"] = {"m": [0.5]}  # wrong length for two x points
        with pytest.raises(ValueError, match="2 x points"):
            ExperimentResult.from_dict(data)


class TestBattery:
    def test_panel_inventory_covers_every_figure(self):
        names = [name for name, _ in battery(SCALES["fast"])]
        for token in ("fig4", "fig5/6", "fig7/8", "fig9", "fig10", "fig11",
                      "fig12-15", "fig16-19"):
            assert any(token in name for name in names), token

    def test_scales_defined(self):
        assert set(SCALES) == {"fast", "medium", "paper"}

    def test_filtered_run_writes_outputs(self, tmp_path, capsys):
        rc = main(
            [
                "--scale", "fast", "--out", str(tmp_path),
                "--only", "fig4-nltcs",
            ]
        )
        assert rc == 0
        assert (tmp_path / "report.txt").exists()
        json_files = list(tmp_path.glob("fig4-nltcs.json"))
        assert len(json_files) == 1
        data = json.loads(json_files[0].read_text())
        assert "NoPrivacy" in data["series"]

    def test_jobs_flag_rejects_nonpositive(self, capsys):
        with pytest.raises(SystemExit):
            main(["--jobs", "0"])

    @pytest.mark.slow
    def test_jobs_output_matches_serial(self, tmp_path):
        """One pooled sweep panel writes the same JSON as the serial run."""
        serial_dir, pooled_dir = tmp_path / "serial", tmp_path / "pooled"
        for jobs, out_dir in (("1", serial_dir), ("2", pooled_dir)):
            rc = main(
                [
                    "--scale", "fast", "--out", str(out_dir),
                    "--only", "fig9-nltcs-count", "--jobs", jobs,
                ]
            )
            assert rc == 0
        serial = json.loads((serial_dir / "fig9-nltcs-count.json").read_text())
        pooled = json.loads((pooled_dir / "fig9-nltcs-count.json").read_text())
        assert serial == pooled
