"""Shared sweep plumbing: contexts, release defaults, serial/pool parity."""

import numpy as np
import pytest

from repro.experiments import (
    run_beta_sweep,
    run_error_source,
    run_marginals_comparison,
    run_svm_comparison,
    run_theta_sweep,
)
from repro.experiments.parallel import SweepCell, clear_worker_state
from repro.experiments.sweep_common import (
    SWEEP_CONTEXT_KEY,
    SWEEP_TASKS,
    SweepContext,
    activate_sweep_context,
    private_release,
    release_cell,
)


class TestSweepContext:
    def test_count_context_has_workload(self):
        ctx = SweepContext("nltcs", "count", n=600, max_marginals=5, seed=0)
        assert len(ctx.workload) == 5
        assert ctx.is_binary

    def test_svm_context_has_test_split(self):
        ctx = SweepContext("adult", "svm", n=600, seed=0)
        assert not ctx.is_binary
        assert ctx.X_test.shape[0] == ctx.y_test.shape[0]
        assert ctx.X_test.shape[0] == pytest.approx(120, abs=2)  # 20% of 600

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            SweepContext("nltcs", "other", n=100)

    def test_all_four_datasets_configured(self):
        assert set(SWEEP_TASKS) == {"nltcs", "acs", "adult", "br2000"}

    def test_evaluate_count_metric_in_range(self, rng):
        ctx = SweepContext("nltcs", "count", n=800, max_marginals=5, seed=0)
        synthetic = private_release(
            ctx.fit_table, 1.0, 0.3, 4.0, ctx.is_binary, rng
        )
        metric = ctx.evaluate(synthetic)
        assert 0.0 <= metric <= 1.0

    def test_evaluate_svm_metric_in_range(self, rng):
        ctx = SweepContext("br2000", "svm", n=800, seed=0)
        synthetic = private_release(
            ctx.fit_table, 1.0, 0.3, 4.0, ctx.is_binary, rng
        )
        metric = ctx.evaluate(synthetic)
        assert 0.0 <= metric <= 1.0


class TestReleaseCell:
    @pytest.fixture(autouse=True)
    def _clean_context_state(self):
        # These tests drive release_cell by hand (activate without the
        # run_sweep_cells wrapper); don't leave the context pinned.
        yield
        clear_worker_state(SWEEP_CONTEXT_KEY)

    def test_matches_direct_release(self):
        """release_cell(cell) == private_release with the cell's knobs."""
        ctx = SweepContext("nltcs", "count", n=500, max_marginals=4, seed=0)
        activate_sweep_context(ctx)
        cell = SweepCell(
            "nltcs", 0.8, 0, 1234, params=(("beta", 0.3), ("theta", 4.0))
        )
        via_cell = release_cell(cell)
        synthetic = private_release(
            ctx.fit_table, 0.8, 0.3, 4.0, ctx.is_binary,
            np.random.default_rng(1234), scoring_cache=ctx.scoring,
        )
        assert via_cell == ctx.evaluate(synthetic)

    def test_oracle_params_travel_in_cell(self):
        ctx = SweepContext("nltcs", "count", n=400, max_marginals=3, seed=0)
        activate_sweep_context(ctx)
        cell = SweepCell(
            "nltcs", 0.5, 0, 77,
            params=(
                ("beta", 0.3), ("theta", 4.0),
                ("oracle_network", True), ("oracle_marginals", True),
            ),
        )
        metric = release_cell(cell)
        assert 0.0 <= metric <= 1.0


#: Tiny per-figure slices for the serial-vs-pool golden parity matrix.
_PARITY_SLICES = {
    "fig9": lambda jobs: run_beta_sweep(
        dataset="nltcs", kind="count", betas=(0.1, 0.5), epsilons=(0.2, 1.6),
        repeats=2, n=500, max_marginals=4, seed=0, jobs=jobs,
    ),
    "fig10": lambda jobs: run_theta_sweep(
        dataset="nltcs", kind="count", thetas=(1.0, 8.0), epsilons=(1.6,),
        repeats=2, n=500, max_marginals=4, seed=0, jobs=jobs,
    ),
    "fig11": lambda jobs: run_error_source(
        dataset="nltcs", kind="count", epsilons=(1.6,), repeats=2, n=500,
        max_marginals=4, seed=0, jobs=jobs,
    ),
    "fig12-15": lambda jobs: run_marginals_comparison(
        dataset="nltcs", alpha=2, epsilons=(1.6,), repeats=2, n=500,
        max_marginals=4, mwem_rounds=3, seed=0, jobs=jobs,
    ),
    "fig16-19": lambda jobs: run_svm_comparison(
        dataset="nltcs", task_index=0, epsilons=(1.6,), repeats=2, n=500,
        privgene_iterations=3, seed=0, jobs=jobs,
    ),
}


@pytest.mark.slow
class TestSerialPoolParity:
    """jobs>1 must be bit-identical to jobs=1 for every wired figure."""

    def test_fig9_golden_parity_jobs4(self):
        """The headline check: a fig9 slice at jobs=1 vs jobs=4."""
        serial = _PARITY_SLICES["fig9"](1).to_dict()
        pooled = _PARITY_SLICES["fig9"](4).to_dict()
        assert serial == pooled

    @pytest.mark.parametrize(
        "figure", ["fig10", "fig11", "fig12-15", "fig16-19"]
    )
    def test_every_figure_bit_identical_at_jobs2(self, figure):
        serial = _PARITY_SLICES[figure](1).to_dict()
        pooled = _PARITY_SLICES[figure](2).to_dict()
        assert serial == pooled


class TestPrivateRelease:
    def test_binary_release_schema(self, rng):
        ctx = SweepContext("acs", "count", n=500, max_marginals=3, seed=0)
        synthetic = private_release(
            ctx.fit_table, 0.5, 0.3, 4.0, True, rng
        )
        assert synthetic.attribute_names == ctx.fit_table.attribute_names

    def test_oracle_switches_propagate(self, rng):
        ctx = SweepContext("nltcs", "count", n=500, max_marginals=3, seed=0)
        synthetic = private_release(
            ctx.fit_table, 0.5, 0.3, 4.0, True, rng,
            oracle_network=True, oracle_marginals=True,
        )
        assert synthetic.n == ctx.fit_table.n
