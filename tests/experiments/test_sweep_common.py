"""Shared sweep plumbing: contexts, per-dataset release defaults."""

import numpy as np
import pytest

from repro.experiments.sweep_common import (
    SWEEP_TASKS,
    SweepContext,
    private_release,
)


class TestSweepContext:
    def test_count_context_has_workload(self):
        ctx = SweepContext("nltcs", "count", n=600, max_marginals=5, seed=0)
        assert len(ctx.workload) == 5
        assert ctx.is_binary

    def test_svm_context_has_test_split(self):
        ctx = SweepContext("adult", "svm", n=600, seed=0)
        assert not ctx.is_binary
        assert ctx.X_test.shape[0] == ctx.y_test.shape[0]
        assert ctx.X_test.shape[0] == pytest.approx(120, abs=2)  # 20% of 600

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            SweepContext("nltcs", "other", n=100)

    def test_all_four_datasets_configured(self):
        assert set(SWEEP_TASKS) == {"nltcs", "acs", "adult", "br2000"}

    def test_evaluate_count_metric_in_range(self, rng):
        ctx = SweepContext("nltcs", "count", n=800, max_marginals=5, seed=0)
        synthetic = private_release(
            ctx.fit_table, 1.0, 0.3, 4.0, ctx.is_binary, rng
        )
        metric = ctx.evaluate(synthetic)
        assert 0.0 <= metric <= 1.0

    def test_evaluate_svm_metric_in_range(self, rng):
        ctx = SweepContext("br2000", "svm", n=800, seed=0)
        synthetic = private_release(
            ctx.fit_table, 1.0, 0.3, 4.0, ctx.is_binary, rng
        )
        metric = ctx.evaluate(synthetic)
        assert 0.0 <= metric <= 1.0


class TestPrivateRelease:
    def test_binary_release_schema(self, rng):
        ctx = SweepContext("acs", "count", n=500, max_marginals=3, seed=0)
        synthetic = private_release(
            ctx.fit_table, 0.5, 0.3, 4.0, True, rng
        )
        assert synthetic.attribute_names == ctx.fit_table.attribute_names

    def test_oracle_switches_propagate(self, rng):
        ctx = SweepContext("nltcs", "count", n=500, max_marginals=3, seed=0)
        synthetic = private_release(
            ctx.fit_table, 0.5, 0.3, 4.0, True, rng,
            oracle_network=True, oracle_marginals=True,
        )
        assert synthetic.n == ctx.fit_table.n
