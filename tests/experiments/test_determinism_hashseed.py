"""Seeded determinism of the figure experiments, across hash randomization.

The fig 12-15 baselines once derived per-series RNG seeds from
``hash(baseline.name)``, which is salted by ``PYTHONHASHSEED``: the
Laplace/Fourier/MWEM rows of ``benchmarks/latest_results.txt`` drifted from
process to process while the PrivBayes rows stayed bit-stable.  These tests
guard the fix at three levels: the seed derivation itself, a same-process
re-run, and — the loud one — two subprocesses pinned to *different*
``PYTHONHASHSEED`` values whose series must agree bit-for-bit.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.experiments import run_marginals_comparison
from repro.experiments.framework import stable_series_seed

_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Tiny configuration shared by the in-process and subprocess runs.
_TINY = dict(
    dataset="nltcs",
    alpha=2,
    epsilons=(0.8,),
    repeats=1,
    n=200,
    max_marginals=4,
    include_full_domain_baselines=False,
    seed=0,
)

_SUBPROCESS_SNIPPET = """
import hashlib
import json

import numpy as np

from repro.core.privbayes import PrivBayes
from repro.datasets import load_dataset
from repro.experiments import run_marginals_comparison

result = run_marginals_comparison(**{tiny!r})
payload = dict(result.series)

table = load_dataset("nltcs", n=300, seed=3)
synthetic = PrivBayes(
    epsilon=1.0, k=2, first_attribute=table.attribute_names[0]
).fit_sample(table, rng=np.random.default_rng(11))
digest = hashlib.sha256()
for name in synthetic.attribute_names:
    digest.update(name.encode())
    digest.update(np.ascontiguousarray(synthetic.column(name)).tobytes())
payload["__fit_sample_sha256__"] = digest.hexdigest()
print(json.dumps(payload, sort_keys=True))
"""


def test_stable_series_seed_is_fixed_by_specification():
    # CRC32 of the exact baseline names; constants independently computable.
    assert stable_series_seed("Laplace") == 52
    assert stable_series_seed("Fourier") == 223
    assert stable_series_seed("Uniform") == 459
    assert 0 <= stable_series_seed("anything at all") < 1000


def test_marginals_comparison_is_deterministic_in_process():
    first = run_marginals_comparison(**_TINY)
    second = run_marginals_comparison(**_TINY)
    assert first.series == second.series


def test_marginals_comparison_identical_across_hashseeds():
    """Two processes with different PYTHONHASHSEED emit identical series.

    This is the regression the in-process test cannot see: ``hash()`` is
    stable within one interpreter, so only a fresh process with a different
    salt exposes a hash-derived seed.  Any experiment that reintroduces one
    fails here loudly instead of silently dirtying benchmark diffs.
    """
    snippet = _SUBPROCESS_SNIPPET.format(tiny=_TINY)
    outputs = []
    for hashseed in ("0", "424242"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = _SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", snippet],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1]
    assert "PrivBayes" in outputs[0] and "Laplace" in outputs[0]
