"""Seeded determinism of the figure experiments, across hash randomization.

The fig 12-15 baselines once derived per-series RNG seeds from
``hash(baseline.name)``, which is salted by ``PYTHONHASHSEED``: the
Laplace/Fourier/MWEM rows of ``benchmarks/latest_results.txt`` drifted from
process to process while the PrivBayes rows stayed bit-stable.  These tests
guard the fix at three levels: the seed derivation itself, a same-process
re-run, and — the loud one — two subprocesses pinned to *different*
``PYTHONHASHSEED`` values whose series must agree bit-for-bit.

The process-pool sweep engine (:mod:`repro.experiments.parallel`) adds a
fourth surface: per-cell seeds must be a pure function of (series name,
cell index) — independent of worker count, submission order and the hash
salt.  The subprocess payload therefore also carries a ``jobs=2`` fig9
slice and a grid of :func:`cell_seed` values.
"""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import run_marginals_comparison
from repro.experiments.framework import stable_series_seed
from repro.experiments.parallel import SweepCell, SweepExecutor, cell_seed

_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Tiny configuration shared by the in-process and subprocess runs.
_TINY = dict(
    dataset="nltcs",
    alpha=2,
    epsilons=(0.8,),
    repeats=1,
    n=200,
    max_marginals=4,
    include_full_domain_baselines=False,
    seed=0,
)

_SUBPROCESS_SNIPPET = """
import hashlib
import json

import numpy as np

from repro.core.privbayes import PrivBayes
from repro.datasets import load_dataset
from repro.experiments import run_beta_sweep, run_marginals_comparison
from repro.experiments.parallel import cell_seed

result = run_marginals_comparison(**{tiny!r})
payload = dict(result.series)

fig9 = run_beta_sweep(
    dataset="nltcs", kind="count", betas=(0.1, 0.5), epsilons=(0.8,),
    repeats=1, n=200, max_marginals=3, seed=0, jobs=2,
)
payload["__fig9_jobs2__"] = fig9.series
payload["__cell_seeds__"] = [
    cell_seed(6271, idx, series=name)
    for name in ("Laplace", "Fourier", "MWEM", "")
    for idx in (0, 101, 202)
]

table = load_dataset("nltcs", n=300, seed=3)
synthetic = PrivBayes(
    epsilon=1.0, k=2, first_attribute=table.attribute_names[0]
).fit_sample(table, rng=np.random.default_rng(11))
digest = hashlib.sha256()
for name in synthetic.attribute_names:
    digest.update(name.encode())
    digest.update(np.ascontiguousarray(synthetic.column(name)).tobytes())
payload["__fit_sample_sha256__"] = digest.hexdigest()
print(json.dumps(payload, sort_keys=True))
"""


def test_stable_series_seed_is_fixed_by_specification():
    # CRC32 of the exact baseline names; constants independently computable.
    assert stable_series_seed("Laplace") == 52
    assert stable_series_seed("Fourier") == 223
    assert stable_series_seed("Uniform") == 459
    assert 0 <= stable_series_seed("anything at all") < 1000


def test_marginals_comparison_is_deterministic_in_process():
    first = run_marginals_comparison(**_TINY)
    second = run_marginals_comparison(**_TINY)
    assert first.series == second.series


def _seed_probe_cell(cell):
    """Top-level (picklable) probe: report the seed a worker observes."""
    return cell.seed


class TestCellSeedPurity:
    """Per-cell seeds are a pure function of (series name, cell index)."""

    def test_seed_grid_is_pure_arithmetic(self):
        # cell_seed must equal base + index + CRC32-offset for the whole
        # grid — no hash(), no process state, no worker identity.
        for base in (0, 7919, 6271 * 3):
            for series in ("", "Laplace", "Fourier", "PrivBayes", "MWEM"):
                offset = stable_series_seed(series) if series else 0
                for index in (0, 1, 101, 1009, 12345):
                    assert (
                        cell_seed(base, index, series=series)
                        == base + index + offset
                    )

    def test_known_constants_pin_the_derivation(self):
        # CRC32 is fixed by specification: these constants hold in every
        # interpreter and under every PYTHONHASHSEED.
        assert cell_seed(0, 0, series="Laplace") == 52
        assert cell_seed(0, 0, series="Fourier") == 223
        assert cell_seed(6271, 101, series="Uniform") == 6271 + 101 + 459

    @pytest.mark.slow
    def test_observed_seeds_independent_of_worker_count_and_order(self):
        cells = [
            SweepCell("nltcs", 0.1, r, cell_seed(7919, i * 101 + r), series=s)
            for i, s in enumerate(("Laplace", "Fourier", ""))
            for r in range(4)
        ]
        expected = [c.seed for c in cells]
        # Any worker count observes the same per-cell seed...
        for jobs in (1, 2, 4):
            assert SweepExecutor(jobs).map(_seed_probe_cell, cells) == expected
        # ...and submission order only permutes, never re-derives them.
        order = list(range(len(cells)))
        random.Random(5).shuffle(order)
        shuffled = [cells[i] for i in order]
        observed = SweepExecutor(2).map(_seed_probe_cell, shuffled)
        assert observed == [expected[i] for i in order]


@pytest.mark.slow
def test_marginals_comparison_identical_across_hashseeds():
    """Two processes with different PYTHONHASHSEED emit identical series.

    This is the regression the in-process test cannot see: ``hash()`` is
    stable within one interpreter, so only a fresh process with a different
    salt exposes a hash-derived seed.  Any experiment that reintroduces one
    fails here loudly instead of silently dirtying benchmark diffs.
    """
    snippet = _SUBPROCESS_SNIPPET.format(tiny=_TINY)
    outputs = []
    for hashseed in ("0", "424242"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = _SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", snippet],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1]
    assert "PrivBayes" in outputs[0] and "Laplace" in outputs[0]
    # The pool path too: the jobs=2 fig9 slice and the cell-seed grid must
    # agree bit-for-bit across interpreters with different hash salts.
    assert "__fig9_jobs2__" in outputs[0]
    assert "__cell_seeds__" in outputs[0]
