"""Experiment harnesses: tiny-scale runs of every figure + framework."""

import numpy as np
import pytest

from repro.experiments import (
    render_result,
    run_beta_sweep,
    run_encoding_marginals,
    run_encoding_svm,
    run_error_source,
    run_fig4,
    run_marginals_comparison,
    run_svm_comparison,
    run_table5,
    run_theta_sweep,
    subsample_workload,
)
from repro.experiments.framework import ExperimentResult
from repro.experiments.table5 import render_table5

_TINY = dict(epsilons=(0.2, 1.6), repeats=1, n=800, seed=0)


class TestFramework:
    def test_series_length_validated(self):
        result = ExperimentResult("x", "t", "eps", "err", x=[1, 2])
        with pytest.raises(ValueError):
            result.add("m", [1.0])

    def test_render_contains_series(self):
        result = ExperimentResult("x", "t", "eps", "err", x=[1, 2])
        result.add("m", [0.5, 0.25])
        text = render_result(result)
        assert "m" in text and "0.5000" in text and "0.2500" in text

    def test_subsample_deterministic(self):
        workload = [(f"a{i}",) for i in range(50)]
        s1 = subsample_workload(workload, 10, seed=1)
        s2 = subsample_workload(workload, 10, seed=1)
        assert s1 == s2
        assert len(s1) == 10

    def test_subsample_noop_when_small(self):
        workload = [("a",), ("b",)]
        assert subsample_workload(workload, 10) == workload

    def test_mean_over_repeats(self):
        from repro.experiments.framework import mean_over_repeats

        assert mean_over_repeats([1.0, 3.0]) == 2.0
        assert mean_over_repeats((0.5,)) == 0.5

    def test_mean_over_repeats_empty_is_a_clear_error(self):
        # Not a nan under a numpy RuntimeWarning: a ValueError that names
        # the problem (an empty repeat series is always a harness bug).
        import warnings

        from repro.experiments.framework import mean_over_repeats

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any RuntimeWarning would fail
            with pytest.raises(ValueError, match="empty series"):
                mean_over_repeats([])


class TestTable5:
    def test_rows_and_rendering(self):
        rows = run_table5(n=300, seed=0)
        assert set(rows) == {"nltcs", "acs", "adult", "br2000"}
        text = render_table5(rows)
        assert "nltcs" in text and "45222" in text


class TestFig4:
    def test_binary_panel_has_all_scores(self):
        result = run_fig4(dataset="nltcs", **_TINY)
        assert set(result.series) == {"I", "R", "F", "NoPrivacy"}

    def test_general_panel_drops_F(self):
        result = run_fig4(dataset="br2000", **_TINY)
        assert set(result.series) == {"I", "R", "NoPrivacy"}

    def test_noprivacy_dominates_on_average(self):
        result = run_fig4(dataset="nltcs", epsilons=(1.6,), repeats=3, n=2000)
        ceiling = result.series["NoPrivacy"][0]
        for name in ("I", "R", "F"):
            assert result.series[name][0] <= ceiling + 1e-6


class TestEncodings:
    def test_marginals_panel(self):
        result = run_encoding_marginals(
            dataset="adult", alpha=2, max_marginals=8, **_TINY
        )
        assert set(result.series) == {
            "binary-F", "gray-F", "vanilla-R", "hierarchical-R",
        }
        for values in result.series.values():
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_svm_panel(self):
        result = run_encoding_svm(dataset="br2000", task_index=0, **_TINY)
        assert len(result.series) == 4
        for values in result.series.values():
            assert all(0.0 <= v <= 1.0 for v in values)


class TestSweeps:
    def test_beta_panel_count(self):
        result = run_beta_sweep(
            dataset="nltcs", kind="count", betas=(0.1, 0.5),
            max_marginals=6, **_TINY
        )
        assert set(result.series) == {"eps=0.2", "eps=1.6"}
        assert result.x == [0.1, 0.5]

    def test_theta_panel_svm(self):
        result = run_theta_sweep(
            dataset="nltcs", kind="svm", thetas=(1.0, 8.0), **_TINY
        )
        assert len(result.series) == 2

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            run_beta_sweep(dataset="nltcs", kind="weird", **_TINY)


class TestErrorSource:
    def test_three_variants(self):
        result = run_error_source(
            dataset="nltcs", kind="count", max_marginals=6, **_TINY
        )
        assert set(result.series) == {"PrivBayes", "BestNetwork", "BestMarginal"}

    def test_best_marginal_dominates_on_counting(self):
        result = run_error_source(
            dataset="nltcs", kind="count", epsilons=(0.1,),
            repeats=3, n=2000, max_marginals=10, seed=1,
        )
        assert (
            result.series["BestMarginal"][0]
            <= result.series["PrivBayes"][0] + 0.02
        )


class TestComparisons:
    def test_marginals_panel_binary(self):
        result = run_marginals_comparison(
            dataset="nltcs", alpha=2, max_marginals=8, mwem_rounds=4, **_TINY
        )
        assert {"PrivBayes", "Laplace", "Fourier", "Contingency", "MWEM",
                "Uniform"} == set(result.series)

    def test_marginals_panel_general_drops_full_domain(self):
        result = run_marginals_comparison(
            dataset="br2000", alpha=2, max_marginals=6, **_TINY
        )
        assert "Contingency" not in result.series
        assert "MWEM" not in result.series
        assert "PrivBayes" in result.series

    def test_svm_panel(self):
        result = run_svm_comparison(
            dataset="nltcs", task_index=0, privgene_iterations=3, **_TINY
        )
        assert {"NoPrivacy", "PrivBayes", "Majority", "PrivateERM",
                "PrivateERM (Single)", "PrivGene"} == set(result.series)
        # NoPrivacy is constant across epsilon.
        values = result.series["NoPrivacy"]
        assert values[0] == values[1]


class TestCLI:
    def test_main_table5(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table5", "--n", "200"]) == 0
        out = capsys.readouterr().out
        assert "Dataset characteristics" in out

    def test_main_fig4_fast(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig4", "--fast", "--n", "500", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "score functions" in out

    @pytest.mark.slow
    def test_main_fig9_jobs(self, capsys):
        from repro.experiments.__main__ import main

        args = ["fig9", "--fast", "--n", "400", "--repeats", "1",
                "--max-marginals", "4"]
        assert main(args + ["--jobs", "2"]) == 0
        pooled = capsys.readouterr().out
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert pooled == serial  # --jobs never changes the rendered series

    def test_main_jobs_rejects_nonpositive(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig9", "--fast", "--jobs", "0"])
