"""Integration: full releases on every dataset, every method, both tasks."""

import numpy as np
import pytest

from repro.core.privbayes import PrivBayes
from repro.datasets import load_dataset
from repro.release import METHODS, release_synthetic
from repro.svm import LinearSVM, featurize, misclassification_rate
from repro.workloads import (
    all_alpha_marginals,
    average_variation_distance,
    synthetic_marginals,
    tasks_for,
)


@pytest.mark.parametrize("dataset", ["nltcs", "acs", "adult", "br2000"])
class TestAllDatasets:
    def test_release_preserves_schema(self, dataset, rng):
        table = load_dataset(dataset, n=1200, seed=0)
        synthetic = PrivBayes(epsilon=1.0).fit_sample(table, rng=rng)
        assert synthetic.attribute_names == table.attribute_names
        assert synthetic.n == table.n
        for attr in table.attributes:
            col = synthetic.column(attr.name)
            assert col.min() >= 0 and col.max() < attr.size

    def test_marginal_quality_beats_uniform_at_big_epsilon(self, dataset, rng):
        table = load_dataset(dataset, n=3000, seed=0)
        workload = all_alpha_marginals(table, 2)[:15]
        synthetic = PrivBayes(epsilon=5.0).fit_sample(table, rng=rng)
        err = average_variation_distance(
            table, synthetic_marginals(synthetic, workload), workload
        )
        from repro.baselines import UniformMarginals

        uniform_err = average_variation_distance(
            table,
            UniformMarginals().release(table, workload, 5.0, rng),
            workload,
        )
        assert err < uniform_err


@pytest.mark.parametrize("method", sorted(METHODS))
class TestAllMethods:
    def test_release_roundtrip_on_adult(self, method, rng):
        table = load_dataset("adult", n=1000, seed=0)
        synthetic = release_synthetic(table, 1.0, method=method, rng=rng)
        assert synthetic.attribute_names == table.attribute_names
        assert synthetic.n == table.n


class TestPrivacyAccounting:
    @pytest.mark.parametrize("epsilon", [0.05, 0.4, 1.6])
    def test_total_budget_spent_exactly(self, epsilon, rng):
        table = load_dataset("nltcs", n=2000, seed=0)
        model = PrivBayes(epsilon=epsilon).fit(table, rng=rng)
        # repro: allow[PRIV001] -- float-tolerance assertion of the never-exceed-epsilon invariant
        assert model.accountant.spent <= epsilon + 1e-9
        assert model.accountant.spent == pytest.approx(epsilon)

    def test_general_mode_budget(self, rng):
        table = load_dataset("br2000", n=2000, seed=0)
        model = PrivBayes(epsilon=0.8, generalize=True).fit(table, rng=rng)
        assert model.accountant.spent == pytest.approx(0.8)


class TestSyntheticDataUsability:
    def test_svm_trained_on_synthetic_beats_chance(self, rng):
        table = load_dataset("nltcs", n=6000, seed=0)
        task = tasks_for("nltcs", table)[2]  # bathing: strong signal
        train, test = table.split(0.8, rng)
        synthetic = PrivBayes(epsilon=5.0).fit_sample(train, rng=rng)
        X_syn, y_syn = featurize(synthetic, task)
        X_test, y_test = featurize(test, task)
        model = LinearSVM().fit(X_syn, y_syn)
        err = misclassification_rate(model, X_test, y_test)
        base = min((y_test > 0).mean(), (y_test < 0).mean())
        assert err <= base + 0.02

    def test_epsilon_monotonicity_over_many_runs(self):
        table = load_dataset("nltcs", n=3000, seed=0)
        workload = all_alpha_marginals(table, 2)[:10]

        def err(eps, seed):
            rng = np.random.default_rng(seed)
            synthetic = PrivBayes(epsilon=eps).fit_sample(table, rng=rng)
            return average_variation_distance(
                table, synthetic_marginals(synthetic, workload), workload
            )

        small = np.mean([err(0.05, s) for s in range(4)])
        large = np.mean([err(3.0, s) for s in range(4)])
        assert large < small
