"""Consistency post-processing of released marginal families."""

import numpy as np
import pytest

from repro.baselines import LaplaceMarginals
from repro.postprocess.consistency import (
    consistency_error,
    enforce_nonnegativity,
    mutually_consistent_marginals,
)
from repro.workloads import all_alpha_marginals, average_variation_distance


@pytest.fixture
def sizes(binary_table):
    return {a.name: a.size for a in binary_table.attributes}


@pytest.fixture
def noisy_release(binary_table, rng):
    workload = all_alpha_marginals(binary_table, 2)
    return (
        LaplaceMarginals().release(binary_table, workload, 0.3, rng),
        workload,
    )


class TestNonnegativity:
    def test_clips_and_normalizes(self):
        released = {("a",): np.array([0.8, -0.3, 0.5])}
        fixed = enforce_nonnegativity(released)
        assert (fixed[("a",)] >= 0).all()
        assert fixed[("a",)].sum() == pytest.approx(1.0)

    def test_idempotent(self):
        released = {("a",): np.array([0.25, 0.75])}
        fixed = enforce_nonnegativity(enforce_nonnegativity(released))
        assert np.allclose(fixed[("a",)], [0.25, 0.75])


class TestMutualConsistency:
    def test_reduces_disagreement(self, binary_table, sizes, noisy_release):
        released, _ = noisy_release
        before = consistency_error(released, sizes)
        fixed = mutually_consistent_marginals(released, sizes, rounds=5)
        after = consistency_error(fixed, sizes)
        assert after < before
        assert after < 0.05

    def test_outputs_remain_distributions(self, sizes, noisy_release):
        released, _ = noisy_release
        fixed = mutually_consistent_marginals(released, sizes, rounds=3)
        for dist in fixed.values():
            assert (dist >= 0).all()
            assert dist.sum() == pytest.approx(1.0)

    def test_consistent_input_unchanged(self, binary_table, sizes):
        """Projections of one true distribution are already consistent."""
        from repro.data.marginals import joint_distribution

        workload = all_alpha_marginals(binary_table, 2)
        released = {
            tuple(names): joint_distribution(binary_table, list(names))
            for names in workload
        }
        fixed = mutually_consistent_marginals(released, sizes, rounds=2)
        for names in released:
            assert np.allclose(fixed[names], released[names], atol=1e-9)

    def test_does_not_hurt_accuracy_much(self, binary_table, sizes, noisy_release):
        """Consistency is (near) accuracy-neutral on average."""
        released, workload = noisy_release
        before = average_variation_distance(binary_table, released, workload)
        fixed = mutually_consistent_marginals(released, sizes, rounds=3)
        after = average_variation_distance(binary_table, fixed, workload)
        assert after <= before + 0.05

    def test_invalid_rounds(self, sizes):
        with pytest.raises(ValueError):
            mutually_consistent_marginals({}, sizes, rounds=0)

    def test_disjoint_marginals_untouched(self, sizes):
        released = {
            ("a", "b"): np.array([0.25, 0.25, 0.25, 0.25]),
            ("c", "d"): np.array([0.4, 0.1, 0.1, 0.4]),
        }
        fixed = mutually_consistent_marginals(released, sizes, rounds=2)
        for names in released:
            assert np.allclose(fixed[names], released[names])


class TestConsistencyError:
    def test_zero_for_single_marginal(self, sizes):
        released = {("a", "b"): np.full(4, 0.25)}
        assert consistency_error(released, sizes) == 0.0

    def test_detects_disagreement(self, sizes):
        released = {
            ("a", "b"): np.array([0.5, 0.0, 0.5, 0.0]),   # Pr[a] = (.5, .5)
            ("a", "c"): np.array([0.9, 0.0, 0.1, 0.0]),   # Pr[a] = (.9, .1)
        }
        assert consistency_error(released, sizes) == pytest.approx(0.8)
