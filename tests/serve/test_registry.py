"""ModelRegistry: resident models, warm restarts, validated loads."""

import json

import numpy as np
import pytest

from repro.core.privbayes import PrivBayes, PrivBayesConfig
from repro.datasets.synthetic import random_binary_table
from repro.serve.registry import ModelRegistry, registry_key


@pytest.fixture
def table():
    return random_binary_table(n=500, d=4, seed=5)


@pytest.fixture
def fitted(table):
    return PrivBayes(epsilon=1.0).fit(table, np.random.default_rng(3))


class TestResident:
    def test_put_get_roundtrip(self, fitted):
        registry = ModelRegistry(None)
        registry.put("demo", fitted)
        assert registry.get("demo", fitted.config) is fitted
        assert len(registry) == 1

    def test_get_miss_on_different_config(self, fitted):
        registry = ModelRegistry(None)
        registry.put("demo", fitted)
        other = PrivBayesConfig(epsilon=2.0)
        assert registry.get("demo", other) is None
        assert registry.get("elsewhere", fitted.config) is None

    def test_put_warms_sampling_caches(self, fitted):
        registry = ModelRegistry(None)
        registry.put("demo", fitted)
        for conditional in fitted.noisy.conditionals:
            assert getattr(conditional, "_row_cdfs", None) is not None

    def test_registry_key_is_stable(self, fitted):
        key = registry_key("demo", fitted.config)
        assert key == registry_key("demo", fitted.config)
        assert key != registry_key("demo2", fitted.config)
        assert key != registry_key("demo", PrivBayesConfig(epsilon=2.0))


class TestWarmRestart:
    def test_restart_roundtrip_samples_bit_identically(self, tmp_path, fitted):
        registry = ModelRegistry(tmp_path)
        registry.put("demo", fitted)

        reloaded = ModelRegistry(tmp_path)  # a fresh "process"
        model = reloaded.get("demo", fitted.config)
        assert model is not None
        assert model.source_n == fitted.source_n
        assert model.k == fitted.k
        assert model.config == fitted.config
        assert model.accountant.ledger == fitted.accountant.ledger
        before = fitted.sample(256, np.random.default_rng(9))
        after = model.sample(256, np.random.default_rng(9))
        for name in before.attribute_names:
            np.testing.assert_array_equal(
                before.column(name), after.column(name)
            )

    def test_restart_holds_multiple_entries(self, tmp_path, table, fitted):
        registry = ModelRegistry(tmp_path)
        registry.put("demo", fitted)
        second = PrivBayes(epsilon=2.0).fit(table, np.random.default_rng(4))
        registry.put("demo", second)
        reloaded = ModelRegistry(tmp_path)
        assert len(reloaded) == 2
        assert [dataset for dataset, _ in reloaded.entries()] == ["demo", "demo"]

    def test_corrupt_entry_refused_naming_file(self, tmp_path, fitted):
        registry = ModelRegistry(tmp_path)
        registry.put("demo", fitted)
        entry = next(tmp_path.glob("*.json"))
        text = entry.read_text()
        entry.write_text(text[: len(text) // 2])  # truncated write
        with pytest.raises(ValueError, match=entry.name):
            ModelRegistry(tmp_path)

    def test_damaged_conditional_refused(self, tmp_path, fitted):
        registry = ModelRegistry(tmp_path)
        registry.put("demo", fitted)
        entry = next(tmp_path.glob("*.json"))
        doc = json.loads(entry.read_text())
        doc["model"]["conditionals"][0]["matrix"][0][0] = -1.0
        entry.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="negative"):
            ModelRegistry(tmp_path)

    def test_unsupported_version_refused(self, tmp_path, fitted):
        registry = ModelRegistry(tmp_path)
        registry.put("demo", fitted)
        entry = next(tmp_path.glob("*.json"))
        doc = json.loads(entry.read_text())
        doc["registry_version"] = 99
        entry.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="version"):
            ModelRegistry(tmp_path)
