"""DatasetLedger: durable cumulative ε across fits, processes, threads."""

import json
import threading

import numpy as np
import pytest

from repro.core.privbayes import PrivBayes
from repro.datasets.synthetic import random_binary_table
from repro.dp.accountant import PrivacyBudgetError
from repro.serve.ledger import DatasetLedger


@pytest.fixture
def tiny_table():
    return random_binary_table(n=200, d=3, seed=11)


class TestLedgerBasics:
    def test_in_memory_roundtrip(self):
        ledger = DatasetLedger(None)
        account = ledger.accountant("adult", 2.0)
        account.spend("fit-1", 1.0)
        assert ledger.accountant("adult") is account
        assert account.remaining == pytest.approx(1.0)

    def test_unknown_dataset_requires_budget(self):
        ledger = DatasetLedger(None)
        with pytest.raises(KeyError, match="not in the ledger"):
            ledger.accountant("nope")

    def test_budget_reopen_mismatch_rejected(self):
        ledger = DatasetLedger(None)
        ledger.accountant("adult", 2.0)
        with pytest.raises(ValueError, match="already has budget"):
            ledger.accountant("adult", 3.0)
        # Matching or omitted budget is fine.
        ledger.accountant("adult", 2.0)
        ledger.accountant("adult")

    def test_report_lists_charges(self):
        ledger = DatasetLedger(None)
        ledger.accountant("a", 1.0).spend("x", 0.25)
        ledger.accountant("b", 2.0)
        report = ledger.report()
        assert sorted(report) == ["a", "b"]
        assert report["a"]["charges"] == [("x", 0.25)]
        assert report["a"]["remaining"] == pytest.approx(0.75)


class TestPersistence:
    def test_spend_survives_process_restart(self, tmp_path):
        path = tmp_path / "ledger.json"
        first = DatasetLedger(path)
        first.accountant("adult", 2.0).spend("fit-1", 1.25)

        reloaded = DatasetLedger(path)  # a fresh "process"
        account = reloaded.accountant("adult")
        assert account.total_epsilon == 2.0
        assert account.spent == pytest.approx(1.25)
        assert account.ledger == [("fit-1", 1.25)]
        with pytest.raises(PrivacyBudgetError):
            account.spend("fit-2", 1.0)

    def test_grant_is_durable_before_spend_returns(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = DatasetLedger(path)
        ledger.accountant("adult", 2.0).spend("fit-1", 0.5)
        on_disk = json.loads(path.read_text())
        assert on_disk["datasets"]["adult"]["ledger"] == [["fit-1", 0.5]]

    def test_failed_persist_unwinds_the_charge(self, tmp_path, monkeypatch):
        path = tmp_path / "ledger.json"
        ledger = DatasetLedger(path)
        account = ledger.accountant("adult", 2.0)
        account.spend("fit-1", 0.5)

        import repro.serve.ledger as ledger_module

        def exploding_write(target, text):
            raise OSError("disk full")

        monkeypatch.setattr(ledger_module, "atomic_write_text", exploding_write)
        with pytest.raises(OSError, match="disk full"):
            account.spend("fit-2", 0.5)
        monkeypatch.undo()
        # The unusable grant was rolled back: memory and disk agree.
        assert account.spent == pytest.approx(0.5)
        assert json.loads(path.read_text())["datasets"]["adult"]["ledger"] == [
            ["fit-1", 0.5]
        ]

    def test_corrupt_ledger_file_refused(self, tmp_path):
        path = tmp_path / "ledger.json"
        DatasetLedger(path).accountant("adult", 2.0)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ValueError, match="ledger.json"):
            DatasetLedger(path)

    def test_overdrawn_ledger_file_refused(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text(
            json.dumps(
                {
                    "format_version": 1,
                    "datasets": {
                        "adult": {
                            "total_epsilon": 1.0,
                            "ledger": [["fit", 0.8], ["fit", 0.8]],
                        }
                    },
                }
            )
        )
        with pytest.raises(ValueError, match="exceeding its total"):
            DatasetLedger(path)


class TestConcurrentFits:
    def test_sixteen_racing_fits_never_overgrant(self, tmp_path, tiny_table):
        """Acceptance criterion: 16 threads fitting against one dataset
        budget of 1.0 at ε=0.25 each — exactly 4 fits granted, every
        loser raises PrivacyBudgetError, and the persisted ledger agrees.
        """
        path = tmp_path / "ledger.json"
        ledger = DatasetLedger(path)
        account = ledger.accountant("race", 1.0)
        barrier = threading.Barrier(16)
        outcomes = []
        outcome_lock = threading.Lock()

        def fitter(index):
            rng = np.random.default_rng(1000 + index)
            barrier.wait()
            try:
                PrivBayes(epsilon=0.25).fit(
                    tiny_table, rng, accountant=account
                )
            except PrivacyBudgetError:
                with outcome_lock:
                    outcomes.append("refused")
            else:
                with outcome_lock:
                    outcomes.append("granted")

        threads = [
            threading.Thread(target=fitter, args=(index,)) for index in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count("granted") == 4
        assert outcomes.count("refused") == 12
        assert account.spent == pytest.approx(1.0)
        persisted = json.loads(path.read_text())["datasets"]["race"]["ledger"]
        assert len(persisted) == 4
        assert sum(amount for _, amount in persisted) <= 1.0 + 1e-9
