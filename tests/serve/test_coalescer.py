"""CoalescingSampler: batched draws bit-identical to the single draw."""

import asyncio

import numpy as np
import pytest

from repro.bn.inference import model_marginals
from repro.core.privbayes import PrivBayes
from repro.core.sampler import sample_synthetic, sample_synthetic_split
from repro.datasets.synthetic import random_binary_table
from repro.serve.coalescer import CoalescingSampler


@pytest.fixture
def model():
    table = random_binary_table(n=800, d=5, seed=21)
    return PrivBayes(epsilon=1.0).fit(table, np.random.default_rng(2))


def _assert_tables_equal(actual, expected):
    assert actual.attribute_names == expected.attribute_names
    assert actual.n == expected.n
    for name in expected.attribute_names:
        np.testing.assert_array_equal(
            actual.column(name), expected.column(name)
        )


class TestSplitPrimitive:
    def test_split_equals_single_draw_sliced(self, model):
        counts = [5, 0, 17, 3]
        slices = sample_synthetic_split(
            model.noisy,
            model.table_attributes,
            counts,
            np.random.default_rng(31),
        )
        reference = sample_synthetic(
            model.noisy,
            model.table_attributes,
            sum(counts),
            np.random.default_rng(31),
        )
        start = 0
        for count, piece in zip(counts, slices):
            expected = reference.take(np.arange(start, start + count))
            _assert_tables_equal(piece, expected)
            start += count

    def test_negative_count_rejected(self, model):
        with pytest.raises(ValueError, match="non-negative"):
            sample_synthetic_split(
                model.noisy,
                model.table_attributes,
                [3, -1],
                np.random.default_rng(0),
            )


class TestCoalescing:
    def test_concurrent_requests_share_one_draw_bit_identically(self, model):
        """Acceptance criterion: gathered sample(n_i) responses equal the
        single sample(sum(n_i)) draw, sliced in request order."""
        counts = [100, 1, 57, 0, 42]

        async def drive():
            with CoalescingSampler(model, np.random.default_rng(77)) as sampler:
                tables = await asyncio.gather(
                    *(sampler.sample(count) for count in counts)
                )
                return tables, list(sampler.batch_request_counts)

        tables, batches = asyncio.run(drive())
        assert batches == [len(counts)]  # one coalesced draw served all
        reference = sample_synthetic(
            model.noisy,
            model.table_attributes,
            sum(counts),
            np.random.default_rng(77),
        )
        start = 0
        for count, piece in zip(counts, tables):
            _assert_tables_equal(
                piece, reference.take(np.arange(start, start + count))
            )
            start += count

    def test_sequential_requests_draw_separately_but_deterministically(
        self, model
    ):
        async def drive():
            with CoalescingSampler(model, np.random.default_rng(5)) as sampler:
                first = await sampler.sample(40)
                second = await sampler.sample(40)
                return first, second, list(sampler.batch_request_counts)

        first, second, batches = asyncio.run(drive())
        assert batches == [1, 1]
        # Two sequential singleton batches == two sequential draws from
        # one stream == one fresh stream drawing 40 then 40.
        rng = np.random.default_rng(5)
        expected_first = sample_synthetic(
            model.noisy, model.table_attributes, 40, rng
        )
        expected_second = sample_synthetic(
            model.noisy, model.table_attributes, 40, rng
        )
        _assert_tables_equal(first, expected_first)
        _assert_tables_equal(second, expected_second)

    def test_negative_request_rejected_without_poisoning_batch(self, model):
        async def drive():
            with CoalescingSampler(model, np.random.default_rng(1)) as sampler:
                with pytest.raises(ValueError, match="non-negative"):
                    await sampler.sample(-3)
                return await sampler.sample(10)

        table = asyncio.run(drive())
        assert table.n == 10

    def test_row_counts_stat_tracks_batches(self, model):
        async def drive():
            with CoalescingSampler(model, np.random.default_rng(1)) as sampler:
                await asyncio.gather(sampler.sample(30), sampler.sample(12))
                return (
                    list(sampler.batch_request_counts),
                    list(sampler.batch_row_counts),
                )

        requests, rows = asyncio.run(drive())
        assert requests == [2]
        assert rows == [42]


class TestMarginals:
    def test_marginals_match_direct_inference(self, model):
        workload = [["x0", "x1"], ["x2"]]

        async def drive():
            with CoalescingSampler(model, np.random.default_rng(1)) as sampler:
                return await sampler.marginals(workload)

        answers = asyncio.run(drive())
        expected = model_marginals(
            model.noisy, model.table_attributes, workload
        )
        assert sorted(answers) == sorted(expected)
        for key, values in expected.items():
            np.testing.assert_allclose(answers[key], values)

    def test_marginals_are_cached_per_workload(self, model):
        workload = [["x0"]]

        async def drive():
            with CoalescingSampler(model, np.random.default_rng(1)) as sampler:
                first = await sampler.marginals(workload)
                second = await sampler.marginals(list(workload))
                return first, second

        first, second = asyncio.run(drive())
        assert first is second
