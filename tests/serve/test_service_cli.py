"""SynthesisService wiring + the ``python -m repro.serve`` CLI."""

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.privbayes import PrivBayesConfig
from repro.data.io import write_csv
from repro.datasets.synthetic import random_binary_table
from repro.dp.accountant import PrivacyBudgetError
from repro.serve.service import SynthesisService

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def table():
    return random_binary_table(n=600, d=4, seed=9)


class TestService:
    def test_fit_registers_and_charges(self, table):
        with SynthesisService(None) as service:
            config = PrivBayesConfig(epsilon=1.0)
            model = service.fit(
                "demo",
                table,
                config,
                rng=np.random.default_rng(0),
                dataset_budget=3.0,
            )
            assert service.model("demo", config) is model
            account = service.ledger.accountant("demo")
            assert account.spent == pytest.approx(1.0)

    def test_budget_refusal_and_no_registration(self, table):
        with SynthesisService(None) as service:
            config = PrivBayesConfig(epsilon=1.0)
            service.fit(
                "demo",
                table,
                config,
                rng=np.random.default_rng(0),
                dataset_budget=1.0,
            )
            with pytest.raises(PrivacyBudgetError):
                service.fit(
                    "demo",
                    table,
                    PrivBayesConfig(epsilon=0.5),
                    rng=np.random.default_rng(1),
                )
            with pytest.raises(KeyError):
                service.model("demo", PrivBayesConfig(epsilon=0.5))

    def test_persistent_roundtrip_through_restart(self, tmp_path, table):
        config = PrivBayesConfig(epsilon=1.0)
        with SynthesisService(tmp_path) as service:
            service.fit(
                "demo",
                table,
                config,
                rng=np.random.default_rng(0),
                dataset_budget=2.0,
            )

        with SynthesisService(tmp_path) as restarted:
            model = restarted.model("demo", config)
            assert model.source_n == table.n
            account = restarted.ledger.accountant("demo")
            assert account.remaining == pytest.approx(1.0)

            async def drive():
                sampler = restarted.sampler(
                    "demo", config, np.random.default_rng(4)
                )
                return await asyncio.gather(
                    sampler.sample(64), sampler.sample(32)
                )

            first, second = asyncio.run(drive())
            assert first.n == 64 and second.n == 32

    def test_marginals_direct(self, table):
        with SynthesisService(None) as service:
            config = PrivBayesConfig(epsilon=1.0)
            service.fit(
                "demo",
                table,
                config,
                rng=np.random.default_rng(0),
                dataset_budget=1.0,
            )
            answers = service.marginals("demo", config, [["x0"], ["x1", "x2"]])
            assert set(answers) == {("x0",), ("x1", "x2")}
            for values in answers.values():
                assert np.asarray(values).sum() == pytest.approx(1.0)

    def test_config_kwargs_shortcut(self, table):
        with SynthesisService(None) as service:
            model = service.fit(
                "demo",
                table,
                rng=np.random.default_rng(0),
                dataset_budget=1.0,
                epsilon=1.0,
                beta=0.4,
            )
            assert model.config.beta == 0.4
            with pytest.raises(ValueError, match="not both"):
                service.fit(
                    "demo",
                    table,
                    PrivBayesConfig(epsilon=0.1),
                    epsilon=0.1,
                )


def _run_cli(*arguments, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.serve", *arguments],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=240,
    )


class TestCli:
    def test_demo_runs_clean(self):
        result = _run_cli("demo", "--seed", "0")
        assert result.returncode == 0, result.stderr
        assert "refused before touching data" in result.stdout

    def test_fit_sample_budget_flow(self, tmp_path, table):
        csv_path = tmp_path / "data.csv"
        write_csv(table, csv_path)
        root = tmp_path / "state"

        fitted = _run_cli(
            "fit",
            "--root", str(root),
            "--dataset", "demo",
            "--csv", str(csv_path),
            "--epsilon", "1.0",
            "--dataset-budget", "1.5",
            "--seed", "0",
        )
        assert fitted.returncode == 0, fitted.stderr

        sampled = _run_cli(
            "sample",
            "--root", str(root),
            "--dataset", "demo",
            "--epsilon", "1.0",
            "--rows", "200",
            "--requests", "4",
            "--seed", "1",
            "--out", str(tmp_path / "synth.csv"),
        )
        assert sampled.returncode == 0, sampled.stderr
        assert "1 coalesced draw" in sampled.stdout
        synth_lines = (tmp_path / "synth.csv").read_text().splitlines()
        assert len(synth_lines) == 201  # header + rows

        budget = _run_cli("budget", "--root", str(root))
        assert budget.returncode == 0, budget.stderr
        report = json.loads(budget.stdout)
        assert report["demo"]["spent"] == pytest.approx(1.0)

        refused = _run_cli(
            "fit",
            "--root", str(root),
            "--dataset", "demo",
            "--csv", str(csv_path),
            "--epsilon", "1.0",
            "--seed", "2",
        )
        assert refused.returncode == 3
        assert "refused" in refused.stderr

    def test_sample_unknown_model_fails_cleanly(self, tmp_path):
        result = _run_cli(
            "sample",
            "--root", str(tmp_path / "state"),
            "--dataset", "ghost",
            "--epsilon", "1.0",
            "--rows", "10",
        )
        assert result.returncode == 2
        assert "no model registered" in result.stderr
