"""Binary and Gray encodings: codes, round trips, decode clamping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.attribute import Attribute
from repro.data.table import Table
from repro.encoding.bitwise import (
    BinaryEncoder,
    GrayEncoder,
    bits_needed,
    from_gray,
    to_gray,
)


class TestBits:
    def test_bits_needed(self):
        assert bits_needed(2) == 1
        assert bits_needed(3) == 2
        assert bits_needed(4) == 2
        assert bits_needed(5) == 3
        assert bits_needed(16) == 4
        assert bits_needed(41) == 6

    def test_bits_needed_minimum_one(self):
        assert bits_needed(1) == 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            bits_needed(0)


class TestGrayCode:
    def test_first_eight_codes(self):
        # Figure 2's Gray sequence: 000,001,011,010,110,111,101,100.
        codes = to_gray(np.arange(8))
        assert codes.tolist() == [0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100]

    def test_adjacent_codes_differ_in_one_bit(self):
        codes = to_gray(np.arange(64))
        diffs = codes[:-1] ^ codes[1:]
        assert all(bin(int(x)).count("1") == 1 for x in diffs)

    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, values):
        arr = np.array(values, dtype=np.int64)
        assert (from_gray(to_gray(arr)) == arr).all()


def _mixed():
    attrs = [
        Attribute.binary("flag"),
        Attribute("color", ("r", "g", "b", "y", "p")),  # 5 values -> 3 bits
    ]
    rng = np.random.default_rng(7)
    return Table(
        attrs,
        {"flag": rng.integers(0, 2, 300), "color": rng.integers(0, 5, 300)},
    )


@pytest.mark.parametrize("encoder_cls", [BinaryEncoder, GrayEncoder])
class TestEncoders:
    def test_all_encoded_attributes_binary(self, encoder_cls):
        encoded = encoder_cls().encode(_mixed())
        assert all(a.size == 2 for a in encoded.attributes)

    def test_bit_count(self, encoder_cls):
        encoded = encoder_cls().encode(_mixed())
        assert encoded.d == 1 + 3  # flag:1 bit, color:3 bits

    def test_roundtrip_exact(self, encoder_cls):
        table = _mixed()
        encoder = encoder_cls()
        decoded = encoder.decode(encoder.encode(table))
        for name in table.attribute_names:
            assert (decoded.column(name) == table.column(name)).all()
        assert decoded.attribute_names == table.attribute_names

    def test_decode_clamps_invalid_patterns(self, encoder_cls):
        """Synthetic bits may encode indices >= domain size; decode clamps."""
        table = _mixed()
        encoder = encoder_cls()
        encoded = encoder.encode(table)
        # Force every color bit to 1 → index 7 (or its Gray decode), > 4.
        cols = {name: encoded.column(name).copy() for name in encoded.attribute_names}
        for name in cols:
            if name.startswith("color"):
                cols[name][:] = 1
        hacked = Table(encoded.attributes, cols)
        decoded = encoder.decode(hacked)
        assert decoded.column("color").max() <= 4

    def test_decode_before_encode_fails(self, encoder_cls):
        with pytest.raises(RuntimeError, match="before encode"):
            encoder_cls().decode(_mixed())


class TestGraySemantics:
    def test_single_bit_flip_decodes_to_adjacent_value(self):
        """The Gray property the paper motivates: one flipped bit in an
        encoded value lands on an adjacent original value (Section 5.1)."""
        attr = Attribute("v", tuple(str(i) for i in range(8)))
        table = Table([attr], {"v": np.arange(8)})
        encoder = GrayEncoder()
        encoded = encoder.encode(table)
        base = np.stack([encoded.column(f"v#b{b}") for b in range(3)], axis=1)
        for bit in range(3):
            flipped = base.copy()
            flipped[:, bit] ^= 1
            hacked = Table(
                encoded.attributes,
                {f"v#b{b}": flipped[:, b] for b in range(3)},
            )
            decoded = encoder.decode(hacked).column("v")
            # Gray codes: flipping one bit moves to a value whose Gray code
            # is adjacent in the code graph; for the reflected code the LSB
            # flip always moves to a neighbour value.
            if bit == 2:
                assert np.abs(decoded - np.arange(8)).max() == 1
