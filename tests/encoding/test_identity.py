"""Vanilla/Hierarchical encoders and the encoder registry."""

import pytest

from repro.encoding import ENCODERS, make_encoder
from repro.encoding.identity import HierarchicalEncoder, VanillaEncoder


class TestIdentityEncoders:
    def test_vanilla_is_identity(self, mixed_table):
        encoder = VanillaEncoder()
        assert encoder.encode(mixed_table) is mixed_table
        assert encoder.decode(mixed_table) is mixed_table

    def test_hierarchical_is_identity_on_data(self, mixed_table):
        encoder = HierarchicalEncoder()
        assert encoder.encode(mixed_table) is mixed_table

    def test_generalization_flags(self):
        assert not VanillaEncoder().uses_generalization
        assert HierarchicalEncoder().uses_generalization


class TestRegistry:
    def test_all_four_present(self):
        assert set(ENCODERS) == {"binary", "gray", "vanilla", "hierarchical"}

    def test_make_encoder_case_insensitive(self):
        assert isinstance(make_encoder("Vanilla"), VanillaEncoder)

    def test_unknown_encoder(self):
        with pytest.raises(ValueError, match="unknown encoding"):
            make_encoder("base64")
