"""Property tests: bitwise encoders on random schemas and data."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.attribute import Attribute
from repro.data.table import Table
from repro.encoding.bitwise import BinaryEncoder, GrayEncoder, bits_needed


def _random_table(sizes, rows, seed):
    rng = np.random.default_rng(seed)
    attrs = [
        Attribute(f"x{i}", tuple(f"v{j}" for j in range(s)))
        for i, s in enumerate(sizes)
    ]
    return Table(
        attrs, {a.name: rng.integers(0, a.size, rows) for a in attrs}
    )


@given(
    sizes=st.lists(st.integers(2, 17), min_size=1, max_size=5),
    rows=st.integers(1, 40),
    seed=st.integers(0, 10_000),
    gray=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_any_schema(sizes, rows, seed, gray):
    table = _random_table(sizes, rows, seed)
    encoder = GrayEncoder() if gray else BinaryEncoder()
    decoded = encoder.decode(encoder.encode(table))
    for name in table.attribute_names:
        assert (decoded.column(name) == table.column(name)).all()


@given(
    sizes=st.lists(st.integers(2, 17), min_size=1, max_size=5),
    seed=st.integers(0, 10_000),
    gray=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_encoded_width_is_sum_of_bits(sizes, seed, gray):
    table = _random_table(sizes, 5, seed)
    encoder = GrayEncoder() if gray else BinaryEncoder()
    encoded = encoder.encode(table)
    assert encoded.d == sum(bits_needed(s) for s in sizes)


@given(
    sizes=st.lists(st.integers(2, 9), min_size=1, max_size=4),
    rows=st.integers(1, 30),
    seed=st.integers(0, 10_000),
    bit_seed=st.integers(0, 10_000),
    gray=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_decode_of_arbitrary_bits_stays_in_domain(
    sizes, rows, seed, bit_seed, gray
):
    """Decoding any bit pattern — including patterns synthesis could emit
    that never occurred in the input — lands inside the original domain."""
    table = _random_table(sizes, rows, seed)
    encoder = GrayEncoder() if gray else BinaryEncoder()
    encoded = encoder.encode(table)
    rng = np.random.default_rng(bit_seed)
    random_bits = Table(
        encoded.attributes,
        {name: rng.integers(0, 2, rows) for name in encoded.attribute_names},
    )
    decoded = encoder.decode(random_bits)
    for attr in table.attributes:
        col = decoded.column(attr.name)
        assert col.min() >= 0 and col.max() < attr.size
