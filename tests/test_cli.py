"""The ``python -m repro`` command-line release tool."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.data.io import read_csv, write_csv
from repro.datasets import load_adult


@pytest.fixture
def csv_path(tmp_path):
    table = load_adult(n=400, seed=0)
    path = tmp_path / "input.csv"
    write_csv(table, path)
    return path


class TestRelease:
    def test_basic_release(self, csv_path, tmp_path, capsys):
        out = tmp_path / "synthetic.csv"
        rc = main(
            [
                "--input", str(csv_path), "--output", str(out),
                "--epsilon", "1.0", "--seed", "3",
            ]
        )
        assert rc == 0
        synthetic = read_csv(out)
        assert synthetic.n == 400
        assert synthetic.d == 15

    def test_rows_override(self, csv_path, tmp_path):
        out = tmp_path / "synthetic.csv"
        rc = main(
            [
                "--input", str(csv_path), "--output", str(out),
                "--rows", "77", "--seed", "3",
            ]
        )
        assert rc == 0
        assert read_csv(out).n == 77

    def test_report_flag(self, csv_path, tmp_path, capsys):
        out = tmp_path / "synthetic.csv"
        rc = main(
            [
                "--input", str(csv_path), "--output", str(out),
                "--seed", "3", "--report",
            ]
        )
        assert rc == 0
        assert "utility report" in capsys.readouterr().out

    def test_method_choice(self, csv_path, tmp_path):
        out = tmp_path / "synthetic.csv"
        rc = main(
            [
                "--input", str(csv_path), "--output", str(out),
                "--method", "vanilla-R", "--seed", "3",
            ]
        )
        assert rc == 0

    def test_missing_arguments(self, capsys):
        assert main([]) == 2
        assert "required" in capsys.readouterr().err


class TestModelPersistence:
    def test_save_then_resample(self, csv_path, tmp_path, capsys):
        out = tmp_path / "synthetic.csv"
        model_path = tmp_path / "model.json"
        rc = main(
            [
                "--input", str(csv_path), "--output", str(out),
                "--seed", "3", "--save-model", str(model_path),
            ]
        )
        assert rc == 0
        assert model_path.exists()
        out2 = tmp_path / "resampled.csv"
        rc2 = main(
            [
                "--from-model", str(model_path), "--output", str(out2),
                "--rows", "25", "--seed", "4",
            ]
        )
        assert rc2 == 0
        assert read_csv(out2).n == 25

    def test_from_model_requires_output(self, tmp_path, capsys):
        assert main(["--from-model", str(tmp_path / "m.json")]) == 2
