"""Symbol/import graph (pass 1): name resolution and fingerprinting."""

import ast

from repro.analysis.symbols import (
    ModuleSymbols,
    SymbolGraph,
    build_symbol_graph,
    module_name_for,
)


class TestModuleNames:
    def test_src_prefix_is_the_import_root(self):
        assert module_name_for("src/repro/dp/accountant.py") == "repro.dp.accountant"

    def test_package_init_names_the_package(self):
        assert module_name_for("src/repro/dp/__init__.py") == "repro.dp"

    def test_paths_outside_src_get_path_derived_names(self):
        assert module_name_for("tests/dp/test_accountant.py") == (
            "tests.dp.test_accountant"
        )
        assert module_name_for("benchmarks/conftest.py") == "benchmarks.conftest"


def graph_of(**files):
    """Build a graph from ``{posix_path_with___for_slash: source}``."""
    return build_symbol_graph(
        (path.replace("__", "/") + ".py", source)
        for path, source in files.items()
    )


class TestResolution:
    def test_direct_from_import_resolves_to_defining_module(self):
        graph = graph_of(
            src__repro__dp__accountant="def split_epsilon(t, f):\n    pass\n",
            src__repro__core__privbayes=(
                "from repro.dp.accountant import split_epsilon\n"
            ),
        )
        assert (
            graph.resolve("repro.core.privbayes", "split_epsilon")
            == "repro.dp.accountant.split_epsilon"
        )

    def test_aliased_import_resolves(self):
        graph = graph_of(
            src__repro__dp__accountant="def split_epsilon(t, f):\n    pass\n",
            src__repro__core__other=(
                "from repro.dp.accountant import split_epsilon as se\n"
            ),
        )
        assert (
            graph.resolve("repro.core.other", "se")
            == "repro.dp.accountant.split_epsilon"
        )

    def test_reexport_through_package_init_is_chased(self):
        graph = build_symbol_graph(
            [
                (
                    "src/repro/dp/accountant.py",
                    "def split_epsilon(t, f):\n    pass\n",
                ),
                (
                    "src/repro/dp/__init__.py",
                    "from repro.dp.accountant import split_epsilon\n",
                ),
                (
                    "src/repro/core/user.py",
                    "from repro.dp import split_epsilon\n",
                ),
            ]
        )
        assert (
            graph.resolve("repro.core.user", "split_epsilon")
            == "repro.dp.accountant.split_epsilon"
        )

    def test_relative_import_resolves_against_the_package(self):
        graph = graph_of(
            src__repro__dp__accountant="def split_epsilon(t, f):\n    pass\n",
            src__repro__dp__mechanisms=(
                "from .accountant import split_epsilon\n"
            ),
        )
        assert (
            graph.resolve("repro.dp.mechanisms", "split_epsilon")
            == "repro.dp.accountant.split_epsilon"
        )

    def test_module_alias_import_resolves_attribute_chain(self):
        graph = graph_of(
            src__repro__core__user="import numpy as np\n",
        )
        assert graph.resolve("repro.core.user", "np.prod") == "numpy.prod"

    def test_local_definition_wins(self):
        graph = graph_of(
            src__repro__core__user=(
                "def split_epsilon(t, f):\n    pass\n"
            ),
        )
        assert (
            graph.resolve("repro.core.user", "split_epsilon")
            == "repro.core.user.split_epsilon"
        )

    def test_unknown_names_come_back_unchanged(self):
        graph = graph_of(src__repro__core__user="x = 1\n")
        assert graph.resolve("repro.core.user", "mystery") == "mystery"
        assert graph.resolve("not.a.module", "anything") == "anything"

    def test_cyclic_reexports_terminate(self):
        graph = graph_of(
            src__a="from b import thing\n",
            src__b="from a import thing\n",
        )
        # No defining module exists; resolution must stop, not recurse.
        assert graph.resolve("a", "thing") in ("a.thing", "b.thing", "thing")

    def test_defining_module(self):
        graph = graph_of(
            src__repro__dp__accountant="class PrivacyAccountant:\n    pass\n",
        )
        assert (
            graph.defining_module("repro.dp.accountant.PrivacyAccountant")
            == "repro.dp.accountant"
        )
        assert graph.defining_module("repro.dp.accountant.nope") is None

    def test_syntax_errors_are_skipped_not_fatal(self):
        graph = graph_of(
            src__ok="x = 1\n",
            src__broken="def broken(:\n",
        )
        assert "ok" in graph.modules
        assert "broken" not in graph.modules


class TestFingerprint:
    def test_deterministic_and_order_independent(self):
        first = graph_of(src__a="x = 1\n", src__b="y = 2\n")
        second = build_symbol_graph(
            [("src/b.py", "y = 2\n"), ("src/a.py", "x = 1\n")]
        )
        assert first.fingerprint() == second.fingerprint()

    def test_changes_when_a_symbol_moves_modules(self):
        before = graph_of(
            src__a="def helper():\n    pass\n",
            src__b="from a import helper\n",
        )
        after = graph_of(
            src__a="from b import helper\n",
            src__b="def helper():\n    pass\n",
        )
        assert before.fingerprint() != after.fingerprint()

    def test_insensitive_to_function_bodies(self):
        """Only the symbol surface matters, not implementations."""
        before = graph_of(src__a="def helper():\n    return 1\n")
        after = graph_of(src__a="def helper():\n    return 2\n")
        assert before.fingerprint() == after.fingerprint()


class TestScan:
    def test_scan_records_defs_and_imports(self):
        tree = ast.parse(
            "import os\n"
            "from repro.dp import accountant as acct\n"
            "X, Y = 1, 2\n"
            "class C:\n    pass\n"
            "async def f():\n    pass\n"
        )
        symbols = ModuleSymbols.scan("m", "src/m.py", tree)
        assert symbols.defs == {
            "X": "assign",
            "Y": "assign",
            "C": "class",
            "f": "function",
        }
        assert symbols.imports == {
            "os": "os",
            "acct": "repro.dp.accountant",
        }

    def test_star_imports_are_ignored(self):
        tree = ast.parse("from numpy import *\n")
        symbols = ModuleSymbols.scan("m", "src/m.py", tree)
        assert symbols.imports == {}
