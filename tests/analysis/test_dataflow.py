"""Intraprocedural dataflow engine: CFG shape, dominators, reaching defs."""

import ast

from repro.analysis.dataflow import (
    ENTRY,
    EXIT,
    assigned_names,
    build_cfg,
    dominates,
    dominators,
    none_guard_filter,
    reaching_definitions,
)


def fn_body(source):
    tree = ast.parse(source)
    (fn,) = [
        node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    return fn.body


def node_for(cfg, needle, source_lines=None):
    """CFG node whose statement's first line contains ``needle``."""
    for index, stmt in enumerate(cfg.nodes):
        if stmt is not None and needle in ast.unparse(stmt).splitlines()[0]:
            return index
    raise AssertionError(f"no node matching {needle!r}")


class TestCfgShape:
    def test_straight_line(self):
        cfg = build_cfg(fn_body("def f():\n    a = 1\n    b = 2\n"))
        a, b = node_for(cfg, "a = 1"), node_for(cfg, "b = 2")
        assert cfg.succ[ENTRY] == {a}
        assert cfg.succ[a] == {b}
        assert cfg.succ[b] == {EXIT}

    def test_if_branches_rejoin(self):
        cfg = build_cfg(
            fn_body(
                "def f(c):\n"
                "    if c:\n"
                "        a = 1\n"
                "    else:\n"
                "        b = 2\n"
                "    tail = 3\n"
            )
        )
        tail = node_for(cfg, "tail = 3")
        assert cfg.pred[tail] == {
            node_for(cfg, "a = 1"),
            node_for(cfg, "b = 2"),
        }

    def test_return_edges_to_exit_and_kills_fallthrough(self):
        cfg = build_cfg(
            fn_body(
                "def f(c):\n"
                "    if c:\n"
                "        return 1\n"
                "    tail = 2\n"
            )
        )
        ret = node_for(cfg, "return 1")
        tail = node_for(cfg, "tail = 2")
        assert EXIT in cfg.succ[ret]
        assert tail not in cfg.succ[ret]

    def test_loop_back_edge_and_break(self):
        cfg = build_cfg(
            fn_body(
                "def f(xs):\n"
                "    for x in xs:\n"
                "        if x:\n"
                "            break\n"
                "        y = x\n"
                "    tail = 1\n"
            )
        )
        head = node_for(cfg, "for x in xs")
        body = node_for(cfg, "y = x")
        brk = node_for(cfg, "break")
        tail = node_for(cfg, "tail = 1")
        assert head in cfg.succ[body]  # back edge
        assert tail in cfg.succ[brk]  # break jumps past the loop
        assert tail in cfg.succ[head]  # zero-iteration exit

    def test_try_body_edges_into_handler(self):
        cfg = build_cfg(
            fn_body(
                "def f():\n"
                "    try:\n"
                "        risky = 1\n"
                "    except ValueError:\n"
                "        handled = 2\n"
                "    tail = 3\n"
            )
        )
        risky = node_for(cfg, "risky = 1")
        handler_entry = node_for(cfg, "except ValueError")
        handled = node_for(cfg, "handled = 2")
        # The handler must be reachable both from inside the body (a
        # raise mid-statement) and from before it (raise before entry).
        assert handler_entry in cfg.succ[risky]
        assert handler_entry in cfg.succ[ENTRY]
        assert handled in cfg.succ[handler_entry]

    def test_unreachable_code_after_raise_is_dropped(self):
        cfg = build_cfg(
            fn_body("def f():\n    raise ValueError\n    dead = 1\n")
        )
        assert all(
            stmt is None or "dead" not in ast.unparse(stmt)
            for stmt in cfg.nodes
        )


class TestBranchPruning:
    SOURCE = (
        "def f(table, accountant):\n"
        "    if accountant is not None:\n"
        "        accountant.spend('x', 1.0)\n"
        "    touch = table\n"
    )

    def test_without_filter_spend_does_not_dominate(self):
        cfg = build_cfg(fn_body(self.SOURCE))
        dom = dominators(cfg)
        spend = node_for(cfg, "accountant.spend")
        touch = node_for(cfg, "touch = table")
        assert not dominates(dom, spend, touch)

    def test_not_none_world_prunes_the_else_arm(self):
        cfg = build_cfg(
            fn_body(self.SOURCE),
            branch_filter=none_guard_filter({"accountant"}),
        )
        dom = dominators(cfg)
        spend = node_for(cfg, "accountant.spend")
        touch = node_for(cfg, "touch = table")
        assert dominates(dom, spend, touch)

    def test_is_none_guard_prunes_the_body(self):
        cfg = build_cfg(
            fn_body(
                "def f(acc):\n"
                "    if acc is None:\n"
                "        dead = 1\n"
                "    tail = 2\n"
            ),
            branch_filter=none_guard_filter({"acc"}),
        )
        # The If head node remains (its unparse still shows the body
        # text), but the pruned arm's statements get no nodes of their own.
        assert all(
            stmt is None
            or not (
                isinstance(stmt, ast.Assign) and "dead" in ast.unparse(stmt)
            )
            for stmt in cfg.nodes
        )


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = build_cfg(fn_body("def f():\n    a = 1\n    b = 2\n"))
        dom = dominators(cfg)
        for node in range(len(cfg.nodes)):
            assert ENTRY in dom[node] or node == ENTRY

    def test_branch_arm_does_not_dominate_the_join(self):
        cfg = build_cfg(
            fn_body(
                "def f(c):\n"
                "    if c:\n"
                "        a = 1\n"
                "    tail = 2\n"
            )
        )
        dom = dominators(cfg)
        assert not dominates(
            dom, node_for(cfg, "a = 1"), node_for(cfg, "tail = 2")
        )


class TestReachingDefinitions:
    def test_redefinition_kills_the_old_def(self):
        cfg = build_cfg(
            fn_body("def f():\n    x = 1\n    x = 2\n    use = x\n")
        )
        reach = reaching_definitions(cfg)
        use = node_for(cfg, "use = x")
        defs = {node for name, node in reach[use] if name == "x"}
        assert defs == {node_for(cfg, "x = 2")}

    def test_def_inside_loop_reaches_its_own_head(self):
        cfg = build_cfg(
            fn_body(
                "def f(xs):\n"
                "    for x in xs:\n"
                "        rng = seed(x)\n"
                "        draw = rng\n"
            )
        )
        reach = reaching_definitions(cfg)
        draw = node_for(cfg, "draw = rng")
        defs = {node for name, node in reach[draw] if name == "rng"}
        assert defs == {node_for(cfg, "rng = seed(x)")}

    def test_param_defs_come_from_entry(self):
        cfg = build_cfg(fn_body("def f(rng):\n    use = rng\n"))
        reach = reaching_definitions(cfg)
        use = node_for(cfg, "use = rng")
        # Nothing redefines rng: no def pair for it (callers treat the
        # empty set as "defined at ENTRY").
        assert {name for name, _ in reach[use]} == set()

    def test_two_loops_share_one_def_but_not_reseeded(self):
        shared = build_cfg(
            fn_body(
                "def f(rng, xs):\n"
                "    rng = seed(0)\n"
                "    for x in xs:\n"
                "        a = rng\n"
                "    for x in xs:\n"
                "        b = rng\n"
            )
        )
        reach = reaching_definitions(shared)
        defs_a = {
            n for name, n in reach[node_for(shared, "a = rng")] if name == "rng"
        }
        defs_b = {
            n for name, n in reach[node_for(shared, "b = rng")] if name == "rng"
        }
        assert defs_a & defs_b  # one shared def reaches both loops

        reseeded = build_cfg(
            fn_body(
                "def f(xs):\n"
                "    for x in xs:\n"
                "        rng = seed(1)\n"
                "        a = rng\n"
                "    for x in xs:\n"
                "        rng = seed(2)\n"
                "        b = rng\n"
            )
        )
        reach = reaching_definitions(reseeded)
        defs_a = {
            n
            for name, n in reach[node_for(reseeded, "a = rng")]
            if name == "rng"
        }
        defs_b = {
            n
            for name, n in reach[node_for(reseeded, "b = rng")]
            if name == "rng"
        }
        assert not (defs_a & defs_b)


class TestAssignedNames:
    def test_covers_all_binding_forms(self):
        forms = {
            "x = 1": {"x"},
            "x, (y, z) = value": {"x", "y", "z"},
            "x += 1": {"x"},
            "x: int = 1": {"x"},
            "for i in xs:\n    pass": {"i"},
            "with open('f') as handle:\n    pass": {"handle"},
            "if (n := compute()):\n    pass": {"n"},
        }
        for source, expected in forms.items():
            stmt = ast.parse(source).body[0]
            assert assigned_names(stmt) == expected, source

    def test_nested_function_bodies_are_a_different_scope(self):
        stmt = ast.parse("def inner():\n    hidden = 1\n").body[0]
        assert assigned_names(stmt) == set()
