"""CLI behaviour: exit codes, JSON schema stability, cache, self-hosting."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import REPORT_SCHEMA_VERSION, ResultCache, analyze_paths
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN = "import numpy as np\n\n\ndef draw(rng):\n    return rng.random()\n"
DIRTY = "import numpy as np\n\nrng = np.random.default_rng()\n"

# The schema is a published contract (CI parses it): changing either set
# below requires bumping REPORT_SCHEMA_VERSION.
TOP_LEVEL_KEYS = {
    "schema_version",
    "analyzer_version",
    "paths",
    "files_scanned",
    "rules",
    "counts",
    "findings",
}
FINDING_KEYS = {
    "rule",
    "path",
    "line",
    "col",
    "message",
    "status",
    "justification",
    "fingerprint",
    "snippet",
    "tier",
}
RULE_ENTRY_KEYS = {"id", "title", "tier"}


def run_cli(args, capsys):
    code = main([str(a) for a in args])
    out = capsys.readouterr().out
    return code, out


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        code, _ = run_cli([tmp_path, "--no-cache"], capsys)
        assert code == 0

    def test_open_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        code, out = run_cli([tmp_path, "--no-cache"], capsys)
        assert code == 1
        assert "DET001" in out

    def test_no_paths_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2

    def test_list_rules_exits_zero(self, capsys):
        code, out = run_cli(["--list-rules"], capsys)
        assert code == 0
        for rule_id in (
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "PRIV001",
            "PRIV002",
            "PRIV003",
            "CONC001",
            "ABI001",
            "NUM001",
        ):
            assert rule_id in out

    def test_jobs_must_be_positive(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--no-cache", "--jobs", "0"])
        assert excinfo.value.code == 2


class TestJsonSchema:
    def test_schema_version_and_keys_are_stable(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        code, out = run_cli([tmp_path, "--no-cache", "--format", "json"], capsys)
        assert code == 1
        payload = json.loads(out)
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION == 2
        assert set(payload) == TOP_LEVEL_KEYS
        assert payload["counts"] == {"open": 1, "suppressed": 0, "baselined": 0}
        (finding,) = payload["findings"]
        assert set(finding) == FINDING_KEYS
        assert finding["rule"] == "DET001"
        assert finding["status"] == "open"
        assert finding["tier"] == "ast"
        for rule_entry in payload["rules"]:
            assert set(rule_entry) == RULE_ENTRY_KEYS
            assert rule_entry["tier"] in ("ast", "flow")
        assert {r["tier"] for r in payload["rules"]} == {"ast", "flow"}

    def test_json_is_deterministic_across_runs(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        (tmp_path / "ok.py").write_text(CLEAN)
        _, first = run_cli([tmp_path, "--no-cache", "--format", "json"], capsys)
        _, second = run_cli([tmp_path, "--no-cache", "--format", "json"], capsys)
        assert first == second


class TestWriteBaseline:
    def test_write_then_gate_passes(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        baseline = tmp_path / "baseline.json"

        code, _ = run_cli(
            [tmp_path, "--no-cache", "--baseline", baseline, "--write-baseline"],
            capsys,
        )
        assert code == 0 and baseline.is_file()
        payload = json.loads(baseline.read_text())
        assert payload["schema_version"] == 1 and payload["entries"]

        code, out = run_cli(
            [tmp_path, "--no-cache", "--baseline", baseline], capsys
        )
        assert code == 0
        assert "[baselined]" in out


class TestCache:
    def test_second_run_hits_cache_and_edit_invalidates(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(DIRTY)
        cache_file = tmp_path / "cache.json"

        cache = ResultCache(cache_file)
        first = analyze_paths([tmp_path], cache=cache)
        cache.save()
        assert (first.cache_hits, first.cache_misses) == (0, 1)

        cache = ResultCache(cache_file)
        second = analyze_paths([tmp_path], cache=cache)
        cache.save()
        assert (second.cache_hits, second.cache_misses) == (1, 0)
        assert [f.to_dict() for f in second.findings] == [
            f.to_dict() for f in first.findings
        ]

        target.write_text(DIRTY + "x = 1\n")
        cache = ResultCache(cache_file)
        third = analyze_paths([tmp_path], cache=cache)
        assert (third.cache_hits, third.cache_misses) == (0, 1)


#: Everything the CI analysis job sweeps (PR 10 widened it from src+tests).
GATE_PATHS = ("src", "tests", "benchmarks", "examples")


class TestSelfHosted:
    def test_repo_src_and_tests_are_clean(self):
        """The CI gate, run in-process: no open findings over the repo."""
        report = analyze_paths(
            [REPO_ROOT / p for p in GATE_PATHS],
            cache=None,
            root=REPO_ROOT,
        )
        open_findings = [f for f in report.findings if f.status == "open"]
        assert open_findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.rule} {f.message}" for f in open_findings
        )
        assert report.exit_code == 0
        # Every suppression in the tree carries a justification.
        for finding in report.findings:
            if finding.status == "suppressed":
                assert finding.justification, finding

    def test_cli_subprocess_over_repo(self):
        """End-to-end: the exact command CI runs, exit 0 with parseable JSON."""
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                *GATE_PATHS,
                "--no-cache",
                "--format",
                "json",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["counts"]["open"] == 0
        assert payload["files_scanned"] > 100

    def test_jobs_run_matches_serial_run(self, tmp_path):
        """--jobs parallelism may not change the finding set (order incl.)."""
        serial = analyze_paths(
            [REPO_ROOT / "src" / "repro" / "analysis"],
            cache=None,
            root=REPO_ROOT,
        )
        parallel = analyze_paths(
            [REPO_ROOT / "src" / "repro" / "analysis"],
            cache=None,
            root=REPO_ROOT,
            jobs=2,
        )
        assert [f.to_dict() for f in parallel.findings] == [
            f.to_dict() for f in serial.findings
        ]
        assert parallel.files_scanned == serial.files_scanned
