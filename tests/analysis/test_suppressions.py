"""Suppression-pragma and baseline round-trip tests."""

import json
import textwrap

import pytest

from repro.analysis import (
    analyze_source,
    apply_baseline,
    finding_fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.pragmas import scan_pragmas


def analyzed(snippet, path="fixture.py"):
    return analyze_source(textwrap.dedent(snippet), path)


class TestPragmas:
    def test_inline_pragma_suppresses_and_records_justification(self):
        found = analyzed(
            """
            import numpy as np
            rng = np.random.default_rng()  # repro: allow[DET001] -- fixture sink
            """
        )
        assert [(f.rule, f.status) for f in found] == [("DET001", "suppressed")]
        assert found[0].justification == "fixture sink"

    def test_comment_only_line_above_suppresses(self):
        found = analyzed(
            """
            import numpy as np
            # repro: allow[DET001] -- fixture sink
            rng = np.random.default_rng()
            """
        )
        assert [(f.rule, f.status) for f in found] == [("DET001", "suppressed")]

    def test_pragma_is_rule_specific(self):
        found = analyzed(
            """
            import numpy as np
            total = int(np.prod(np.random.default_rng().integers(1, 9, 4)))  # repro: allow[DET001] -- fixture sink
            """
        )
        by_rule = {f.rule: f.status for f in found}
        assert by_rule == {"DET001": "suppressed", "NUM001": "open"}

    def test_multi_rule_pragma(self):
        found = analyzed(
            """
            import numpy as np
            total = int(np.prod(np.random.default_rng().integers(1, 9, 4)))  # repro: allow[DET001,NUM001] -- fixture covering both
            """
        )
        assert {f.status for f in found} == {"suppressed"}

    def test_missing_justification_is_rejected(self):
        found = analyzed(
            """
            import numpy as np
            rng = np.random.default_rng()  # repro: allow[DET001]
            """
        )
        by_rule = {f.rule: f.status for f in found}
        # The bad pragma is itself a finding, and does NOT suppress.
        assert by_rule == {"ANA001": "open", "DET001": "open"}

    def test_unknown_rule_id_is_rejected(self):
        found = analyzed(
            """
            x = 1  # repro: allow[NOPE999] -- not a rule
            """
        )
        assert [f.rule for f in found] == ["ANA001"]
        assert "NOPE999" in found[0].message

    def test_empty_rule_list_is_rejected(self):
        found = analyzed(
            """
            x = 1  # repro: allow[] -- nothing
            """
        )
        assert [f.rule for f in found] == ["ANA001"]

    def test_unused_pragma_is_harmless(self):
        found = analyzed(
            """
            x = 1  # repro: allow[DET001] -- nothing here triggers it
            """
        )
        assert found == []

    def test_scan_pragmas_parses_fields(self):
        pragmas, errors = scan_pragmas(
            "x = 1  # repro: allow[DET001,PRIV001] -- why not\n"
        )
        assert errors == []
        pragma = pragmas[1]
        assert pragma.rules == ("DET001", "PRIV001")
        assert pragma.justification == "why not"
        assert not pragma.comment_only


BAD_SNIPPET = """\
import numpy as np
rng = np.random.default_rng()
"""


class TestBaseline:
    def test_round_trip_marks_findings_baselined(self, tmp_path):
        findings = analyze_source(BAD_SNIPPET, "pkg/mod.py")
        assert [f.status for f in findings] == ["open"]

        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        baseline = load_baseline(baseline_file)
        after = apply_baseline(findings, baseline)
        assert [f.status for f in after] == ["baselined"]

    def test_baseline_expires_when_line_changes(self, tmp_path):
        findings = analyze_source(BAD_SNIPPET, "pkg/mod.py")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        baseline = load_baseline(baseline_file)

        edited = analyze_source(
            BAD_SNIPPET.replace("rng =", "generator ="), "pkg/mod.py"
        )
        after = apply_baseline(edited, baseline)
        assert [f.status for f in after] == ["open"]

    def test_baseline_count_is_consumed_per_occurrence(self, tmp_path):
        two = BAD_SNIPPET + "rng = np.random.default_rng()\n"
        one_entry = analyze_source(BAD_SNIPPET, "pkg/mod.py")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, one_entry)
        baseline = load_baseline(baseline_file)

        after = apply_baseline(analyze_source(two, "pkg/mod.py"), baseline)
        # Both occurrences share the same line text / fingerprint, but the
        # baseline recorded only one: the second stays open.
        assert sorted(f.status for f in after) == ["baselined", "open"]

    def test_identical_lines_write_two_entry_counts(self, tmp_path):
        """Fingerprint collisions are counted, not deduplicated."""
        two = BAD_SNIPPET + "rng = np.random.default_rng()\n"
        findings = analyze_source(two, "pkg/mod.py")
        assert len(findings) == 2
        assert findings[0].fingerprint == findings[1].fingerprint

        baseline_file = tmp_path / "baseline.json"
        entries = write_baseline(baseline_file, findings)
        assert entries == {findings[0].fingerprint: 2}

        after = apply_baseline(findings, load_baseline(baseline_file))
        assert [f.status for f in after] == ["baselined", "baselined"]

    def test_editing_one_colliding_line_expires_only_that_occurrence(
        self, tmp_path
    ):
        two = BAD_SNIPPET + "rng = np.random.default_rng()\n"
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, analyze_source(two, "pkg/mod.py"))
        baseline = load_baseline(baseline_file)

        # Edit the *second* occurrence: its fingerprint changes, the
        # first line's entry (count 2, one consumed) still covers line 2.
        edited = two.replace(
            "rng = np.random.default_rng()\n" "rng = np.random.default_rng()",
            "rng = np.random.default_rng()\n"
            "other = np.random.default_rng()",
        )
        after = apply_baseline(analyze_source(edited, "pkg/mod.py"), baseline)
        by_line = {f.line: f.status for f in after}
        assert by_line == {2: "baselined", 3: "open"}

    def test_fingerprint_ignores_surrounding_whitespace(self):
        assert finding_fingerprint(
            "a.py", "DET001", "  x = hash(y)  "
        ) == finding_fingerprint("a.py", "DET001", "x = hash(y)")

    def test_missing_baseline_loads_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_write_baseline_is_atomic_under_crash(self, tmp_path, monkeypatch):
        """A failed rewrite may not tear the existing baseline (satellite:
        write_baseline routes through serialize.atomic_write_text)."""
        findings = analyze_source(BAD_SNIPPET, "pkg/mod.py")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        before = baseline_file.read_text()

        import repro.core.serialize as serialize

        def boom(src, dst):
            raise OSError("simulated crash at publish time")

        monkeypatch.setattr(serialize.os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            write_baseline(baseline_file, [])
        monkeypatch.undo()

        # The old baseline is intact (not truncated/torn) and still loads,
        # and the failed attempt left no temp litter behind.
        assert baseline_file.read_text() == before
        assert load_baseline(baseline_file) == {
            findings[0].fingerprint: 1
        }
        assert [p.name for p in tmp_path.iterdir()] == [baseline_file.name]
        payload = json.loads(before)
        assert payload["schema_version"] == 1
