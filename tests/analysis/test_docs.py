"""Doc drift: the README rule catalogue must track the registry exactly."""

import re
from pathlib import Path

from repro.analysis.rules import BAD_PRAGMA_RULE, PARSE_ERROR_RULE, RULES

README = Path(__file__).resolve().parents[2] / "src/repro/analysis/README.md"

#: A catalogue row starts "| `RULEID` |".
ROW_PATTERN = re.compile(r"^\|\s*`([A-Z]+\d{3})`\s*\|", re.MULTILINE)


def test_readme_rule_table_lists_exactly_the_registered_rules():
    documented = ROW_PATTERN.findall(README.read_text())
    assert len(documented) == len(set(documented)), "duplicate README rows"
    assert set(documented) == set(RULES), (
        "README rule table out of sync with repro.analysis.rules.RULES: "
        f"missing {set(RULES) - set(documented)}, "
        f"stale {set(documented) - set(RULES)}"
    )


def test_readme_mentions_the_meta_rules():
    text = README.read_text()
    for meta in (PARSE_ERROR_RULE, BAD_PRAGMA_RULE):
        assert meta in text, f"meta-rule {meta} undocumented"


def test_readme_flow_rows_are_marked_as_flow_tier():
    text = README.read_text()
    flow_ids = [rule_id for rule_id, rule in RULES.items() if rule.tier == "flow"]
    assert flow_ids  # the tier exists
    for rule_id in flow_ids:
        row = next(
            line for line in text.splitlines()
            if line.startswith(f"| `{rule_id}`")
        )
        assert "*(flow)*" in row, f"{rule_id} row not marked as flow tier"
