"""Flow-tier rules: good/bad fixtures for PRIV003, DET004, CONC001, ABI001.

The bad fixtures reproduce the historical bug shapes these rules were
built to pin — CONC001's is the pre-PR 8 racy ``PrivacyAccountant.spend``
(check-then-append off-lock) — and the good fixtures are the shapes the
tree actually uses today, which must stay clean.
"""

import ast
import textwrap
from pathlib import Path

from repro.analysis import analyze_source
from repro.analysis.flow_rules import (
    ABI_MANIFEST,
    AnalysisContext,
    BudgetFlow,
    LockDiscipline,
    NativeAbiDrift,
    RngStreamDiscipline,
    parse_c_abi_version,
    parse_c_exports,
)
from repro.analysis.symbols import build_symbol_graph

REPO_ROOT = Path(__file__).resolve().parents[2]


def findings_of(rule, snippet, path="fixture.py", context=None):
    tree = ast.parse(textwrap.dedent(snippet))
    return list(rule.check(tree, path, context))


def rules_hit(snippet, path="fixture.py"):
    return {
        f.rule for f in analyze_source(textwrap.dedent(snippet), path)
        if f.status == "open"
    }


# ---------------------------------------------------------------------------
# PRIV003 — budget flow


class TestBudgetFlow:
    def test_access_before_charge_is_flagged(self):
        bad = """
        def release(table, epsilon, accountant):
            counts = table.counts()
            accountant.spend("release", epsilon)
            return counts
        """
        hits = findings_of(BudgetFlow(), bad)
        assert len(hits) == 1
        assert "table.counts" in hits[0][2]

    def test_dominating_charge_is_clean(self):
        good = """
        def release(table, epsilon, accountant):
            accountant.spend("release", epsilon)
            return table.counts()
        """
        assert findings_of(BudgetFlow(), good) == []

    def test_none_guarded_charge_still_dominates(self):
        """The PR 8 shape: PrivBayes.fit's optional external accountant."""
        good = """
        def fit(table, epsilon, accountant=None):
            if table.d == 0 or table.n == 0:
                raise ValueError("empty")
            if accountant is not None:
                accountant.spend("fit", epsilon)
            return table.counts()
        """
        assert findings_of(BudgetFlow(), good) == []

    def test_charge_on_one_branch_only_is_flagged(self):
        bad = """
        def release(table, epsilon, accountant, fast=False):
            if fast:
                accountant.spend("release", epsilon)
            return table.counts()
        """
        assert len(findings_of(BudgetFlow(), bad)) == 1

    def test_noise_call_without_charge_is_flagged(self):
        bad = """
        from repro.dp.mechanisms import laplace_noise

        def perturb(values, epsilon, accountant, rng):
            return values + laplace_noise(1.0 / epsilon, values.shape, rng)
        """
        hits = findings_of(BudgetFlow(), bad)
        assert len(hits) == 1
        assert "noise call" in hits[0][2]

    def test_charge_delegation_is_clean(self):
        """Passing the accountant into the callee hands over the duty."""
        good = """
        def serve_fit(table, epsilon, accountant):
            return fit_model(table, epsilon, accountant=accountant)
        """
        assert findings_of(BudgetFlow(), good) == []

    def test_schema_access_is_exempt(self):
        good = """
        def release(table, epsilon, accountant):
            if table.d == 0:
                raise ValueError
            names = list(table.attribute_names)
            accountant.spend("release", epsilon)
            return table.counts(), names
        """
        assert findings_of(BudgetFlow(), good) == []

    def test_inactive_without_epsilon_or_accountant(self):
        # No ε in scope: nothing to guard.
        assert (
            findings_of(
                BudgetFlow(),
                "def f(table, accountant):\n    return table.counts()\n",
            )
            == []
        )
        # No accountant in scope: PRIV003 stays out of plain helpers.
        assert (
            findings_of(
                BudgetFlow(),
                "def f(table, epsilon):\n    return table.counts()\n",
            )
            == []
        )

    def test_derived_none_alias_prunes_like_epsilon(self):
        """share = None if eps is None else ... joins the assumed set."""
        good = """
        def conditionals(table, epsilon2, accountant, pairs):
            share = None if epsilon2 is None else epsilon2
            for pair in pairs:
                if accountant is not None and share is not None:
                    accountant.charge("pair", share)
                joint = table.count_pair(pair)
        """
        assert findings_of(BudgetFlow(), good) == []

    def test_spend_without_unwind_on_failure_path_is_flagged(self):
        """The PR 8 ledger tripwire: burn-without-effect on failure."""
        bad = """
        def spend(self, label, epsilon, accountant):
            accountant.spend(label, epsilon)
            try:
                persist(label)
            except OSError:
                raise RuntimeError("persist failed")
        """
        hits = findings_of(BudgetFlow(), bad)
        assert len(hits) == 1
        assert "unwind" in hits[0][2]

    def test_spend_with_unwind_on_failure_path_is_clean(self):
        good = """
        def spend(self, label, epsilon, accountant):
            accountant.spend(label, epsilon)
            try:
                persist(label)
            except OSError:
                accountant.unwind(1)
                raise RuntimeError("persist failed")
        """
        assert findings_of(BudgetFlow(), good) == []

    def test_resolved_accountant_factory_counts(self):
        """Locals from ledger.accountant(...) are accountants too."""
        bad = """
        def serve(table, epsilon, ledger, dataset):
            acct = ledger.accountant(dataset)
            counts = table.counts()
            acct.spend("serve", epsilon)
            return counts
        """
        assert len(findings_of(BudgetFlow(), bad)) == 1


# ---------------------------------------------------------------------------
# DET004 — RNG stream discipline


class TestRngStreamDiscipline:
    def test_same_generator_in_sibling_loops_is_flagged(self):
        bad = """
        def series(rng, xs):
            first = [rng.random() for _ in xs]
            out_a = []
            for x in xs:
                out_a.append(rng.random())
            out_b = []
            for x in xs:
                out_b.append(rng.random())
            return out_a, out_b
        """
        hits = findings_of(RngStreamDiscipline(), bad)
        assert len(hits) == 1
        assert "sibling loop" in hits[0][2]

    def test_reseeded_per_loop_is_clean(self):
        good = """
        import numpy as np

        def series(xs):
            for x in xs:
                rng = np.random.default_rng(x)
                a = rng.random()
            for x in xs:
                rng = np.random.default_rng(x + 1)
                b = rng.random()
        """
        assert findings_of(RngStreamDiscipline(), good) == []

    def test_spawned_streams_are_clean(self):
        """The PR 7 sampler discipline: per-series spawn streams."""
        good = """
        def series(rng, xs):
            streams = rng.spawn(2)
            for x in xs:
                a = streams[0].random()
            for x in xs:
                b = streams[1].random()
        """
        assert findings_of(RngStreamDiscipline(), good) == []

    def test_zip_over_spawn_collection_is_clean(self):
        good = """
        def series(rng, groups):
            streams = rng.spawn(len(groups))
            for stream, group in zip(streams, groups):
                for item in group:
                    value = stream.random()
        """
        assert findings_of(RngStreamDiscipline(), good) == []

    def test_single_loop_is_clean(self):
        good = """
        def chunked(rng, chunks):
            out = []
            while chunks:
                out.append(rng.random(chunks.pop()))
            return out
        """
        assert findings_of(RngStreamDiscipline(), good) == []

    def test_generator_into_parallel_map_is_flagged(self):
        bad = """
        def parallel(rng, executor, tasks):
            return list(executor.map(run_task, tasks, [rng] * len(tasks)))
        """
        hits = findings_of(RngStreamDiscipline(), bad)
        assert len(hits) == 1
        assert "parallel" in hits[0][2]

    def test_run_in_executor_with_rng_is_flagged(self):
        bad = """
        async def draw(loop, pool, rng, counts):
            return await loop.run_in_executor(pool, sample, rng, counts)
        """
        assert len(findings_of(RngStreamDiscipline(), bad)) == 1

    def test_run_in_executor_without_rng_is_clean(self):
        """Today's coalescer shape: only plain data crosses the pool."""
        good = """
        async def draw(loop, pool, counts):
            return await loop.run_in_executor(pool, sample, counts)
        """
        assert findings_of(RngStreamDiscipline(), good) == []

    def test_spawned_stream_into_parallel_map_is_clean(self):
        good = """
        def parallel(rng, executor, tasks):
            streams = rng.spawn(len(tasks))
            return list(executor.map(run_task, tasks, streams))
        """
        assert findings_of(RngStreamDiscipline(), good) == []


# ---------------------------------------------------------------------------
# CONC001 — lock discipline


#: The pre-PR 8 PrivacyAccountant.spend: budget check and ledger append
#: race off-lock (two threads both pass the check, the budget overdraws).
RACY_ACCOUNTANT = """
import threading


class RacyAccountant:
    def __init__(self, total):
        self.total = total
        self._ledger = []
        self._lock = threading.Lock()

    def spend(self, label, epsilon):
        if sum(e for _, e in self._ledger) + epsilon > self.total:
            raise RuntimeError("over budget")
        self._ledger.append((label, epsilon))

    def unwind(self, count):
        with self._lock:
            for _ in range(count):
                self._ledger.pop()
"""

#: Today's shape: check-then-append atomically under the lock.
FIXED_ACCOUNTANT = """
import threading


class FixedAccountant:
    def __init__(self, total):
        self.total = total
        self._ledger = []
        self._lock = threading.Lock()

    def spend(self, label, epsilon):
        with self._lock:
            if sum(e for _, e in self._ledger) + epsilon > self.total:
                raise RuntimeError("over budget")
            self._ledger.append((label, epsilon))

    def unwind(self, count):
        with self._lock:
            for _ in range(count):
                self._ledger.pop()
"""


class TestLockDiscipline:
    def test_pre_pr8_racy_accountant_is_flagged(self):
        hits = findings_of(LockDiscipline(), RACY_ACCOUNTANT)
        messages = [message for _, _, message in hits]
        # Both halves of the race: the off-lock read (check) and the
        # off-lock append (act).
        assert any("read here" in m for m in messages)
        assert any("write here" in m for m in messages)

    def test_fixed_accountant_is_clean(self):
        assert findings_of(LockDiscipline(), FIXED_ACCOUNTANT) == []

    def test_init_writes_are_exempt(self):
        # RACY's __init__ also writes _ledger off-lock; none of the
        # reported lines may point there.
        hits = findings_of(LockDiscipline(), RACY_ACCOUNTANT)
        init_lines = range(6, 10)
        assert all(line not in init_lines for line, _, _ in hits)

    def test_locked_suffix_methods_are_exempt(self):
        good = """
        import threading


        class Ledger:
            def __init__(self):
                self._entries = []
                self._lock = threading.Lock()

            def add(self, entry):
                with self._lock:
                    self._entries.append(entry)
                    self._persist_locked()

            def _persist_locked(self):
                dump(self._entries)
        """
        assert findings_of(LockDiscipline(), good) == []

    def test_helper_called_only_from_init_is_exempt(self):
        good = """
        import threading


        class Registry:
            def __init__(self, path):
                self._models = {}
                self._lock = threading.Lock()
                self._load(path)

            def _load(self, path):
                self._models = read(path)

            def put(self, key, model):
                with self._lock:
                    self._models[key] = model
        """
        assert findings_of(LockDiscipline(), good) == []

    def test_lone_snapshot_read_is_tolerated(self):
        """A read-only monitor method is a benign race, not check-then-act."""
        good = """
        import threading


        class Counter:
            def __init__(self):
                self._n = 0
                self._lock = threading.Lock()

            def bump(self):
                with self._lock:
                    self._n += 1

            @property
            def value(self):
                return self._n
        """
        assert findings_of(LockDiscipline(), good) == []

    def test_local_lock_alias_counts_as_held(self):
        good = """
        import threading


        class Holder:
            def __init__(self):
                self._state = {}
                self._lock = threading.Lock()

            def update(self, key, value):
                lock = self._lock
                with lock:
                    self._state[key] = value

            def drop(self, key):
                with self._lock:
                    self._state.pop(key, None)
        """
        assert findings_of(LockDiscipline(), good) == []

    def test_classes_without_locks_are_ignored(self):
        assert (
            findings_of(
                LockDiscipline(),
                "class Plain:\n    def f(self):\n        self.x = 1\n",
            )
            == []
        )

    def test_todays_concurrency_sensitive_modules_are_clean(self):
        """Regression pin for the ISSUE's named files: the analyzer must
        pass on today's lock usage in serve/ and dp/."""
        for rel in (
            "src/repro/serve/ledger.py",
            "src/repro/serve/registry.py",
            "src/repro/serve/coalescer.py",
            "src/repro/dp/accountant.py",
        ):
            source = (REPO_ROOT / rel).read_text()
            hits = findings_of(LockDiscipline(), source, rel)
            assert hits == [], f"{rel}: {hits}"


# ---------------------------------------------------------------------------
# ABI001 — native ABI drift


GOOD_C = """
#define REPRO_SCOREF_ABI 1

int64_t repro_scoref_abi_version(void) { return REPRO_SCOREF_ABI; }

int repro_score_f_batch(const int64_t *c0, const int64_t *c1,
                        int64_t count, int64_t m, int64_t n,
                        double *out) {
    return 0;
}
"""

GOOD_PY = """
import ctypes

ABI_VERSION = 1


class Backend:
    def __init__(self, library):
        version = library.repro_scoref_abi_version
        version.restype = ctypes.c_int64
        version.argtypes = []
        score = library.repro_score_f_batch
        score.restype = ctypes.c_int
        score.argtypes = [
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_int64),
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.POINTER(ctypes.c_double),
        ]
"""

KERNEL_PATH = "src/repro/core/kernel_backend.py"


def abi_context(c_source):
    return AnalysisContext(
        symbols=build_symbol_graph([]),
        native_sources={"src/repro/core/_native/scoref.c": c_source},
    )


class TestNativeAbiDrift:
    def test_parse_c_exports(self):
        exports = parse_c_exports(GOOD_C)
        assert exports["repro_scoref_abi_version"] == ("int64_t", ())
        assert exports["repro_score_f_batch"] == (
            "int",
            ("int64_t*", "int64_t*", "int64_t", "int64_t", "int64_t", "double*"),
        )
        assert parse_c_abi_version(GOOD_C) == 1

    def test_matching_declarations_are_clean(self):
        hits = findings_of(
            NativeAbiDrift(), GOOD_PY, KERNEL_PATH, abi_context(GOOD_C)
        )
        assert hits == []

    def test_signature_drift_is_flagged(self):
        drifted = GOOD_C.replace("int64_t m, int64_t n", "int64_t m")
        hits = findings_of(
            NativeAbiDrift(), GOOD_PY, KERNEL_PATH, abi_context(drifted)
        )
        assert any("signature drift" in message for _, _, message in hits)

    def test_version_disagreement_is_flagged(self):
        bumped_c_only = GOOD_C.replace(
            "#define REPRO_SCOREF_ABI 1", "#define REPRO_SCOREF_ABI 2"
        )
        hits = findings_of(
            NativeAbiDrift(), GOOD_PY, KERNEL_PATH, abi_context(bumped_c_only)
        )
        assert any("disagrees" in message for _, _, message in hits)

    def test_new_export_without_declaration_is_flagged(self):
        grown = GOOD_C + "\nint repro_new_kernel(int64_t n) { return 0; }\n"
        hits = findings_of(
            NativeAbiDrift(), GOOD_PY, KERNEL_PATH, abi_context(grown)
        )
        assert any("no ctypes declaration" in message for _, _, message in hits)

    def test_surface_change_without_bump_hits_the_manifest(self):
        """A C-side change that keeps the declarations in sync but skips
        the version bump still trips the recorded manifest."""
        renamed = GOOD_C.replace("double *out", "float *out")
        synced_py = GOOD_PY.replace("c_double", "c_float")
        hits = findings_of(
            NativeAbiDrift(), synced_py, KERNEL_PATH, abi_context(renamed)
        )
        assert any("manifest" in message for _, _, message in hits)

    def test_unrecorded_version_is_flagged(self):
        bumped_everywhere = GOOD_C.replace(
            "#define REPRO_SCOREF_ABI 1", "#define REPRO_SCOREF_ABI 99"
        )
        bumped_py = GOOD_PY.replace("ABI_VERSION = 1", "ABI_VERSION = 99")
        hits = findings_of(
            NativeAbiDrift(),
            bumped_py,
            KERNEL_PATH,
            abi_context(bumped_everywhere),
        )
        assert any("not recorded" in message for _, _, message in hits)

    def test_silent_without_context(self):
        assert findings_of(NativeAbiDrift(), GOOD_PY, KERNEL_PATH, None) == []

    def test_only_applies_to_kernel_backend(self):
        rule = NativeAbiDrift()
        assert rule.applies_to(KERNEL_PATH)
        assert not rule.applies_to("src/repro/core/privbayes.py")

    def test_recorded_manifest_matches_the_tree(self):
        """ABI_MANIFEST v1 is exactly today's scoref.c exported surface."""
        c_source = (
            REPO_ROOT / "src/repro/core/_native/scoref.c"
        ).read_text()
        assert parse_c_abi_version(c_source) == 1
        assert parse_c_exports(c_source) == ABI_MANIFEST[1]


# ---------------------------------------------------------------------------
# engine integration: tier tagging and pragma machinery for flow rules


class TestFlowTierIntegration:
    def test_flow_findings_carry_the_flow_tier(self):
        bad = """
        def release(table, epsilon, accountant):
            counts = table.counts()
            accountant.spend("release", epsilon)
            return counts
        """
        findings = analyze_source(textwrap.dedent(bad), "fixture.py")
        priv = [f for f in findings if f.rule == "PRIV003"]
        assert len(priv) == 1
        assert priv[0].tier == "flow"
        assert all(
            f.tier == "ast" for f in findings if f.rule != "PRIV003"
        )

    def test_pragmas_suppress_flow_rules_too(self):
        suppressed = """
        def release(table, epsilon, accountant):
            # repro: allow[PRIV003] -- fixture: charge happens in the caller
            counts = table.counts()
            accountant.spend("release", epsilon)
            return counts
        """
        findings = analyze_source(textwrap.dedent(suppressed), "fixture.py")
        (priv,) = [f for f in findings if f.rule == "PRIV003"]
        assert priv.status == "suppressed"
        assert priv.justification == "fixture: charge happens in the caller"

    def test_racy_accountant_hits_conc001_via_the_engine(self):
        assert "CONC001" in rules_hit(RACY_ACCOUNTANT)

    def test_sibling_loop_draw_hits_det004_via_the_engine(self):
        assert "DET004" in rules_hit(
            """
            def series(rng, xs):
                for x in xs:
                    a = rng.random()
                for x in xs:
                    b = rng.random()
            """
        )
