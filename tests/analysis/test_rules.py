"""Good/bad fixture snippets for every analyzer rule.

Fixtures live in string literals so the analyzer (which scans this test
tree in CI) sees only the test code, never the violations themselves.
"""

import textwrap

import pytest

from repro.analysis import analyze_source


def findings_for(snippet, rule=None, path="fixture.py"):
    found = analyze_source(textwrap.dedent(snippet), path)
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


def open_rules(snippet, path="fixture.py"):
    return sorted(
        {f.rule for f in findings_for(snippet, path=path) if f.status == "open"}
    )


class TestDET001:
    def test_unseeded_default_rng_flagged(self):
        bad = """
        import numpy as np
        rng = np.random.default_rng()
        """
        assert [f.rule for f in findings_for(bad, "DET001")] == ["DET001"]

    def test_seeded_default_rng_clean(self):
        good = """
        import numpy as np
        rng = np.random.default_rng(42)
        """
        assert findings_for(good, "DET001") == []

    def test_global_numpy_state_flagged_even_with_args(self):
        bad = """
        import numpy as np
        np.random.seed(0)
        x = np.random.normal(0.0, 1.0, 10)
        """
        assert len(findings_for(bad, "DET001")) == 2

    def test_numpy_alias_and_from_import_resolved(self):
        bad = """
        import numpy
        from numpy.random import default_rng
        a = numpy.random.default_rng()
        b = default_rng()
        """
        assert len(findings_for(bad, "DET001")) == 2

    def test_stdlib_random_module_functions_flagged(self):
        bad = """
        import random
        random.shuffle(items)
        x = random.random()
        """
        assert len(findings_for(bad, "DET001")) == 2

    def test_seeded_stdlib_random_instance_clean(self):
        good = """
        import random
        r = random.Random(5)
        r.shuffle(items)
        """
        assert findings_for(good, "DET001") == []

    def test_generator_construction_clean(self):
        good = """
        import numpy as np
        rng = np.random.Generator(np.random.PCG64(7))
        """
        assert findings_for(good, "DET001") == []


class TestDET002:
    def test_pr2_seeding_regression_fixture_flagged(self):
        # The exact PR 2 bug class: a PYTHONHASHSEED-salted per-series seed.
        bad = """
        import numpy as np

        def series_rng(name, base):
            return np.random.default_rng(base + hash(name) % 1000)
        """
        flagged = findings_for(bad, "DET002")
        assert len(flagged) == 1 and flagged[0].status == "open"

    def test_hash_inside_dunder_hash_clean(self):
        good = """
        class Network:
            def __hash__(self):
                return hash(self._pairs)
        """
        assert findings_for(good, "DET002") == []

    def test_hash_in_other_method_flagged(self):
        bad = """
        class Network:
            def fingerprint(self):
                return hash(self._pairs)
        """
        assert len(findings_for(bad, "DET002")) == 1

    def test_nested_function_inside_dunder_hash_still_exempt(self):
        good = """
        class Network:
            def __hash__(self):
                def inner():
                    return hash(self._pairs)
                return inner()
        """
        assert findings_for(good, "DET002") == []


class TestDET003:
    def test_set_iteration_with_accumulation_flagged(self):
        bad = """
        total = 0.0
        for name in set(names):
            total += weights[name]
        """
        assert len(findings_for(bad, "DET003")) == 1

    def test_sorted_set_iteration_clean(self):
        good = """
        total = 0.0
        for name in sorted(set(names)):
            total += weights[name]
        """
        assert findings_for(good, "DET003") == []

    def test_set_iteration_without_accumulation_clean(self):
        good = """
        for name in set(names):
            print(name)
        """
        assert findings_for(good, "DET003") == []

    def test_set_iteration_feeding_rng_flagged(self):
        bad = """
        for name in {"a", "b"}:
            draws[name] = rng.integers(10)
        """
        assert len(findings_for(bad, "DET003")) == 1

    def test_listdir_iteration_flagged_unconditionally(self):
        bad = """
        import os
        for entry in os.listdir(path):
            load(entry)
        """
        flagged = findings_for(bad, "DET003")
        assert len(flagged) == 1 and "sorted" in flagged[0].message

    def test_sum_over_set_flagged(self):
        bad = """
        total = sum(set(values))
        """
        assert len(findings_for(bad, "DET003")) == 1

    def test_sum_over_comprehension_of_set_flagged(self):
        bad = """
        total = sum(w[k] for k in set(keys))
        """
        assert len(findings_for(bad, "DET003")) == 1


class TestPRIV001:
    def test_raw_epsilon_split_fixture_flagged(self):
        # Synthetic raw-ε-arithmetic fixture: the historical inline split.
        bad = """
        def fit(table, epsilon, beta):
            epsilon1 = beta * epsilon
            epsilon2 = epsilon - epsilon1
            return epsilon1, epsilon2
        """
        assert len(findings_for(bad, "PRIV001")) == 2

    def test_split_helper_call_clean(self):
        good = """
        from repro.dp.accountant import split_epsilon

        def fit(table, epsilon, beta):
            return split_epsilon(epsilon, (beta,), remainder=True)
        """
        assert findings_for(good, "PRIV001") == []

    def test_accountant_module_exempt(self):
        inline = """
        def spend(total_epsilon, epsilon):
            return total_epsilon - epsilon
        """
        assert (
            findings_for(inline, "PRIV001", path="src/repro/dp/accountant.py")
            == []
        )
        assert (
            len(findings_for(inline, "PRIV001", path="src/repro/core/x.py"))
            > 0
        )

    def test_epsilon_index_variables_not_flagged(self):
        good = """
        for eps_idx, epsilon in enumerate(epsilons):
            seed = base + eps_idx * 101
        """
        assert findings_for(good, "PRIV001") == []

    def test_budget_attribute_flagged(self):
        bad = """
        leftover = ledger.budget - 0.5
        """
        assert len(findings_for(bad, "PRIV001")) == 1

    def test_comparisons_are_not_arithmetic(self):
        good = """
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        """
        assert findings_for(good, "PRIV001") == []


class TestPRIV002:
    def test_inline_scale_expression_flagged(self):
        bad = """
        from repro.dp.mechanisms import laplace_noise
        noise = laplace_noise(2.0 / epsilon, 10, rng)
        """
        assert len(findings_for(bad, "PRIV002")) == 1

    def test_scale_helper_clean(self):
        good = """
        from repro.dp.mechanisms import laplace_noise, laplace_scale
        noise = laplace_noise(laplace_scale(2.0, epsilon), 10, rng)
        """
        assert findings_for(good, "PRIV002") == []

    def test_named_precomputed_scale_clean(self):
        good = """
        noise = laplace_noise(scale, 10, rng)
        """
        assert findings_for(good, "PRIV002") == []

    def test_rng_laplace_kwarg_flagged(self):
        bad = """
        noise = rng.laplace(loc=0.0, scale=sensitivity / epsilon, size=4)
        """
        assert len(findings_for(bad, "PRIV002")) == 1

    def test_negative_constant_scale_clean(self):
        good = """
        laplace_noise(-1.0, 10, rng)
        """
        assert findings_for(good, "PRIV002") == []


class TestNUM001:
    def test_bare_np_prod_flagged(self):
        bad = """
        import numpy as np
        total = int(np.prod(sizes))
        """
        assert len(findings_for(bad, "NUM001")) == 1

    def test_object_dtype_clean(self):
        good = """
        import numpy as np
        total = int(np.prod(sizes, dtype=object))
        """
        assert findings_for(good, "NUM001") == []

    def test_int64_dtype_still_flagged(self):
        bad = """
        import numpy as np
        total = int(np.prod(sizes, dtype=np.int64))
        """
        assert len(findings_for(bad, "NUM001")) == 1

    def test_math_prod_flagged(self):
        bad = """
        import math
        total = math.prod(sizes)
        """
        assert len(findings_for(bad, "NUM001")) == 1

    def test_domain_size_helper_clean(self):
        good = """
        from repro.data.marginals import domain_size
        total = domain_size(sizes)
        """
        assert findings_for(good, "NUM001") == []


class TestEngineBasics:
    def test_syntax_error_reported_as_parse_finding(self):
        found = findings_for("def broken(:\n    pass\n")
        assert [f.rule for f in found] == ["ANA000"]
        assert found[0].status == "open"

    def test_clean_module_has_no_findings(self):
        assert (
            findings_for(
                """
                import numpy as np

                def sample(rng: np.random.Generator) -> float:
                    return float(rng.random())
                """
            )
            == []
        )

    def test_findings_sorted_and_fingerprinted(self):
        found = findings_for(
            """
            import numpy as np
            b = np.random.default_rng()
            a = int(np.prod(sizes))
            """
        )
        assert [f.line for f in found] == sorted(f.line for f in found)
        assert all(f.fingerprint for f in found)
