"""Laplace / Contingency / Uniform marginal baselines."""

import numpy as np
import pytest

from repro.baselines.marginal_methods import (
    ContingencyMarginals,
    LaplaceMarginals,
    UniformMarginals,
)
from repro.data.marginals import joint_distribution
from repro.infotheory.measures import total_variation_distance
from repro.workloads import all_alpha_marginals, average_variation_distance


@pytest.fixture
def workload(binary_table):
    return all_alpha_marginals(binary_table, 2)


class TestLaplace:
    def test_releases_every_marginal(self, binary_table, workload, rng):
        released = LaplaceMarginals().release(binary_table, workload, 1.0, rng)
        assert set(released) == set(workload)

    def test_outputs_are_distributions(self, binary_table, workload, rng):
        released = LaplaceMarginals().release(binary_table, workload, 1.0, rng)
        for dist in released.values():
            assert (dist >= 0).all()
            assert dist.sum() == pytest.approx(1.0)

    def test_error_shrinks_with_epsilon(self, binary_table, workload):
        def err(eps, seed):
            released = LaplaceMarginals().release(
                binary_table, workload, eps, np.random.default_rng(seed)
            )
            return average_variation_distance(binary_table, released, workload)

        loose = np.mean([err(0.01, s) for s in range(5)])
        tight = np.mean([err(20.0, s) for s in range(5)])
        assert tight < loose

    def test_error_grows_with_workload_size(self, rng):
        """Splitting the budget over more marginals hurts (Section 6.5)."""
        from repro.datasets import load_dataset

        table = load_dataset("nltcs", n=3000, seed=0)
        small = all_alpha_marginals(table, 2)[:10]
        big = all_alpha_marginals(table, 3)[:300]
        err_small = average_variation_distance(
            table,
            LaplaceMarginals().release(table, small, 0.1, np.random.default_rng(0)),
            small,
        )
        err_big = average_variation_distance(
            table,
            LaplaceMarginals().release(table, big, 0.1, np.random.default_rng(0)),
            big,
        )
        assert err_big > err_small

    def test_invalid_epsilon(self, binary_table, workload, rng):
        with pytest.raises(ValueError):
            LaplaceMarginals().release(binary_table, workload, 0.0, rng)


class TestContingency:
    def test_releases_every_marginal(self, binary_table, workload, rng):
        released = ContingencyMarginals().release(binary_table, workload, 1.0, rng)
        assert set(released) == set(workload)

    def test_consistency_across_marginals(self, binary_table, rng):
        """All marginals project from one table, so shared sub-marginals
        agree — the consistency property of Section 1.1."""
        released = ContingencyMarginals().release(
            binary_table, [("a", "b"), ("a", "c")], 5.0, rng
        )
        from_ab = released[("a", "b")].reshape(2, 2).sum(axis=1)
        from_ac = released[("a", "c")].reshape(2, 2).sum(axis=1)
        assert np.allclose(from_ab, from_ac)

    def test_accurate_at_high_epsilon(self, binary_table, workload, rng):
        released = ContingencyMarginals().release(
            binary_table, workload, 100.0, rng
        )
        err = average_variation_distance(binary_table, released, workload)
        assert err < 0.05

    def test_domain_size_guard(self, rng):
        from repro.data.attribute import Attribute
        from repro.data.table import Table

        attrs = [
            Attribute(f"x{i}", tuple(str(v) for v in range(64))) for i in range(5)
        ]
        table = Table(attrs, {a.name: np.zeros(10, dtype=int) for a in attrs})
        with pytest.raises(ValueError, match="does not scale"):
            ContingencyMarginals().release(table, [("x0", "x1")], 1.0, rng)


class TestUniform:
    def test_uniform_answers(self, binary_table, workload, rng):
        released = UniformMarginals().release(binary_table, workload, 1.0, rng)
        for names, dist in released.items():
            assert np.allclose(dist, 1.0 / dist.size)

    def test_error_independent_of_epsilon(self, binary_table, workload, rng):
        r1 = UniformMarginals().release(binary_table, workload, 0.01, rng)
        r2 = UniformMarginals().release(binary_table, workload, 10.0, rng)
        e1 = average_variation_distance(binary_table, r1, workload)
        e2 = average_variation_distance(binary_table, r2, workload)
        assert e1 == pytest.approx(e2)
