"""MWEM: convergence behaviour, domain guard, round budgeting."""

import numpy as np
import pytest

from repro.baselines.mwem import MWEM
from repro.data.attribute import Attribute
from repro.data.table import Table
from repro.workloads import all_alpha_marginals, average_variation_distance


@pytest.fixture
def small_table(rng):
    n = 2000
    a = rng.integers(0, 2, n)
    b = np.where(rng.random(n) < 0.9, a, 1 - a)
    c = rng.integers(0, 2, n)
    attrs = [Attribute.binary(x) for x in "abc"]
    return Table(attrs, {"a": a, "b": b, "c": c})


class TestMWEM:
    def test_outputs_are_distributions(self, small_table, rng):
        workload = all_alpha_marginals(small_table, 2)
        released = MWEM().release(small_table, workload, 0.5, rng)
        for dist in released.values():
            assert (dist >= 0).all()
            assert dist.sum() == pytest.approx(1.0)

    def test_improves_over_uniform_at_high_epsilon(self, small_table, rng):
        workload = all_alpha_marginals(small_table, 2)
        released = MWEM(max_rounds=30).release(small_table, workload, 4.0, rng)
        err = average_variation_distance(small_table, released, workload)
        from repro.baselines.marginal_methods import UniformMarginals

        uniform = UniformMarginals().release(small_table, workload, 4.0, rng)
        uniform_err = average_variation_distance(small_table, uniform, workload)
        assert err < uniform_err

    def test_round_count_tracks_epsilon(self):
        mech = MWEM(per_round_epsilon=0.05, max_rounds=100)
        # ε=0.5 → 10 rounds, ε=0.05 → 1 round (the Section 6.5 adjustment).
        assert max(1, min(100, round(0.5 / 0.05))) == 10
        assert max(1, min(100, round(0.05 / 0.05))) == 1

    def test_domain_guard(self, rng):
        attrs = [
            Attribute(f"x{i}", tuple(str(v) for v in range(64))) for i in range(5)
        ]
        table = Table(attrs, {a.name: np.zeros(5, dtype=int) for a in attrs})
        with pytest.raises(ValueError, match="does not scale"):
            MWEM().release(table, [("x0", "x1")], 1.0, rng)

    def test_invalid_epsilon(self, small_table, rng):
        with pytest.raises(ValueError):
            MWEM().release(small_table, [("a", "b")], -0.5, rng)

    def test_nonuniform_attribute_sizes(self, rng):
        n = 1000
        attrs = [Attribute("x", ("u", "v", "w")), Attribute.binary("y")]
        table = Table(
            attrs, {"x": rng.integers(0, 3, n), "y": rng.integers(0, 2, n)}
        )
        released = MWEM(max_rounds=10).release(table, [("x", "y")], 1.0, rng)
        assert released[("x", "y")].size == 6
