"""Fourier mechanism internals: coefficient bookkeeping and budgets."""

import itertools
import math

import numpy as np
import pytest

from repro.baselines.fourier import FourierMarginals
from repro.data.attribute import Attribute
from repro.data.table import Table
from repro.workloads import all_alpha_marginals


def _binary_table(d, n, seed):
    rng = np.random.default_rng(seed)
    attrs = [Attribute.binary(f"x{i}") for i in range(d)]
    return Table(attrs, {a.name: rng.integers(0, 2, n) for a in attrs})


class TestCoefficientSets:
    def test_parseval_exact_reconstruction_one_marginal(self):
        """With no noise budget pressure, one marginal reconstructs from
        its 2^alpha coefficients exactly."""
        table = _binary_table(4, 500, 0)
        released = FourierMarginals().release(
            table, [("x0", "x1")], 1e9, np.random.default_rng(0)
        )
        from repro.data.marginals import joint_distribution

        truth = joint_distribution(table, ["x0", "x1"])
        assert np.allclose(released[("x0", "x1")], truth, atol=1e-6)

    def test_q_alpha_coefficient_count(self):
        """Q_alpha over d binary attrs needs sum_{j<=alpha} C(d,j)
        distinct coefficients (subsets are shared across marginals)."""
        d, alpha = 5, 2
        table = _binary_table(d, 200, 1)
        workload = all_alpha_marginals(table, alpha)
        mech = FourierMarginals()
        # Count needed subsets exactly as the mechanism does.
        needed = set()
        for names in workload:
            for r in range(alpha + 1):
                for combo in itertools.combinations(sorted(names), r):
                    needed.add(combo)
        expected = sum(math.comb(d, j) for j in range(alpha + 1))
        assert len(needed) == expected

    def test_empty_subset_coefficient_is_one(self):
        """c_∅ = 1 always (total mass); the mechanism injects noise into it
        too, but reconstruction renormalizes."""
        table = _binary_table(3, 100, 2)
        released = FourierMarginals().release(
            table, [("x0",)], 1e9, np.random.default_rng(0)
        )
        assert released[("x0",)].sum() == pytest.approx(1.0)

    def test_error_grows_with_workload_like_laplace(self):
        """More marginals -> more coefficients -> more noise each."""
        from repro.workloads import average_variation_distance

        table = _binary_table(8, 2000, 3)
        small = all_alpha_marginals(table, 1)
        big = all_alpha_marginals(table, 3)

        def err(workload, seed):
            released = FourierMarginals().release(
                table, workload, 0.2, np.random.default_rng(seed)
            )
            return average_variation_distance(table, released, workload)

        small_err = np.mean([err(small, s) for s in range(4)])
        big_err = np.mean([err(big, s) for s in range(4)])
        assert big_err > small_err
