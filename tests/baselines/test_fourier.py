"""Fourier (Barak et al.) mechanism: exactness without noise budget → huge ε,
coefficient bookkeeping, non-binary folding."""

import numpy as np
import pytest

from repro.baselines.fourier import FourierMarginals
from repro.data.attribute import Attribute
from repro.data.table import Table
from repro.data.marginals import joint_distribution
from repro.infotheory.measures import total_variation_distance
from repro.workloads import all_alpha_marginals, average_variation_distance


class TestBinaryDomains:
    def test_near_exact_at_huge_epsilon(self, binary_table):
        workload = all_alpha_marginals(binary_table, 2)
        released = FourierMarginals().release(
            binary_table, workload, 1e6, np.random.default_rng(0)
        )
        for names in workload:
            truth = joint_distribution(binary_table, list(names))
            assert total_variation_distance(truth, released[names]) < 1e-3

    def test_outputs_are_distributions(self, binary_table, rng):
        workload = all_alpha_marginals(binary_table, 2)
        released = FourierMarginals().release(binary_table, workload, 0.5, rng)
        for dist in released.values():
            assert (dist >= 0).all()
            assert dist.sum() == pytest.approx(1.0)

    def test_error_shrinks_with_epsilon(self, binary_table):
        workload = all_alpha_marginals(binary_table, 2)

        def err(eps, seed):
            released = FourierMarginals().release(
                binary_table, workload, eps, np.random.default_rng(seed)
            )
            return average_variation_distance(binary_table, released, workload)

        loose = np.mean([err(0.02, s) for s in range(5)])
        tight = np.mean([err(50.0, s) for s in range(5)])
        assert tight < loose


class TestNonBinaryDomains:
    def _table(self):
        rng = np.random.default_rng(1)
        attrs = [
            Attribute("c", ("r", "g", "b")),  # 3 values -> 2 bits, 1 invalid
            Attribute.binary("f"),
        ]
        return Table(
            attrs,
            {"c": rng.integers(0, 3, 800), "f": rng.integers(0, 2, 800)},
        )

    def test_marginal_has_original_domain_size(self, rng):
        table = self._table()
        released = FourierMarginals().release(table, [("c", "f")], 1e6, rng)
        assert released[("c", "f")].size == 6  # 3 * 2, not 2^3

    def test_near_exact_at_huge_epsilon(self, rng):
        table = self._table()
        released = FourierMarginals().release(table, [("c", "f")], 1e6, rng)
        truth = joint_distribution(table, ["c", "f"])
        assert total_variation_distance(truth, released[("c", "f")]) < 1e-3

    def test_marginal_too_wide_rejected(self, rng):
        table = self._table()
        mech = FourierMarginals(max_bits_per_marginal=2)
        with pytest.raises(ValueError, match="bits"):
            mech.release(table, [("c", "f")], 1.0, rng)

    def test_invalid_epsilon(self, rng):
        with pytest.raises(ValueError):
            FourierMarginals().release(self._table(), [("c",)], 0.0, rng)
