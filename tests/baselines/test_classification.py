"""Classification baselines: Majority, PrivateERM, PrivGene."""

import numpy as np
import pytest

from repro.baselines.classification import (
    MajorityClassifier,
    PrivGene,
    PrivateERM,
)
from repro.svm.features import BinaryTask, featurize
from repro.svm.linear import misclassification_rate
from tests.svm.test_svm import _task_table


@pytest.fixture
def xy():
    table = _task_table(n=3000, seed=2)
    return featurize(table, BinaryTask("t", "y", ("pos",)))


class TestMajority:
    def test_predicts_single_class(self, xy, rng):
        X, y = xy
        model = MajorityClassifier().fit(X, y, 1.0, rng)
        preds = model.predict(X)
        assert len(set(preds.tolist())) == 1

    def test_picks_true_majority_with_large_budget(self, xy, rng):
        X, y = xy
        majority = 1.0 if (y > 0).sum() > len(y) / 2 else -1.0
        model = MajorityClassifier().fit(X, y, 100.0, rng)
        assert model.majority == majority

    def test_error_equals_minority_fraction(self, xy, rng):
        X, y = xy
        model = MajorityClassifier().fit(X, y, 100.0, rng)
        expected = min((y > 0).mean(), (y < 0).mean())
        assert misclassification_rate(model, X, y) == pytest.approx(expected)

    def test_predict_before_fit(self, xy):
        with pytest.raises(RuntimeError):
            MajorityClassifier().predict(xy[0])

    def test_invalid_epsilon(self, xy, rng):
        with pytest.raises(ValueError):
            MajorityClassifier().fit(*xy, epsilon=0.0, rng=rng)


class TestPrivateERM:
    def test_beats_majority_at_high_epsilon(self, xy, rng):
        X, y = xy
        model = PrivateERM().fit(X, y, 10.0, rng)
        base = min((y > 0).mean(), (y < 0).mean())
        assert misclassification_rate(model, X, y) < base

    def test_accuracy_improves_with_epsilon(self, xy):
        X, y = xy

        def err(eps, seed):
            model = PrivateERM().fit(X, y, eps, np.random.default_rng(seed))
            return misclassification_rate(model, X, y)

        loose = np.mean([err(0.01, s) for s in range(8)])
        tight = np.mean([err(20.0, s) for s in range(8)])
        assert tight < loose

    def test_small_epsilon_triggers_extra_regularization(self, xy, rng):
        X, y = xy
        n = X.shape[0]
        # With lam large enough eps' > 0; with lam tiny it flips negative.
        model = PrivateERM(lam=1e-9)
        model.fit(X, y, 0.05, rng)  # must not crash (Δ-branch taken)
        assert model.model is not None

    def test_predict_before_fit(self, xy):
        with pytest.raises(RuntimeError):
            PrivateERM().predict(xy[0])

    def test_invalid_epsilon(self, xy, rng):
        with pytest.raises(ValueError):
            PrivateERM().fit(*xy, epsilon=-1.0, rng=rng)


class TestPrivGene:
    def test_fits_and_predicts(self, xy, rng):
        X, y = xy
        model = PrivGene(population=40, n_parents=5, iterations=4).fit(
            X, y, 1.0, rng
        )
        preds = model.predict(X)
        assert set(np.unique(preds)) <= {-1.0, 1.0}

    def test_beats_random_at_high_epsilon(self, xy, rng):
        X, y = xy
        model = PrivGene(population=60, n_parents=8, iterations=8).fit(
            X, y, 50.0, rng
        )
        assert misclassification_rate(model, X, y) < 0.45

    def test_accuracy_improves_with_epsilon(self, xy):
        X, y = xy

        def err(eps, seed):
            model = PrivGene(population=40, n_parents=5, iterations=5).fit(
                X, y, eps, np.random.default_rng(seed)
            )
            return misclassification_rate(model, X, y)

        loose = np.mean([err(0.005, s) for s in range(6)])
        tight = np.mean([err(50.0, s) for s in range(6)])
        assert tight <= loose + 0.02

    def test_predict_before_fit(self, xy):
        with pytest.raises(RuntimeError):
            PrivGene().predict(xy[0])

    def test_invalid_epsilon(self, xy, rng):
        with pytest.raises(ValueError):
            PrivGene().fit(*xy, epsilon=0.0, rng=rng)
