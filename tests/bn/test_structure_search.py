"""Reference structure search: Chow-Liu MST and exhaustive DP optimum."""

import numpy as np
import pytest

from repro.bn.structure_search import (
    chow_liu_tree,
    exhaustive_best_network,
    network_score,
    pairwise_mutual_information,
)
from repro.core.greedy_bayes import greedy_bayes_fixed_k
from repro.data.attribute import Attribute
from repro.data.table import Table


@pytest.fixture
def chain_table(rng):
    """a -> b -> c chain plus an independent d."""
    n = 4000
    a = rng.integers(0, 2, n)
    b = np.where(rng.random(n) < 0.92, a, 1 - a)
    c = np.where(rng.random(n) < 0.8, b, 1 - b)
    d = rng.integers(0, 2, n)
    return Table(
        [Attribute.binary(x) for x in "abcd"],
        {"a": a, "b": b, "c": c, "d": d},
    )


class TestPairwiseMI:
    def test_all_pairs_present(self, chain_table):
        weights = pairwise_mutual_information(chain_table)
        assert len(weights) == 6

    def test_strong_edge_dominates(self, chain_table):
        weights = pairwise_mutual_information(chain_table)
        assert weights[("a", "b")] > weights[("a", "c")]
        assert weights[("b", "c")] > weights[("a", "d")]


class TestChowLiu:
    def test_recovers_chain_edges(self, chain_table):
        tree = chow_liu_tree(chain_table, root="a")
        edges = set(tree.edges())
        assert ("a", "b") in edges
        assert ("b", "c") in edges

    def test_tree_degree_is_one(self, chain_table):
        assert chow_liu_tree(chain_table).degree <= 1

    def test_every_attribute_placed(self, chain_table):
        tree = chow_liu_tree(chain_table)
        assert set(tree.attribute_order) == set(chain_table.attribute_names)

    def test_root_is_parentless(self, chain_table):
        tree = chow_liu_tree(chain_table, root="c")
        assert tree.pairs[0].child == "c"
        assert tree.pairs[0].parents == ()

    def test_unknown_root(self, chain_table):
        with pytest.raises(ValueError):
            chow_liu_tree(chain_table, root="zz")

    def test_single_attribute(self, rng):
        t = Table([Attribute.binary("a")], {"a": rng.integers(0, 2, 50)})
        tree = chow_liu_tree(t)
        assert tree.d == 1

    def test_greedy_k1_matches_chow_liu_score(self, chain_table):
        """Section 4.1: greedy argmax with k=1 equals Chow-Liu optimality."""
        tree_score = network_score(chain_table, chow_liu_tree(chain_table, "a"))
        greedy = greedy_bayes_fixed_k(
            chain_table, 1, None, "I",
            np.random.default_rng(0), first_attribute="a",
        )
        assert network_score(chain_table, greedy) == pytest.approx(
            tree_score, abs=1e-9
        )


class TestExhaustive:
    def test_dominates_greedy(self, chain_table):
        """The DP optimum is an upper bound for any greedy construction."""
        best = exhaustive_best_network(chain_table, k=2)
        best_score = network_score(chain_table, best)
        for seed in range(5):
            greedy = greedy_bayes_fixed_k(
                chain_table, 2, None, "I", np.random.default_rng(seed)
            )
            assert best_score >= network_score(chain_table, greedy) - 1e-9

    def test_k1_matches_chow_liu(self, chain_table):
        best = exhaustive_best_network(chain_table, k=1)
        tree = chow_liu_tree(chain_table, "a")
        assert network_score(chain_table, best) == pytest.approx(
            network_score(chain_table, tree), abs=1e-9
        )

    def test_degree_bound_respected(self, chain_table):
        assert exhaustive_best_network(chain_table, k=1).degree <= 1
        assert exhaustive_best_network(chain_table, k=2).degree <= 2

    def test_dimension_guard(self, rng):
        attrs = [Attribute.binary(f"x{i}") for i in range(14)]
        t = Table(attrs, {a.name: rng.integers(0, 2, 20) for a in attrs})
        with pytest.raises(ValueError, match="limited"):
            exhaustive_best_network(t, k=1)


class TestSharedMICache:
    def test_pairwise_uses_cache(self, chain_table):
        from repro.core.scoring import MutualInformationCache

        cache = MutualInformationCache(chain_table)
        cached = pairwise_mutual_information(chain_table, mi_cache=cache)
        fresh = pairwise_mutual_information(chain_table)
        assert cached == fresh
        # Every pair landed in the shared memo.
        assert len(cache._mi) == len(fresh)

    def test_chow_liu_identical_with_cache(self, chain_table):
        from repro.core.scoring import MutualInformationCache

        cache = MutualInformationCache(chain_table)
        assert chow_liu_tree(chain_table, mi_cache=cache) == chow_liu_tree(
            chain_table
        )

    def test_exhaustive_identical_with_cache(self, chain_table):
        from repro.core.scoring import MutualInformationCache

        cache = MutualInformationCache(chain_table)
        with_cache = exhaustive_best_network(chain_table, 1, mi_cache=cache)
        without = exhaustive_best_network(chain_table, 1)
        assert with_cache == without

    def test_network_score_identical_with_cache(self, chain_table):
        from repro.core.scoring import MutualInformationCache

        cache = MutualInformationCache(chain_table)
        tree = chow_liu_tree(chain_table)
        assert network_score(chain_table, tree, mi_cache=cache) == network_score(
            chain_table, tree
        )

    def test_cache_for_other_table_rejected(self, chain_table, rng):
        from repro.core.scoring import MutualInformationCache

        other = Table(
            [Attribute.binary("x")], {"x": rng.integers(0, 2, 100)}
        )
        cache = MutualInformationCache(other)
        with pytest.raises(ValueError, match="different table"):
            pairwise_mutual_information(chain_table, mi_cache=cache)
        with pytest.raises(ValueError, match="different table"):
            network_score(chain_table, chow_liu_tree(chain_table), mi_cache=cache)
