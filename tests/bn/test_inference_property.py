"""Property tests: variable elimination equals brute-force enumeration."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bn.inference import model_marginal
from repro.bn.network import APPair, BayesianNetwork
from repro.core.noisy_conditionals import ConditionalTable, NoisyModel
from repro.data.attribute import Attribute
from repro.data.marginals import domain_size, unflatten_index


def _random_model(sizes, max_parents, rng):
    """Random network + random conditionals over the given domain sizes."""
    attrs = [
        Attribute(f"x{i}", tuple(f"v{j}" for j in range(s)))
        for i, s in enumerate(sizes)
    ]
    pairs = []
    conditionals = []
    placed = []
    for attr in attrs:
        width = min(max_parents, len(placed))
        count = int(rng.integers(0, width + 1)) if width else 0
        chosen = (
            sorted(rng.choice(len(placed), size=count, replace=False).tolist())
            if count
            else []
        )
        parents = [placed[i] for i in chosen]
        pair = APPair.make(attr.name, [p.name for p in parents])
        # APPair sorts parents by name; rebuild sizes accordingly.
        by_name = {p.name: p.size for p in parents}
        parent_sizes = tuple(by_name[name] for name in pair.parent_names)
        rows = domain_size(parent_sizes)
        matrix = rng.dirichlet(np.ones(attr.size), size=rows)
        pairs.append(pair)
        conditionals.append(
            ConditionalTable(
                child=attr.name,
                parents=pair.parents,
                parent_sizes=parent_sizes,
                child_size=attr.size,
                matrix=matrix,
            )
        )
        placed.append(attr)
    return NoisyModel(BayesianNetwork(pairs), tuple(conditionals)), attrs


def _bruteforce_marginal(model, attrs, query):
    """Enumerate the full domain and sum the model probabilities."""
    sizes = [a.size for a in attrs]
    names = [a.name for a in attrs]
    total = domain_size(sizes)
    coords = unflatten_index(np.arange(total), sizes)
    position = {name: i for i, name in enumerate(names)}
    probs = np.ones(total)
    for pair in model.network:
        cond = model.conditional_for(pair.child)
        if cond.parents:
            parent_coords = np.stack(
                [coords[:, position[name]] for name, _ in cond.parents], axis=1
            )
            from repro.data.marginals import flatten_index

            rows = flatten_index(parent_coords, cond.parent_sizes)
        else:
            rows = np.zeros(total, dtype=np.int64)
        probs *= cond.matrix[rows, coords[:, position[pair.child]]]
    query_sizes = [attrs[position[name]].size for name in query]
    out = np.zeros(domain_size(query_sizes))
    from repro.data.marginals import flatten_index

    cells = flatten_index(
        np.stack([coords[:, position[name]] for name in query], axis=1),
        query_sizes,
    )
    np.add.at(out, cells, probs)
    return out


@given(
    sizes=st.lists(st.integers(2, 4), min_size=2, max_size=5),
    seed=st.integers(0, 100_000),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_elimination_matches_bruteforce(sizes, seed, data):
    rng = np.random.default_rng(seed)
    model, attrs = _random_model(sizes, max_parents=2, rng=rng)
    names = [a.name for a in attrs]
    query_size = data.draw(st.integers(1, min(3, len(names))))
    query_idx = data.draw(
        st.lists(
            st.integers(0, len(names) - 1),
            min_size=query_size,
            max_size=query_size,
            unique=True,
        )
    )
    query = [names[i] for i in query_idx]
    inferred = model_marginal(model, attrs, query)
    brute = _bruteforce_marginal(model, attrs, query)
    assert np.allclose(inferred, brute, atol=1e-10)
    np.testing.assert_allclose(inferred.sum(), 1.0, atol=1e-9)
