"""Network quality: sum of MI, exact model joints, KL attribution."""

import numpy as np
import pytest

from repro.bn.network import APPair, BayesianNetwork
from repro.bn.quality import (
    exact_model_joint,
    generalized_codes,
    model_kl_to_data,
    network_mutual_information,
    pair_joint_distribution,
)
from repro.data.attribute import Attribute
from repro.data.marginals import joint_distribution
from repro.data.table import Table
from repro.data.taxonomy import TaxonomyTree


def _chain(names):
    pairs = [APPair.make(names[0], [])]
    pairs += [APPair.make(c, [p]) for p, c in zip(names, names[1:])]
    return BayesianNetwork(pairs)


class TestNetworkMI:
    def test_independent_network_scores_zero(self, binary_table):
        net = BayesianNetwork(
            [APPair.make(n, []) for n in binary_table.attribute_names]
        )
        assert network_mutual_information(binary_table, net) == 0.0

    def test_chain_on_correlated_data_positive(self, binary_table):
        net = _chain(list(binary_table.attribute_names))
        assert network_mutual_information(binary_table, net) > 0.2

    def test_better_structure_scores_higher(self, binary_table):
        # b follows a strongly; pairing (b|a) must beat (b|c).
        good = BayesianNetwork(
            [APPair.make("a", []), APPair.make("b", ["a"])]
        )
        t = binary_table.project(["a", "b"])
        bad_t = binary_table.project(["c", "b"])
        bad = BayesianNetwork(
            [APPair.make("c", []), APPair.make("b", ["c"])]
        )
        assert network_mutual_information(t, good) > network_mutual_information(
            bad_t, bad
        )


class TestGeneralizedCodes:
    def test_level_zero_identity(self, mixed_table):
        codes, size = generalized_codes(mixed_table, "color", 0)
        assert size == 4
        assert (codes == mixed_table.column("color")).all()

    def test_level_one_groups(self, mixed_table):
        codes, size = generalized_codes(mixed_table, "color", 1)
        assert size == 2
        raw = mixed_table.column("color")
        assert ((raw < 2) == (codes == 0)).all()


class TestPairJoint:
    def test_layout_child_innermost(self, mixed_table):
        joint, child_size = pair_joint_distribution(
            mixed_table, "warm_flag", (("color", 0),)
        )
        assert child_size == 2
        assert joint.size == 8
        assert joint.sum() == pytest.approx(1.0)

    def test_generalized_parent(self, mixed_table):
        joint, child_size = pair_joint_distribution(
            mixed_table, "warm_flag", (("color", 1),)
        )
        assert joint.size == 4


class TestExactJoint:
    def test_full_network_reproduces_data_joint(self, binary_table):
        """A fully connected network reproduces the empirical joint."""
        names = list(binary_table.attribute_names)
        pairs = []
        for i, name in enumerate(names):
            pairs.append(APPair.make(name, names[:i]))
        net = BayesianNetwork(pairs)
        model = exact_model_joint(binary_table, net)
        truth = joint_distribution(binary_table, names)
        assert np.allclose(model, truth, atol=1e-12)

    def test_model_joint_is_distribution(self, binary_table):
        net = _chain(list(binary_table.attribute_names))
        model = exact_model_joint(binary_table, net)
        assert model.min() >= 0
        assert model.sum() == pytest.approx(1.0)

    def test_kl_zero_for_full_network(self, binary_table):
        names = list(binary_table.attribute_names)
        pairs = [APPair.make(name, names[:i]) for i, name in enumerate(names)]
        net = BayesianNetwork(pairs)
        assert model_kl_to_data(binary_table, net) == pytest.approx(0.0, abs=1e-9)

    def test_kl_decreases_with_better_structure(self, binary_table):
        independent = BayesianNetwork(
            [APPair.make(n, []) for n in binary_table.attribute_names]
        )
        chain = _chain(list(binary_table.attribute_names))
        assert model_kl_to_data(binary_table, chain) <= model_kl_to_data(
            binary_table, independent
        ) + 1e-9

    def test_equation_6_identity(self, binary_table):
        """Eq. 6: D_KL = -Σ I(X_i, Π_i) + Σ H(X_i) - H(A)."""
        from repro.infotheory.measures import entropy

        net = _chain(list(binary_table.attribute_names))
        names = list(binary_table.attribute_names)
        sum_mi = network_mutual_information(binary_table, net)
        sum_h = sum(
            entropy(joint_distribution(binary_table, [n])) for n in names
        )
        h_all = entropy(joint_distribution(binary_table, names))
        expected = -sum_mi + sum_h - h_all
        assert model_kl_to_data(binary_table, net) == pytest.approx(
            expected, abs=1e-9
        )

    def test_oversized_domain_rejected(self):
        rng = np.random.default_rng(0)
        attrs = [
            Attribute(f"x{i}", tuple(str(v) for v in range(30))) for i in range(5)
        ]
        table = Table(
            attrs, {a.name: rng.integers(0, 30, 10) for a in attrs}
        )
        net = _chain([a.name for a in attrs])
        with pytest.raises(ValueError, match="too large"):
            exact_model_joint(table, net)
