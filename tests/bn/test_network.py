"""Bayesian network structure: AP pairs, ordering, DAG invariants."""

import os
import subprocess
import sys
import zlib
from pathlib import Path

import pytest

from repro.bn.network import APPair, BayesianNetwork


class TestAPPair:
    def test_make_normalizes_strings(self):
        pair = APPair.make("x", ["b", "a"])
        assert pair.parents == (("a", 0), ("b", 0))
        assert pair.parent_names == ("a", "b")
        assert pair.degree == 2

    def test_make_accepts_levels(self):
        pair = APPair.make("x", [("a", 1), "b"])
        assert ("a", 1) in pair.parents

    def test_child_cannot_be_parent(self):
        with pytest.raises(ValueError, match="own parent"):
            APPair.make("x", ["x"])

    def test_duplicate_parents_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            APPair.make("x", ["a", ("a", 1)])

    def test_str_rendering(self):
        pair = APPair.make("x", [("a", 1), "b"])
        assert "a^(1)" in str(pair)
        assert "x" in str(pair)


class TestBayesianNetwork:
    def test_construction_order_is_topological(self):
        net = BayesianNetwork(
            [
                APPair.make("a", []),
                APPair.make("b", ["a"]),
                APPair.make("c", ["a", "b"]),
            ]
        )
        assert net.attribute_order == ("a", "b", "c")
        assert net.degree == 2
        assert net.d == 3

    def test_forward_edge_rejected(self):
        with pytest.raises(ValueError, match="precede"):
            BayesianNetwork([APPair.make("a", ["b"]), APPair.make("b", [])])

    def test_duplicate_child_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            BayesianNetwork([APPair.make("a", []), APPair.make("a", [])])

    def test_edges(self):
        net = BayesianNetwork(
            [APPair.make("a", []), APPair.make("b", ["a"])]
        )
        assert net.edges() == [("a", "b")]

    def test_pair_for(self):
        net = BayesianNetwork([APPair.make("a", [])])
        assert net.pair_for("a").child == "a"
        with pytest.raises(KeyError):
            net.pair_for("zz")

    def test_parent_levels(self):
        net = BayesianNetwork(
            [APPair.make("a", []), APPair.make("b", [("a", 1)])]
        )
        assert net.parent_levels() == {"a": {}, "b": {"a": 1}}

    def test_equality_and_hash(self):
        n1 = BayesianNetwork([APPair.make("a", [])])
        n2 = BayesianNetwork([APPair.make("a", [])])
        assert n1 == n2
        # repro: allow[DET002] -- asserting the in-process __hash__/__eq__ contract itself
        assert hash(n1) == hash(n2)

    def test_empty_network(self):
        net = BayesianNetwork([])
        assert net.d == 0
        assert net.degree == 0


_FINGERPRINT_SNIPPET = """
from repro.bn.network import APPair, BayesianNetwork

net = BayesianNetwork(
    [
        APPair.make("age", []),
        APPair.make("income", ["age"]),
        APPair.make("edu", [("age", 1), "income"]),
    ]
)
print(net.stable_fingerprint())
"""


class TestStableFingerprint:
    def _net(self):
        return BayesianNetwork(
            [
                APPair.make("age", []),
                APPair.make("income", ["age"]),
                APPair.make("edu", [("age", 1), "income"]),
            ]
        )

    def test_equal_networks_share_a_fingerprint(self):
        assert self._net().stable_fingerprint() == self._net().stable_fingerprint()

    def test_structure_changes_change_the_fingerprint(self):
        base = self._net().stable_fingerprint()
        other = BayesianNetwork(
            [
                APPair.make("age", []),
                APPair.make("income", ["age"]),
                APPair.make("edu", ["age", "income"]),  # level 1 -> 0
            ]
        ).stable_fingerprint()
        assert base != other

    def test_fingerprint_is_crc32_of_the_documented_payload(self):
        # Pin the derivation: anyone (any process, any language) can recompute it.
        payload = "age|;income|age^0;edu|age^1,income^0"
        assert self._net().stable_fingerprint() == zlib.crc32(
            payload.encode("utf-8")
        )

    def test_fingerprint_stable_across_hashseeds(self):
        """Two subprocesses with different PYTHONHASHSEED agree bit-for-bit.

        ``__hash__`` is allowed to differ between these processes (it is
        documented as in-process only); ``stable_fingerprint`` is not.
        """
        src = str(Path(__file__).resolve().parents[2] / "src")
        values = []
        for hashseed in ("0", "424242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            env["PYTHONPATH"] = src + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            proc = subprocess.run(
                [sys.executable, "-c", _FINGERPRINT_SNIPPET],
                env=env,
                capture_output=True,
                text=True,
                timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            values.append(int(proc.stdout.strip()))
        assert values[0] == values[1]
