"""Bayesian network structure: AP pairs, ordering, DAG invariants."""

import pytest

from repro.bn.network import APPair, BayesianNetwork


class TestAPPair:
    def test_make_normalizes_strings(self):
        pair = APPair.make("x", ["b", "a"])
        assert pair.parents == (("a", 0), ("b", 0))
        assert pair.parent_names == ("a", "b")
        assert pair.degree == 2

    def test_make_accepts_levels(self):
        pair = APPair.make("x", [("a", 1), "b"])
        assert ("a", 1) in pair.parents

    def test_child_cannot_be_parent(self):
        with pytest.raises(ValueError, match="own parent"):
            APPair.make("x", ["x"])

    def test_duplicate_parents_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            APPair.make("x", ["a", ("a", 1)])

    def test_str_rendering(self):
        pair = APPair.make("x", [("a", 1), "b"])
        assert "a^(1)" in str(pair)
        assert "x" in str(pair)


class TestBayesianNetwork:
    def test_construction_order_is_topological(self):
        net = BayesianNetwork(
            [
                APPair.make("a", []),
                APPair.make("b", ["a"]),
                APPair.make("c", ["a", "b"]),
            ]
        )
        assert net.attribute_order == ("a", "b", "c")
        assert net.degree == 2
        assert net.d == 3

    def test_forward_edge_rejected(self):
        with pytest.raises(ValueError, match="precede"):
            BayesianNetwork([APPair.make("a", ["b"]), APPair.make("b", [])])

    def test_duplicate_child_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            BayesianNetwork([APPair.make("a", []), APPair.make("a", [])])

    def test_edges(self):
        net = BayesianNetwork(
            [APPair.make("a", []), APPair.make("b", ["a"])]
        )
        assert net.edges() == [("a", "b")]

    def test_pair_for(self):
        net = BayesianNetwork([APPair.make("a", [])])
        assert net.pair_for("a").child == "a"
        with pytest.raises(KeyError):
            net.pair_for("zz")

    def test_parent_levels(self):
        net = BayesianNetwork(
            [APPair.make("a", []), APPair.make("b", [("a", 1)])]
        )
        assert net.parent_levels() == {"a": {}, "b": {"a": 1}}

    def test_equality_and_hash(self):
        n1 = BayesianNetwork([APPair.make("a", [])])
        n2 = BayesianNetwork([APPair.make("a", [])])
        assert n1 == n2
        assert hash(n1) == hash(n2)

    def test_empty_network(self):
        net = BayesianNetwork([])
        assert net.d == 0
        assert net.degree == 0
