"""Exact model inference (variable elimination) vs truth and sampling."""

import numpy as np
import pytest

from repro.bn.inference import model_marginal, model_marginals
from repro.bn.network import APPair, BayesianNetwork
from repro.core.noisy_conditionals import (
    ConditionalTable,
    NoisyModel,
    noisy_conditionals_general,
)
from repro.core.privbayes import PrivBayes
from repro.core.sampler import sample_synthetic
from repro.data.attribute import Attribute
from repro.data.marginals import joint_distribution
from repro.data.taxonomy import TaxonomyTree
from repro.infotheory.measures import total_variation_distance


def _oracle_model(table):
    """Noiseless chain model over the table's attributes."""
    names = list(table.attribute_names)
    network = BayesianNetwork(
        [APPair.make(names[0], [])]
        + [APPair.make(c, [p]) for p, c in zip(names, names[1:])]
    )
    model = noisy_conditionals_general(
        table, network, None, np.random.default_rng(0)
    )
    return model


class TestExactness:
    def test_chain_pairwise_marginals_exact(self, binary_table):
        """Adjacent-pair marginals of a chain model equal the data's."""
        model = _oracle_model(binary_table)
        names = list(binary_table.attribute_names)
        for prev, cur in zip(names, names[1:]):
            inferred = model_marginal(
                model, binary_table.attributes, [prev, cur]
            )
            truth = joint_distribution(binary_table, [prev, cur])
            assert np.allclose(inferred, truth, atol=1e-12)

    def test_single_attribute_marginals_exact(self, binary_table):
        model = _oracle_model(binary_table)
        for name in binary_table.attribute_names:
            inferred = model_marginal(model, binary_table.attributes, [name])
            truth = joint_distribution(binary_table, [name])
            assert np.allclose(inferred, truth, atol=1e-12)

    def test_query_order_is_respected(self, binary_table):
        model = _oracle_model(binary_table)
        ab = model_marginal(model, binary_table.attributes, ["a", "b"])
        ba = model_marginal(model, binary_table.attributes, ["b", "a"])
        assert np.allclose(ab.reshape(2, 2), ba.reshape(2, 2).T)

    def test_full_joint_matches_model(self, binary_table):
        from repro.bn.quality import exact_model_joint

        model = _oracle_model(binary_table)
        names = list(binary_table.attribute_names)
        inferred = model_marginal(model, binary_table.attributes, names)
        reference = exact_model_joint(binary_table, model.network)
        assert np.allclose(inferred, reference, atol=1e-12)


class TestVsSampling:
    def test_inference_beats_sampling_noise(self, binary_table):
        """Model-based answers remove the sampling error entirely —
        the paper's concluding-remarks conjecture."""
        model = _oracle_model(binary_table)
        rng = np.random.default_rng(1)
        synthetic = sample_synthetic(
            model, binary_table.attributes, binary_table.n, rng
        )
        names = ["a", "b"]
        truth = joint_distribution(binary_table, names)
        inferred = model_marginal(model, binary_table.attributes, names)
        sampled = joint_distribution(synthetic, names)
        assert total_variation_distance(inferred, truth) <= (
            total_variation_distance(sampled, truth) + 1e-12
        )

    def test_on_fitted_privbayes_model(self, binary_table, rng):
        fitted = PrivBayes(epsilon=2.0).fit(binary_table, rng=rng)
        answers = model_marginals(
            fitted.noisy, binary_table.attributes, [("a", "b"), ("c", "d")]
        )
        for dist in answers.values():
            assert dist.min() >= -1e-12
            assert dist.sum() == pytest.approx(1.0)


class TestGeneralizedParents:
    def test_generalized_parent_inference(self):
        tax = TaxonomyTree.from_groups(
            ("a", "b", "c", "d"), (("ab", ("a", "b")), ("cd", ("c", "d")))
        )
        attrs = [
            Attribute("p", ("a", "b", "c", "d"), taxonomy=tax),
            Attribute.binary("q"),
        ]
        network = BayesianNetwork(
            [APPair.make("p", []), APPair.make("q", [("p", 1)])]
        )
        conditionals = (
            ConditionalTable("p", (), (), 4, np.array([[0.1, 0.2, 0.3, 0.4]])),
            ConditionalTable(
                "q", (("p", 1),), (2,), 2, np.array([[1.0, 0.0], [0.0, 1.0]])
            ),
        )
        model = NoisyModel(network, conditionals)
        # Pr[q=1] = Pr[p in {c, d}] = 0.7.
        marginal = model_marginal(model, attrs, ["q"])
        assert np.allclose(marginal, [0.3, 0.7])
        joint = model_marginal(model, attrs, ["p", "q"])
        assert np.allclose(
            joint.reshape(4, 2),
            [[0.1, 0.0], [0.2, 0.0], [0.0, 0.3], [0.0, 0.4]],
        )


class TestValidation:
    def test_unknown_attribute(self, binary_table):
        model = _oracle_model(binary_table)
        with pytest.raises(KeyError):
            model_marginal(model, binary_table.attributes, ["nope"])

    def test_duplicate_query(self, binary_table):
        model = _oracle_model(binary_table)
        with pytest.raises(ValueError, match="distinct"):
            model_marginal(model, binary_table.attributes, ["a", "a"])

    def test_factor_size_guard(self, binary_table):
        model = _oracle_model(binary_table)
        with pytest.raises(ValueError, match="cells"):
            model_marginal(
                model,
                binary_table.attributes,
                list(binary_table.attribute_names),
                max_factor_cells=2,
            )
