"""Table 5: dataset characteristics (generated vs paper)."""

from repro.experiments.table5 import render_table5, run_table5

from conftest import report, run_once


def test_table5(benchmark):
    rows = run_once(benchmark, run_table5, n=None, seed=0)
    report(render_table5(rows))
    for name, row in rows.items():
        assert row["cardinality"] == row["paper_cardinality"]
        assert row["dimensionality"] == row["paper_dimensionality"]
        assert abs(row["log2_domain"] - row["paper_log2_domain"]) <= 3.0
