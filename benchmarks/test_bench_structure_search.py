"""Structure-learning micro-benchmark: incremental vs per-round rescoring.

Times greedy network construction (Algorithms 2 and 4) on NLTCS- and
Adult-sized tables, comparing the incremental scoring engine
(:class:`repro.core.scoring.CandidateScorer`) against the seed behavior
(``incremental=False``: every candidate rescored from scratch each round).
Both runs use the same seed and must produce bit-identical networks —
scoring consumes no randomness, so the memo cannot perturb the draws.

Emits ``BENCH_structure.json`` next to this file with wall-clock timings
per (d, n, k) grid point so future PRs can track the hot path:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_structure_search.py -q
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.greedy_bayes import greedy_bayes_fixed_k, greedy_bayes_theta
from repro.core.scoring import CandidateScorer
from repro.datasets import load_dataset

from conftest import report

RESULTS_JSON = Path(__file__).parent / "BENCH_structure.json"

#: (label, dataset, n, k or None for θ-mode, score, seed)
GRID = (
    ("nltcs-d16-k2", "nltcs", 4000, 2, "F", 7),
    ("nltcs-d16-k3", "nltcs", 1000, 3, "F", 7),
    ("adult-theta", "adult", 2000, None, "R", 7),
)

#: Acceptance floor for the Figure 4 NLTCS configuration (d=16, k≥2).
MIN_NLTCS_SPEEDUP = 3.0


def _learn(table, k, score, seed, incremental):
    scorer = CandidateScorer(table, score, incremental=incremental)
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    if k is None:
        network = greedy_bayes_theta(
            table,
            epsilon1=0.3,
            epsilon2=0.7,
            theta=4.0,
            score=score,
            rng=rng,
            first_attribute=table.attribute_names[0],
            scorer=scorer,
        )
    else:
        network = greedy_bayes_fixed_k(
            table,
            k,
            epsilon1=0.3,
            score=score,
            rng=rng,
            first_attribute=table.attribute_names[0],
            scorer=scorer,
        )
    return network, time.perf_counter() - start


def test_structure_search_benchmark():
    rows = []
    for label, dataset, n, k, score, seed in GRID:
        table = load_dataset(dataset, n=n, seed=0)
        naive_network, naive_seconds = _learn(table, k, score, seed, False)
        incr_network, incr_seconds = _learn(table, k, score, seed, True)
        # The engine must be a pure optimization: bit-identical structure.
        assert incr_network == naive_network
        rows.append(
            {
                "label": label,
                "dataset": dataset,
                "d": table.d,
                "n": table.n,
                "k": k if k is not None else "theta",
                "score": score,
                "seconds_naive": round(naive_seconds, 4),
                "seconds_incremental": round(incr_seconds, 4),
                "speedup": round(naive_seconds / max(incr_seconds, 1e-9), 2),
            }
        )
    # Assert the acceptance floor BEFORE persisting: a failing run must not
    # overwrite the committed JSON/transcript with sub-floor numbers.
    nltcs = next(r for r in rows if r["label"] == "nltcs-d16-k2")
    assert nltcs["speedup"] >= MIN_NLTCS_SPEEDUP, (
        f"NLTCS d=16 k=2 structure learning is only "
        f"{nltcs['speedup']:.2f}x faster than the seed path "
        f"(need >= {MIN_NLTCS_SPEEDUP}x)"
    )
    RESULTS_JSON.write_text(
        json.dumps({"benchmark": "structure-search", "grid": rows}, indent=2)
        + "\n"
    )
    lines = ["structure search: incremental vs per-round rescoring"]
    for row in rows:
        lines.append(
            f"  {row['label']:<14} d={row['d']:>2} n={row['n']:>5} "
            f"k={row['k']!s:<5} naive={row['seconds_naive']:.2f}s "
            f"incremental={row['seconds_incremental']:.2f}s "
            f"speedup={row['speedup']:.2f}x"
        )
    report("\n".join(lines))
