"""Ablation: answering marginals from the model vs from sampled data.

The paper's concluding remarks ask "whether certain questions could be
answered directly from the materialized model and its parameters, rather
than via random sampling".  This ablation fits one PrivBayes model per ε
and answers the Q2 workload both ways: exact variable elimination on the
noisy model vs the empirical marginals of an n-row synthetic sample.
Expected: model-based answers are at least as accurate (they remove the
sampling-noise term), with the gap largest for small synthetic samples.
"""

import numpy as np

from repro.bn.inference import model_marginals
from repro.core.privbayes import PrivBayes
from repro.datasets import load_dataset
from repro.experiments.framework import ExperimentResult, render_result
from repro.workloads import (
    all_alpha_marginals,
    average_variation_distance,
    synthetic_marginals,
)

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def _run(epsilons, repeats, n, seed):
    table = load_dataset("nltcs", n=n, seed=seed)
    workload = all_alpha_marginals(table, 2)[:30]
    result = ExperimentResult(
        experiment="ablation-inference",
        title="model-based vs sampled marginal answers (NLTCS Q2)",
        x_label="epsilon",
        y_label="average variation distance",
        x=list(epsilons),
    )
    series = {"model-based": [], "sampled (n rows)": [], "sampled (n/10 rows)": []}
    for eps_idx, epsilon in enumerate(epsilons):
        buckets = {name: [] for name in series}
        for r in range(repeats):
            rng = np.random.default_rng(seed * 7919 + eps_idx * 101 + r)
            model = PrivBayes(epsilon=epsilon).fit(table, rng=rng)
            inferred = model_marginals(model.noisy, table.attributes, workload)
            buckets["model-based"].append(
                average_variation_distance(table, inferred, workload)
            )
            full = model.sample(rng=rng)
            buckets["sampled (n rows)"].append(
                average_variation_distance(
                    table, synthetic_marginals(full, workload), workload
                )
            )
            small = model.sample(max(table.n // 10, 1), rng)
            buckets["sampled (n/10 rows)"].append(
                average_variation_distance(
                    table, synthetic_marginals(small, workload), workload
                )
            )
        for name in series:
            series[name].append(float(np.mean(buckets[name])))
    for name, values in series.items():
        result.add(name, values)
    return result


def test_ablation_model_inference(benchmark):
    result = run_once(
        benchmark, _run, epsilons=BENCH_EPSILONS, repeats=3, n=BENCH_N, seed=0
    )
    report(render_result(result))
    for inferred, sampled, tiny in zip(
        result.series["model-based"],
        result.series["sampled (n rows)"],
        result.series["sampled (n/10 rows)"],
    ):
        assert inferred <= sampled + 0.01   # inference never worse
        assert inferred <= tiny + 0.01      # and clearly beats small samples
