"""Figure 5: encodings on Adult α-way marginals.

Paper shape: non-binary encodings (Vanilla-R / Hierarchical-R) beat the
bitwise encodings at small ε; the gap narrows as ε grows.
"""

import numpy as np

from repro.experiments import render_result, run_encoding_marginals

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def test_fig5_adult_q2(benchmark):
    result = run_once(
        benchmark,
        run_encoding_marginals,
        dataset="adult",
        alpha=2,
        epsilons=BENCH_EPSILONS,
        repeats=2,
        n=BENCH_N,
        max_marginals=25,
        seed=0,
    )
    report(render_result(result))
    # Non-binary encodings win at the smallest ε.
    small_eps = {name: values[0] for name, values in result.series.items()}
    nonbinary_best = min(small_eps["vanilla-R"], small_eps["hierarchical-R"])
    bitwise_best = min(small_eps["binary-F"], small_eps["gray-F"])
    assert nonbinary_best <= bitwise_best + 0.02
