"""Analyzer benchmark: cold vs warm-cache vs parallel self-hosted runs.

Times the two-pass analyzer over the same tree CI gates on
(``src tests benchmarks examples``) three ways: cold (empty result
cache), warm (second run against the cache the cold run filled), and
parallel (``jobs=2``, no cache).  All three finding sets are asserted
identical — as dicts, order included — before any clock is compared, so
every speedup reported here is a pure scheduling/caching change.

Emits ``BENCH_analysis.json`` next to this file:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_analysis.py -q
"""

import json
import os
import time
from pathlib import Path

from repro.analysis import ResultCache, analyze_paths

from conftest import report

RESULTS_JSON = Path(__file__).parent / "BENCH_analysis.json"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: The exact tree the CI `analysis` job sweeps.
GATE_PATHS = ("src", "tests", "benchmarks", "examples")

#: A warm cache skips parse + both rule tiers per unchanged file, paying
#: only discovery + sha256; that holds on any hardware, so the floor is
#: asserted unconditionally (conservatively, well under the observed ~10x).
MIN_WARM_SPEEDUP = 2.0

JOBS = 2


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def test_analysis_benchmark(tmp_path):
    paths = [REPO_ROOT / p for p in GATE_PATHS]
    cache_file = tmp_path / "analysis_cache.json"

    cold_cache = ResultCache(cache_file)
    cold, seconds_cold = _timed(
        lambda: analyze_paths(paths, cache=cold_cache, root=REPO_ROOT)
    )
    cold_cache.save()

    warm_cache = ResultCache(cache_file)
    warm, seconds_warm = _timed(
        lambda: analyze_paths(paths, cache=warm_cache, root=REPO_ROOT)
    )

    parallel, seconds_jobs = _timed(
        lambda: analyze_paths(paths, cache=None, root=REPO_ROOT, jobs=JOBS)
    )

    # Parity before floors: caching and parallelism may not change one
    # finding, its order, or its tier.
    reference = [f.to_dict() for f in cold.findings]
    assert [f.to_dict() for f in warm.findings] == reference
    assert [f.to_dict() for f in parallel.findings] == reference
    assert warm.files_scanned == parallel.files_scanned == cold.files_scanned

    # The warm run must be served from the cache, and the gate must hold.
    assert (cold.cache_hits, warm.cache_misses) == (0, 0)
    assert warm.cache_hits == warm.files_scanned
    assert cold.exit_code == 0

    warm_speedup = round(seconds_cold / max(seconds_warm, 1e-9), 2)
    jobs_speedup = round(seconds_cold / max(seconds_jobs, 1e-9), 2)
    cpus = os.cpu_count() or 1
    # Honest floor policy: warm-cache wins are hardware-independent and
    # asserted; a jobs=2 win needs a second core, so on a single-CPU
    # container the jobs timing is recorded but not asserted (process
    # startup + context pickling can legitimately make it slower).
    jobs_asserted = cpus >= 2
    row = {
        "label": "self-hosted-" + "-".join(GATE_PATHS),
        "paths": list(GATE_PATHS),
        "files_scanned": cold.files_scanned,
        "findings": len(reference),
        "open_findings": sum(1 for f in reference if f["status"] == "open"),
        "jobs": JOBS,
        "cpus": cpus,
        "seconds_cold": round(seconds_cold, 4),
        "seconds_warm": round(seconds_warm, 4),
        "seconds_jobs": round(seconds_jobs, 4),
        "warm_speedup": warm_speedup,
        "jobs_speedup": jobs_speedup,
        "parity": True,
        "warm_speedup_asserted": True,
        "jobs_speedup_asserted": jobs_asserted,
    }
    # Assert floors BEFORE persisting: a failing run must not overwrite
    # the committed JSON/transcript with sub-floor numbers.
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm-cache run is only {warm_speedup:.2f}x faster than cold "
        f"(need >= {MIN_WARM_SPEEDUP}x)"
    )
    if jobs_asserted:
        assert jobs_speedup >= 1.0, (
            f"jobs={JOBS} run is {jobs_speedup:.2f}x on {cpus} CPUs "
            "(parallel pass 2 must not lose to serial when cores exist)"
        )
    RESULTS_JSON.write_text(
        json.dumps({"benchmark": "analysis-self-hosted", "grid": [row]}, indent=2)
        + "\n"
    )
    report(
        "analysis: cold vs warm-cache vs parallel self-hosted run\n"
        f"  {row['label']:<40} files={cold.files_scanned:>4} "
        f"cold {seconds_cold:.3f}s -> warm {seconds_warm:.3f}s "
        f"({warm_speedup:.2f}x) | jobs={JOBS} {seconds_jobs:.3f}s "
        f"({jobs_speedup:.2f}x on {cpus} cpu{'s' if cpus != 1 else ''}, "
        f"{'asserted' if jobs_asserted else 'recorded only'})"
    )
