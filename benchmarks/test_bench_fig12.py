"""Figure 12: Q3/Q4 marginals on NLTCS vs all five baselines.

Paper shape: PrivBayes wins, most clearly at small ε and larger α;
Contingency hugs Uniform; MWEM barely improves at small ε.
"""

import numpy as np

from repro.experiments import render_result, run_marginals_comparison

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def test_fig12_nltcs_q3(benchmark):
    result = run_once(
        benchmark,
        run_marginals_comparison,
        dataset="nltcs",
        alpha=3,
        epsilons=BENCH_EPSILONS,
        repeats=2,
        n=4000,  # the small-ε advantage needs a bit more data than BENCH_N
        max_marginals=20,
        mwem_rounds=12,
        seed=0,
    )
    report(render_result(result))
    # PrivBayes beats the query-release baselines at the smallest ε, and
    # beats everything (including Uniform/Contingency) by mid-ε.
    small = {name: values[0] for name, values in result.series.items()}
    for name in ("Laplace", "Fourier", "MWEM"):
        assert small["PrivBayes"] <= small[name] + 0.02, name
    mid = {name: values[1] for name, values in result.series.items()}
    for name, value in mid.items():
        if name != "PrivBayes":
            assert mid["PrivBayes"] <= value + 0.02, name
    # Uniform is flat.
    uniform = result.series["Uniform"]
    assert max(uniform) - min(uniform) < 1e-9
