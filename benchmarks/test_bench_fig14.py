"""Figure 14: Q2/Q3 marginals on Adult vs Laplace/Fourier/Uniform."""

from repro.experiments import render_result, run_marginals_comparison

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def test_fig14_adult_q2(benchmark):
    result = run_once(
        benchmark,
        run_marginals_comparison,
        dataset="adult",
        alpha=2,
        epsilons=BENCH_EPSILONS,
        repeats=2,
        n=BENCH_N,
        max_marginals=20,
        seed=0,
    )
    report(render_result(result))
    assert "Contingency" not in result.series  # does not scale to Adult
    small = {name: values[0] for name, values in result.series.items()}
    for name, value in small.items():
        if name != "PrivBayes":
            assert small["PrivBayes"] <= value + 0.02, name
