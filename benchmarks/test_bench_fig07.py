"""Figure 7: encodings on Adult SVM tasks.

Paper shape: Hierarchical-R is the best (or tied-best) overall performer.
"""

import numpy as np

from repro.experiments import render_result, run_encoding_svm

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def test_fig7_adult_gender(benchmark):
    result = run_once(
        benchmark,
        run_encoding_svm,
        dataset="adult",
        task_index=0,  # Y = gender
        epsilons=BENCH_EPSILONS,
        repeats=2,
        n=BENCH_N,
        seed=0,
    )
    report(render_result(result))
    means = {name: np.mean(values) for name, values in result.series.items()}
    # Hierarchical-R within reach of the best method on this panel.
    assert means["hierarchical-R"] <= min(means.values()) + 0.08
