"""Benchmark configuration.

Each benchmark regenerates one paper table/figure at reduced scale
(smaller n, coarser ε grid, capped workloads — see DESIGN.md §3) and
prints the series it computed, so `pytest benchmarks/ --benchmark-only`
doubles as the experiment battery.  Paper-scale runs go through
``python -m repro.experiments <figure>`` without ``--fast``.
"""

from pathlib import Path

import pytest

#: Reduced ε grid shared by all benchmarks.
BENCH_EPSILONS = (0.1, 0.4, 1.6)

#: Reduced dataset size shared by all benchmarks.
BENCH_N = 2000

#: Rendered series from the current benchmark session (appended per test).
RESULTS_FILE = Path(__file__).parent / "latest_results.txt"


def pytest_sessionstart(session):
    """Start each benchmark session with a fresh results transcript."""
    try:
        RESULTS_FILE.unlink()
    except FileNotFoundError:
        pass


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)


def report(rendered: str) -> None:
    """Print a rendered result and append it to the session transcript.

    pytest captures stdout of passing tests; the transcript file keeps the
    series inspectable after `pytest benchmarks/ --benchmark-only`.
    """
    print()
    print(rendered)
    with RESULTS_FILE.open("a") as handle:
        handle.write(rendered + "\n\n")
