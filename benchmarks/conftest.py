"""Benchmark configuration.

Each benchmark regenerates one paper table/figure at reduced scale
(smaller n, coarser ε grid, capped workloads — see DESIGN.md §3) and
prints the series it computed, so `pytest benchmarks/ --benchmark-only`
doubles as the experiment battery.  Paper-scale runs go through
``python -m repro.experiments <figure>`` without ``--fast``.
"""

from pathlib import Path

import pytest

#: Reduced ε grid shared by all benchmarks.
BENCH_EPSILONS = (0.1, 0.4, 1.6)

#: Reduced dataset size shared by all benchmarks.
BENCH_N = 2000

#: Rendered series from the current benchmark session (appended per test).
RESULTS_FILE = Path(__file__).parent / "latest_results.txt"

#: True only when the session collected the entire benchmark battery.
#: Partial runs (a single module, -k filters) print their series but leave
#: the committed transcript alone, so reference numbers from the full
#: battery are never truncated by a one-off benchmark invocation.
_full_battery = False

#: The transcript is cleared once, on the first full-battery write.
_transcript_reset = False


def pytest_collection_finish(session):
    """Detect whether this session is about to run the whole battery."""
    global _full_battery
    if session.config.getoption("collectonly", default=False):
        return
    here = Path(__file__).parent
    all_modules = {p.name for p in here.glob("test_bench_*.py")}
    collected = {
        Path(item.fspath).name
        for item in session.items
        if Path(item.fspath).parent == here
    }
    _full_battery = all_modules <= collected


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)


def report(rendered: str) -> None:
    """Print a rendered result and append it to the session transcript.

    pytest captures stdout of passing tests; the transcript file keeps the
    series inspectable after `pytest benchmarks/ --benchmark-only`.  Only
    full-battery sessions write the transcript (see
    :func:`pytest_collection_finish`).
    """
    global _transcript_reset
    print()
    print(rendered)
    if not _full_battery:
        return
    if not _transcript_reset:
        # Reset lazily on the first write, not at collection time, so an
        # interrupted or collect-only session never wipes the transcript.
        try:
            RESULTS_FILE.unlink()
        except FileNotFoundError:
            pass
        _transcript_reset = True
    with RESULTS_FILE.open("a") as handle:
        handle.write(rendered + "\n\n")
