"""Sweep-execution benchmark: serial vs process-pool on an NLTCS fig9 slice.

Times one Figure 9 panel slice end to end (context build, releases,
metric evaluation) through :class:`repro.experiments.parallel.
SweepExecutor` at ``jobs=1`` and ``jobs=4``, asserting the two runs are
bit-identical before comparing clocks.  Emits ``BENCH_sweep.json`` next
to this file so future PRs can track the scale-out path:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_sweep.py -q

The pool only wins when the machine has cores to fan out over, so the
speedup floor is asserted only when at least ``JOBS`` CPUs are usable;
the JSON always records the measured ratio and the CPU count it was
measured under (single-core boxes time-slice the workers and land near —
or below — 1x).
"""

import json
import os
import time
from pathlib import Path

from repro.experiments import run_beta_sweep
from repro.experiments.fig9_beta import BETAS

from conftest import BENCH_EPSILONS, BENCH_N, report

RESULTS_JSON = Path(__file__).parent / "BENCH_sweep.json"

#: Worker count for the pooled run (the acceptance configuration).
JOBS = 4

#: Speedup floor asserted when the machine actually has >= JOBS CPUs.
MIN_SPEEDUP = 2.0

#: The timed Figure 9 slice: the paper's full β grid at the shared
#: benchmark scale, with the repeat count raised so the panel has enough
#: cells (8 β × 3 ε × 4 = 96) for the pool's per-task dispatch cost to
#: amortize.  Scaling by cells (not n) keeps each cell in the cheap
#: small-parent-set regime the engine caches were built for.
SLICE = dict(
    dataset="nltcs",
    kind="count",
    epsilons=BENCH_EPSILONS,
    repeats=4,
    n=BENCH_N,
    max_marginals=10,
    seed=0,
)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_sweep_benchmark():
    # Untimed warm-up of both code paths (dataset parse, allocator, ufunc
    # dispatch, fork machinery).  Two cells so the pooled warm-up really
    # forks (a single cell short-circuits to the serial path).  Each timed
    # run still pays its own pool spin-up — panels create one pool per
    # map call, so that cost is part of what the benchmark measures.
    warm = dict(SLICE, betas=(0.3,), epsilons=(1.6,), repeats=2, n=500)
    run_beta_sweep(jobs=1, **warm)
    run_beta_sweep(jobs=JOBS, **warm)

    start = time.perf_counter()
    serial = run_beta_sweep(jobs=1, **SLICE)
    seconds_serial = time.perf_counter() - start

    start = time.perf_counter()
    pooled = run_beta_sweep(jobs=JOBS, **SLICE)
    seconds_pooled = time.perf_counter() - start

    # The pool must be a pure scheduling change: bit-identical series.
    assert serial.to_dict() == pooled.to_dict()

    cpus = _usable_cpus()
    cells = len(BETAS) * len(SLICE["epsilons"]) * SLICE["repeats"]
    speedup = round(seconds_serial / max(seconds_pooled, 1e-9), 2)
    row = {
        "label": f"nltcs-fig9-jobs{JOBS}",
        "dataset": SLICE["dataset"],
        "kind": SLICE["kind"],
        "n": SLICE["n"],
        "cells": cells,
        "jobs": JOBS,
        "cpu_count": cpus,
        "seconds_serial": round(seconds_serial, 4),
        "seconds_pooled": round(seconds_pooled, 4),
        "speedup": speedup,
        "bit_identical": True,
        "speedup_asserted": cpus >= JOBS,
    }
    # Assert the acceptance floor BEFORE persisting: a failing run must not
    # overwrite the committed JSON/transcript with sub-floor numbers.
    if cpus >= JOBS:
        assert speedup >= MIN_SPEEDUP, (
            f"fig9 NLTCS slice at jobs={JOBS} on {cpus} CPUs is only "
            f"{speedup:.2f}x faster than serial (need >= {MIN_SPEEDUP}x)"
        )
    RESULTS_JSON.write_text(
        json.dumps(
            {"benchmark": "sweep-execution", "cpu_count": cpus, "grid": [row]},
            indent=2,
        )
        + "\n"
    )
    report(
        "sweep execution: serial vs process-pool (fig9 NLTCS slice)\n"
        f"  {row['label']:<18} cells={cells:>3} cpus={cpus} "
        f"serial {seconds_serial:.2f}s -> jobs={JOBS} {seconds_pooled:.2f}s "
        f"speedup={speedup:.2f}x (bit-identical)"
    )
