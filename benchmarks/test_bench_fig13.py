"""Figure 13: Q3/Q4 marginals on ACS vs baselines.

The ACS full domain (2^23 cells) makes Contingency/MWEM expensive; the
benchmark keeps them with a tight round cap, matching the paper's
observation that Contingency ≈ Uniform on ACS.
"""

from repro.experiments import render_result, run_marginals_comparison

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def test_fig13_acs_q3(benchmark):
    result = run_once(
        benchmark,
        run_marginals_comparison,
        dataset="acs",
        alpha=3,
        epsilons=BENCH_EPSILONS,
        repeats=1,
        n=BENCH_N,
        max_marginals=10,
        mwem_rounds=5,
        seed=0,
    )
    report(render_result(result))
    small = {name: values[0] for name, values in result.series.items()}
    assert small["PrivBayes"] <= small["Laplace"] + 0.02
    assert small["PrivBayes"] <= small["Uniform"] + 0.02
    # Contingency is noise-dominated on ACS (Section 6.5).
    assert abs(small["Contingency"] - small["Uniform"]) < 0.1
