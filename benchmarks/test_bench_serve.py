"""Serving benchmark: coalesced vs per-request sampling throughput.

Times the :class:`repro.serve.coalescer.CoalescingSampler` answering a
burst of small ``sample(n_i)`` requests two ways — sequentially (each
request is its own singleton batch: one executor hop and one column-wise
draw per request) and concurrently (all requests gathered into one
coalesced vectorized draw, sliced per requester).  The coalesced burst is
asserted bit-identical to a single ``sample_synthetic(sum(n_i))`` draw
before any clock is compared, so the speedup is a pure scheduling change.

Emits ``BENCH_serve.json`` next to this file:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_serve.py -q
"""

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.core.privbayes import PrivBayes
from repro.core.sampler import sample_synthetic
from repro.datasets import load_dataset
from repro.serve.coalescer import CoalescingSampler

from conftest import report

RESULTS_JSON = Path(__file__).parent / "BENCH_serve.json"

#: The burst shape: many small requests, the pattern coalescing exists
#: for.  Per-request cost is dominated by fixed overhead (executor hop,
#: per-column dispatch), so the coalesced draw amortizes it 256-fold.
REQUESTS = 256
ROWS_PER_REQUEST = 16

#: Rows in the fitted table (structure + conditionals are untimed setup).
FIT_N = 4000
FIT_K = 2

#: Coalescing removes per-request overhead rather than exploiting extra
#: cores, so the floor holds even on a single-CPU container and is
#: asserted unconditionally.
MIN_SPEEDUP = 2.0


def _assert_tables_equal(actual, expected):
    assert actual.attribute_names == expected.attribute_names
    assert actual.n == expected.n
    for name in expected.attribute_names:
        np.testing.assert_array_equal(actual.column(name), expected.column(name))


def _timed_burst(model, seed, coalesce):
    """Serve REQUESTS x ROWS_PER_REQUEST through one sampler; return
    (tables, batch request counts, seconds).  Timing covers only the
    awaits, not loop or sampler setup."""

    async def drive(sampler):
        # Untimed warm-up on a throwaway batch: first-draw cache priming
        # (row CDFs, ufunc dispatch) is paid by both paths identically.
        await sampler.sample(ROWS_PER_REQUEST)
        start = time.perf_counter()
        if coalesce:
            tables = await asyncio.gather(
                *(sampler.sample(ROWS_PER_REQUEST) for _ in range(REQUESTS))
            )
        else:
            tables = []
            for _ in range(REQUESTS):
                tables.append(await sampler.sample(ROWS_PER_REQUEST))
        seconds = time.perf_counter() - start
        return tables, list(sampler.batch_request_counts), seconds

    with CoalescingSampler(model, np.random.default_rng(seed)) as sampler:
        return asyncio.run(drive(sampler))


def test_serve_benchmark():
    table = load_dataset("nltcs", n=FIT_N)
    model = PrivBayes(epsilon=1.0, k=FIT_K).fit(table, np.random.default_rng(3))

    sequential_tables, sequential_batches, seconds_per_request = _timed_burst(
        model, seed=101, coalesce=False
    )
    coalesced_tables, coalesced_batches, seconds_coalesced = _timed_burst(
        model, seed=202, coalesce=True
    )

    # The sequential path really served one batch per request; the
    # concurrent path really coalesced the whole burst into one draw.
    assert sequential_batches == [1] * (REQUESTS + 1)
    assert coalesced_batches == [1, REQUESTS]
    assert all(piece.n == ROWS_PER_REQUEST for piece in sequential_tables)

    # Coalescing must be a pure scheduling change: the burst equals the
    # single vectorized draw the same stream would have produced, sliced
    # in request order.  (The warm-up batch consumed the stream first.)
    reference_rng = np.random.default_rng(202)
    sample_synthetic(
        model.noisy, model.table_attributes, ROWS_PER_REQUEST, reference_rng
    )
    reference = sample_synthetic(
        model.noisy,
        model.table_attributes,
        REQUESTS * ROWS_PER_REQUEST,
        reference_rng,
    )
    start = 0
    for piece in coalesced_tables:
        _assert_tables_equal(
            piece, reference.take(np.arange(start, start + ROWS_PER_REQUEST))
        )
        start += ROWS_PER_REQUEST

    rows_total = REQUESTS * ROWS_PER_REQUEST
    speedup = round(seconds_per_request / max(seconds_coalesced, 1e-9), 2)
    row = {
        "label": f"nltcs-serve-{REQUESTS}x{ROWS_PER_REQUEST}",
        "dataset": "nltcs",
        "n": FIT_N,
        "k": FIT_K,
        "requests": REQUESTS,
        "rows_per_request": ROWS_PER_REQUEST,
        "rows_total": rows_total,
        "seconds_per_request": round(seconds_per_request, 4),
        "seconds_coalesced": round(seconds_coalesced, 4),
        "per_request_rows_per_second": round(
            rows_total / max(seconds_per_request, 1e-9), 1
        ),
        "coalesced_rows_per_second": round(
            rows_total / max(seconds_coalesced, 1e-9), 1
        ),
        "speedup": speedup,
        "bit_identical": True,
        "speedup_asserted": True,
    }
    # Assert the acceptance floor BEFORE persisting: a failing run must not
    # overwrite the committed JSON/transcript with sub-floor numbers.
    assert speedup >= MIN_SPEEDUP, (
        f"coalescing a {REQUESTS}x{ROWS_PER_REQUEST}-row burst is only "
        f"{speedup:.2f}x faster than per-request serving "
        f"(need >= {MIN_SPEEDUP}x)"
    )
    RESULTS_JSON.write_text(
        json.dumps({"benchmark": "serve-coalescing", "grid": [row]}, indent=2)
        + "\n"
    )
    report(
        "serving: coalesced vs per-request sampling (nltcs burst)\n"
        f"  {row['label']:<22} rows={rows_total:>5} "
        f"per-request {seconds_per_request:.3f}s -> coalesced "
        f"{seconds_coalesced:.3f}s speedup={speedup:.2f}x (bit-identical)"
    )
