"""Ablation: Algorithm 1's derived conditionals vs materializing all d.

On binary data, Algorithm 1 materializes only ``d − k`` noisy joints and
derives the first ``k`` conditionals from the ``(k+1)``-th at no privacy
cost; the naive alternative (Algorithm 3) materializes all ``d`` joints,
splitting ε₂ ``d`` ways instead of ``d − k`` ways.  Expected: the derived
variant is at least as accurate — each materialized marginal gets a
larger budget share and the derived conditionals are consistent with
their anchor by construction.
"""

import numpy as np

from repro.core.greedy_bayes import greedy_bayes_fixed_k
from repro.core.noisy_conditionals import (
    noisy_conditionals_fixed_k,
    noisy_conditionals_general,
)
from repro.core.sampler import sample_synthetic
from repro.core.theta import choose_k_binary
from repro.datasets import load_dataset
from repro.dp.accountant import split_epsilon
from repro.experiments.framework import ExperimentResult, render_result
from repro.workloads import (
    all_alpha_marginals,
    average_variation_distance,
    synthetic_marginals,
)

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def _run(epsilons, repeats, n, seed):
    table = load_dataset("nltcs", n=n, seed=seed)
    workload = all_alpha_marginals(table, 2)[:30]
    result = ExperimentResult(
        experiment="ablation-derived-conditionals",
        title="Algorithm 1 (derive first k) vs Algorithm 3 (materialize all)",
        x_label="epsilon",
        y_label="average variation distance",
        x=list(epsilons),
    )
    series = {"derived (Alg 1)": [], "materialize-all (Alg 3)": []}
    for eps_idx, epsilon in enumerate(epsilons):
        buckets = {name: [] for name in series}
        for r in range(repeats):
            rng = np.random.default_rng(seed * 7919 + eps_idx * 101 + r)
            epsilon1, epsilon2 = split_epsilon(epsilon, (0.3, 0.7))
            k = max(1, choose_k_binary(table.n, table.d, epsilon2, 4.0))
            network = greedy_bayes_fixed_k(
                table, k, epsilon1, score="F", rng=rng,
                first_attribute=table.attribute_names[0],
            )
            for name, builder in (
                ("derived (Alg 1)", lambda: noisy_conditionals_fixed_k(
                    table, network, k, epsilon2, rng)),
                ("materialize-all (Alg 3)", lambda: noisy_conditionals_general(
                    table, network, epsilon2, rng)),
            ):
                model = builder()
                synthetic = sample_synthetic(
                    model, table.attributes, table.n, rng
                )
                buckets[name].append(
                    average_variation_distance(
                        table, synthetic_marginals(synthetic, workload), workload
                    )
                )
        for name in series:
            series[name].append(float(np.mean(buckets[name])))
    for name, values in series.items():
        result.add(name, values)
    return result


def test_ablation_derived_conditionals(benchmark):
    result = run_once(
        benchmark, _run, epsilons=BENCH_EPSILONS, repeats=3, n=BENCH_N, seed=0
    )
    report(render_result(result))
    derived = np.mean(result.series["derived (Alg 1)"])
    naive = np.mean(result.series["materialize-all (Alg 3)"])
    assert derived <= naive + 0.02
