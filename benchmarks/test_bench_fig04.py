"""Figure 4: score functions I / R / F vs NoPrivacy (network quality).

Paper shape: F and R consistently beat I on binary data; R beats I on
general domains; every curve rises with ε toward the NoPrivacy ceiling.
"""

import numpy as np

from repro.experiments import render_result, run_fig4

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def test_fig4_nltcs(benchmark):
    result = run_once(
        benchmark,
        run_fig4,
        dataset="nltcs",
        epsilons=BENCH_EPSILONS,
        repeats=3,
        n=BENCH_N,
        seed=0,
    )
    report(render_result(result))
    # NoPrivacy is the ceiling at every ε.
    for name in ("I", "R", "F"):
        for v, ceiling in zip(result.series[name], result.series["NoPrivacy"]):
            assert v <= ceiling + 1e-6
    # The surrogate scores beat raw mutual information on average.
    assert np.mean(result.series["F"]) >= np.mean(result.series["I"]) - 0.05


def test_fig4_br2000(benchmark):
    result = run_once(
        benchmark,
        run_fig4,
        dataset="br2000",
        epsilons=BENCH_EPSILONS,
        repeats=3,
        n=BENCH_N,
        seed=0,
    )
    report(render_result(result))
    assert "F" not in result.series  # not computable on general domains
    assert np.mean(result.series["R"]) >= np.mean(result.series["I"]) - 0.05
