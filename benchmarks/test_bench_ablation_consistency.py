"""Ablation: consistency post-processing on the Laplace baseline.

Footnote 1 of the paper suggests consistency post-processing of released
marginals.  This ablation measures both effects on the Laplace baseline:
(i) the mutual disagreement between overlapping marginals before/after,
and (ii) the accuracy impact.  Expected: disagreement collapses by an
order of magnitude while average accuracy stays the same or improves
slightly (averaging projections denoises them).
"""

import numpy as np

from repro.baselines import LaplaceMarginals
from repro.datasets import load_dataset
from repro.experiments.framework import ExperimentResult, render_result
from repro.postprocess.consistency import (
    consistency_error,
    mutually_consistent_marginals,
)
from repro.workloads import all_alpha_marginals, average_variation_distance

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def _run(epsilons, repeats, n, seed):
    table = load_dataset("nltcs", n=n, seed=seed)
    workload = all_alpha_marginals(table, 2)[:25]
    sizes = {a.name: a.size for a in table.attributes}
    result = ExperimentResult(
        experiment="ablation-consistency",
        title="consistency post-processing on the Laplace baseline (NLTCS Q2)",
        x_label="epsilon",
        y_label="avg variation distance / max disagreement",
        x=list(epsilons),
    )
    series = {
        "error (raw)": [],
        "error (consistent)": [],
        "disagreement (raw)": [],
        "disagreement (consistent)": [],
    }
    for eps_idx, epsilon in enumerate(epsilons):
        buckets = {name: [] for name in series}
        for r in range(repeats):
            rng = np.random.default_rng(seed * 7919 + eps_idx * 101 + r)
            raw = LaplaceMarginals().release(table, workload, epsilon, rng)
            fixed = mutually_consistent_marginals(raw, sizes, rounds=4)
            buckets["error (raw)"].append(
                average_variation_distance(table, raw, workload)
            )
            buckets["error (consistent)"].append(
                average_variation_distance(table, fixed, workload)
            )
            buckets["disagreement (raw)"].append(consistency_error(raw, sizes))
            buckets["disagreement (consistent)"].append(
                consistency_error(fixed, sizes)
            )
        for name in series:
            series[name].append(float(np.mean(buckets[name])))
    for name, values in series.items():
        result.add(name, values)
    return result


def test_ablation_consistency(benchmark):
    result = run_once(
        benchmark, _run, epsilons=BENCH_EPSILONS, repeats=3, n=BENCH_N, seed=0
    )
    report(render_result(result))
    for raw, fixed in zip(
        result.series["disagreement (raw)"],
        result.series["disagreement (consistent)"],
    ):
        assert fixed <= raw * 0.5 + 1e-6
    # Accuracy must not degrade materially.
    assert np.mean(result.series["error (consistent)"]) <= (
        np.mean(result.series["error (raw)"]) + 0.02
    )
