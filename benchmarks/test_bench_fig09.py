"""Figure 9: choice of β.

Paper shape: error is high at extreme β (tiny → noisy network; huge →
noisy marginals) with a flat basin roughly in [0.2, 0.5].
"""

import numpy as np

from repro.experiments import render_result, run_beta_sweep

from conftest import report, BENCH_N, run_once


def test_fig9_nltcs_q4(benchmark):
    result = run_once(
        benchmark,
        run_beta_sweep,
        dataset="nltcs",
        kind="count",
        betas=(0.01, 0.1, 0.3, 0.7, 0.9),
        epsilons=(0.2, 1.6),
        repeats=2,
        n=BENCH_N,
        max_marginals=20,
        seed=0,
    )
    report(render_result(result))
    # The basin value (β=0.3) should not be the worst point of the sweep.
    for values in result.series.values():
        basin = values[2]
        assert basin <= max(values) + 1e-9
        assert basin <= np.mean([values[0], values[-1]]) + 0.05
