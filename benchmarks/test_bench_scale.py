"""Streaming data plane at scale: memory boundedness + CDF-inversion speed.

Three benchmarks exercise the out-of-core path end to end:

* ``test_cdf_inversion_speedup`` — the batched binary-search inversion
  (:func:`repro.core.sampler.invert_row_cdfs`) against the seed broadcast
  reference on a wide-domain child (C = 256), asserting bit-identical
  codes and a ≥ ``MIN_INVERSION_SPEEDUP`` speedup.
* ``test_streaming_smoke_memory`` — a fast n = 50k fit + release + ingest
  through :func:`repro.experiments.table5.run_scale_panel` with a small
  chunk size, asserting every phase's peak *traced* allocation stays under
  ``SMOKE_PEAK_MULTIPLE`` × the chunk's code bytes — a bound strictly
  below the ``n × d × 8`` bytes a resident code matrix would need, so it
  actually proves streaming.
* ``test_million_row_scale`` (``slow``) — the full panel at n = 200k and
  n = 10^6, asserting the per-phase traced peaks grow sublinearly in n
  (ratio < ``MAX_PEAK_RATIO`` for a 5× n jump) and that the million-row
  release round-trips through the streaming CSV reader.

Each test merges its section into ``BENCH_scale.json`` next to this file,
so a ``-m "not slow"`` CI run still records the smoke + inversion numbers:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_scale.py -q
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.sampler import broadcast_invert_row_cdfs, invert_row_cdfs
from repro.experiments.table5 import render_scale_panel, run_scale_panel

from conftest import report, run_once

RESULTS_JSON = Path(__file__).parent / "BENCH_scale.json"

#: Wide-domain child for the inversion micro-benchmark (log2 C = 8 probes
#: vs a 256-wide broadcast; measured ~8x on the container baseline).
INVERSION_CHILD_SIZE = 256
INVERSION_PARENT_DOM = 64
INVERSION_DRAWS = 200_000
MIN_INVERSION_SPEEDUP = 2.0

#: Fast smoke: small chunks against a mid-size n, so the resident-codes
#: floor (n*d*8 bytes) sits well above the asserted streaming bound.
SMOKE_N = 50_000
SMOKE_D = 8
SMOKE_CHUNK_ROWS = 4096
#: Measured phase peaks sit at 3.7-5.2x the chunk's code bytes (the chunk
#: itself + per-chunk work buffers + count blocks); 8x leaves headroom
#: while staying under half the resident floor.
SMOKE_PEAK_MULTIPLE = 8

#: Slow panel: 5x jump in n must grow no phase's traced peak by more than
#: this factor (streaming memory depends on chunk size, not n; the release
#: CSV itself is on disk).
SCALE_NS = (200_000, 1_000_000)
MAX_PEAK_RATIO = 2.5

PHASES = ("fit", "release", "ingest")


def _merge_results(section: str, payload) -> None:
    """Update one section of BENCH_scale.json, keeping the others."""
    data = {"benchmark": "streaming-scale"}
    if RESULTS_JSON.exists():
        data.update(json.loads(RESULTS_JSON.read_text()))
    data[section] = payload
    RESULTS_JSON.write_text(json.dumps(data, indent=2) + "\n")


def test_cdf_inversion_speedup(benchmark):
    rng = np.random.default_rng(0)
    probs = rng.dirichlet(
        np.ones(INVERSION_CHILD_SIZE), size=INVERSION_PARENT_DOM
    )
    cdf = np.cumsum(probs, axis=1)
    cdf[:, -1] = 1.0
    rows = rng.integers(0, INVERSION_PARENT_DOM, INVERSION_DRAWS)
    uniforms = rng.random(INVERSION_DRAWS)

    def best_of(fn, reps=5):
        best = float("inf")
        result = None
        for _ in range(reps):
            started = time.perf_counter()
            result = fn(cdf, rows, uniforms)
            best = min(best, time.perf_counter() - started)
        return best, result

    broadcast_seconds, reference = best_of(broadcast_invert_row_cdfs)
    search_seconds, codes = run_once(
        benchmark, lambda: best_of(invert_row_cdfs)
    )
    np.testing.assert_array_equal(codes, reference)
    speedup = broadcast_seconds / max(search_seconds, 1e-9)
    row = {
        "child_size": INVERSION_CHILD_SIZE,
        "parent_dom": INVERSION_PARENT_DOM,
        "draws": INVERSION_DRAWS,
        "broadcast_ms": round(broadcast_seconds * 1000, 2),
        "binary_search_ms": round(search_seconds * 1000, 2),
        "speedup": round(speedup, 2),
        "bit_identical": True,
    }
    # Assert the acceptance floor BEFORE persisting: a failing run must not
    # overwrite the committed JSON/transcript with sub-floor numbers.
    assert speedup >= MIN_INVERSION_SPEEDUP, (
        f"binary-search CDF inversion is only {speedup:.2f}x faster than "
        f"the broadcast reference (need >= {MIN_INVERSION_SPEEDUP}x)"
    )
    _merge_results("cdf_inversion", row)
    report(
        "cdf inversion (C=%d, %d draws): broadcast %.2fms, "
        "binary search %.2fms, speedup %.2fx"
        % (
            INVERSION_CHILD_SIZE,
            INVERSION_DRAWS,
            row["broadcast_ms"],
            row["binary_search_ms"],
            speedup,
        )
    )


def test_streaming_smoke_memory(benchmark):
    rows = run_once(
        benchmark,
        run_scale_panel,
        ns=(SMOKE_N,),
        d=SMOKE_D,
        chunk_rows=SMOKE_CHUNK_ROWS,
    )
    row = rows[SMOKE_N]
    chunk_bytes = SMOKE_CHUNK_ROWS * SMOKE_D * 8
    bound = SMOKE_PEAK_MULTIPLE * chunk_bytes
    resident_floor = SMOKE_N * SMOKE_D * 8
    # The bound must undercut a resident code matrix, or it proves nothing.
    assert bound < resident_floor
    for phase in PHASES:
        peak = row[f"traced_peak_{phase}"]
        assert peak < bound, (
            f"{phase} phase traced peak {peak} bytes exceeds "
            f"{SMOKE_PEAK_MULTIPLE}x the chunk size ({bound} bytes) — the "
            "streaming path is materializing more than one chunk"
        )
    assert row["ingested_n"] == SMOKE_N
    assert row["ingested_count_total"] == SMOKE_N
    row = dict(row)
    row["peak_bound_bytes"] = bound
    row["resident_floor_bytes"] = resident_floor
    _merge_results("smoke", row)
    report(render_scale_panel(rows))


@pytest.mark.slow
def test_million_row_scale(benchmark):
    rows = run_once(benchmark, run_scale_panel, ns=SCALE_NS)
    small, large = (rows[n] for n in SCALE_NS)
    for n, row in rows.items():
        assert row["ingested_n"] == n
        assert row["ingested_count_total"] == n
    ratios = {}
    for phase in PHASES:
        ratio = large[f"traced_peak_{phase}"] / max(
            small[f"traced_peak_{phase}"], 1
        )
        ratios[phase] = round(ratio, 2)
        assert ratio < MAX_PEAK_RATIO, (
            f"{phase} traced peak grew {ratio:.2f}x for a "
            f"{SCALE_NS[1] // SCALE_NS[0]}x larger n (need < "
            f"{MAX_PEAK_RATIO}) — streaming memory must not scale with n"
        )
    _merge_results(
        "scale",
        {"grid": [rows[n] for n in SCALE_NS], "peak_ratios": ratios},
    )
    report(
        render_scale_panel(rows)
        + "\npeak ratios (1M vs 200k): "
        + ", ".join(f"{k}={v}" for k, v in ratios.items())
    )
