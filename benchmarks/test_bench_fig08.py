"""Figure 8: encodings on BR2000 SVM tasks (same shape as Figure 7)."""

import numpy as np

from repro.experiments import render_result, run_encoding_svm

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def test_fig8_br2000_religion(benchmark):
    result = run_once(
        benchmark,
        run_encoding_svm,
        dataset="br2000",
        task_index=0,  # Y = religion
        epsilons=BENCH_EPSILONS,
        repeats=2,
        n=BENCH_N,
        seed=0,
    )
    report(render_result(result))
    means = {name: np.mean(values) for name, values in result.series.items()}
    assert means["hierarchical-R"] <= min(means.values()) + 0.08
