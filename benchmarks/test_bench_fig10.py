"""Figure 10: choice of θ.

Paper shape: performance is stable across a wide θ range, with a
near-optimal basin around [3, 6].
"""

import numpy as np

from repro.experiments import render_result, run_theta_sweep

from conftest import report, BENCH_N, run_once


def test_fig10_nltcs_q4(benchmark):
    result = run_once(
        benchmark,
        run_theta_sweep,
        dataset="nltcs",
        kind="count",
        thetas=(0.5, 2.0, 4.0, 8.0),
        epsilons=(0.2, 1.6),
        repeats=2,
        n=BENCH_N,
        max_marginals=20,
        seed=0,
    )
    report(render_result(result))
    # θ=4 (index 2) is within tolerance of the sweep's best point.
    for values in result.series.values():
        assert values[2] <= min(values) + 0.08
