"""Ablation: noise growth with per-individual impact (Section 7's warning).

The concluding remarks caution that in multi-table schemas "the impact of
an individual (and hence the scale of noise needed for privacy) may grow
very large".  This ablation quantifies it: the same linked dataset is
released at the same end-to-end ε under increasing fanout bounds; the
child model pays a 1/max_fanout budget factor, so child-side marginal
error should grow with the bound while primary-side error stays flat.
"""

import numpy as np

from repro.experiments.framework import ExperimentResult, render_result
from repro.multitable import release_two_tables
from repro.workloads import average_variation_distance
from repro.data.marginals import joint_distribution
from repro.infotheory.measures import total_variation_distance

from conftest import report, run_once

from bench_helpers import build_household_linked


def _run(bounds, repeats, n, seed):
    linked = build_household_linked(n, seed)
    result = ExperimentResult(
        experiment="ablation-multitable",
        title="two-table release: error vs fanout bound (end-to-end eps=2)",
        x_label="max_fanout",
        y_label="total variation distance",
        x=list(bounds),
    )
    series = {"child 1-way TVD": [], "primary 1-way TVD": []}
    for b_idx, bound in enumerate(bounds):
        child_errs = []
        primary_errs = []
        for r in range(repeats):
            rng = np.random.default_rng(seed * 7919 + b_idx * 101 + r)
            release = release_two_tables(linked, 2.0, max_fanout=bound, rng=rng)
            synthetic = release.sample(rng=rng)
            child_errs.append(
                np.mean(
                    [
                        total_variation_distance(
                            joint_distribution(linked.child, [name]),
                            joint_distribution(synthetic.child, [name]),
                        )
                        for name in linked.child.attribute_names
                    ]
                )
            )
            primary_errs.append(
                np.mean(
                    [
                        total_variation_distance(
                            joint_distribution(linked.primary, [name]),
                            joint_distribution(synthetic.primary, [name]),
                        )
                        for name in linked.primary.attribute_names
                    ]
                )
            )
        series["child 1-way TVD"].append(float(np.mean(child_errs)))
        series["primary 1-way TVD"].append(float(np.mean(primary_errs)))
    for name, values in series.items():
        result.add(name, values)
    return result


def test_ablation_multitable_fanout(benchmark):
    result = run_once(
        benchmark, _run, bounds=(1, 4, 16), repeats=3, n=3000, seed=0
    )
    report(render_result(result))
    child = result.series["child 1-way TVD"]
    primary = result.series["primary 1-way TVD"]
    # Child error grows with the fanout bound; primary stays roughly flat.
    assert child[-1] >= child[0] - 0.02
    assert abs(primary[-1] - primary[0]) < 0.1
