"""Figure 15: Q2/Q3 marginals on BR2000 vs Laplace/Fourier/Uniform."""

from repro.experiments import render_result, run_marginals_comparison

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def test_fig15_br2000_q2(benchmark):
    result = run_once(
        benchmark,
        run_marginals_comparison,
        dataset="br2000",
        alpha=2,
        epsilons=BENCH_EPSILONS,
        repeats=2,
        n=BENCH_N,
        max_marginals=20,
        seed=0,
    )
    report(render_result(result))
    small = {name: values[0] for name, values in result.series.items()}
    for name, value in small.items():
        if name != "PrivBayes":
            assert small["PrivBayes"] <= value + 0.02, name
