"""Distribution-learning + sampling micro-benchmark: engine vs seed path.

Times phases 2-3 of the PrivBayes pipeline in the shape the figure sweeps
use them — many fits over one table (the ε × repeat cells), then repeated
draws from one fitted model (the serving pattern) — comparing the batched
:class:`repro.core.noisy_conditionals.JointCounter` engine and the cached
row-CDF sampler against the seed behavior (per-pair data scans, per-call
``np.cumsum`` + generic CDF inversion).  Both paths consume identical RNG
sequences and must produce bit-identical conditionals and synthetic tuples.

Emits ``BENCH_distribution.json`` next to this file with wall-clock timings
per (dataset, d, n, k) grid point so future PRs can track the hot path:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_distribution.py -q
"""

import dataclasses
import json
import time
from pathlib import Path

import numpy as np

import repro.core.sampler as sampler_module
from repro.core.greedy_bayes import greedy_bayes_fixed_k, greedy_bayes_theta
from repro.data.table import Table
from repro.core.noisy_conditionals import (
    JointCounter,
    NoisyModel,
    noisy_conditionals_fixed_k,
    noisy_conditionals_general,
)
from repro.core.sampler import sample_synthetic
from repro.datasets import load_dataset

from conftest import report

RESULTS_JSON = Path(__file__).parent / "BENCH_distribution.json"

#: (label, dataset, n, k or None for θ-mode, score, seed)
GRID = (
    ("nltcs-d16-k2", "nltcs", 4000, 2, "F", 7),
    ("nltcs-d16-k3", "nltcs", 1500, 3, "F", 7),
    ("adult-theta", "adult", 2000, None, "R", 7),
)

#: Fits per grid point (mirrors a sweep's ε × repeat cells) and distinct
#: networks cycled through them (each sweep cell learns its own structure).
FITS = 9
NETWORKS = 3

#: Repeated draws from one fitted model (the serving pattern).
DRAWS = 24

#: Acceptance floor for the Figure 12 NLTCS configuration (d=16, k=2):
#: distribution learning + sampling end-to-end.  The phases measured here
#: run ~0.1s total, so single-core timer noise is large relative to the
#: signal: back-to-back runs on the 1-CPU CI container measure 2.8x-3.9x.
#: The floor sits below that noise band's bottom — a genuine loss of the
#: batched-counting / cached-CDF engine lands near 1x, far under it.
MIN_NLTCS_SPEEDUP = 2.5


def _networks(table, k, score, seed):
    """Pre-learn the structures once; this benchmark times phases 2-3 only."""
    nets = []
    for i in range(NETWORKS):
        rng = np.random.default_rng(seed + i)
        if k is None:
            nets.append(
                greedy_bayes_theta(
                    table, 0.3, 0.7, 4.0, score=score, rng=rng,
                    first_attribute=table.attribute_names[0],
                )
            )
        else:
            nets.append(
                greedy_bayes_fixed_k(
                    table, k, 0.3, score=score, rng=rng,
                    first_attribute=table.attribute_names[0],
                )
            )
    return nets


def _learn_one(table, network, k, rng, **kwargs):
    if k is None:
        return noisy_conditionals_general(table, network, 0.7, rng, **kwargs)
    return noisy_conditionals_fixed_k(table, network, k, 0.7, rng, **kwargs)


def _time_learn(table, networks, k, seed, engine, fits=FITS):
    """``fits`` distribution-learning passes; the engine shares one counter."""
    counter = JointCounter(table) if engine else None
    models = []
    start = time.perf_counter()
    for r in range(fits):
        rng = np.random.default_rng(seed * 919 + r)
        network = networks[r % len(networks)]
        if engine:
            models.append(_learn_one(table, network, k, rng, counter=counter))
        else:
            models.append(_learn_one(table, network, k, rng, batched=False))
    return models, time.perf_counter() - start


def _sample_rows_seed(conditional, parent_rows, rng):
    """The pre-engine sampler: cumsum per call, generic CDF inversion."""
    matrix = conditional.matrix
    cdf = np.cumsum(matrix, axis=1)
    cdf[:, -1] = 1.0
    uniforms = rng.random(parent_rows.shape[0])
    return (uniforms[:, None] > cdf[parent_rows]).sum(axis=1).astype(np.int64)


def _time_sample(table, model, seed, engine, draws=DRAWS):
    """``draws`` repeated synthetic draws from one fitted model."""
    tables = []
    if engine:
        start = time.perf_counter()
        for r in range(draws):
            tables.append(
                sample_synthetic(
                    model, table.attributes, table.n,
                    np.random.default_rng(seed * 131 + r),
                )
            )
        return tables, time.perf_counter() - start
    original = sampler_module._sample_rows
    sampler_module._sample_rows = _sample_rows_seed
    try:
        start = time.perf_counter()
        for r in range(draws):
            # The seed path held no per-model CDF state either: rebuild the
            # conditionals so nothing carries over between draws, and build
            # the output through the validating Table constructor it used.
            fresh = NoisyModel(
                model.network,
                tuple(dataclasses.replace(c) for c in model.conditionals),
            )
            synthetic = sample_synthetic(
                fresh, table.attributes, table.n,
                np.random.default_rng(seed * 131 + r),
            )
            tables.append(
                Table(
                    synthetic.attributes,
                    {n_: synthetic.column(n_) for n_ in synthetic.attribute_names},
                )
            )
        return tables, time.perf_counter() - start
    finally:
        sampler_module._sample_rows = original


def _assert_identical_models(naive_models, engine_models):
    for naive, engine in zip(naive_models, engine_models):
        for a, b in zip(naive.conditionals, engine.conditionals):
            assert a.child == b.child
            np.testing.assert_array_equal(a.matrix, b.matrix)


def _assert_identical_tables(naive_tables, engine_tables):
    for naive, engine in zip(naive_tables, engine_tables):
        for name in naive.attribute_names:
            np.testing.assert_array_equal(naive.column(name), engine.column(name))


def test_distribution_benchmark():
    rows = []
    for label, dataset, n, k, score, seed in GRID:
        table = load_dataset(dataset, n=n, seed=0)
        networks = _networks(table, k, score, seed)
        # Untimed warm-up of every code path (allocator, ufunc dispatch).
        warm, _ = _time_learn(table, networks, k, seed, False, fits=2)
        _time_sample(table, warm[0], seed, False, draws=2)
        _time_sample(table, warm[0], seed, True, draws=2)
        naive_models, naive_learn = _time_learn(table, networks, k, seed, False)
        engine_models, engine_learn = _time_learn(table, networks, k, seed, True)
        # The engine must be a pure optimization: bit-identical conditionals.
        _assert_identical_models(naive_models, engine_models)
        naive_tables, naive_sample = _time_sample(
            table, naive_models[0], seed, False
        )
        engine_tables, engine_sample = _time_sample(
            table, engine_models[0], seed, True
        )
        _assert_identical_tables(naive_tables, engine_tables)
        naive_total = naive_learn + naive_sample
        engine_total = engine_learn + engine_sample
        rows.append(
            {
                "label": label,
                "dataset": dataset,
                "d": table.d,
                "n": table.n,
                "k": k if k is not None else "theta",
                "fits": FITS,
                "draws": DRAWS,
                "seconds_naive_learn": round(naive_learn, 4),
                "seconds_engine_learn": round(engine_learn, 4),
                "seconds_naive_sample": round(naive_sample, 4),
                "seconds_engine_sample": round(engine_sample, 4),
                "speedup_learn": round(naive_learn / max(engine_learn, 1e-9), 2),
                "speedup_sample": round(
                    naive_sample / max(engine_sample, 1e-9), 2
                ),
                "speedup_total": round(naive_total / max(engine_total, 1e-9), 2),
            }
        )
    # Assert the acceptance floor BEFORE persisting: a failing run must not
    # overwrite the committed JSON/transcript with sub-floor numbers.
    nltcs = next(r for r in rows if r["label"] == "nltcs-d16-k2")
    assert nltcs["speedup_total"] >= MIN_NLTCS_SPEEDUP, (
        f"NLTCS d=16 k=2 distribution learning + sampling is only "
        f"{nltcs['speedup_total']:.2f}x faster than the seed path "
        f"(need >= {MIN_NLTCS_SPEEDUP}x)"
    )
    RESULTS_JSON.write_text(
        json.dumps({"benchmark": "distribution-learning", "grid": rows}, indent=2)
        + "\n"
    )
    lines = ["distribution learning + sampling: engine vs per-pair/per-call"]
    for row in rows:
        lines.append(
            f"  {row['label']:<14} d={row['d']:>2} n={row['n']:>5} "
            f"k={row['k']!s:<5} learn {row['seconds_naive_learn']:.2f}s"
            f"->{row['seconds_engine_learn']:.2f}s "
            f"sample {row['seconds_naive_sample']:.2f}s"
            f"->{row['seconds_engine_sample']:.2f}s "
            f"total speedup={row['speedup_total']:.2f}x"
        )
    report("\n".join(lines))
