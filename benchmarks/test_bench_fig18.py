"""SVM-vs-baselines panel on adult (Figures 16-19).

Paper shape: NoPrivacy is the floor; PrivBayes beats the budget-split
baselines (Majority / PrivateERM / PrivGene at eps/4) in most settings;
PrivateERM (Single) with the full eps is the strongest private baseline.
"""

import numpy as np

from repro.experiments import render_result, run_svm_comparison

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def test_fig_svm_adult(benchmark):
    result = run_once(
        benchmark,
        run_svm_comparison,
        dataset="adult",
        task_index=0,
        epsilons=BENCH_EPSILONS,
        repeats=2,
        n=BENCH_N,
        privgene_iterations=5,
        seed=0,
    )
    report(render_result(result))
    floor = np.mean(result.series["NoPrivacy"])
    for name, values in result.series.items():
        assert np.mean(values) >= floor - 0.02, name
    # Single-task PrivateERM beats its budget-split variant on average.
    assert (
        np.mean(result.series["PrivateERM (Single)"])
        <= np.mean(result.series["PrivateERM"]) + 0.05
    )
