"""Figure 6: encodings on BR2000 α-way marginals (same shape as Figure 5)."""

from repro.experiments import render_result, run_encoding_marginals

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def test_fig6_br2000_q2(benchmark):
    result = run_once(
        benchmark,
        run_encoding_marginals,
        dataset="br2000",
        alpha=2,
        epsilons=BENCH_EPSILONS,
        repeats=2,
        n=BENCH_N,
        max_marginals=25,
        seed=0,
    )
    report(render_result(result))
    small_eps = {name: values[0] for name, values in result.series.items()}
    nonbinary_best = min(small_eps["vanilla-R"], small_eps["hierarchical-R"])
    bitwise_best = min(small_eps["binary-F"], small_eps["gray-F"])
    assert nonbinary_best <= bitwise_best + 0.02
