"""Figure 11: source of error (BestNetwork / BestMarginal diagnostics).

Paper shape: on counting tasks BestMarginal clearly beats PrivBayes (the
marginal noise dominates), while BestNetwork tracks PrivBayes closely.
"""

import numpy as np

from repro.experiments import render_result, run_error_source

from conftest import report, BENCH_EPSILONS, BENCH_N, run_once


def test_fig11_nltcs_count(benchmark):
    result = run_once(
        benchmark,
        run_error_source,
        dataset="nltcs",
        kind="count",
        epsilons=BENCH_EPSILONS,
        repeats=3,
        n=BENCH_N,
        max_marginals=20,
        seed=0,
    )
    report(render_result(result))
    pb = np.mean(result.series["PrivBayes"])
    best_marginal = np.mean(result.series["BestMarginal"])
    best_network = np.mean(result.series["BestNetwork"])
    assert best_marginal <= pb + 1e-6
    assert best_network <= pb + 0.05  # network noise is the smaller term
