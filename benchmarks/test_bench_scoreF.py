"""Score-F kernel micro-benchmark: per-candidate DP vs batched kernel.

Times the Section 4.4 ``F`` computation on ``|dom(Π)| > 12`` candidate
batches drawn from NLTCS contingencies — the exact shapes the greedy
θ-usefulness regimes score — comparing the per-candidate dynamic program
(:func:`repro.core.score_kernels.score_F_dp`, the seed implementation)
against the blocked-bitset batched kernel
(:func:`repro.core.score_kernels.score_F_batch`).  Both must be
bit-identical on every candidate; the kernel must clear
``MIN_KERNEL_SPEEDUP`` on at least one grid cell (the small-n / wide-domain
cells, where the DP's per-candidate Python overhead dominates, run 5-15x;
the n=8000 cells run ~1.5-2.5x because the per-candidate frontier there is
large enough that the DP is already cache-resident compute).

Also times the previously-stalling workload end to end: one NLTCS n=8000
binary-mode release whose θ-usefulness degree gives 32-cell parent domains
(the ROADMAP "θ-mode stalls at n >= 8000" item) and asserts it completes
within ``SLICE_BUDGET_SECONDS``.

Emits ``BENCH_scoreF.json`` next to this file:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_scoreF.py -q
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.privbayes import PrivBayes
from repro.core.score_kernels import score_F_batch, score_F_dp
from repro.core.scoring import ScoringCache
from repro.core.theta import choose_k_binary
from repro.data.marginals import flatten_index
from repro.datasets import load_dataset

from conftest import report

RESULTS_JSON = Path(__file__).parent / "BENCH_scoreF.json"

#: (n, parent width, number of parent sets) — parent domain is 2^width.
GRID = (
    (500, 6, 12),
    (500, 8, 6),
    (2000, 5, 16),
    (2000, 8, 6),
    (8000, 5, 16),
    (8000, 8, 6),
)

#: The kernel must beat the per-candidate DP by at least this factor on
#: some |dom(Π)| > 12 batch of the grid.
MIN_KERNEL_SPEEDUP = 5.0

#: Hard completion budget for the formerly-stalling n=8000 θ-mode release.
SLICE_BUDGET_SECONDS = 600.0


def _candidate_batch(n, width, n_sets, seed=1):
    """Stacked NLTCS contingency matrices for (child | parent set) pairs."""
    table = load_dataset("nltcs", n=n, seed=0)
    names = list(table.attribute_names)
    rng = np.random.default_rng(seed)
    matrices = []
    for _ in range(n_sets):
        combo = list(rng.choice(names, size=width, replace=False))
        columns = np.stack([table.column(c) for c in combo], axis=1)
        parent_flat = flatten_index(columns, [2] * width)
        for child in names:
            if child in combo:
                continue
            flat = parent_flat * 2 + table.column(child)
            matrices.append(
                np.bincount(flat, minlength=2 ** (width + 1))
                .reshape(-1, 2)
                .astype(np.int64)
            )
    return np.stack(matrices), table.n


def test_scoreF_kernel_benchmark():
    rows = []
    for n, width, n_sets in GRID:
        matrices, actual_n = _candidate_batch(n, width, n_sets)
        count = matrices.shape[0]

        start = time.perf_counter()
        reference = np.array(
            [score_F_dp(m.reshape(-1), actual_n) for m in matrices]
        )
        dp_seconds = time.perf_counter() - start

        score_F_batch(matrices[:4], actual_n)  # warm the mask cache
        start = time.perf_counter()
        kernel = score_F_batch(matrices, actual_n)
        kernel_seconds = time.perf_counter() - start

        # The kernel is a pure optimization: bit-identical scores.
        assert np.array_equal(kernel, reference)
        rows.append(
            {
                "n": actual_n,
                "parent_cells": 2 ** width,
                "count": count,
                "dp_seconds": round(dp_seconds, 4),
                "kernel_seconds": round(kernel_seconds, 4),
                "speedup": round(dp_seconds / kernel_seconds, 2),
            }
        )

    best = max(row["speedup"] for row in rows)
    assert best >= MIN_KERNEL_SPEEDUP, rows

    # ------------------------------------------------------------------
    # The formerly-stalling sweep slice: one n=8000 binary-F release whose
    # θ-chosen degree pushes parent domains past the enumeration threshold.
    # ------------------------------------------------------------------
    epsilon, beta, theta = 1.6, 0.3, 4.0
    table = load_dataset("nltcs", n=8000, seed=0)
    k = choose_k_binary(table.n, table.d, (1 - beta) * epsilon, theta)
    assert 2 ** k > 12, "slice must exercise the blocked kernel"
    start = time.perf_counter()
    synthetic = PrivBayes(
        epsilon=epsilon, beta=beta, theta=theta, score="F", mode="binary"
    ).fit_sample(
        table, rng=np.random.default_rng(97), scoring_cache=ScoringCache()
    )
    slice_seconds = time.perf_counter() - start
    assert synthetic.n == table.n
    assert slice_seconds < SLICE_BUDGET_SECONDS

    payload = {
        "description": (
            "Per-candidate Section-4.4 DP vs blocked-bitset batched kernel "
            "on NLTCS contingency batches, plus the previously-stalling "
            "n=8000 theta-mode release"
        ),
        "grid": rows,
        "min_speedup_asserted": MIN_KERNEL_SPEEDUP,
        "best_speedup": best,
        "theta_slice": {
            "dataset": "nltcs",
            "n": table.n,
            "epsilon": epsilon,
            "beta": beta,
            "theta": theta,
            "k": k,
            "parent_cells": 2 ** k,
            "seconds": round(slice_seconds, 2),
            "budget_seconds": SLICE_BUDGET_SECONDS,
            "completed": True,
        },
    }
    RESULTS_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["scoreF kernel: per-candidate DP vs blocked-bitset batch"]
    for row in rows:
        lines.append(
            f"  n={row['n']:5d} cells={row['parent_cells']:4d} "
            f"count={row['count']:4d}  dp={row['dp_seconds'] * 1e3:7.1f}ms  "
            f"kernel={row['kernel_seconds'] * 1e3:7.1f}ms  "
            f"{row['speedup']:.1f}x"
        )
    lines.append(
        f"  theta slice (n=8000, k={k}, {2 ** k} cells): "
        f"{slice_seconds:.1f}s (budget {SLICE_BUDGET_SECONDS:.0f}s)"
    )
    report("\n".join(lines))
