"""Score-F kernel micro-benchmark: DP vs batched kernel, per backend.

Times the Section 4.4 ``F`` computation on ``|dom(Π)| > 12`` candidate
batches drawn from NLTCS contingencies — the exact shapes the greedy
θ-usefulness regimes score — comparing three tiers:

* the per-candidate dynamic program
  (:func:`repro.core.score_kernels.score_F_dp`, the seed implementation),
* the blocked-bitset **numpy** kernel, and
* the compiled **native** kernel (``core/_native/scoref.c``) when a C
  toolchain is available.

All tiers must be bit-identical on every candidate.  The numpy kernel
must clear ``MIN_KERNEL_SPEEDUP`` over the DP on at least one grid cell
(the small-n / wide-domain cells, where the DP's per-candidate Python
overhead dominates, run 5-15x; the n=8000 cells run ~1.5-2.5x because
the per-candidate frontier there is large enough that the DP is already
cache-resident compute).  The native kernel — which exists precisely for
those large-frontier cells — must clear ``MIN_NATIVE_VS_NUMPY`` over the
numpy kernel on the n=8000 / 256-cell cell.

Also times the segmented ``score_I`` path: a ragged
``>= I_BATCH_CANDIDATES``-candidate batch of mixed child sizes and
parent domains through :func:`repro.core.score_kernels.score_I_segments`
versus the per-candidate ``mutual_information`` loop it replaced, parity
checked bitwise, floor ``MIN_SEGMENTED_I_SPEEDUP``.

And times the previously-stalling workload end to end: one NLTCS n=8000
binary-mode release whose θ-usefulness degree gives 32-cell parent
domains (the ROADMAP "θ-mode stalls at n >= 8000" item) and asserts it
completes within ``SLICE_BUDGET_SECONDS``.

Every floor is asserted *before* anything is persisted, so
``BENCH_scoreF.json`` and the transcript only ever record passing runs:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_scoreF.py -q
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core import kernel_backend
from repro.core.privbayes import PrivBayes
from repro.core.score_kernels import (
    score_F_batch,
    score_F_dp,
    score_I_segments,
)
from repro.core.scoring import ScoringCache
from repro.core.theta import choose_k_binary
from repro.data.marginals import flatten_index
from repro.datasets import load_dataset
from repro.infotheory.measures import mutual_information

from conftest import report

RESULTS_JSON = Path(__file__).parent / "BENCH_scoreF.json"

#: (n, parent width, number of parent sets) — parent domain is 2^width.
GRID = (
    (500, 6, 12),
    (500, 8, 6),
    (2000, 5, 16),
    (2000, 8, 6),
    (8000, 5, 16),
    (8000, 8, 6),
)

#: The numpy kernel must beat the per-candidate DP by at least this factor
#: on some |dom(Π)| > 12 batch of the grid.
MIN_KERNEL_SPEEDUP = 5.0

#: The native kernel must beat the numpy kernel by at least this factor on
#: the large-frontier cell (n=8000, 256 parent cells) it was built for.
MIN_NATIVE_VS_NUMPY = 2.0

#: The segmented I kernel must beat the per-candidate loop by this factor.
MIN_SEGMENTED_I_SPEEDUP = 3.0

#: Ragged I-batch size (the floor the ISSUE specifies is >= 500).
I_BATCH_CANDIDATES = 800

#: Hard completion budget for the formerly-stalling n=8000 θ-mode release.
SLICE_BUDGET_SECONDS = 600.0


def _native_available():
    try:
        kernel_backend.load_native()
        return True
    except kernel_backend.KernelBackendError:
        return False


def _candidate_batch(n, width, n_sets, seed=1):
    """Stacked NLTCS contingency matrices for (child | parent set) pairs."""
    table = load_dataset("nltcs", n=n, seed=0)
    names = list(table.attribute_names)
    rng = np.random.default_rng(seed)
    matrices = []
    for _ in range(n_sets):
        combo = list(rng.choice(names, size=width, replace=False))
        columns = np.stack([table.column(c) for c in combo], axis=1)
        parent_flat = flatten_index(columns, [2] * width)
        for child in names:
            if child in combo:
                continue
            flat = parent_flat * 2 + table.column(child)
            matrices.append(
                np.bincount(flat, minlength=2 ** (width + 1))
                .reshape(-1, 2)
                .astype(np.int64)
            )
    return np.stack(matrices), table.n


def _best_of(repeats, fn):
    """Minimum wall time over ``repeats`` runs (steadier on busy hosts)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _ragged_I_batch(count, seed=2):
    """Concatenated normalized joints shaped like production I batches.

    Mostly-binary children (the paper's Section-4 encoding and the repo's
    default mode) with a tail of wider general-mode domains, over a
    spread of parent domains — the shape
    :func:`repro.bn.quality.pair_group_mutual_information` and the
    candidate scorer feed the segmented kernel (many candidates, few
    distinct ``(length, child_size)`` shapes, ragged lengths).
    """
    rng = np.random.default_rng(seed)
    parent_doms = (2, 4, 8, 16, 32, 64)
    parts, offsets, lengths, sizes = [], [], [], []
    position = 0
    for _ in range(count):
        child_size = 2 if rng.random() < 0.8 else int(rng.integers(3, 7))
        parent_dom = int(parent_doms[int(rng.integers(0, len(parent_doms)))])
        joint = rng.dirichlet(np.ones(parent_dom * child_size))
        joint[joint < 1.0 / joint.size] = 0.0
        total = joint.sum()
        parts.append(joint / total if total > 0 else joint)
        offsets.append(position)
        lengths.append(joint.size)
        sizes.append(child_size)
        position += joint.size
    return np.concatenate(parts), offsets, lengths, sizes


def test_scoreF_kernel_benchmark():
    backends = ["numpy"] + (["native"] if _native_available() else [])
    rows = []
    native_vs_numpy = None
    for n, width, n_sets in GRID:
        matrices, actual_n = _candidate_batch(n, width, n_sets)
        count = matrices.shape[0]

        start = time.perf_counter()
        reference = np.array(
            [score_F_dp(m.reshape(-1), actual_n) for m in matrices]
        )
        dp_seconds = time.perf_counter() - start

        cell = {}
        for backend in backends:
            # Warm the mask cache / compiled-artifact load.
            score_F_batch(matrices[:4], actual_n, backend=backend)
            kernel_seconds, kernel = _best_of(
                2, lambda: score_F_batch(matrices, actual_n, backend=backend)
            )
            # The kernels are pure optimizations: bit-identical scores.
            assert np.array_equal(kernel, reference), (backend, n, width)
            cell[backend] = kernel_seconds
            rows.append(
                {
                    "n": actual_n,
                    "parent_cells": 2 ** width,
                    "count": count,
                    "backend": backend,
                    "dp_seconds": round(dp_seconds, 4),
                    "kernel_seconds": round(kernel_seconds, 4),
                    "speedup": round(dp_seconds / kernel_seconds, 2),
                }
            )
        if "native" in cell and actual_n == 8000 and width == 8:
            native_vs_numpy = {
                "n": actual_n,
                "parent_cells": 2 ** width,
                "count": count,
                "numpy_seconds": round(cell["numpy"], 4),
                "native_seconds": round(cell["native"], 4),
                "speedup": round(cell["numpy"] / cell["native"], 2),
            }

    best = max(
        row["speedup"] for row in rows if row["backend"] == "numpy"
    )
    assert best >= MIN_KERNEL_SPEEDUP, rows
    if "native" in backends:
        assert native_vs_numpy is not None
        assert native_vs_numpy["speedup"] >= MIN_NATIVE_VS_NUMPY, (
            native_vs_numpy
        )

    # ------------------------------------------------------------------
    # Segmented score_I vs the per-candidate entropy loop it replaced.
    # ------------------------------------------------------------------
    flat, offsets, lengths, sizes = _ragged_I_batch(I_BATCH_CANDIDATES)

    def _loop():
        return np.array(
            [
                mutual_information(flat[o : o + l], cs)
                for o, l, cs in zip(offsets, lengths, sizes)
            ]
        )

    loop_seconds, loop_values = _best_of(2, _loop)
    segmented_seconds, segmented_values = _best_of(
        3, lambda: score_I_segments(flat, offsets, lengths, sizes)
    )
    # Parity first: the segmented path is exact, not approximate.
    assert np.array_equal(segmented_values, loop_values)
    i_speedup = loop_seconds / segmented_seconds
    assert i_speedup >= MIN_SEGMENTED_I_SPEEDUP, (
        loop_seconds,
        segmented_seconds,
    )
    score_i = {
        "candidates": I_BATCH_CANDIDATES,
        "elements": int(flat.size),
        "loop_seconds": round(loop_seconds, 4),
        "segmented_seconds": round(segmented_seconds, 4),
        "speedup": round(i_speedup, 2),
        "min_speedup_asserted": MIN_SEGMENTED_I_SPEEDUP,
    }

    # ------------------------------------------------------------------
    # The formerly-stalling sweep slice: one n=8000 binary-F release whose
    # θ-chosen degree pushes parent domains past the enumeration threshold.
    # ------------------------------------------------------------------
    epsilon, beta, theta = 1.6, 0.3, 4.0
    table = load_dataset("nltcs", n=8000, seed=0)
    # repro: allow[PRIV001] -- pins the historical slice; split_epsilon's remainder form is not bit-identical to (1 - beta) * epsilon
    k = choose_k_binary(table.n, table.d, (1 - beta) * epsilon, theta)
    assert 2 ** k > 12, "slice must exercise the blocked kernel"
    start = time.perf_counter()
    synthetic = PrivBayes(
        epsilon=epsilon, beta=beta, theta=theta, score="F", mode="binary"
    ).fit_sample(
        table, rng=np.random.default_rng(97), scoring_cache=ScoringCache()
    )
    slice_seconds = time.perf_counter() - start
    assert synthetic.n == table.n
    assert slice_seconds < SLICE_BUDGET_SECONDS

    # Every floor above has passed — only now do results persist.
    payload = {
        "description": (
            "Per-candidate Section-4.4 DP vs batched kernel per backend "
            "(numpy blocked-bitset / native C frontier merge) on NLTCS "
            "contingency batches, the segmented score_I path vs the "
            "per-candidate entropy loop, and the previously-stalling "
            "n=8000 theta-mode release"
        ),
        "backends": backends,
        "grid": rows,
        "min_speedup_asserted": MIN_KERNEL_SPEEDUP,
        "best_speedup": best,
        "native_vs_numpy": native_vs_numpy,
        "min_native_vs_numpy_asserted": MIN_NATIVE_VS_NUMPY,
        "score_I": score_i,
        "theta_slice": {
            "dataset": "nltcs",
            "n": table.n,
            "epsilon": epsilon,
            "beta": beta,
            "theta": theta,
            "k": k,
            "parent_cells": 2 ** k,
            "seconds": round(slice_seconds, 2),
            "budget_seconds": SLICE_BUDGET_SECONDS,
            "completed": True,
        },
    }
    RESULTS_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["scoreF kernel: per-candidate DP vs batched kernel per backend"]
    for row in rows:
        lines.append(
            f"  n={row['n']:5d} cells={row['parent_cells']:4d} "
            f"count={row['count']:4d} {row['backend']:>6s}  "
            f"dp={row['dp_seconds'] * 1e3:7.1f}ms  "
            f"kernel={row['kernel_seconds'] * 1e3:7.1f}ms  "
            f"{row['speedup']:.1f}x"
        )
    if native_vs_numpy is not None:
        lines.append(
            f"  native vs numpy (n=8000, 256 cells): "
            f"{native_vs_numpy['speedup']:.1f}x "
            f"(floor {MIN_NATIVE_VS_NUMPY:.0f}x)"
        )
    lines.append(
        f"  score_I segmented ({I_BATCH_CANDIDATES} ragged candidates): "
        f"loop={loop_seconds * 1e3:.1f}ms "
        f"segmented={segmented_seconds * 1e3:.1f}ms "
        f"{i_speedup:.1f}x (floor {MIN_SEGMENTED_I_SPEEDUP:.0f}x)"
    )
    lines.append(
        f"  theta slice (n=8000, k={k}, {2 ** k} cells): "
        f"{slice_seconds:.1f}s (budget {SLICE_BUDGET_SECONDS:.0f}s)"
    )
    report("\n".join(lines))
