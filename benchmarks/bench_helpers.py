"""Shared data builders for the ablation benchmarks (not a test module)."""

import numpy as np

from repro.data.attribute import Attribute, discretize_continuous
from repro.data.table import Table
from repro.multitable import LinkedTables


def build_household_linked(n_households: int, seed: int) -> LinkedTables:
    """Households linked to vehicles (same shape as the Section 7 example)."""
    rng = np.random.default_rng(seed)
    region = rng.integers(0, 4, n_households)
    income = np.exp(rng.normal(10.0 + 0.2 * (region == 0), 0.6, n_households))
    income_attr, income_codes = discretize_continuous(
        "income", income, low=0, high=120_000
    )
    urban = (rng.random(n_households) < 0.7).astype(np.int64)
    primary = Table(
        [
            Attribute("region", ("north", "east", "south", "west")),
            income_attr,
            Attribute.binary("urban"),
        ],
        {"region": region, "income": income_codes, "urban": urban},
    )
    rate = np.clip(0.2 + income / 60_000 - 0.3 * urban, 0.05, 3.5)
    fanout = rng.poisson(rate)
    owners = np.repeat(np.arange(n_households), fanout)
    total = owners.size
    owner_income = income[owners]
    kind = np.where(
        rng.random(total) < np.clip(owner_income / 90_000, 0.05, 0.9),
        2,
        np.where(rng.random(total) < 0.75, 1, 0),
    ).astype(np.int64)
    age = np.minimum(rng.poisson(9 - 4 * (owner_income > 50_000)), 15)
    child = Table(
        [
            Attribute("kind", ("motorbike", "sedan", "suv")),
            Attribute("age_years", tuple(str(y) for y in range(16))),
        ],
        {"kind": kind, "age_years": age},
    )
    return LinkedTables(primary, child, owners)
