"""Setuptools shim: enables legacy editable installs in offline environments
(no `wheel` package available, so the PEP 517 editable hook cannot run).

Also provides an optional ``build_native`` command that compiles the C
F-score backend ahead of time (``python setup.py build_native``).  The
package never requires it: a pure-Python install works identically, and
:mod:`repro.core.kernel_backend` builds on demand when a toolchain exists.
"""
import sys

from setuptools import Command, setup


class BuildNative(Command):
    """Compile the optional native F-score kernel into the artifact cache."""

    description = "compile the native F-score kernel (requires a C toolchain)"
    user_options = []

    def initialize_options(self):
        pass

    def finalize_options(self):
        pass

    def run(self):
        sys.path.insert(0, "src")
        from repro.core import kernel_backend

        artifact = kernel_backend.build_native(force=True)
        print(f"built {artifact}")


setup(cmdclass={"build_native": BuildNative})
