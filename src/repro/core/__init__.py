"""The paper's primary contribution: the PrivBayes pipeline.

Public surface:

* :class:`~repro.core.privbayes.PrivBayes` — end-to-end release pipeline
  (network learning → distribution learning → sampling, Section 3).
* :mod:`~repro.core.scores` — score functions ``I``, ``F``, ``R``
  (Sections 4.2, 4.3, 5.3).
* :mod:`~repro.core.scoring` — incremental candidate-scoring engine
  (cross-round score memo, batched contingencies, shared MI cache).
* :mod:`~repro.core.greedy_bayes` — Algorithms 2 and 4.
* :mod:`~repro.core.parent_sets` — Algorithms 5 and 6.
* :mod:`~repro.core.noisy_conditionals` — Algorithms 1 and 3.
* :mod:`~repro.core.sampler` — ancestral synthesis of tuples.
* :mod:`~repro.core.theta` — θ-usefulness (Definition 4.7) choice of ``k``.
"""

from repro.core.privbayes import PrivBayes, PrivBayesConfig, PrivBayesModel
from repro.core.scores import (
    score_F,
    score_I,
    score_R,
    sensitivity_F,
    sensitivity_I,
    sensitivity_R,
)
from repro.core.greedy_bayes import greedy_bayes_fixed_k, greedy_bayes_theta
from repro.core.scoring import (
    CandidateScorer,
    MutualInformationCache,
    ScoringCache,
)
from repro.core.parent_sets import (
    maximal_parent_sets,
    maximal_parent_sets_generalized,
)
from repro.core.noisy_conditionals import (
    ConditionalTable,
    NoisyModel,
    noisy_conditionals_fixed_k,
    noisy_conditionals_general,
)
from repro.core.sampler import (
    invert_row_cdfs,
    sample_synthetic,
    sample_synthetic_chunks,
)
from repro.core.theta import choose_k_binary, usefulness_tau

__all__ = [
    "PrivBayes",
    "PrivBayesConfig",
    "PrivBayesModel",
    "score_I",
    "score_F",
    "score_R",
    "sensitivity_I",
    "sensitivity_F",
    "sensitivity_R",
    "greedy_bayes_fixed_k",
    "greedy_bayes_theta",
    "CandidateScorer",
    "MutualInformationCache",
    "ScoringCache",
    "maximal_parent_sets",
    "maximal_parent_sets_generalized",
    "ConditionalTable",
    "NoisyModel",
    "noisy_conditionals_fixed_k",
    "noisy_conditionals_general",
    "sample_synthetic",
    "sample_synthetic_chunks",
    "invert_row_cdfs",
    "choose_k_binary",
    "usefulness_tau",
]
