"""Private Bayesian-network construction (Algorithms 2 and 4).

Both algorithms place attributes one at a time: the next attribute-parent
pair is drawn from a candidate set via the exponential mechanism (or via
plain argmax in non-private mode, used by the NoPrivacy reference of
Figure 4).  Algorithm 2 handles binary domains with a fixed degree ``k``;
Algorithm 4 handles general domains, constraining candidates through
θ-usefulness and (optionally) taxonomy generalization.

Every round hands its whole candidate list to
:meth:`CandidateScorer.score_batch` unconditionally — including the
θ-usefulness regimes whose parent domains exceed the enumeration
threshold: since the score-kernel layer (:mod:`repro.core.score_kernels`),
large-domain ``F`` candidates run through the blocked-bitset batched DP
instead of one per-candidate dynamic program each, so no domain size falls
back to scalar scoring.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

import numpy as np

from repro.bn.network import APPair, BayesianNetwork
from repro.core.parent_sets import (
    maximal_parent_sets,
    maximal_parent_sets_generalized,
)
from repro.core.rng import fallback_rng
from repro.core.scoring import Candidate, CandidateScorer
from repro.core.theta import usefulness_tau
from repro.data.table import Table
from repro.dp.accountant import split_epsilon_even
from repro.dp.mechanisms import exponential_mechanism

#: Backwards-compatible alias; the scorer now lives in repro.core.scoring.
_CandidateScorer = CandidateScorer


def _check_scorer(
    scorer: Optional[CandidateScorer], table: Table, score: str
) -> CandidateScorer:
    """Use the caller-provided scorer (a reusable cache) or build a fresh one."""
    if scorer is None:
        return CandidateScorer(table, score)
    if scorer.table is not table:
        raise ValueError("scorer was built for a different table")
    if scorer.score != score:
        raise ValueError(
            f"scorer uses score {scorer.score!r}, expected {score!r}"
        )
    return scorer


def _select(
    scorer: CandidateScorer,
    candidates: List[Candidate],
    epsilon: Optional[float],
    rng: np.random.Generator,
) -> Candidate:
    """Pick one candidate: exponential mechanism when ``epsilon`` is set,
    plain argmax otherwise (non-private reference)."""
    scores = scorer.score_batch(candidates)
    if epsilon is None:
        return candidates[int(np.argmax(scores))]
    # The per-selection sensitivity must hold for every candidate in Ω;
    # use the largest applicable sensitivity (only I varies by domain shape).
    sensitivity = scorer.selection_sensitivity(candidates)
    index = exponential_mechanism(scores, sensitivity, epsilon, rng)
    return candidates[index]


def greedy_bayes_fixed_k(
    table: Table,
    k: int,
    epsilon1: Optional[float],
    score: str = "F",
    rng: Optional[np.random.Generator] = None,
    first_attribute: Optional[str] = None,
    scorer: Optional[CandidateScorer] = None,
) -> BayesianNetwork:
    """Algorithm 2: greedy ``k``-degree network construction.

    Parameters
    ----------
    table:
        The sensitive dataset (binary attributes expected when ``score='F'``).
    k:
        Network degree.  ``k = 0`` yields the independent-attributes network.
    epsilon1:
        Network-learning budget; ``None`` disables privacy (argmax greedy,
        the NoPrivacy reference of Figure 4).
    score:
        One of ``'I' | 'F' | 'R'``.
    first_attribute:
        Override the random choice of the first (parentless) attribute.
    scorer:
        Optional pre-built :class:`~repro.core.scoring.CandidateScorer` for
        this (table, score); pass one to reuse its memo across runs (e.g.
        an ε sweep).  Scoring consumes no randomness, so sharing it leaves
        the RNG draw sequence untouched.
    """
    rng = fallback_rng(rng)
    names = list(table.attribute_names)
    d = len(names)
    if d == 0:
        return BayesianNetwork([])
    if k < 0:
        raise ValueError("k must be non-negative")
    if score == "F":
        for attr in table.attributes:
            if attr.size != 2:
                raise ValueError(
                    "score 'F' requires binary attributes; "
                    f"{attr.name!r} has {attr.size} values"
                )
    first = first_attribute or names[int(rng.integers(len(names)))]
    if first not in names:
        raise ValueError(f"unknown first attribute {first!r}")
    pairs = [APPair.make(first, [])]
    placed = [first]
    remaining = [name for name in names if name != first]
    per_round_epsilon = None
    if epsilon1 is not None:
        if epsilon1 <= 0:
            raise ValueError("epsilon1 must be positive")
        per_round_epsilon = split_epsilon_even(epsilon1, max(1, d - 1))
    scorer = _check_scorer(scorer, table, score)
    while remaining:
        width = min(k, len(placed))
        candidates: List[Candidate] = []
        for child in remaining:
            for parents in itertools.combinations(placed, width):
                candidates.append(
                    (child, tuple((name, 0) for name in parents))
                )
        child, parents = _select(scorer, candidates, per_round_epsilon, rng)
        pairs.append(APPair.make(child, parents))
        placed.append(child)
        remaining.remove(child)
    return BayesianNetwork(pairs)


def greedy_bayes_theta(
    table: Table,
    epsilon1: Optional[float],
    epsilon2: float,
    theta: float,
    score: str = "R",
    generalize: bool = False,
    rng: Optional[np.random.Generator] = None,
    first_attribute: Optional[str] = None,
    scorer: Optional[CandidateScorer] = None,
) -> BayesianNetwork:
    """Algorithm 4: θ-useful network construction over general domains.

    Candidates for each unplaced attribute ``X`` are its maximal parent
    sets under the domain budget ``τ / |dom(X)|`` with
    ``τ = n·ε₂ / (2dθ)`` (Section 5.2); when no parent set fits, ``(X, ∅)``
    keeps the attribute modeled as independent.

    Parameters
    ----------
    generalize:
        Use Algorithm 6 (taxonomy-aware maximal parent sets) instead of
        Algorithm 5 — the Hierarchical encoding of Section 5.1.
    epsilon1:
        Selection budget; ``None`` for the non-private argmax reference.
    epsilon2:
        Distribution-learning budget; enters only through ``τ`` (a public
        quantity), so it is *not* spent here.
    scorer:
        Optional pre-built :class:`~repro.core.scoring.CandidateScorer`
        for this (table, score), reusable across runs.
    """
    rng = fallback_rng(rng)
    names = list(table.attribute_names)
    d = len(names)
    if d == 0:
        return BayesianNetwork([])
    tau_total = usefulness_tau(table.n, d, epsilon2, theta)
    first = first_attribute or names[int(rng.integers(len(names)))]
    if first not in names:
        raise ValueError(f"unknown first attribute {first!r}")
    pairs = [APPair.make(first, [])]
    placed = [first]
    remaining = [name for name in names if name != first]
    per_round_epsilon = None
    if epsilon1 is not None:
        if epsilon1 <= 0:
            raise ValueError("epsilon1 must be positive")
        per_round_epsilon = split_epsilon_even(epsilon1, max(1, d - 1))
    enumerate_sets = (
        maximal_parent_sets_generalized if generalize else maximal_parent_sets
    )
    scorer = _check_scorer(scorer, table, score)
    # The enumeration memo persists across rounds (and, via a shared scorer,
    # across the runs of a sweep).  Attributes are passed newest-first so
    # each round's tail subproblems are exactly the previous round's full
    # problems; the computed *set* of maximal parent sets is independent of
    # the attribute order (see repro.core.parent_sets), so the candidate
    # list — canonically sorted — is unchanged.  The non-incremental scorer
    # is the seed-behavior reference for benchmarks: no cross-call memo.
    parent_cache = scorer.parent_sets if scorer.incremental else None
    while remaining:
        placed_attrs = [table.attribute(name) for name in reversed(placed)]
        candidates: List[Candidate] = []
        for child in remaining:
            child_size = table.attribute(child).size
            top = enumerate_sets(
                placed_attrs, tau_total / child_size, cache=parent_cache
            )
            if not top:
                candidates.append((child, ()))
            else:
                for parent_set in top:
                    candidates.append((child, tuple(sorted(parent_set))))
        child, parents = _select(scorer, candidates, per_round_epsilon, rng)
        pairs.append(APPair.make(child, parents))
        placed.append(child)
        remaining.remove(child)
    return BayesianNetwork(pairs)
