"""Private Bayesian-network construction (Algorithms 2 and 4).

Both algorithms place attributes one at a time: the next attribute-parent
pair is drawn from a candidate set via the exponential mechanism (or via
plain argmax in non-private mode, used by the NoPrivacy reference of
Figure 4).  Algorithm 2 handles binary domains with a fixed degree ``k``;
Algorithm 4 handles general domains, constraining candidates through
θ-usefulness and (optionally) taxonomy generalization.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bn.network import APPair, BayesianNetwork
from repro.bn.quality import generalized_codes
from repro.core.parent_sets import (
    ParentSet,
    maximal_parent_sets,
    maximal_parent_sets_generalized,
    parent_set_domain_size,
)
from repro.core.scores import (
    score_F,
    score_I,
    score_R,
    sensitivity_F,
    sensitivity_I,
    sensitivity_R,
)
from repro.core.theta import usefulness_tau
from repro.data.attribute import Attribute
from repro.data.marginals import domain_size, flatten_index
from repro.data.table import Table
from repro.dp.mechanisms import exponential_mechanism

Candidate = Tuple[str, Tuple[Tuple[str, int], ...]]


class _CandidateScorer:
    """Scores (child, parent-set) candidates with shared flattening caches.

    Candidate enumeration revisits the same parent sets for many children
    (and across greedy iterations), so the mixed-radix flattening of each
    parent set — the expensive O(n) part — is computed once and cached.
    """

    def __init__(self, table: Table, score: str) -> None:
        if score not in ("I", "F", "R"):
            raise ValueError(f"unknown score function {score!r}")
        self.table = table
        self.score = score
        self._generalized: dict = {}
        self._parent_flat: dict = {}

    def _codes(self, name: str, level: int) -> Tuple[np.ndarray, int]:
        key = (name, level)
        if key not in self._generalized:
            self._generalized[key] = generalized_codes(self.table, name, level)
        return self._generalized[key]

    def _parent_index(
        self, parents: Tuple[Tuple[str, int], ...]
    ) -> Tuple[np.ndarray, int]:
        """Flattened parent configuration per row, plus the parent domain."""
        if parents not in self._parent_flat:
            columns = []
            sizes = []
            for name, level in parents:
                codes, size = self._codes(name, level)
                columns.append(codes)
                sizes.append(size)
            if columns:
                flat = flatten_index(np.stack(columns, axis=1), sizes)
            else:
                flat = np.zeros(self.table.n, dtype=np.int64)
            self._parent_flat[parents] = (flat, domain_size(sizes))
        return self._parent_flat[parents]

    def counts(
        self, child: str, parents: Tuple[Tuple[str, int], ...]
    ) -> Tuple[np.ndarray, int]:
        """Contingency counts ``Pr[Π, X]`` (child innermost)."""
        parent_flat, parent_dom = self._parent_index(parents)
        child_attr = self.table.attribute(child)
        flat = parent_flat * child_attr.size + self.table.column(child)
        counts = np.bincount(
            flat, minlength=parent_dom * child_attr.size
        ).astype(float)
        return counts, child_attr.size

    def __call__(
        self, child: str, parents: Tuple[Tuple[str, int], ...]
    ) -> float:
        counts, child_size = self.counts(child, parents)
        n = self.table.n
        if self.score == "F":
            if child_size != 2:
                raise ValueError(
                    f"score 'F' requires a binary child; {child!r} has "
                    f"{child_size} values"
                )
            return score_F(counts, n)
        joint = counts / n if n else counts
        if self.score == "I":
            return score_I(joint, child_size)
        return score_R(joint, child_size)


def _score_sensitivity(
    score: str, n: int, child_size: int, parent_domain: int
) -> float:
    if score == "F":
        return sensitivity_F(n)
    if score == "R":
        return sensitivity_R(n)
    if score == "I":
        return sensitivity_I(n, binary=(child_size == 2 or parent_domain == 2))
    raise ValueError(f"unknown score function {score!r}")


def _select(
    scorer: _CandidateScorer,
    candidates: List[Candidate],
    epsilon: Optional[float],
    rng: np.random.Generator,
) -> Candidate:
    """Pick one candidate: exponential mechanism when ``epsilon`` is set,
    plain argmax otherwise (non-private reference)."""
    table = scorer.table
    scores = np.array([scorer(child, parents) for child, parents in candidates])
    if epsilon is None:
        return candidates[int(np.argmax(scores))]
    attrs = {a.name: a for a in table.attributes}
    # The per-selection sensitivity must hold for every candidate in Ω;
    # use the largest applicable sensitivity (only I varies by domain shape).
    sensitivity = max(
        _score_sensitivity(
            scorer.score,
            table.n,
            attrs[child].size,
            parent_set_domain_size(frozenset(parents), attrs),
        )
        for child, parents in candidates
    )
    index = exponential_mechanism(scores, sensitivity, epsilon, rng)
    return candidates[index]


def greedy_bayes_fixed_k(
    table: Table,
    k: int,
    epsilon1: Optional[float],
    score: str = "F",
    rng: Optional[np.random.Generator] = None,
    first_attribute: Optional[str] = None,
) -> BayesianNetwork:
    """Algorithm 2: greedy ``k``-degree network construction.

    Parameters
    ----------
    table:
        The sensitive dataset (binary attributes expected when ``score='F'``).
    k:
        Network degree.  ``k = 0`` yields the independent-attributes network.
    epsilon1:
        Network-learning budget; ``None`` disables privacy (argmax greedy,
        the NoPrivacy reference of Figure 4).
    score:
        One of ``'I' | 'F' | 'R'``.
    first_attribute:
        Override the random choice of the first (parentless) attribute.
    """
    if rng is None:
        rng = np.random.default_rng()
    names = list(table.attribute_names)
    d = len(names)
    if d == 0:
        return BayesianNetwork([])
    if k < 0:
        raise ValueError("k must be non-negative")
    if score == "F":
        for attr in table.attributes:
            if attr.size != 2:
                raise ValueError(
                    "score 'F' requires binary attributes; "
                    f"{attr.name!r} has {attr.size} values"
                )
    first = first_attribute or names[int(rng.integers(len(names)))]
    if first not in names:
        raise ValueError(f"unknown first attribute {first!r}")
    pairs = [APPair.make(first, [])]
    placed = [first]
    remaining = [name for name in names if name != first]
    per_round_epsilon = None
    if epsilon1 is not None:
        if epsilon1 <= 0:
            raise ValueError("epsilon1 must be positive")
        per_round_epsilon = epsilon1 / max(1, d - 1)
    scorer = _CandidateScorer(table, score)
    while remaining:
        width = min(k, len(placed))
        candidates: List[Candidate] = []
        for child in remaining:
            for parents in itertools.combinations(placed, width):
                candidates.append(
                    (child, tuple((name, 0) for name in parents))
                )
        child, parents = _select(scorer, candidates, per_round_epsilon, rng)
        pairs.append(APPair.make(child, parents))
        placed.append(child)
        remaining.remove(child)
    return BayesianNetwork(pairs)


def greedy_bayes_theta(
    table: Table,
    epsilon1: Optional[float],
    epsilon2: float,
    theta: float,
    score: str = "R",
    generalize: bool = False,
    rng: Optional[np.random.Generator] = None,
    first_attribute: Optional[str] = None,
) -> BayesianNetwork:
    """Algorithm 4: θ-useful network construction over general domains.

    Candidates for each unplaced attribute ``X`` are its maximal parent
    sets under the domain budget ``τ / |dom(X)|`` with
    ``τ = n·ε₂ / (2dθ)`` (Section 5.2); when no parent set fits, ``(X, ∅)``
    keeps the attribute modeled as independent.

    Parameters
    ----------
    generalize:
        Use Algorithm 6 (taxonomy-aware maximal parent sets) instead of
        Algorithm 5 — the Hierarchical encoding of Section 5.1.
    epsilon1:
        Selection budget; ``None`` for the non-private argmax reference.
    epsilon2:
        Distribution-learning budget; enters only through ``τ`` (a public
        quantity), so it is *not* spent here.
    """
    if rng is None:
        rng = np.random.default_rng()
    names = list(table.attribute_names)
    d = len(names)
    if d == 0:
        return BayesianNetwork([])
    tau_total = usefulness_tau(table.n, d, epsilon2, theta)
    first = first_attribute or names[int(rng.integers(len(names)))]
    if first not in names:
        raise ValueError(f"unknown first attribute {first!r}")
    pairs = [APPair.make(first, [])]
    placed = [first]
    remaining = [name for name in names if name != first]
    per_round_epsilon = None
    if epsilon1 is not None:
        if epsilon1 <= 0:
            raise ValueError("epsilon1 must be positive")
        per_round_epsilon = epsilon1 / max(1, d - 1)
    enumerate_sets = (
        maximal_parent_sets_generalized if generalize else maximal_parent_sets
    )
    scorer = _CandidateScorer(table, score)
    while remaining:
        placed_attrs = [table.attribute(name) for name in placed]
        candidates: List[Candidate] = []
        for child in remaining:
            child_size = table.attribute(child).size
            top = enumerate_sets(placed_attrs, tau_total / child_size)
            if not top:
                candidates.append((child, ()))
            else:
                for parent_set in top:
                    candidates.append((child, tuple(sorted(parent_set))))
        child, parents = _select(scorer, candidates, per_round_epsilon, rng)
        pairs.append(APPair.make(child, parents))
        placed.append(child)
        remaining.remove(child)
    return BayesianNetwork(pairs)
