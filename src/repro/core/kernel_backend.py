"""Compiled-kernel tier: backend selection and the on-demand C build.

The batched ``F`` kernel (:func:`repro.core.score_kernels.score_F_batch`)
has an optional *native* backend: a small C source
(``core/_native/scoref.c`` — a flat int64/double array ABI, deliberately
free of ``Python.h``) compiled on demand with the system C compiler and
driven through :mod:`ctypes`.  This module owns everything about that
tier:

* **Selection** happens once, at import, via :data:`SELECTED_BACKEND` /
  :data:`NATIVE_KERNEL`.  The ``REPRO_KERNEL_BACKEND`` environment
  variable picks the mode:

  - ``auto`` (default) — try to build/load the native kernel; fall back
    to the pure-NumPy path silently if there is no toolchain (or the
    build fails).  Pure-Python environments keep working with zero
    behavior change: both backends are bit-identical.
  - ``numpy`` — never touch the compiler; the NumPy path only.
  - ``native`` — require the native kernel; raise
    :class:`KernelBackendError` naming the missing toolchain otherwise.

* **Building** is one ``cc -O2 -fPIC -shared`` invocation (no
  setuptools, no ``Python.h``), cached as
  ``scoref-abi<V>-<source sha256 prefix>.so`` so a source edit or ABI
  bump can never reuse a stale artifact.  The cache directory is
  ``REPRO_KERNEL_CACHE`` if set, else ``core/_native/build/`` next to
  the source (gitignored), else a per-user temp directory when the
  package tree is read-only.  Publication is mkstemp + ``os.replace``,
  so concurrent builders (forked test workers) race benignly.

* **Loading** verifies the artifact's exported ABI version before any
  scoring call.

Bit-identity is a hard contract, not an aspiration: the native kernel
runs the same integer dynamic program as the NumPy blocked-bitset path
and evaluates the final shortfall with the identical float64 expression,
so every score is bit-equal (see ``core/_native/README.md`` for the
argument and ``tests/core/test_score_kernels.py`` for the enforcement).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "BACKEND_ENV",
    "CACHE_ENV",
    "ABI_VERSION",
    "KernelBackendError",
    "NativeKernel",
    "source_path",
    "compiler",
    "cache_dir",
    "artifact_path",
    "build_native",
    "load_native",
    "requested_mode",
    "resolve",
    "SELECTED_BACKEND",
    "NATIVE_KERNEL",
]

#: Environment variable selecting the backend mode.
BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Environment variable overriding the compiled-artifact cache directory.
CACHE_ENV = "REPRO_KERNEL_CACHE"

#: Exported-symbol contract version; must match the C source's
#: ``repro_scoref_abi_version()``.
ABI_VERSION = 1

_MODES = ("auto", "numpy", "native")


class KernelBackendError(RuntimeError):
    """The requested compiled-kernel backend cannot be provided."""


def source_path() -> Path:
    """Path of the native kernel's C source, shipped with the package."""
    return Path(__file__).resolve().parent / "_native" / "scoref.c"


def compiler() -> Optional[str]:
    """Absolute path of the C compiler, or ``None`` when there is none.

    Honors ``CC`` when set; otherwise looks for the POSIX ``cc``.
    """
    return shutil.which(os.environ.get("CC") or "cc")


def cache_dir() -> Path:
    """Directory holding compiled artifacts (not created here).

    ``REPRO_KERNEL_CACHE`` wins; the default is ``_native/build/`` next
    to the source (gitignored); a per-user temp directory serves
    read-only installs.
    """
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    build = source_path().parent / "build"
    try:
        build.mkdir(parents=True, exist_ok=True)
        probe = build / f".writable-{os.getpid()}"
        probe.touch()
        probe.unlink()
        return build
    except OSError:
        user = getattr(os, "getuid", os.getpid)()
        return Path(tempfile.gettempdir()) / f"repro-kernels-{user}"


def artifact_path() -> Path:
    """Cache location of the compiled kernel for the current source.

    Keyed on the ABI version and a source digest: editing ``scoref.c``
    (or bumping the ABI) changes the filename, so a stale artifact is
    never picked up.
    """
    digest = hashlib.sha256(source_path().read_bytes()).hexdigest()[:16]
    return cache_dir() / f"scoref-abi{ABI_VERSION}-{digest}.so"


def build_native(force: bool = False) -> Path:
    """Compile the native kernel if needed; return the artifact path.

    Raises :class:`KernelBackendError` when no toolchain is available or
    the compilation fails (with the compiler's stderr attached).
    """
    target = artifact_path()
    if target.exists() and not force:
        return target
    cc = compiler()
    if cc is None:
        raise KernelBackendError(
            "no C toolchain found (neither $CC nor `cc` on PATH); install "
            f"a compiler or set {BACKEND_ENV}=numpy for the pure-NumPy "
            "kernels"
        )
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, temp = tempfile.mkstemp(suffix=".so", dir=str(target.parent))
    os.close(fd)
    command = [cc, "-O2", "-fPIC", "-shared", "-o", temp, str(source_path())]
    try:
        result = subprocess.run(command, capture_output=True, text=True)
        if result.returncode != 0:
            raise KernelBackendError(
                "native kernel build failed: "
                f"{' '.join(command)}\n{result.stderr}"
            )
        os.replace(temp, target)
    finally:
        if os.path.exists(temp):
            os.unlink(temp)
    return target


class NativeKernel:
    """ctypes handle to one compiled frontier-merge kernel artifact."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        library = ctypes.CDLL(str(self.path))
        version = library.repro_scoref_abi_version
        version.restype = ctypes.c_int64
        version.argtypes = []
        found = int(version())
        if found != ABI_VERSION:
            raise KernelBackendError(
                f"native kernel {self.path} exports ABI {found}, "
                f"expected {ABI_VERSION}; rebuild with build_native(force=True)"
            )
        score = library.repro_score_f_batch
        score.restype = ctypes.c_int
        score.argtypes = [
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_int64),
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.POINTER(ctypes.c_double),
        ]
        self._score_f_batch = score

    def score_f_batch(
        self, c0: np.ndarray, c1: np.ndarray, n: int
    ) -> np.ndarray:
        """Exact F scores for ``(count, m)`` X=0 / X=1 count matrices.

        The caller (``score_F_batch``) has already validated the counts;
        this only marshals the flat-array ABI.
        """
        c0 = np.ascontiguousarray(c0, dtype=np.int64)
        c1 = np.ascontiguousarray(c1, dtype=np.int64)
        if c0.shape != c1.shape or c0.ndim != 2:
            raise ValueError("c0/c1 must be equal-shape (count, m) matrices")
        count, m = c0.shape
        out = np.empty(count, dtype=np.float64)
        status = self._score_f_batch(
            c0.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
            c1.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
            ctypes.c_int64(count),
            ctypes.c_int64(m),
            ctypes.c_int64(int(n)),
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
        )
        if status != 0:
            raise KernelBackendError(
                f"native kernel {self.path} failed with status {status}"
            )
        return out


_loaded: Dict[Path, NativeKernel] = {}


def load_native() -> NativeKernel:
    """Build (if needed) and load the native kernel, memoized per artifact."""
    path = build_native()
    if path not in _loaded:
        _loaded[path] = NativeKernel(path)
    return _loaded[path]


def requested_mode() -> str:
    """The ``REPRO_KERNEL_BACKEND`` mode, validated (default ``auto``)."""
    mode = os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"
    if mode not in _MODES:
        raise KernelBackendError(
            f"{BACKEND_ENV} must be one of {'/'.join(_MODES)}, got {mode!r}"
        )
    return mode


def resolve(mode: Optional[str] = None) -> Tuple[str, Optional[NativeKernel]]:
    """Resolve a mode to ``('native', kernel)`` or ``('numpy', None)``.

    ``auto`` degrades to NumPy silently; ``native`` propagates the
    :class:`KernelBackendError` naming what is missing.
    """
    if mode is None:
        mode = requested_mode()
    if mode == "numpy":
        return "numpy", None
    if mode == "native":
        return "native", load_native()
    try:
        return "native", load_native()
    except KernelBackendError:
        return "numpy", None


#: Backend selected once at import; :mod:`repro.core.score_kernels` reads
#: these for every call that does not pass an explicit ``backend=``.
SELECTED_BACKEND, NATIVE_KERNEL = resolve()
