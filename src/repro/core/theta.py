"""θ-usefulness (Definition 4.7): picking the network degree automatically.

A noisy marginal is θ-useful when its average information-per-cell is at
least θ times the average Laplace noise magnitude.  For binary domains this
yields a closed-form choice of the network degree ``k`` (Lemma 4.8); for
general domains it yields a bound ``τ`` on the domain size of each
materialized marginal (Section 5.2), consumed by the maximal-parent-set
search.

Both computations depend only on the public quantities ``n, d, ε₂, θ`` —
they never inspect the data, so they carry no privacy cost.
"""

from __future__ import annotations


def usefulness_ratio_binary(n: int, d: int, k: int, epsilon2: float) -> float:
    """The θ of Lemma 4.8: ``n·ε₂ / ((d-k)·2^(k+2))`` for binary domains."""
    if not 0 <= k < d:
        raise ValueError("k must satisfy 0 <= k < d")
    return (n * epsilon2) / ((d - k) * 2 ** (k + 2))  # repro: allow[PRIV001] -- theta-usefulness formula over public quantities, not a budget split


def choose_k_binary(n: int, d: int, epsilon2: float, theta: float) -> int:
    """Largest ``k >= 1`` whose noisy marginals stay θ-useful, else 0.

    Implements the rule of Section 4.5: pick the largest positive integer
    ``k`` guaranteeing θ-usefulness in distribution learning; when none
    exists, fall back to ``k = 0`` (all attributes independent).
    """
    if d < 2:
        return 0
    best = 0
    for k in range(1, d):
        if usefulness_ratio_binary(n, d, k, epsilon2) >= theta:
            best = k
    return best


def usefulness_tau(n: int, d: int, epsilon2: float, theta: float) -> float:
    """Domain-size bound ``τ = n·ε₂ / (2dθ)`` for general domains.

    Section 5.2: with Algorithm 3 adding ``Lap(2d/nε₂)`` per cell, a
    marginal with ``m`` cells is θ-useful iff ``m ≤ n·ε₂/(2dθ)``.  The
    parent-set search for child ``X`` then uses ``τ / |dom(X)|`` as the
    bound on the parent-set domain size.
    """
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    if epsilon2 <= 0 or theta <= 0:
        raise ValueError("epsilon2 and theta must be positive")
    return (n * epsilon2) / (2.0 * d * theta)  # repro: allow[PRIV001] -- theta-usefulness formula over public quantities, not a budget split
