"""Incremental candidate-scoring engine for greedy structure search.

The greedy algorithms (Algorithms 2 and 4) re-enumerate all
``O(d · C(d, k))`` (child, parent-set) candidates every round, but a
candidate's score is a pure function of the data — it never changes between
rounds; only candidates involving the just-placed attribute are new.  This
module materializes each score exactly once per run and reuses it, the same
compute-once / answer-many move that makes repeated queries against a fixed
decomposition cheap.

Caching contract
----------------
All caches are keyed on *values derived deterministically from the table*:

* ``CandidateScorer`` memoizes, per ``(child, parents)`` candidate, the
  score and the selection sensitivity; per ``parents`` tuple it caches the
  mixed-radix flattened parent configuration of every row (the expensive
  O(n) part) and the joint parent-domain size.  Scoring consumes **no
  randomness**, so memoization preserves the RNG draw sequence of a greedy
  run bit-for-bit: a memo hit returns the exact float a fresh computation
  would produce (same code path, same operand order).
* Contingency tables for all *unscored* children sharing a parent set are
  computed in one batched ``np.bincount`` pass over the cached flattened
  parent index instead of one pass per candidate.  Counts are integers, so
  batching is exact.
* Scoring itself happens in the batched kernels of
  :mod:`repro.core.score_kernels`: ``I``/``R`` per parent-set group, and
  ``F`` across *all* groups of a round sharing a parent-domain size — the
  blocked-bitset kernel handles every domain size, so no candidate ever
  falls back to a per-candidate dynamic program.  Kernels are bit-equal to
  the scalar score functions on every candidate.
* ``MutualInformationCache`` memoizes empirical mutual information per
  ``(child, parents)`` for the non-private reference searches
  (:mod:`repro.bn.structure_search`) and the Figure 4 quality metric.
* Each ``CandidateScorer`` carries a
  :class:`~repro.core.parent_sets.ParentSetCache` so the θ-mode greedy
  loop's maximal-parent-set enumerations (Algorithms 5/6) are memoized
  across rounds and, through a shared scorer, across the runs of a sweep.
* ``ScoringCache`` keys scorers, MI caches and
  :class:`~repro.core.noisy_conditionals.JointCounter` instances (the
  distribution-learning phase's batched contingency counts) on table
  identity so a sweep (many releases over one table) shares them across
  runs.  Scores and counts are data statistics, not noisy releases —
  reusing them across ε values changes no distribution and spends no
  budget.

Caches hold no RNG state and are safe to share across runs on the same
table object; they must not be reused after the table's columns are
mutated (tables are treated as immutable everywhere in this codebase).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.parent_sets import ParentSetCache, parent_set_domain_size
from repro.core.score_kernels import (
    DEFAULT_ENUM_MAX_CELLS,
    score_F_batch,
    score_I_segments,
    score_R_segments,
)
from repro.core.scores import (
    score_F,
    score_I,
    score_R,
    sensitivity_F,
    sensitivity_I,
    sensitivity_R,
)
from repro.data.marginals import (
    domain_size,
    ensure_int64_domain,
    stacked_joint_counts,
)
from repro.data.table import Table
from repro.infotheory.measures import (
    mutual_information,
    mutual_information_from_table,
)

#: A candidate is a child attribute plus a (possibly generalized) parent set.
Candidate = Tuple[str, Tuple[Tuple[str, int], ...]]


def _score_sensitivity(
    score: str, n: int, child_size: int, parent_domain: int
) -> float:
    """Per-candidate sensitivity of the selected score function."""
    if score == "F":
        return sensitivity_F(n)
    if score == "R":
        return sensitivity_R(n)
    if score == "I":
        return sensitivity_I(n, binary=(child_size == 2 or parent_domain == 2))
    raise ValueError(f"unknown score function {score!r}")


class CandidateScorer:
    """Scores (child, parent-set) candidates with cross-round memoization.

    Parameters
    ----------
    table:
        The sensitive dataset: a resident :class:`~repro.data.Table` or a
        :class:`~repro.data.chunks.ChunkedSource`.  On a chunked source
        every contingency accumulates chunk by chunk (exact int64
        addition), and :meth:`score_batch` counts all of a round's
        unscored parent-set groups in a *single* pass over the rows, so a
        greedy fit costs one data scan per round in memory bounded by the
        chunk size.  Scores are bit-identical either way.
    score:
        One of ``'I' | 'F' | 'R'`` (Table 4 of the paper).
    incremental:
        When ``False``, disable the score/sensitivity memos and the batched
        contingency pass — every call recomputes from scratch (the seed
        behavior).  Kept as the reference for the structure-search
        benchmark; production callers never need it.
    f_enum_max_cells:
        Enumeration/DP crossover forwarded to the ``F`` kernel (see
        :data:`repro.core.score_kernels.DEFAULT_ENUM_MAX_CELLS`).  Any
        value yields bit-identical scores; only speed changes.
    """

    def __init__(
        self,
        table,
        score: str,
        incremental: bool = True,
        parent_index=None,
        f_enum_max_cells: int = DEFAULT_ENUM_MAX_CELLS,
    ) -> None:
        if score not in ("I", "F", "R"):
            raise ValueError(f"unknown score function {score!r}")
        # Imported lazily: bn.quality sits above this module in the
        # package import order (bn.structure_search imports scoring).
        from repro.bn.quality import ParentIndexCache

        self._resident = isinstance(table, Table)
        if parent_index is not None and (
            not self._resident or parent_index.table is not table
        ):
            raise ValueError("parent_index was built for a different table")
        self.table = table
        self.score = score
        self.incremental = incremental
        self.f_enum_max_cells = f_enum_max_cells
        #: Per-row flattened parent configurations; shareable with the
        #: distribution learner's JointCounter (via ScoringCache) so parent
        #: sets selected during structure search are never re-flattened.
        #: Only resident tables have one — a chunked source has no per-row
        #: arrays to cache; its flattening happens inside each pass.
        if self._resident:
            self._parent_index_cache = (
                parent_index
                if parent_index is not None
                else ParentIndexCache(table)
            )
        else:
            self._parent_index_cache = None
        self._score_memo: Dict[Candidate, float] = {}
        self._sensitivity_memo: Dict[Candidate, float] = {}
        self._parent_domain: Dict[Tuple, int] = {}
        self._attrs_by_name = {a.name: a for a in table.attributes}
        #: Memo for maximal-parent-set enumeration (Algorithms 5/6); the
        #: greedy θ-mode loop shares it across rounds, and a scorer reused
        #: via ScoringCache shares it across the runs of a sweep.
        self.parent_sets = ParentSetCache()

    # ------------------------------------------------------------------
    # Shared parent-index cache
    # ------------------------------------------------------------------
    def _parent_index(
        self, parents: Tuple[Tuple[str, int], ...]
    ) -> Tuple[np.ndarray, int]:
        """Flattened parent configuration per row, plus the parent domain."""
        flat, sizes = self._parent_index_cache.flat(parents)
        return flat, domain_size(sizes)

    def counts(
        self, child: str, parents: Tuple[Tuple[str, int], ...]
    ) -> Tuple[np.ndarray, int]:
        """Contingency counts ``Pr[Π, X]`` (child innermost)."""
        child_attr = self.table.attribute(child)
        if not self._resident:
            from repro.data.chunks import stream_stacked_joint_counts

            block, offsets, lengths, _, _ = stream_stacked_joint_counts(
                self.table, parents, [child]
            )
            return block[offsets[0] : offsets[0] + lengths[0]].astype(
                float
            ), child_attr.size
        parent_flat, parent_dom = self._parent_index(parents)
        ensure_int64_domain(
            parent_dom * child_attr.size, f"joint domain of ({child!r}, Π)"
        )
        flat = parent_flat * child_attr.size + self.table.column(child)
        counts = np.bincount(
            flat, minlength=parent_dom * child_attr.size
        ).astype(float)
        return counts, child_attr.size

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _score_from_counts(
        self, child: str, counts: np.ndarray, child_size: int
    ) -> float:
        n = self.table.n
        if self.score == "F":
            if child_size != 2:
                raise ValueError(
                    f"score 'F' requires a binary child; {child!r} has "
                    f"{child_size} values"
                )
            return score_F(counts, n)
        joint = counts / n if n else counts
        if self.score == "I":
            return score_I(joint, child_size)
        return score_R(joint, child_size)

    def _compute_score(
        self, child: str, parents: Tuple[Tuple[str, int], ...]
    ) -> float:
        counts, child_size = self.counts(child, parents)
        return self._score_from_counts(child, counts, child_size)

    def score_candidate(
        self, child: str, parents: Tuple[Tuple[str, int], ...]
    ) -> float:
        """Score one candidate (memoized when ``incremental``)."""
        if not self.incremental:
            return self._compute_score(child, parents)
        key = (child, parents)
        if key not in self._score_memo:
            self._score_memo[key] = self._compute_score(child, parents)
        return self._score_memo[key]

    __call__ = score_candidate

    def _group_counts(
        self, parents: Tuple[Tuple[str, int], ...], children: Sequence[str]
    ):
        """One batched contingency pass for every child of one parent set.

        Stacks the per-child flattened joints into one ``np.bincount`` over
        offset-shifted indices; the resulting integer count segments are
        identical to the per-candidate ones, so downstream score floats are
        bit-identical to the unbatched path.  On a chunked source the same
        block accumulates over one streaming pass.
        """
        if not self._resident:
            from repro.data.chunks import stream_stacked_joint_counts

            block, offsets, lengths, parent_sizes, child_sizes = (
                stream_stacked_joint_counts(self.table, parents, children)
            )
            return (
                domain_size(parent_sizes),
                list(child_sizes),
                block,
                offsets,
                lengths,
            )
        parent_flat, parent_dom = self._parent_index(parents)
        sizes = [self.table.attribute(c).size for c in children]
        block, offsets, lengths = stacked_joint_counts(
            parent_flat,
            parent_dom,
            [self.table.column(c) for c in children],
            sizes,
        )
        return parent_dom, sizes, block, offsets, lengths

    def _counted_groups(self, groups: Dict[Tuple, List[str]]):
        """Count every unscored group of a round; one streaming pass total.

        Returns ``[(parents, children, group_counts), ...]`` where
        ``group_counts`` is the :meth:`_group_counts` tuple.  Resident
        tables count per group off the cached parent index; a chunked
        source counts *all* groups in a single pass over the rows (see
        :func:`repro.data.chunks.stream_grouped_joint_counts`) — the
        blocks are the same integers either way.
        """
        items = [(parents, list(children)) for parents, children in groups.items()]
        if self._resident:
            return [
                (parents, children, self._group_counts(parents, children))
                for parents, children in items
            ]
        from repro.data.chunks import stream_grouped_joint_counts

        counted = stream_grouped_joint_counts(
            self.table,
            [(parents, tuple(children)) for parents, children in items],
        )
        results = []
        for (parents, children), group in zip(items, counted):
            block, offsets, lengths, parent_sizes, child_sizes = group
            results.append(
                (
                    parents,
                    children,
                    (
                        domain_size(parent_sizes),
                        list(child_sizes),
                        block,
                        offsets,
                        lengths,
                    ),
                )
            )
        return results

    def _score_group(
        self,
        parents: Tuple[Tuple[str, int], ...],
        children: Sequence[str],
        counted=None,
    ) -> None:
        """Score every listed child against one parent set (``I``/``R``).

        The stacked count block feeds the ragged segmented kernels
        directly — no per-size bucketing or ``np.stack`` materialization;
        the kernels are bit-equal to the scalar score functions on each
        candidate's joint.  ``counted`` optionally supplies the group's
        :meth:`_group_counts` tuple (from a shared streaming pass).
        """
        _, sizes, block, offsets, lengths = (
            counted if counted is not None else self._group_counts(parents, children)
        )
        n = self.table.n
        floats = block.astype(float)
        kernel = score_I_segments if self.score == "I" else score_R_segments
        values = kernel(floats / n if n else floats, offsets, lengths, sizes)
        for position, value in enumerate(values):
            self._score_memo[(children[position], parents)] = float(value)

    def _score_F_groups(self, counted_groups) -> None:
        """Score all unscored ``F`` candidates of a round in batched kernels.

        Counting stays per parent set (each set has its own flattened row
        index; one shared streaming pass on a chunked source), but scoring
        batches *across* parent sets: every candidate whose parent set has
        the same domain size joins one
        :func:`repro.core.score_kernels.score_F_batch` call, so a greedy
        round costs a handful of kernel invocations instead of one dynamic
        program per candidate.
        """
        n = self.table.n
        by_dom: Dict[int, Tuple[List[Candidate], List[np.ndarray]]] = {}
        for parents, children, counted in counted_groups:
            for child in children:
                if self.table.attribute(child).size != 2:
                    raise ValueError(
                        f"score 'F' requires a binary child; {child!r} has "
                        f"{self.table.attribute(child).size} values"
                    )
            parent_dom, _, block, offsets, lengths = counted
            cands, segments = by_dom.setdefault(parent_dom, ([], []))
            for child, offset, length in zip(children, offsets, lengths):
                cands.append((child, parents))
                segments.append(block[offset : offset + length])
        for parent_dom, (cands, segments) in by_dom.items():
            matrices = np.stack(segments).reshape(len(cands), parent_dom, 2)
            values = score_F_batch(
                matrices, n, enum_max_cells=self.f_enum_max_cells
            )
            for cand, value in zip(cands, values):
                self._score_memo[cand] = float(value)

    def score_batch(self, candidates: Sequence[Candidate]) -> np.ndarray:
        """Scores for a candidate list, computing only the unscored ones.

        Unscored candidates are grouped by parent set and counted in one
        vectorized contingency pass per group; ``F`` candidates are then
        scored across groups in one kernel call per parent-domain size —
        every domain size goes through the batched kernel, small and large
        alike.
        """
        if not self.incremental:
            return np.array(
                [self._compute_score(child, parents) for child, parents in candidates]
            )
        groups: Dict[Tuple, Dict[str, None]] = {}
        for child, parents in candidates:
            if (child, parents) not in self._score_memo:
                groups.setdefault(parents, {})[child] = None
        if groups:
            counted_groups = self._counted_groups(
                {parents: list(children) for parents, children in groups.items()}
            )
            if self.score == "F":
                self._score_F_groups(counted_groups)
            else:
                for parents, children, counted in counted_groups:
                    self._score_group(parents, children, counted)
        return np.array([self._score_memo[cand] for cand in candidates])

    # ------------------------------------------------------------------
    # Sensitivity
    # ------------------------------------------------------------------
    def _candidate_parent_domain(
        self, parents: Tuple[Tuple[str, int], ...]
    ) -> int:
        if parents not in self._parent_domain:
            self._parent_domain[parents] = parent_set_domain_size(
                frozenset(parents), self._attrs_by_name
            )
        return self._parent_domain[parents]

    def sensitivity(
        self, child: str, parents: Tuple[Tuple[str, int], ...]
    ) -> float:
        """Selection sensitivity of one candidate (memoized when incremental)."""
        if not self.incremental:
            return _score_sensitivity(
                self.score,
                self.table.n,
                self._attrs_by_name[child].size,
                parent_set_domain_size(frozenset(parents), self._attrs_by_name),
            )
        key = (child, parents)
        if key not in self._sensitivity_memo:
            self._sensitivity_memo[key] = _score_sensitivity(
                self.score,
                self.table.n,
                self._attrs_by_name[child].size,
                self._candidate_parent_domain(parents),
            )
        return self._sensitivity_memo[key]

    def selection_sensitivity(self, candidates: Sequence[Candidate]) -> float:
        """The per-selection sensitivity: the max over the candidate set Ω.

        ``F`` and ``R`` sensitivities are candidate-independent (Theorems
        4.5 and 5.3), so the max collapses to a single evaluation; only
        ``I`` varies with the domain shape (Lemma 4.1).
        """
        if not candidates:
            raise ValueError("need a non-empty candidate set")
        if self.incremental and self.score in ("F", "R"):
            child, parents = candidates[0]
            return self.sensitivity(child, parents)
        return max(
            self.sensitivity(child, parents) for child, parents in candidates
        )


class MutualInformationCache:
    """Memoized empirical mutual information over one table.

    Shared by the non-private reference searches (Chow-Liu, exhaustive DP —
    where the same parent combination is rescored under many subset masks)
    and by the Figure 4 network-quality metric (where repeats rescore the
    same AP pairs).  Values are exactly what the uncached helpers return.
    """

    def __init__(self, table: Table) -> None:
        self.table = table
        self._mi: Dict[Tuple[str, Tuple[str, ...]], float] = {}
        self._pair_mi: Dict[Tuple[str, Tuple[Tuple[str, int], ...]], float] = {}

    def mi(self, child: str, parents: Sequence[str]) -> float:
        """``I(child, parents)`` for raw (non-generalized) attributes."""
        key = (child, tuple(parents))
        if key not in self._mi:
            self._mi[key] = mutual_information_from_table(
                self.table, child, list(parents)
            )
        return self._mi[key]

    def mi_batch(self, parent: str, children: Sequence[str]) -> None:
        """Prime the memo with ``I(child, (parent,))`` for many children.

        One stacked contingency pass over the table plus one batched kernel
        call per child-domain size, instead of one table scan per pair.
        Values are bit-equal to what :meth:`mi` computes pair by pair (a
        raw parent is a level-0 generalized parent with the identical count
        layout and normalization), so priming changes no downstream float.
        """
        # Lazy import: bn.quality is above this module in the import order.
        from repro.bn.quality import pair_group_mutual_information

        missing = [c for c in children if (c, (parent,)) not in self._mi]
        if not missing:
            return
        values = pair_group_mutual_information(
            self.table, ((parent, 0),), missing
        )
        for child, value in zip(missing, values):
            self._mi[(child, (parent,))] = float(value)

    def pair_mi_batch(
        self, parents: Sequence[Tuple[str, int]], children: Sequence[str]
    ) -> None:
        """Prime the generalized-pair memo for many children of one parent
        set, through the same batched counting + ``I`` kernel path as
        :mod:`repro.bn.quality` (bit-equal to :meth:`pair_mi` per pair)."""
        # Lazy import: bn.quality is above this module in the import order.
        from repro.bn.quality import pair_group_mutual_information

        key_parents = tuple(parents)
        missing = [
            c for c in children if (c, key_parents) not in self._pair_mi
        ]
        if not missing:
            return
        values = pair_group_mutual_information(
            self.table, key_parents, missing
        )
        for child, value in zip(missing, values):
            self._pair_mi[(child, key_parents)] = float(value)

    def pair_mi(
        self, child: str, parents: Sequence[Tuple[str, int]]
    ) -> float:
        """``I(child, parents)`` where parents carry generalization levels."""
        # Lazy import: bn.quality is above this module in the import order.
        from repro.bn.quality import pair_joint_distribution

        key = (child, tuple(parents))
        if key not in self._pair_mi:
            joint, child_size = pair_joint_distribution(
                self.table, child, list(parents)
            )
            self._pair_mi[key] = mutual_information(joint, child_size)
        return self._pair_mi[key]


#: Distinct tables a ScoringCache pins before evicting the oldest (FIFO).
#: A sweep touches one or two tables; callers that churn through fresh
#: tables (e.g. repeated multitable releases, each truncating anew) would
#: otherwise grow the registry — and every cached count block it pins —
#: without bound and without any cache hits to show for it.
_MAX_CACHED_TABLES = 8


class ScoringCache:
    """Per-table registry of scorers and derived-statistic caches.

    An ε sweep fits many models over the *same* table; candidate scores,
    mutual information, parent-set enumerations, flattened parent indexes
    and contingency counts are deterministic data statistics, so sharing
    their caches across fits changes no output and spends no privacy
    budget.  Tables are keyed by object identity (and kept alive by the
    registry so an id() can never be recycled onto a different table); the
    registry is bounded to ``_MAX_CACHED_TABLES`` distinct tables, evicting
    whole-table entries oldest-first.  Evicted consumers keep working off
    their own references — only future lookups rebuild.
    """

    def __init__(self) -> None:
        #: Insertion-ordered registry of live tables (id -> table).
        self._tables: Dict[int, Table] = {}
        self._scorers: Dict[Tuple[int, str], CandidateScorer] = {}
        self._mi_caches: Dict[int, MutualInformationCache] = {}
        self._joint_counters: Dict[int, object] = {}
        self._parent_indexes: Dict[int, object] = {}

    def _register(self, table: Table) -> int:
        """Pin ``table``, evicting the oldest table past the bound."""
        key = id(table)
        held = self._tables.get(key)
        if held is not table:
            if held is not None:
                # id() was recycled onto a new table: drop the stale entries.
                self._evict(key)
            self._tables[key] = table
            while len(self._tables) > _MAX_CACHED_TABLES:
                self._evict(next(iter(self._tables)))
        return key

    def _evict(self, key: int) -> None:
        self._tables.pop(key, None)
        self._mi_caches.pop(key, None)
        self._joint_counters.pop(key, None)
        self._parent_indexes.pop(key, None)
        for scorer_key in [k for k in self._scorers if k[0] == key]:
            del self._scorers[scorer_key]

    def parent_index(self, table):
        """Shared :class:`~repro.bn.quality.ParentIndexCache` for ``table``.

        Handed to both the table's scorers and its joint counter, so a
        parent set flattened during structure search is reused verbatim by
        distribution learning.  Chunked sources have no per-row arrays to
        cache, so this returns ``None`` for them (scorer and counter then
        flatten inside each streaming pass).
        """
        from repro.bn.quality import ParentIndexCache

        if not isinstance(table, Table):
            return None
        key = self._register(table)
        if key not in self._parent_indexes:
            self._parent_indexes[key] = ParentIndexCache(table)
        return self._parent_indexes[key]

    def scorer(self, table, score: str) -> CandidateScorer:
        key = (self._register(table), score)
        if key not in self._scorers:
            self._scorers[key] = CandidateScorer(
                table, score, parent_index=self.parent_index(table)
            )
        return self._scorers[key]

    def mi_cache(self, table: Table) -> MutualInformationCache:
        key = self._register(table)
        if key not in self._mi_caches:
            self._mi_caches[key] = MutualInformationCache(table)
        return self._mi_caches[key]

    def joint_counter(self, table):
        """Shared :class:`~repro.core.noisy_conditionals.JointCounter`.

        Contingency counts are data statistics like scores and MI, so the
        fits of a sweep share one counter per table: each AP-pair joint is
        scanned from the data at most once across all releases.
        """
        # Imported lazily: noisy_conditionals sits above this module in the
        # package import order (it pulls in bn.quality, which feeds scoring).
        from repro.core.noisy_conditionals import JointCounter

        key = self._register(table)
        if key not in self._joint_counters:
            self._joint_counters[key] = JointCounter(
                table, parent_index=self.parent_index(table)
            )
        return self._joint_counters[key]
