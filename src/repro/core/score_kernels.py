"""Batched score kernels: F / I / R over whole candidate sets at once.

This is the compute layer under :mod:`repro.core.scoring`.  Each kernel
scores a *batch* of (child, parent-set) candidates in one call — typically
every child sharing a parent set, or (for ``F``) every candidate of a greedy
round sharing a parent-domain size — instead of one Python call per
candidate.  The layering is::

    score_kernels   pure batched numerics (this module)
        ^ scores    thin per-candidate wrappers (public score functions)
        ^ scoring   CandidateScorer / MutualInformationCache (memo + counting)
        ^ greedy_bayes, bn.structure_search, bn.quality, experiments

Bit-identity contract
---------------------
Every kernel returns, for each candidate, the exact float the corresponding
per-candidate function produces — not merely a numerically close value.
The golden-fingerprint regression tests pin this.  The contract holds
because:

* ``F`` minimizes the same objective over the same reachable ``(K0, K1)``
  mass states (Equation 10) whatever the blocking: states are exact int64,
  Pareto pruning (Definition 4.6) only removes states whose shortfall is
  float-monotonically dominated, and the final shortfall floats use the
  identical expression ``max(0, .5 - K0/n) + max(0, .5 - K1/n)``, so the
  minimum float over any dominating subset is bit-equal to the reference
  dynamic program :func:`score_F_dp`.
* ``I`` marginalizes batched (sums along a contiguous / middle axis are
  bit-equal to the per-candidate sums) and evaluates the entropies through
  the same :func:`repro.infotheory.measures.entropy` per candidate — its
  nonzero-compaction makes rows ragged, so that last step stays scalar.
* ``R`` vectorizes completely: the outer product has inner dimension one
  (each element a single IEEE multiplication) and the final reduction sums
  the same contiguous buffer per candidate.

The F kernel
------------
``score_F`` on ``|dom(Pi)| = m`` parent cells is exact over ``2^m`` column
assignments (Section 4.4).  Three regimes:

* ``m <= enum_max_cells`` — **bitset enumeration**: all ``2^m`` assignment
  masks at once via one matmul against the cached 0/1 mask matrix.  The
  matmul runs in float64 for BLAS speed; every partial sum is an integer
  below 2**53, so the result is exact.
* ``m > enum_max_cells`` — **blocked-bitset dynamic program**: parent cells
  whose two counts are not both positive are folded into the start state
  (their optimal side is forced — the other branch is dominated).  The
  remaining *mixed* cells are processed in blocks of adaptive width
  ``B <= DEFAULT_BLOCK_CELLS``: one matmul against the shared mask cache
  enumerates the block's ``2^B`` assignments as packed state shifts, and
  the block combines into the running Pareto frontier of Definition 4.6
  vectorized across the candidate axis.  Each state packs
  ``(candidate, K0, K1)`` into a single int64 key with power-of-two bit
  fields, so the frontier combine is: one broadcast subtract, one value
  sort (timsort merges the pre-sorted runs near-linearly), one running-max
  scan that implements the dominated-state prune, and zero integer
  divisions.  Candidates are processed in cache-sized chunks, most mixed
  cells first, so the lock-step loop always works on a contiguous active
  prefix.
* ``n`` too large for the bit fields (``3 * bit_length(n) > 62``) — falls
  back to the per-candidate reference DP; exactness is never at risk.

Validation is unified here: batched and scalar paths reject malformed
counts identically (binary-child shape, integer counts, counts summing to
``n`` per candidate) — see :func:`validate_F_counts`.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.infotheory.measures import entropy

__all__ = [
    "DEFAULT_ENUM_MAX_CELLS",
    "DEFAULT_BLOCK_CELLS",
    "MaskCache",
    "shared_mask_cache",
    "validate_F_counts",
    "score_F_batch",
    "score_F_dp",
    "score_I_batch",
    "score_R_batch",
]

#: Enumeration / blocked-DP crossover: largest parent-cell count scored by
#: direct enumeration of all ``2^m`` column assignments.  A documented kernel
#: parameter (``enum_max_cells``) rather than a hidden module constant: any
#: value yields bit-identical scores (both regimes minimize the same
#: objective over the same assignment set), so the threshold is purely a
#: speed/memory trade — ``2^m x batch`` enumeration states versus the
#: frontier DP's sorting passes.  12 (4096 masks) keeps the enumeration
#: matmul comfortably in cache while covering every fixed-k binary workload
#: up to k = 12.
DEFAULT_ENUM_MAX_CELLS = 12

#: Largest mini-block width the blocked DP enumerates per step.  The actual
#: width adapts downward so a step expands at most ``_STEP_STATES`` states.
DEFAULT_BLOCK_CELLS = 12

#: Expansion budget per DP step (states before pruning).  Small enough to
#: prune often (the frontier stays compact), large enough to amortize the
#: fixed cost of a numpy call over many states.
_STEP_STATES = 1 << 14

#: Live-state budget per candidate chunk.  Chunks keep the working set
#: cache-resident; the per-candidate frontier is bounded by ``n/2 + 1``.
_CHUNK_STATES = 1 << 18

#: State budget for the enumeration regime (``2^m x chunk`` matmul output).
_ENUM_STATES = 1 << 22


class MaskCache:
    """Cached 0/1 column-assignment masks, shared across kernel calls.

    ``masks(w)`` returns the ``(2^w, w)`` matrix whose row ``r`` is the
    binary expansion of ``r`` (which cells of a block go to ``Z0+``), plus
    its complement (which go to ``Z1+``), both float64 for BLAS matmuls.
    Masks are pure functions of the width, so one module-level instance
    (:data:`shared_mask_cache`) serves every scorer, including fork-
    inherited sweep workers.
    """

    def __init__(self) -> None:
        self._masks: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def masks(self, width: int) -> Tuple[np.ndarray, np.ndarray]:
        if width not in self._masks:
            indices = np.arange(1 << width, dtype=np.int64)
            bits = (indices[:, None] >> np.arange(width, dtype=np.int64)) & 1
            self._masks[width] = (
                bits.astype(np.float64),
                (1 - bits).astype(np.float64),
            )
        return self._masks[width]


#: Default mask cache used when a kernel call does not supply one.
shared_mask_cache = MaskCache()


# ---------------------------------------------------------------------------
# Validation (shared by the scalar wrapper and every batched path)
# ---------------------------------------------------------------------------


def validate_F_counts(counts: np.ndarray, n: int) -> np.ndarray:
    """Check and canonicalize a batch of F contingency counts.

    ``counts`` is one flat joint (1-D), a batch of flat joints (2-D,
    candidate-major) or a batch of ``(m, 2)`` matrices (3-D).  Returns the
    int64 ``(batch, m, 2)`` stack.  Raises exactly the errors the scalar
    ``score_F`` has always raised — the batched and scalar paths reject
    malformed counts identically:

    * odd joint length (non-binary child),
    * non-integer counts,
    * counts not summing to ``n`` (checked per candidate).
    """
    array = np.asarray(counts)
    if array.ndim == 1:
        array = array[None, :]
    if array.ndim == 2:
        if array.shape[1] % 2 != 0:
            raise ValueError("F requires a binary child (even-length joint)")
        array = array.reshape(array.shape[0], -1, 2)
    if array.ndim != 3 or array.shape[2] != 2:
        raise ValueError(
            "F counts must be flat joints or (m, 2) matrices per candidate"
        )
    if np.issubdtype(array.dtype, np.integer):
        matrices = array.astype(np.int64, copy=False)
    else:
        matrices = np.rint(array).astype(np.int64)
        if not np.allclose(array, matrices):
            raise ValueError("F expects integer contingency counts")
    totals = matrices.sum(axis=(1, 2))
    bad = np.nonzero(totals != n)[0]
    if bad.size:
        raise ValueError(
            f"counts sum to {int(totals[bad[0]])}, expected n={n}"
        )
    return matrices


# ---------------------------------------------------------------------------
# Reference per-candidate dynamic program (Section 4.4)
# ---------------------------------------------------------------------------


def _pareto_prune(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Keep only non-dominated (a, b) states (Definition 4.6), vectorized.

    Sorts by ``a`` descending / ``b`` descending and keeps states whose
    ``b`` strictly exceeds every ``b`` seen at a larger-or-equal ``a``.
    """
    order = np.lexsort((-b, -a))
    a = a[order]
    b = b[order]
    best_b = np.maximum.accumulate(b)
    keep = np.empty(b.size, dtype=bool)
    keep[0] = True
    keep[1:] = b[1:] > best_b[:-1]
    return a[keep], b[keep]


def score_F_dp(joint_counts: np.ndarray, n: int) -> float:
    """Exact ``F`` for one candidate via the Section 4.4 dynamic program.

    One Python-loop iteration per parent cell, each extending and pruning
    the ``(K0, K1)`` frontier.  This is the seed implementation, kept as
    the correctness oracle and benchmark baseline for the batched kernel;
    production scoring goes through :func:`score_F_batch`.
    """
    matrix = validate_F_counts(joint_counts, n)[0]
    if n == 0:
        return -0.5
    # Each column pi contributes its X=0 count to K0 or its X=1 count to K1
    # (Equation 10).  Masses at or above n/2 saturate the objective, so
    # coordinates are capped there to bound the frontier size.
    cap = (n + 1) // 2
    a = np.zeros(1, dtype=np.int64)
    b = np.zeros(1, dtype=np.int64)
    for c0, c1 in matrix:
        new_a = np.concatenate([np.minimum(a + int(c0), cap), a])
        new_b = np.concatenate([b, np.minimum(b + int(c1), cap)])
        a, b = _pareto_prune(new_a, new_b)
    shortfall = np.maximum(0.0, 0.5 - a / n) + np.maximum(0.0, 0.5 - b / n)
    return -float(shortfall.min())


# ---------------------------------------------------------------------------
# Batched F kernel
# ---------------------------------------------------------------------------


def _enumerate_F(
    matrices: np.ndarray, n: int, mask_cache: MaskCache
) -> np.ndarray:
    """All ``2^m`` column assignments for every candidate, by matmul.

    Partial sums are integers bounded by ``m * n < 2**53``, so the float64
    matmul is exact and the scores are bit-equal to the integer DP.
    """
    count, m, _ = matrices.shape
    masks, complements = mask_cache.masks(m)
    out = np.empty(count)
    chunk = max(1, _ENUM_STATES >> m)
    for lo in range(0, count, chunk):
        hi = min(lo + chunk, count)
        k0 = masks @ matrices[lo:hi, :, 0].T.astype(np.float64)
        k1 = complements @ matrices[lo:hi, :, 1].T.astype(np.float64)
        shortfall = np.maximum(0.0, 0.5 - k0 / n) + np.maximum(
            0.0, 0.5 - k1 / n
        )
        out[lo:hi] = -shortfall.min(axis=0)
    return out


def _blocked_F_chunk(
    g0: np.ndarray,
    g1: np.ndarray,
    base_a: np.ndarray,
    base_b: np.ndarray,
    mixed_counts: np.ndarray,
    n: int,
    field_bits: int,
    block_cells: int,
    mask_cache: MaskCache,
) -> np.ndarray:
    """Blocked-bitset DP over one chunk of candidates.

    ``g0``/``g1`` hold each candidate's mixed-cell counts packed leftward
    (zeros beyond ``mixed_counts[c]`` cells); candidates arrive sorted by
    ``mixed_counts`` descending so the per-step active set is a prefix.
    Each state is one int64 ``cid << 2s | (2^s-1 - K0) << s | (2^s-1 - K1)``
    with ``s = field_bits``; ascending key order is exactly
    (candidate asc, K0 desc, K1 desc), the order the Pareto scan needs.
    Coordinates stay uncapped — they are bounded by ``n < 2^s`` — which
    changes no score: capping only merges states whose shortfall terms are
    already exactly zero.
    """
    count = g0.shape[0]
    s = field_bits
    fmask = (np.int64(1) << s) - 1
    max_mixed = int(mixed_counts[0]) if count else 0

    key = (
        (np.arange(count, dtype=np.int64) << (2 * s))
        + ((fmask - base_a) << s)
        + (fmask - base_b)
    )
    ends = np.arange(1, count + 1, dtype=np.int64)

    sh0 = g0.astype(np.float64)
    sh1 = g1.astype(np.float64)

    j = 0
    while j < max_mixed:
        # Candidates still holding unprocessed mixed cells (mixed > j);
        # the mixed-descending candidate order makes them a prefix.
        active = int(np.searchsorted(-mixed_counts, -j, side="left"))
        if active <= 0:
            break
        size = int(ends[active - 1])
        width = max(
            1,
            min(
                block_cells,
                max_mixed - j,
                (_STEP_STATES // max(1, size)).bit_length() - 1,
            ),
        )
        masks, complements = mask_cache.masks(width)
        # Subset sums of the block's cells on both sides, packed as state
        # shifts: sending a cell to Z0 adds c0 to K0 (subtracts c0 << s from
        # the key), to Z1 adds c1 to K1 (subtracts c1).
        k0 = (masks @ sh0[:active, j : j + width].T).astype(np.int64)
        k1 = (complements @ sh1[:active, j : j + width].T).astype(np.int64)
        shifts = (k0 << s) + k1
        cells = key[:size]
        cid = np.repeat(
            np.arange(active, dtype=np.int64),
            np.diff(np.concatenate([[0], ends[:active]])) << width,
        )
        expanded = (cells[None, :] - shifts[:, _cid_of(ends, active, size)])
        expanded = expanded.reshape(-1)
        expanded.sort(kind="stable")
        # Pareto prune (Definition 4.6): in (cid asc, K0 desc, K1 desc)
        # order, a state survives iff its K1 strictly exceeds every K1 seen
        # at a larger-or-equal K0 of the same candidate.
        aug = (cid << s) - (expanded & fmask)
        run = np.maximum.accumulate(aug)
        keep = np.empty(aug.size, dtype=bool)
        keep[0] = True
        keep[1:] = aug[1:] > run[:-1]
        kept = expanded[keep]
        ckept = cid[keep]
        new_ends = np.searchsorted(
            ckept, np.arange(1, active + 1, dtype=np.int64), side="left"
        )
        if active < count:
            key = np.concatenate([kept, key[size:]])
            ends = np.concatenate(
                [new_ends, ends[active:] - size + int(new_ends[-1])]
            )
        else:
            key = kept
            ends = new_ends
        j += width

    a = fmask - ((key >> s) & fmask)
    b = fmask - (key & fmask)
    shortfall = np.maximum(0.0, 0.5 - a / n) + np.maximum(0.0, 0.5 - b / n)
    starts = np.concatenate([[0], ends[:-1]])
    return -np.minimum.reduceat(shortfall, starts)


def _cid_of(ends: np.ndarray, active: int, size: int) -> np.ndarray:
    """Candidate id per frontier state for the active prefix."""
    return np.repeat(
        np.arange(active, dtype=np.int64),
        np.diff(np.concatenate([[0], ends[:active]])),
    )


def score_F_batch(
    counts: np.ndarray,
    n: int,
    *,
    enum_max_cells: int = DEFAULT_ENUM_MAX_CELLS,
    block_cells: int = DEFAULT_BLOCK_CELLS,
    mask_cache: MaskCache = None,
) -> np.ndarray:
    """Exact ``F`` for a whole batch of binary-child candidates at once.

    Parameters
    ----------
    counts:
        Batch of integer contingency counts, candidate-major: flat joints
        ``(batch, 2m)`` or matrices ``(batch, m, 2)`` (a single flat joint
        is promoted to a batch of one).  Every candidate's counts must sum
        to ``n`` — validation is identical to the scalar path.
    n:
        Number of tuples.
    enum_max_cells:
        Enumeration/DP crossover (see :data:`DEFAULT_ENUM_MAX_CELLS`).
        Any value >= 0 produces bit-identical scores; only speed changes.
    block_cells:
        Upper bound on the blocked DP's mini-block width (adaptive per
        step); also bit-identity-neutral.
    mask_cache:
        Optional :class:`MaskCache`; defaults to the module-shared one.

    Returns the ``(batch,)`` float array of (non-positive) F scores, each
    bit-equal to ``score_F_dp`` on the same candidate.
    """
    if enum_max_cells < 0:
        raise ValueError("enum_max_cells must be non-negative")
    if block_cells < 1:
        raise ValueError("block_cells must be positive")
    matrices = validate_F_counts(counts, n)
    count, m, _ = matrices.shape
    if count == 0:
        return np.zeros(0)
    if n == 0:
        return np.full(count, -0.5)
    cache = mask_cache if mask_cache is not None else shared_mask_cache
    # Enumeration is capped at 2^16 masks regardless of the requested
    # threshold — beyond that the mask matrix itself outgrows the cache.
    if m <= min(enum_max_cells, 16):
        return _enumerate_F(matrices, n, cache)
    field_bits = max(1, int(n).bit_length())
    if 2 * field_bits + 1 > 62:
        # Packed states would overflow int64; exactness first.
        return np.array([score_F_dp(row, n) for row in matrices])

    cap = (n + 1) // 2
    c0 = matrices[:, :, 0]
    c1 = matrices[:, :, 1]
    # One-sided cells are forced: with c1 = 0, sending the cell to Z1 gains
    # nothing while Z0 gains c0 (and vice versa) — the other branch is
    # dominated, so fold them into the start state.
    mixed = (c0 > 0) & (c1 > 0)
    base_a = np.minimum(np.where(c1 == 0, c0, 0).sum(axis=1), cap)
    base_b = np.minimum(np.where(c0 == 0, c1, 0).sum(axis=1), cap)
    mixed_counts = mixed.sum(axis=1)

    order = np.argsort(-mixed_counts, kind="stable")
    inverse = np.empty(count, dtype=np.int64)
    inverse[order] = np.arange(count)
    c0 = c0[order]
    c1 = c1[order]
    mixed = mixed[order]
    base_a = base_a[order]
    base_b = base_b[order]
    mixed_counts = mixed_counts[order]

    # Pack each candidate's mixed cells leftward; the padding cells are
    # (0, 0) no-ops that the active-prefix loop never touches.
    col_order = np.argsort(~mixed, axis=1, kind="stable")
    packed_mask = np.take_along_axis(mixed, col_order, axis=1)
    g0 = np.where(packed_mask, np.take_along_axis(c0, col_order, axis=1), 0)
    g1 = np.where(packed_mask, np.take_along_axis(c1, col_order, axis=1), 0)

    chunk = max(
        1,
        min(
            count,
            _CHUNK_STATES // max(64, cap),
            (1 << max(1, 62 - 2 * field_bits)) - 1,
        ),
    )
    out = np.empty(count)
    for lo in range(0, count, chunk):
        hi = min(lo + chunk, count)
        out[lo:hi] = _blocked_F_chunk(
            g0[lo:hi],
            g1[lo:hi],
            base_a[lo:hi],
            base_b[lo:hi],
            mixed_counts[lo:hi],
            n,
            field_bits,
            block_cells,
            cache,
        )
    return out[inverse]


# ---------------------------------------------------------------------------
# Batched I and R kernels
# ---------------------------------------------------------------------------


def _as_joint_stack(joints: np.ndarray, child_size: int) -> np.ndarray:
    """Canonicalize to a float ``(batch, parent_dom, child_size)`` stack."""
    stack = np.asarray(joints, dtype=float)
    if stack.ndim == 1:
        stack = stack[None, :]
    if stack.ndim == 2:
        stack = stack.reshape(stack.shape[0], -1, child_size)
    if stack.ndim != 3 or stack.shape[2] != child_size:
        raise ValueError(
            "joints must be flat vectors or (parent_dom, child_size) "
            "matrices per candidate"
        )
    return stack


def score_I_batch(joints: np.ndarray, child_size: int) -> np.ndarray:
    """Mutual information for a batch of joints sharing a child size.

    Marginalization is vectorized across the batch; the three entropies
    stay per-candidate because their exact nonzero-compaction makes rows
    ragged.  Each output is bit-equal to
    ``mutual_information(joint, child_size)`` on the same joint.
    """
    stack = _as_joint_stack(joints, child_size)
    count = stack.shape[0]
    parent = stack.sum(axis=2)
    child = stack.sum(axis=1)
    out = np.empty(count)
    for i in range(count):
        value = (
            entropy(child[i])
            + entropy(parent[i])
            - entropy(stack[i].reshape(-1))
        )
        out[i] = max(0.0, float(value))
    return out


def score_R_batch(joints: np.ndarray, child_size: int) -> np.ndarray:
    """``R`` (Equation 11) for a batch of joints sharing a child size.

    Fully vectorized; each output is bit-equal to the scalar ``score_R``
    (the outer product's inner dimension is one, so every element is a
    single exact multiplication, and the final reduction sums the same
    contiguous values per candidate).
    """
    stack = _as_joint_stack(joints, child_size)
    count = stack.shape[0]
    parent = stack.sum(axis=2, keepdims=True)
    child = stack.sum(axis=1, keepdims=True)
    independent = parent @ child
    return 0.5 * np.abs(stack - independent).reshape(count, -1).sum(axis=1)
