"""Batched score kernels: F / I / R over whole candidate sets at once.

This is the compute layer under :mod:`repro.core.scoring`.  Each kernel
scores a *batch* of (child, parent-set) candidates in one call — typically
every child sharing a parent set, or (for ``F``) every candidate of a greedy
round sharing a parent-domain size — instead of one Python call per
candidate.  The layering is::

    score_kernels   pure batched numerics (this module)
        ^ scores    thin per-candidate wrappers (public score functions)
        ^ scoring   CandidateScorer / MutualInformationCache (memo + counting)
        ^ greedy_bayes, bn.structure_search, bn.quality, experiments

Bit-identity contract
---------------------
Every kernel returns, for each candidate, the exact float the corresponding
per-candidate function produces — not merely a numerically close value.
The golden-fingerprint regression tests pin this.  The contract holds
because:

* ``F`` minimizes the same objective over the same reachable ``(K0, K1)``
  mass states (Equation 10) whatever the blocking: states are exact int64,
  Pareto pruning (Definition 4.6) only removes states whose shortfall is
  float-monotonically dominated, and the final shortfall floats use the
  identical expression ``max(0, .5 - K0/n) + max(0, .5 - K1/n)``, so the
  minimum float over any dominating subset is bit-equal to the reference
  dynamic program :func:`score_F_dp`.
* ``I`` marginalizes batched (sums along a contiguous / middle axis are
  bit-equal to the per-candidate sums) and evaluates the entropies through
  the same :func:`repro.infotheory.measures.entropy` per candidate — its
  nonzero-compaction makes rows ragged, so that last step stays scalar.
* ``R`` vectorizes completely: the outer product has inner dimension one
  (each element a single IEEE multiplication) and the final reduction sums
  the same contiguous buffer per candidate.

The F kernel
------------
``score_F`` on ``|dom(Pi)| = m`` parent cells is exact over ``2^m`` column
assignments (Section 4.4).  Three regimes:

* ``m <= enum_max_cells`` — **bitset enumeration**: all ``2^m`` assignment
  masks at once via one matmul against the cached 0/1 mask matrix.  The
  matmul runs in float64 for BLAS speed; every partial sum is an integer
  below 2**53, so the result is exact.
* ``m > enum_max_cells`` — **blocked-bitset dynamic program**: parent cells
  whose two counts are not both positive are folded into the start state
  (their optimal side is forced — the other branch is dominated).  The
  remaining *mixed* cells are processed in blocks of adaptive width
  ``B <= DEFAULT_BLOCK_CELLS``: one matmul against the shared mask cache
  enumerates the block's ``2^B`` assignments as packed state shifts, and
  the block combines into the running Pareto frontier of Definition 4.6
  vectorized across the candidate axis.  Each state packs
  ``(candidate, K0, K1)`` into a single int64 key with power-of-two bit
  fields, so the frontier combine is: one broadcast subtract, one value
  sort (timsort merges the pre-sorted runs near-linearly), one running-max
  scan that implements the dominated-state prune, and zero integer
  divisions.  Candidates are processed in cache-sized chunks, most mixed
  cells first, so the lock-step loop always works on a contiguous active
  prefix.
* ``n`` too large for the bit fields (``3 * bit_length(n) > 62``) — falls
  back to the per-candidate reference DP; exactness is never at risk.

The compiled backend
--------------------
The ``m > enum_max_cells`` regime has an optional **native** backend: the
same frontier DP as a tight C loop (``core/_native/scoref.c``), selected
once at import by :mod:`repro.core.kernel_backend`
(``REPRO_KERNEL_BACKEND=auto|numpy|native``, default ``auto`` = use the
compiled kernel when a toolchain exists, NumPy otherwise).  The native
path is bit-identical to the NumPy path — all DP states are exact int64
either way, and the final shortfall floats use the identical float64
expression — so backend selection is invisible to every caller; the
``backend=`` parameter exists for tests and benchmarks that pin one side.

The I kernel
------------
``score_I_batch`` and the ragged :func:`score_I_segments` evaluate every
candidate's three entropies through one segmented exact-sum pass
(:func:`repro.infotheory.measures.entropy_segmented`): nonzero compaction
and ``log`` run once over the concatenated batch, and per-candidate sums
are reduced in NumPy's own per-array pairwise order, so each output stays
bit-equal to ``mutual_information`` on that candidate alone.

Validation is unified here: batched and scalar paths reject malformed
counts identically (binary-child shape, integer counts, counts summing to
``n`` per candidate) — see :func:`validate_F_counts`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import kernel_backend
from repro.infotheory.measures import _entropy_by_count

__all__ = [
    "DEFAULT_ENUM_MAX_CELLS",
    "DEFAULT_BLOCK_CELLS",
    "MaskCache",
    "shared_mask_cache",
    "validate_F_counts",
    "score_F_batch",
    "score_F_dp",
    "score_I_batch",
    "score_I_segments",
    "score_R_batch",
    "score_R_segments",
]

#: Enumeration / blocked-DP crossover: largest parent-cell count scored by
#: direct enumeration of all ``2^m`` column assignments.  A documented kernel
#: parameter (``enum_max_cells``) rather than a hidden module constant: any
#: value yields bit-identical scores (both regimes minimize the same
#: objective over the same assignment set), so the threshold is purely a
#: speed/memory trade — ``2^m x batch`` enumeration states versus the
#: frontier DP's sorting passes.  12 (4096 masks) keeps the enumeration
#: matmul comfortably in cache while covering every fixed-k binary workload
#: up to k = 12.
DEFAULT_ENUM_MAX_CELLS = 12

#: Largest mini-block width the blocked DP enumerates per step.  The actual
#: width adapts downward so a step expands at most ``_STEP_STATES`` states.
DEFAULT_BLOCK_CELLS = 12

#: Expansion budget per DP step (states before pruning).  Small enough to
#: prune often (the frontier stays compact), large enough to amortize the
#: fixed cost of a numpy call over many states.
_STEP_STATES = 1 << 14

#: Live-state budget per candidate chunk.  Chunks keep the working set
#: cache-resident; the per-candidate frontier is bounded by ``n/2 + 1``.
_CHUNK_STATES = 1 << 18

#: State budget for the enumeration regime (``2^m x chunk`` matmul output).
_ENUM_STATES = 1 << 22


class MaskCache:
    """Cached 0/1 column-assignment masks, shared across kernel calls.

    ``masks(w)`` returns the ``(2^w, w)`` matrix whose row ``r`` is the
    binary expansion of ``r`` (which cells of a block go to ``Z0+``), plus
    its complement (which go to ``Z1+``), both float64 for BLAS matmuls.
    Masks are pure functions of the width, so one module-level instance
    (:data:`shared_mask_cache`) serves every scorer, including fork-
    inherited sweep workers.
    """

    def __init__(self) -> None:
        self._masks: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def masks(self, width: int) -> Tuple[np.ndarray, np.ndarray]:
        if width not in self._masks:
            indices = np.arange(1 << width, dtype=np.int64)
            bits = (indices[:, None] >> np.arange(width, dtype=np.int64)) & 1
            self._masks[width] = (
                bits.astype(np.float64),
                (1 - bits).astype(np.float64),
            )
        return self._masks[width]


#: Default mask cache used when a kernel call does not supply one.
shared_mask_cache = MaskCache()


# ---------------------------------------------------------------------------
# Validation (shared by the scalar wrapper and every batched path)
# ---------------------------------------------------------------------------


def validate_F_counts(counts: np.ndarray, n: int) -> np.ndarray:
    """Check and canonicalize a batch of F contingency counts.

    ``counts`` is one flat joint (1-D), a batch of flat joints (2-D,
    candidate-major) or a batch of ``(m, 2)`` matrices (3-D).  Returns the
    int64 ``(batch, m, 2)`` stack.  Raises exactly the errors the scalar
    ``score_F`` has always raised — the batched and scalar paths reject
    malformed counts identically:

    * odd joint length (non-binary child),
    * non-integer counts,
    * counts not summing to ``n`` (checked per candidate).
    """
    array = np.asarray(counts)
    if array.ndim == 1:
        array = array[None, :]
    if array.ndim == 2:
        if array.shape[1] % 2 != 0:
            raise ValueError("F requires a binary child (even-length joint)")
        array = array.reshape(array.shape[0], -1, 2)
    if array.ndim != 3 or array.shape[2] != 2:
        raise ValueError(
            "F counts must be flat joints or (m, 2) matrices per candidate"
        )
    if np.issubdtype(array.dtype, np.integer):
        matrices = array.astype(np.int64, copy=False)
    else:
        matrices = np.rint(array).astype(np.int64)
        if not np.allclose(array, matrices):
            raise ValueError("F expects integer contingency counts")
    totals = matrices.sum(axis=(1, 2))
    bad = np.nonzero(totals != n)[0]
    if bad.size:
        raise ValueError(
            f"counts sum to {int(totals[bad[0]])}, expected n={n}"
        )
    return matrices


# ---------------------------------------------------------------------------
# Reference per-candidate dynamic program (Section 4.4)
# ---------------------------------------------------------------------------


def _pareto_prune(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Keep only non-dominated (a, b) states (Definition 4.6), vectorized.

    Sorts by ``a`` descending / ``b`` descending and keeps states whose
    ``b`` strictly exceeds every ``b`` seen at a larger-or-equal ``a``.
    """
    order = np.lexsort((-b, -a))
    a = a[order]
    b = b[order]
    best_b = np.maximum.accumulate(b)
    keep = np.empty(b.size, dtype=bool)
    keep[0] = True
    keep[1:] = b[1:] > best_b[:-1]
    return a[keep], b[keep]


def score_F_dp(joint_counts: np.ndarray, n: int) -> float:
    """Exact ``F`` for one candidate via the Section 4.4 dynamic program.

    One Python-loop iteration per parent cell, each extending and pruning
    the ``(K0, K1)`` frontier.  This is the seed implementation, kept as
    the correctness oracle and benchmark baseline for the batched kernel;
    production scoring goes through :func:`score_F_batch`.
    """
    matrix = validate_F_counts(joint_counts, n)[0]
    if n == 0:
        return -0.5
    # Each column pi contributes its X=0 count to K0 or its X=1 count to K1
    # (Equation 10).  Masses at or above n/2 saturate the objective, so
    # coordinates are capped there to bound the frontier size.
    cap = (n + 1) // 2
    a = np.zeros(1, dtype=np.int64)
    b = np.zeros(1, dtype=np.int64)
    for c0, c1 in matrix:
        new_a = np.concatenate([np.minimum(a + int(c0), cap), a])
        new_b = np.concatenate([b, np.minimum(b + int(c1), cap)])
        a, b = _pareto_prune(new_a, new_b)
    shortfall = np.maximum(0.0, 0.5 - a / n) + np.maximum(0.0, 0.5 - b / n)
    return -float(shortfall.min())


# ---------------------------------------------------------------------------
# Batched F kernel
# ---------------------------------------------------------------------------


def _enumerate_F(
    matrices: np.ndarray, n: int, mask_cache: MaskCache
) -> np.ndarray:
    """All ``2^m`` column assignments for every candidate, by matmul.

    Partial sums are integers bounded by ``m * n < 2**53``, so the float64
    matmul is exact and the scores are bit-equal to the integer DP.
    """
    count, m, _ = matrices.shape
    masks, complements = mask_cache.masks(m)
    out = np.empty(count)
    chunk = max(1, _ENUM_STATES >> m)
    for lo in range(0, count, chunk):
        hi = min(lo + chunk, count)
        k0 = masks @ matrices[lo:hi, :, 0].T.astype(np.float64)
        k1 = complements @ matrices[lo:hi, :, 1].T.astype(np.float64)
        shortfall = np.maximum(0.0, 0.5 - k0 / n) + np.maximum(
            0.0, 0.5 - k1 / n
        )
        out[lo:hi] = -shortfall.min(axis=0)
    return out


def _blocked_F_chunk(
    g0: np.ndarray,
    g1: np.ndarray,
    base_a: np.ndarray,
    base_b: np.ndarray,
    mixed_counts: np.ndarray,
    n: int,
    field_bits: int,
    block_cells: int,
    mask_cache: MaskCache,
) -> np.ndarray:
    """Blocked-bitset DP over one chunk of candidates.

    ``g0``/``g1`` hold each candidate's mixed-cell counts packed leftward
    (zeros beyond ``mixed_counts[c]`` cells); candidates arrive sorted by
    ``mixed_counts`` descending so the per-step active set is a prefix.
    Each state is one int64 ``cid << 2s | (2^s-1 - K0) << s | (2^s-1 - K1)``
    with ``s = field_bits``; ascending key order is exactly
    (candidate asc, K0 desc, K1 desc), the order the Pareto scan needs.
    Coordinates stay uncapped — they are bounded by ``n < 2^s`` — which
    changes no score: capping only merges states whose shortfall terms are
    already exactly zero.
    """
    count = g0.shape[0]
    s = field_bits
    fmask = (np.int64(1) << s) - 1
    max_mixed = int(mixed_counts[0]) if count else 0

    key = (
        (np.arange(count, dtype=np.int64) << (2 * s))
        + ((fmask - base_a) << s)
        + (fmask - base_b)
    )
    ends = np.arange(1, count + 1, dtype=np.int64)

    sh0 = g0.astype(np.float64)
    sh1 = g1.astype(np.float64)

    j = 0
    while j < max_mixed:
        # Candidates still holding unprocessed mixed cells (mixed > j);
        # the mixed-descending candidate order makes them a prefix.
        active = int(np.searchsorted(-mixed_counts, -j, side="left"))
        if active <= 0:
            break
        size = int(ends[active - 1])
        width = max(
            1,
            min(
                block_cells,
                max_mixed - j,
                (_STEP_STATES // max(1, size)).bit_length() - 1,
            ),
        )
        masks, complements = mask_cache.masks(width)
        # Subset sums of the block's cells on both sides, packed as state
        # shifts: sending a cell to Z0 adds c0 to K0 (subtracts c0 << s from
        # the key), to Z1 adds c1 to K1 (subtracts c1).
        k0 = (masks @ sh0[:active, j : j + width].T).astype(np.int64)
        k1 = (complements @ sh1[:active, j : j + width].T).astype(np.int64)
        shifts = (k0 << s) + k1
        cells = key[:size]
        cid = np.repeat(
            np.arange(active, dtype=np.int64),
            np.diff(np.concatenate([[0], ends[:active]])) << width,
        )
        expanded = (cells[None, :] - shifts[:, _cid_of(ends, active, size)])
        expanded = expanded.reshape(-1)
        expanded.sort(kind="stable")
        # Pareto prune (Definition 4.6): in (cid asc, K0 desc, K1 desc)
        # order, a state survives iff its K1 strictly exceeds every K1 seen
        # at a larger-or-equal K0 of the same candidate.
        aug = (cid << s) - (expanded & fmask)
        run = np.maximum.accumulate(aug)
        keep = np.empty(aug.size, dtype=bool)
        keep[0] = True
        keep[1:] = aug[1:] > run[:-1]
        kept = expanded[keep]
        ckept = cid[keep]
        new_ends = np.searchsorted(
            ckept, np.arange(1, active + 1, dtype=np.int64), side="left"
        )
        if active < count:
            key = np.concatenate([kept, key[size:]])
            ends = np.concatenate(
                [new_ends, ends[active:] - size + int(new_ends[-1])]
            )
        else:
            key = kept
            ends = new_ends
        j += width

    a = fmask - ((key >> s) & fmask)
    b = fmask - (key & fmask)
    shortfall = np.maximum(0.0, 0.5 - a / n) + np.maximum(0.0, 0.5 - b / n)
    starts = np.concatenate([[0], ends[:-1]])
    return -np.minimum.reduceat(shortfall, starts)


def _cid_of(ends: np.ndarray, active: int, size: int) -> np.ndarray:
    """Candidate id per frontier state for the active prefix."""
    return np.repeat(
        np.arange(active, dtype=np.int64),
        np.diff(np.concatenate([[0], ends[:active]])),
    )


def _native_for(backend: Optional[str]) -> Optional[kernel_backend.NativeKernel]:
    """Resolve a per-call backend override to a native kernel (or None).

    ``None`` defers to the import-time selection
    (:data:`repro.core.kernel_backend.NATIVE_KERNEL`); ``"numpy"`` pins the
    pure-NumPy path; ``"native"`` requires the compiled kernel, building it
    on demand and raising :class:`~repro.core.kernel_backend.KernelBackendError`
    when no toolchain exists.
    """
    if backend is None:
        return kernel_backend.NATIVE_KERNEL
    if backend == "numpy":
        return None
    if backend == "native":
        return kernel_backend.NATIVE_KERNEL or kernel_backend.load_native()
    raise ValueError(f"backend must be 'numpy' or 'native', got {backend!r}")


def score_F_batch(
    counts: np.ndarray,
    n: int,
    *,
    enum_max_cells: int = DEFAULT_ENUM_MAX_CELLS,
    block_cells: int = DEFAULT_BLOCK_CELLS,
    mask_cache: MaskCache = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Exact ``F`` for a whole batch of binary-child candidates at once.

    Parameters
    ----------
    counts:
        Batch of integer contingency counts, candidate-major: flat joints
        ``(batch, 2m)`` or matrices ``(batch, m, 2)`` (a single flat joint
        is promoted to a batch of one).  Every candidate's counts must sum
        to ``n`` — validation is identical to the scalar path.
    n:
        Number of tuples.
    enum_max_cells:
        Enumeration/DP crossover (see :data:`DEFAULT_ENUM_MAX_CELLS`).
        Any value >= 0 produces bit-identical scores; only speed changes.
    block_cells:
        Upper bound on the blocked DP's mini-block width (adaptive per
        step); also bit-identity-neutral.
    mask_cache:
        Optional :class:`MaskCache`; defaults to the module-shared one.
    backend:
        ``None`` (default) uses the backend selected at import;
        ``"numpy"`` / ``"native"`` pin one side for tests and benchmarks.
        Either way the scores are bit-identical — the native kernel runs
        the same integer DP and the same final float expression.

    Returns the ``(batch,)`` float array of (non-positive) F scores, each
    bit-equal to ``score_F_dp`` on the same candidate.
    """
    if enum_max_cells < 0:
        raise ValueError("enum_max_cells must be non-negative")
    if block_cells < 1:
        raise ValueError("block_cells must be positive")
    native = _native_for(backend)
    matrices = validate_F_counts(counts, n)
    count, m, _ = matrices.shape
    if count == 0:
        return np.zeros(0)
    if n == 0:
        return np.full(count, -0.5)
    cache = mask_cache if mask_cache is not None else shared_mask_cache
    # Enumeration is capped at 2^16 masks regardless of the requested
    # threshold — beyond that the mask matrix itself outgrows the cache.
    # This regime is cheap and shared: the native kernel only replaces the
    # frontier DP below it.
    if m <= min(enum_max_cells, 16):
        return _enumerate_F(matrices, n, cache)
    if native is not None:
        # The C frontier DP also covers the wide-n regime that would
        # overflow the NumPy path's packed bit fields — its coordinates
        # are plain int64 pairs, never packed.
        return native.score_f_batch(matrices[:, :, 0], matrices[:, :, 1], n)
    field_bits = max(1, int(n).bit_length())
    if 2 * field_bits + 1 > 62:
        # Packed states would overflow int64; exactness first.  Flatten
        # each (m, 2) matrix — handed 2-D it would be misread as a batch.
        return np.array([score_F_dp(row.reshape(-1), n) for row in matrices])

    cap = (n + 1) // 2
    c0 = matrices[:, :, 0]
    c1 = matrices[:, :, 1]
    # One-sided cells are forced: with c1 = 0, sending the cell to Z1 gains
    # nothing while Z0 gains c0 (and vice versa) — the other branch is
    # dominated, so fold them into the start state.
    mixed = (c0 > 0) & (c1 > 0)
    base_a = np.minimum(np.where(c1 == 0, c0, 0).sum(axis=1), cap)
    base_b = np.minimum(np.where(c0 == 0, c1, 0).sum(axis=1), cap)
    mixed_counts = mixed.sum(axis=1)

    order = np.argsort(-mixed_counts, kind="stable")
    inverse = np.empty(count, dtype=np.int64)
    inverse[order] = np.arange(count)
    c0 = c0[order]
    c1 = c1[order]
    mixed = mixed[order]
    base_a = base_a[order]
    base_b = base_b[order]
    mixed_counts = mixed_counts[order]

    # Pack each candidate's mixed cells leftward; the padding cells are
    # (0, 0) no-ops that the active-prefix loop never touches.
    col_order = np.argsort(~mixed, axis=1, kind="stable")
    packed_mask = np.take_along_axis(mixed, col_order, axis=1)
    g0 = np.where(packed_mask, np.take_along_axis(c0, col_order, axis=1), 0)
    g1 = np.where(packed_mask, np.take_along_axis(c1, col_order, axis=1), 0)

    chunk = max(
        1,
        min(
            count,
            _CHUNK_STATES // max(64, cap),
            (1 << max(1, 62 - 2 * field_bits)) - 1,
        ),
    )
    out = np.empty(count)
    for lo in range(0, count, chunk):
        hi = min(lo + chunk, count)
        out[lo:hi] = _blocked_F_chunk(
            g0[lo:hi],
            g1[lo:hi],
            base_a[lo:hi],
            base_b[lo:hi],
            mixed_counts[lo:hi],
            n,
            field_bits,
            block_cells,
            cache,
        )
    return out[inverse]


# ---------------------------------------------------------------------------
# Batched I and R kernels
# ---------------------------------------------------------------------------


def _as_joint_stack(joints: np.ndarray, child_size: int) -> np.ndarray:
    """Canonicalize to a float ``(batch, parent_dom, child_size)`` stack."""
    stack = np.asarray(joints, dtype=float)
    if stack.ndim == 1:
        stack = stack[None, :]
    if stack.ndim == 2:
        stack = stack.reshape(stack.shape[0], -1, child_size)
    if stack.ndim != 3 or stack.shape[2] != child_size:
        raise ValueError(
            "joints must be flat vectors or (parent_dom, child_size) "
            "matrices per candidate"
        )
    return stack


def _rows_entropy(matrix: np.ndarray) -> np.ndarray:
    """Per-row Shannon entropies of a rectangular float batch.

    One segmented exact-sum pass over all rows; each output is bit-equal
    to :func:`repro.infotheory.measures.entropy` on that row alone.
    """
    matrix = np.ascontiguousarray(matrix, dtype=float)
    count, width = matrix.shape
    return _entropy_by_count(
        matrix.reshape(-1), np.full(count, width, dtype=np.int64)
    )


def score_I_batch(joints: np.ndarray, child_size: int) -> np.ndarray:
    """Mutual information for a batch of joints sharing a child size.

    Marginalization and all three entropy terms are vectorized across the
    batch — the entropies go through the segmented exact-sum pass of
    :func:`_rows_entropy`, whose per-row reduction order matches the
    scalar :func:`~repro.infotheory.measures.entropy`.  Each output is
    bit-equal to ``mutual_information(joint, child_size)`` on the same
    joint.
    """
    stack = _as_joint_stack(joints, child_size)
    count = stack.shape[0]
    h_parent = _rows_entropy(stack.sum(axis=2))
    h_child = _rows_entropy(stack.sum(axis=1))
    h_joint = _rows_entropy(stack.reshape(count, -1))
    return np.maximum(0.0, h_child + h_parent - h_joint)


def _segment_groups(
    lengths: np.ndarray, child_sizes: np.ndarray
) -> List[Tuple[int, int, np.ndarray]]:
    """Candidate indices grouped by (segment length, child size).

    Returns ``(length, child_size, candidate_indices)`` triples; grouping
    is a stable lexsort so traversal is deterministic given the candidate
    order.
    """
    count = lengths.shape[0]
    if count == 0:
        return []
    order = np.lexsort((child_sizes, lengths))
    changed = (np.diff(lengths[order]) != 0) | (np.diff(child_sizes[order]) != 0)
    bounds = np.concatenate([[0], np.nonzero(changed)[0] + 1, [count]])
    return [
        (
            int(lengths[order[lo]]),
            int(child_sizes[order[lo]]),
            order[lo:hi],
        )
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]


def _ragged_args(
    values: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    child_sizes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Canonicalize the ragged-batch arguments shared by the segment kernels."""
    flat = np.ascontiguousarray(values, dtype=float).reshape(-1)
    offsets = np.asarray(offsets, dtype=np.int64).reshape(-1)
    lengths = np.asarray(lengths, dtype=np.int64).reshape(-1)
    sizes = np.asarray(child_sizes, dtype=np.int64).reshape(-1)
    if offsets.shape != lengths.shape or offsets.shape != sizes.shape:
        raise ValueError("offsets, lengths and child_sizes must align")
    if offsets.size and (
        offsets.min() < 0 or int((offsets + lengths).max()) > flat.size
    ):
        raise ValueError("segment [offset, offset+length) out of bounds")
    return flat, offsets, lengths, sizes


def score_I_segments(
    values: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    child_sizes: np.ndarray,
) -> np.ndarray:
    """Mutual information for a *ragged* batch of flat joints.

    ``values`` concatenates the candidates' flat ``Pr[Pi, X]`` joints
    (child innermost); candidate ``i`` occupies
    ``values[offsets[i] : offsets[i] + lengths[i]]`` and has child domain
    size ``child_sizes[i]``.  This is exactly the layout
    :func:`repro.data.marginals.stacked_joint_counts` produces, so callers
    feed the stacked block straight in — no per-candidate reshaping or
    same-size bucketing on their side.

    Candidates are permuted into ``(length, child_size)`` order by one
    ragged gather, so every same-shape group is a contiguous block: the
    joint entropy is a single segmented pass over the whole batch, and
    each group's parent and child marginals are plain slice-reshape-sums
    of its ``(group, parent_dom, child_size)`` stack — the exact
    ``matrix.sum(axis=1)`` / ``matrix.sum(axis=0)`` reduction shapes of
    the scalar path (NumPy's axis-0 order differs from a contiguous 1-D
    sum, so the child term in particular must keep that stack shape).
    The scores un-permute once at the end; every output is bit-equal to
    ``mutual_information(values[segment], child_size)`` on that candidate
    alone.
    """
    flat, offsets, lengths, sizes = _ragged_args(
        values, offsets, lengths, child_sizes
    )
    count = offsets.shape[0]
    if count == 0:
        return np.empty(0)
    if np.any(sizes < 1):
        raise ValueError("child_sizes must be positive")
    if np.any(lengths % sizes):
        raise ValueError(
            "each segment length must be a multiple of its child size"
        )
    total = int(lengths.sum())
    order = np.lexsort((sizes, lengths))
    g_lengths = lengths[order]
    g_sizes = sizes[order]
    bounds = np.concatenate([[0], np.cumsum(g_lengths)])
    shift = np.repeat(offsets[order] - bounds[:-1], g_lengths)
    grouped = flat[shift + np.arange(total, dtype=np.int64)]

    h_joint = _entropy_by_count(grouped, g_lengths)

    g_cells = g_lengths // g_sizes
    parent_values = np.empty(int(g_cells.sum()))
    child_values = np.empty(int(g_sizes.sum()))
    edges = bounds.tolist()
    p_edges = np.concatenate([[0], np.cumsum(g_cells)]).tolist()
    c_edges = np.concatenate([[0], np.cumsum(g_sizes)]).tolist()
    changed = (np.diff(g_lengths) != 0) | (np.diff(g_sizes) != 0)
    starts = np.concatenate([[0], np.nonzero(changed)[0] + 1, [count]]).tolist()
    for g in range(len(starts) - 1):
        lo, hi = starts[g], starts[g + 1]
        if g_lengths[lo] == 0:  # empty joints: both marginals are zeros
            child_values[c_edges[lo] : c_edges[hi]] = 0.0
            continue
        stack = grouped[edges[lo] : edges[hi]].reshape(
            hi - lo, -1, int(g_sizes[lo])
        )
        # Parent cells are contiguous child-size blocks (trailing axis);
        # the child marginal keeps the scalar path's axis-0 sum shape.
        parent_values[p_edges[lo] : p_edges[hi]] = stack.sum(axis=2).reshape(-1)
        child_values[c_edges[lo] : c_edges[hi]] = stack.sum(axis=1).reshape(-1)
    h_parent = _entropy_by_count(parent_values, g_cells)
    h_child = _entropy_by_count(child_values, g_sizes)

    scores = np.empty(count)
    scores[order] = np.maximum(0.0, h_child + h_parent - h_joint)
    return scores


def score_R_segments(
    values: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    child_sizes: np.ndarray,
) -> np.ndarray:
    """``R`` (Equation 11) for a ragged batch of flat joints.

    Same ragged layout and grouping as :func:`score_I_segments`; each
    ``(length, child_size)`` group delegates to the fully vectorized
    :func:`score_R_batch`, preserving its per-candidate bit-identity.
    """
    flat, offsets, lengths, sizes = _ragged_args(
        values, offsets, lengths, child_sizes
    )
    out = np.empty(offsets.shape[0])
    for length, child_size, idx in _segment_groups(lengths, sizes):
        gathered = flat[offsets[idx][:, None] + np.arange(length)]
        out[idx] = score_R_batch(gathered, child_size)
    return out


def score_R_batch(joints: np.ndarray, child_size: int) -> np.ndarray:
    """``R`` (Equation 11) for a batch of joints sharing a child size.

    Fully vectorized; each output is bit-equal to the scalar ``score_R``
    (the outer product's inner dimension is one, so every element is a
    single exact multiplication, and the final reduction sums the same
    contiguous values per candidate).
    """
    stack = _as_joint_stack(joints, child_size)
    count = stack.shape[0]
    parent = stack.sum(axis=2, keepdims=True)
    child = stack.sum(axis=1, keepdims=True)
    independent = parent @ child
    return 0.5 * np.abs(stack - independent).reshape(count, -1).sum(axis=1)
