"""Maximal parent-set enumeration (Algorithms 5 and 6).

Given the set ``V`` of already-placed attributes and a domain-size budget
``τ`` (from θ-usefulness), a *maximal parent set* is a subset of ``V``
whose joint domain fits within ``τ`` and which cannot be grown — by adding
another attribute, or (with taxonomies) by refining an attribute to a less
generalized level — without busting the budget.

Parent sets are represented as frozensets of ``(attribute_name, level)``
pairs; level 0 is the raw attribute.  Algorithm 5 is the level-free special
case of Algorithm 6.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.data.attribute import Attribute

ParentSet = FrozenSet[Tuple[str, int]]


def _level_sizes(attr: Attribute) -> List[int]:
    """Domain size of ``attr`` at every generalization level."""
    if attr.taxonomy is None:
        return [attr.size]
    return [attr.taxonomy.level_size(level) for level in range(attr.taxonomy.height)]


def maximal_parent_sets(
    attributes: Sequence[Attribute], tau: float
) -> List[ParentSet]:
    """Algorithm 5: all maximal subsets of ``attributes`` with joint domain
    size at most ``tau`` (no generalization).

    Returns frozensets of ``(name, 0)`` pairs.  ``τ < 1`` admits nothing;
    an empty ``attributes`` admits only the empty set.
    """
    if tau < 1.0:
        return []
    if not attributes:
        return [frozenset()]
    head, rest = attributes[0], list(attributes[1:])
    # Maximal subsets that omit `head`.
    result: Set[ParentSet] = set(maximal_parent_sets(rest, tau))
    # Maximal subsets that include `head`: recurse with the tightened budget.
    for subset in maximal_parent_sets(rest, tau / head.size):
        result.discard(subset)  # subset ⊂ subset ∪ {head}: no longer maximal
        result.add(subset | {(head.name, 0)})
    return sorted(result, key=_canonical_key)


def maximal_parent_sets_generalized(
    attributes: Sequence[Attribute], tau: float
) -> List[ParentSet]:
    """Algorithm 6: maximal generalized parent sets.

    Each attribute may participate at any taxonomy level; a set is maximal
    when no attribute can be added and no member refined to a lower
    (more specific) level while keeping the joint domain within ``τ``.
    """
    if tau < 1.0:
        return []
    if not attributes:
        return [frozenset()]
    head, rest = attributes[0], list(attributes[1:])
    sizes = _level_sizes(head)
    result: Set[ParentSet] = set()
    used: Set[ParentSet] = set()
    # Levels from least generalized (0) upward: the first level that admits a
    # given remainder-set Z wins, so Z is combined with the most specific
    # usable version of `head` (lines 5-8 of Algorithm 6).
    for level, size in enumerate(sizes):
        for subset in maximal_parent_sets_generalized(rest, tau / size):
            if subset in used:
                continue
            used.add(subset)
            result.add(subset | {(head.name, level)})
    # Remainder sets that cannot host `head` at any level (lines 9-11).
    for subset in maximal_parent_sets_generalized(rest, tau):
        if subset not in used:
            result.add(subset)
    return sorted(result, key=_canonical_key)


def parent_set_domain_size(
    parent_set: ParentSet, attributes_by_name: Dict[str, Attribute]
) -> int:
    """Joint domain size of a (possibly generalized) parent set."""
    size = 1
    for name, level in parent_set:
        attr = attributes_by_name[name]
        if level == 0:
            size *= attr.size
        else:
            size *= attr.taxonomy.level_size(level)
    return size


def _canonical_key(parent_set: ParentSet) -> Tuple:
    return tuple(sorted(parent_set))
