"""Maximal parent-set enumeration (Algorithms 5 and 6), with memoization.

Given the set ``V`` of already-placed attributes and a domain-size budget
``τ`` (from θ-usefulness), a *maximal parent set* is a subset of ``V``
whose joint domain fits within ``τ`` and which cannot be grown — by adding
another attribute, or (with taxonomies) by refining an attribute to a less
generalized level — without busting the budget.

Parent sets are represented as frozensets of ``(attribute_name, level)``
pairs; level 0 is the raw attribute.  Algorithm 5 is the level-free special
case of Algorithm 6.

Memoization
-----------
Both recursions peel the head attribute and recurse on the tail, so every
subproblem is identified by ``(attribute tail, τ)``.  The results are pure
functions of those inputs, and the computed *set* of maximal parent sets is
independent of the attribute ordering (the returned list is canonically
sorted), so results can be cached and shared:

* within one call, repeated ``(tail, τ)`` subproblems — common when domain
  sizes repeat, e.g. all-binary tables where ``τ/2/2`` meets ``τ/4`` — are
  computed once instead of exponentially many times;
* across calls, a :class:`ParentSetCache` carries the memo between greedy
  rounds.  :func:`repro.core.greedy_bayes.greedy_bayes_theta` passes the
  placed attributes newest-first, so each round's tail subproblems are
  exactly the previous round's full problems and hit the cache directly.

Cache keys include each attribute's (level) domain sizes, so a cache is
safe to share across tables; τ is keyed by exact float value (equal floats
behave identically throughout the recursion, so hits are always exact).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.data.attribute import Attribute

ParentSet = FrozenSet[Tuple[str, int]]

#: Memo table: (attribute-signature tuple, τ) -> sorted tuple of parent sets.
_Memo = Dict[Tuple[Tuple, float], Tuple[ParentSet, ...]]


def _level_sizes(attr: Attribute) -> Tuple[int, ...]:
    """Domain size of ``attr`` at every generalization level."""
    if attr.taxonomy is None:
        return (attr.size,)
    return tuple(
        attr.taxonomy.level_size(level) for level in range(attr.taxonomy.height)
    )


class ParentSetCache:
    """Reusable memo passed to :func:`maximal_parent_sets` and its
    generalized variant via their ``cache`` parameter.

    One cache instance may serve many calls — and many tables: keys carry
    the attribute names *and* their per-level domain sizes, so distinct
    schemas never collide.  Entries are immutable tuples of frozensets;
    callers must not mutate the returned lists' elements.
    """

    def __init__(self) -> None:
        self._plain: _Memo = {}
        self._generalized: _Memo = {}


def _plain_key(attributes: Tuple[Attribute, ...], tau: float):
    return (tuple((a.name, a.size) for a in attributes), tau)


def _generalized_key(attributes: Tuple[Attribute, ...], tau: float):
    return (tuple((a.name, _level_sizes(a)) for a in attributes), tau)


def _maximal_plain(
    attributes: Tuple[Attribute, ...], tau: float, memo: _Memo
) -> Tuple[ParentSet, ...]:
    """Algorithm 5 recursion with subproblem memoization."""
    if tau < 1.0:
        return ()
    if not attributes:
        return (frozenset(),)
    key = _plain_key(attributes, tau)
    hit = memo.get(key)
    if hit is not None:
        return hit
    head, rest = attributes[0], attributes[1:]
    # Maximal subsets that omit `head`.
    result: Set[ParentSet] = set(_maximal_plain(rest, tau, memo))
    # Maximal subsets that include `head`: recurse with the tightened budget.
    for subset in _maximal_plain(rest, tau / head.size, memo):
        result.discard(subset)  # subset ⊂ subset ∪ {head}: no longer maximal
        result.add(subset | {(head.name, 0)})
    out = tuple(sorted(result, key=_canonical_key))
    memo[key] = out
    return out


def _maximal_generalized(
    attributes: Tuple[Attribute, ...], tau: float, memo: _Memo
) -> Tuple[ParentSet, ...]:
    """Algorithm 6 recursion with subproblem memoization."""
    if tau < 1.0:
        return ()
    if not attributes:
        return (frozenset(),)
    key = _generalized_key(attributes, tau)
    hit = memo.get(key)
    if hit is not None:
        return hit
    head, rest = attributes[0], attributes[1:]
    sizes = _level_sizes(head)
    result: Set[ParentSet] = set()
    used: Set[ParentSet] = set()
    # Levels from least generalized (0) upward: the first level that admits a
    # given remainder-set Z wins, so Z is combined with the most specific
    # usable version of `head` (lines 5-8 of Algorithm 6).
    for level, size in enumerate(sizes):
        for subset in _maximal_generalized(rest, tau / size, memo):
            if subset in used:
                continue
            used.add(subset)
            result.add(subset | {(head.name, level)})
    # Remainder sets that cannot host `head` at any level (lines 9-11).
    for subset in _maximal_generalized(rest, tau, memo):
        if subset not in used:
            result.add(subset)
    out = tuple(sorted(result, key=_canonical_key))
    memo[key] = out
    return out


def maximal_parent_sets(
    attributes: Sequence[Attribute],
    tau: float,
    cache: Optional[ParentSetCache] = None,
) -> List[ParentSet]:
    """Algorithm 5: all maximal subsets of ``attributes`` with joint domain
    size at most ``tau`` (no generalization).

    Returns frozensets of ``(name, 0)`` pairs.  ``τ < 1`` admits nothing;
    an empty ``attributes`` admits only the empty set.  ``cache`` carries
    the subproblem memo across calls (see :class:`ParentSetCache`); without
    one, a fresh memo still dedupes repeated subproblems within the call.
    """
    memo: _Memo = cache._plain if cache is not None else {}
    return list(_maximal_plain(tuple(attributes), float(tau), memo))


def maximal_parent_sets_generalized(
    attributes: Sequence[Attribute],
    tau: float,
    cache: Optional[ParentSetCache] = None,
) -> List[ParentSet]:
    """Algorithm 6: maximal generalized parent sets.

    Each attribute may participate at any taxonomy level; a set is maximal
    when no attribute can be added and no member refined to a lower
    (more specific) level while keeping the joint domain within ``τ``.
    ``cache`` works as in :func:`maximal_parent_sets`.
    """
    memo: _Memo = cache._generalized if cache is not None else {}
    return list(_maximal_generalized(tuple(attributes), float(tau), memo))


def parent_set_domain_size(
    parent_set: ParentSet, attributes_by_name: Dict[str, Attribute]
) -> int:
    """Joint domain size of a (possibly generalized) parent set."""
    size = 1
    for name, level in parent_set:
        attr = attributes_by_name[name]
        if level == 0:
            size *= attr.size
        else:
            size *= attr.taxonomy.level_size(level)
    return size


def _canonical_key(parent_set: ParentSet) -> Tuple:
    return tuple(sorted(parent_set))
