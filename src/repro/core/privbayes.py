"""The end-to-end PrivBayes pipeline (Section 3).

Three phases under a total budget ε split as ε₁ = βε (network learning,
exponential mechanism) and ε₂ = (1−β)ε (distribution learning, Laplace
mechanism); sampling is post-processing and free.  Theorem 3.2: the whole
pipeline is (ε₁ + ε₂)-differentially private.

Two operating modes, chosen automatically from the schema:

* ``binary`` — every attribute is binary: Algorithm 2 with degree ``k``
  chosen by θ-usefulness (Lemma 4.8), score ``F`` by default, and
  Algorithm 1 for distribution learning.
* ``general`` — arbitrary discrete domains: Algorithm 4 (θ-usefulness via
  the domain-size bound τ), score ``R`` by default, and Algorithm 3.
  With ``generalize=True``, parent sets may use taxonomy-generalized
  attributes (Algorithm 6) — the Hierarchical encoding of Section 5.1.

Diagnostic switches ``oracle_network`` / ``oracle_marginals`` reproduce the
BestNetwork / BestMarginal references of Figure 11.  They break differential
privacy and exist only for error attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.bn.network import APPair, BayesianNetwork
from repro.core.greedy_bayes import greedy_bayes_fixed_k, greedy_bayes_theta
from repro.core.noisy_conditionals import (
    NoisyModel,
    noisy_conditionals_fixed_k,
    noisy_conditionals_general,
)
from repro.core.rng import fallback_rng
from repro.core.sampler import sample_synthetic, sample_synthetic_chunks
from repro.core.theta import choose_k_binary
from repro.data.chunks import DEFAULT_CHUNK_ROWS
from repro.data.table import Table
from repro.dp.accountant import PrivacyAccountant, split_epsilon

#: Paper defaults (Section 6.4): β = 0.3, θ = 4.
DEFAULT_BETA = 0.3
DEFAULT_THETA = 4.0


@dataclass(frozen=True)
class PrivBayesConfig:
    """All tunables of the pipeline.

    Parameters
    ----------
    epsilon:
        Total privacy budget ε.
    beta:
        Fraction of ε for network learning (ε₁ = βε).  Figure 9 studies
        this; [0.2, 0.5] is the good range, 0.3 the default.  Must lie in
        (0, 1): β = 0 leaves the exponential mechanism without budget.
    theta:
        Usefulness threshold (Definition 4.7).  Figure 10 studies this;
        [3, 6] is the good range, 4 the default.
    score:
        ``'I' | 'F' | 'R' | 'auto'``.  Auto picks ``F`` in binary mode and
        ``R`` in general mode (the paper's recommendations).
    mode:
        ``'binary' | 'general' | 'auto'``.  Auto picks binary iff every
        attribute has a two-value domain.
    k:
        Optional override of the network degree (binary mode only); by
        default θ-usefulness chooses it.
    generalize:
        Allow taxonomy-generalized parents (Algorithm 6, general mode).
    first_attribute:
        Optional deterministic choice of the first network attribute.
    oracle_network / oracle_marginals:
        Figure 11 diagnostics (non-private network / exact marginals).
    """

    epsilon: float
    beta: float = DEFAULT_BETA
    theta: float = DEFAULT_THETA
    score: str = "auto"
    mode: str = "auto"
    k: Optional[int] = None
    generalize: bool = False
    first_attribute: Optional[str] = None
    oracle_network: bool = False
    oracle_marginals: bool = False

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0.0 < self.beta < 1.0:
            raise ValueError(
                f"beta must be in (0, 1); got {self.beta!r} — beta = 0 "
                "would leave network learning (epsilon1 = beta * epsilon) "
                "with no budget"
            )
        if self.theta <= 0:
            raise ValueError("theta must be positive")
        if self.score not in ("auto", "I", "F", "R"):
            raise ValueError(f"unknown score {self.score!r}")
        if self.mode not in ("auto", "binary", "general"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.k is not None:
            if self.k < 0:
                raise ValueError(f"k must be non-negative; got {self.k!r}")
            if self.mode == "general":
                raise ValueError(
                    "k is only used in binary mode (Algorithm 2); general "
                    "mode derives the structure from theta-usefulness — "
                    "unset k or use mode='binary'"
                )


@dataclass
class PrivBayesModel:
    """A fitted model: network + noisy conditionals + release metadata."""

    noisy: NoisyModel
    table_attributes: tuple
    source_n: int
    config: PrivBayesConfig
    accountant: PrivacyAccountant
    k: Optional[int] = None

    @property
    def network(self) -> BayesianNetwork:
        return self.noisy.network

    def sample(
        self, n: Optional[int] = None, rng: Optional[np.random.Generator] = None
    ) -> Table:
        """Draw a synthetic dataset (defaults to the source cardinality)."""
        return sample_synthetic(
            self.noisy,
            self.table_attributes,
            self.source_n if n is None else n,
            rng,
        )

    def sample_chunks(
        self,
        n: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ):
        """Stream a synthetic dataset as bounded-size chunk tables.

        The streaming release path: feed the returned iterator straight to
        :func:`repro.data.io.write_csv`.  See
        :func:`repro.core.sampler.sample_synthetic_chunks` for the
        determinism contract (chunk-size-invariant, but a different seeded
        stream than :meth:`sample`).
        """
        return sample_synthetic_chunks(
            self.noisy,
            self.table_attributes,
            self.source_n if n is None else n,
            rng,
            chunk_rows,
        )


class PrivBayes:
    """High-level entry point: ``PrivBayes(epsilon=...).fit_sample(table)``."""

    def __init__(self, config: Optional[PrivBayesConfig] = None, **kwargs) -> None:
        if config is None:
            config = PrivBayesConfig(**kwargs)
        elif kwargs:
            config = replace(config, **kwargs)
        self.config = config

    # ------------------------------------------------------------------
    def fit(
        self,
        table,
        rng: Optional[np.random.Generator] = None,
        scoring_cache=None,
        accountant: Optional[PrivacyAccountant] = None,
    ) -> PrivBayesModel:
        """Run phases 1 and 2 (network + distribution learning).

        ``table`` is a resident :class:`~repro.data.Table` or any
        :class:`~repro.data.chunks.ChunkedSource`: both phases touch the
        data only through contingency counts, which accumulate chunk by
        chunk on a source — one streaming pass per greedy round plus one
        for distribution learning, in memory bounded by the chunk size,
        with bit-identical counts (noise draws depend only on those
        counts and the rng, so a ``TableChunks`` view of a table yields
        the exact release the resident fit produces).

        ``scoring_cache`` is an optional
        :class:`~repro.core.scoring.ScoringCache`; pass one when fitting
        many models over the same table (an ε sweep) so candidate scores,
        parent-set enumerations and contingency counts — deterministic
        data statistics — are computed once across all fits.

        ``accountant`` is an optional *external* (e.g. per-dataset)
        :class:`~repro.dp.accountant.PrivacyAccountant` that this fit
        charges its whole ``config.epsilon`` into, as **one atomic
        reservation made before any data is touched** — so repeated fits
        against the same table compose cumulative ε under sequential
        composition, and a fit that would exceed the dataset budget
        raises :class:`~repro.dp.accountant.PrivacyBudgetError` without
        having looked at a single count.  (Reserving up front, rather
        than threading the external ledger through the per-phase charges,
        is what makes the refusal safe: a mid-fit refusal would land
        *after* the network phase already consumed data access.)  The
        returned model still carries its own per-phase accountant, and
        the fit itself — every count, score and noise draw — is
        bit-identical to ``accountant=None``.

        The default (``accountant=None``) constructs a fresh internal
        accountant, the historical behavior: no cross-fit composition.
        """
        rng = fallback_rng(rng)
        if table.d == 0 or table.n == 0:
            raise ValueError("cannot fit an empty table")
        config = self.config
        if accountant is not None:
            # Reserve before touching counts; raises PrivacyBudgetError
            # when the dataset budget cannot cover this fit.
            accountant.spend("privbayes-fit", config.epsilon)
        mode = config.mode
        if mode == "auto":
            all_binary = all(a.size == 2 for a in table.attributes)
            mode = "binary" if all_binary else "general"
        if mode == "general" and config.k is not None:
            raise ValueError(
                f"config.k={config.k} is only used in binary mode "
                "(Algorithm 2), but this table resolved to general mode — "
                "unset k or force mode='binary'"
            )
        score = config.score
        if score == "auto":
            score = "F" if mode == "binary" else "R"
        # The model's own per-phase ledger; the external reservation (if
        # any) was already taken above, so this stays a fresh accountant
        # and the phases below are bit-identical either way.
        accountant = PrivacyAccountant(config.epsilon)
        # ε₁ = βε exactly as the historical two-line split (bit-identical).
        epsilon1, epsilon2 = split_epsilon(
            config.epsilon, (config.beta,), remainder=True
        )
        scorer = (
            scoring_cache.scorer(table, score)
            if scoring_cache is not None
            else None
        )
        counter = (
            scoring_cache.joint_counter(table)
            if scoring_cache is not None
            else None
        )
        if mode == "binary":
            model, k = self._fit_binary(
                table, score, epsilon1, epsilon2, accountant, rng, scorer,
                counter,
            )
        else:
            model = self._fit_general(
                table, score, epsilon1, epsilon2, accountant, rng, scorer,
                counter,
            )
            k = None
        return PrivBayesModel(
            noisy=model,
            table_attributes=table.attributes,
            source_n=table.n,
            config=config,
            accountant=accountant,
            k=k,
        )

    def fit_sample(
        self,
        table,
        rng: Optional[np.random.Generator] = None,
        n: Optional[int] = None,
        scoring_cache=None,
        accountant: Optional[PrivacyAccountant] = None,
    ) -> Table:
        """Full pipeline: fit, then sample a synthetic table.

        ``table`` may be a resident table or a chunked source (see
        :meth:`fit`); the returned synthetic table is always resident —
        use ``fit(...).sample_chunks()`` for a streaming release.
        ``accountant`` forwards to :meth:`fit` (sampling is free
        post-processing and charges nothing).
        """
        rng = fallback_rng(rng)
        model = self.fit(
            table, rng, scoring_cache=scoring_cache, accountant=accountant
        )
        return model.sample(n, rng)

    # ------------------------------------------------------------------
    def _fit_binary(
        self, table, score, epsilon1, epsilon2, accountant, rng, scorer=None,
        counter=None,
    ):
        config = self.config
        d = table.d
        k = config.k
        if k is None:
            k = choose_k_binary(table.n, d, epsilon2, config.theta)
        k = min(k, d - 1)
        if k == 0 or d == 1:
            # Only one possible structure: skip the exponential mechanism
            # and give the whole budget to the marginals (footnote 6).
            epsilon2 = config.epsilon
            network = BayesianNetwork(
                [APPair.make(name, []) for name in table.attribute_names]
            )
        else:
            if not config.oracle_network:
                accountant.charge("network-learning (exponential mechanism)", epsilon1)
            network = greedy_bayes_fixed_k(
                # repro: allow[PRIV003] -- charged just above on the ε-spending path; the uncharged path passes epsilon=None (oracle mode)
                table,
                k,
                None if config.oracle_network else epsilon1,
                score=score,
                rng=rng,
                first_attribute=config.first_attribute,
                scorer=scorer,
            )
        model = noisy_conditionals_fixed_k(
            table,
            network,
            k,
            None if config.oracle_marginals else epsilon2,
            rng,
            accountant,
            counter=counter,
        )
        return model, k

    def _fit_general(
        self, table, score, epsilon1, epsilon2, accountant, rng, scorer=None,
        counter=None,
    ):
        config = self.config
        if score == "F":
            raise ValueError("score 'F' is not computable on general domains")
        if table.d == 1:
            epsilon2 = config.epsilon
            network = BayesianNetwork(
                [APPair.make(name, []) for name in table.attribute_names]
            )
        else:
            if not config.oracle_network:
                accountant.charge("network-learning (exponential mechanism)", epsilon1)
            network = greedy_bayes_theta(
                # repro: allow[PRIV003] -- charged just above on the ε-spending path; the uncharged path passes epsilon=None (oracle mode)
                table,
                None if config.oracle_network else epsilon1,
                epsilon2,
                config.theta,
                score=score,
                generalize=config.generalize,
                rng=rng,
                first_attribute=config.first_attribute,
                scorer=scorer,
            )
        return noisy_conditionals_general(
            table,
            network,
            None if config.oracle_marginals else epsilon2,
            rng,
            accountant,
            counter=counter,
        )
