/* Native frontier-merge backend for the Section-4.4 F score.
 *
 * Exact batched F scores for binary-child candidates: for each candidate
 * the dynamic program of Section 4.4 extends a Pareto frontier of
 * (K0, K1) mass states (Equation 10) over the parent cells, with
 * dominated states pruned per Definition 4.6.  This is the same
 * computation as the NumPy kernel's blocked-bitset path and the
 * per-candidate reference DP (repro.core.score_kernels.score_F_dp) —
 * every coordinate is an exact int64 until the final shortfall floats,
 * which use the identical IEEE-754 double expression
 *
 *     max(0, 0.5 - K0/n) + max(0, 0.5 - K1/n)
 *
 * so the returned score is bit-equal to both Python paths (see
 * README.md in this directory for the full bit-identity argument).
 *
 * Deliberately free of Python.h: the ABI is flat int64/double arrays
 * driven through ctypes, so the file compiles with any C99 toolchain
 * ("cc -O2 -fPIC -shared") and the pure-Python install never needs it.
 */

#include <stdint.h>
#include <stdlib.h>

/* Bumped whenever the exported signatures change; checked at load time
 * so a stale cached artifact can never be driven with the wrong ABI. */
#define REPRO_SCOREF_ABI 1

int64_t repro_scoref_abi_version(void) { return REPRO_SCOREF_ABI; }

/* One frontier: a[] strictly decreasing, b[] strictly increasing (the
 * canonical form Definition-4.6 pruning leaves), size >= 1. */
typedef struct {
    int64_t *a;
    int64_t *b;
    int64_t capacity;
} buffer_t;

static int ensure_capacity(buffer_t *buf, int64_t need)
{
    int64_t capacity = buf->capacity;
    int64_t *grown;
    if (need <= capacity) {
        return 0;
    }
    while (capacity < need) {
        capacity *= 2;
    }
    grown = realloc(buf->a, (size_t)capacity * sizeof(int64_t));
    if (grown == NULL) {
        return 1;
    }
    buf->a = grown;
    grown = realloc(buf->b, (size_t)capacity * sizeof(int64_t));
    if (grown == NULL) {
        return 1;
    }
    buf->b = grown;
    buf->capacity = capacity;
    return 0;
}

/* Exact F scores for `count` candidates of `m` parent cells each.
 *
 * c0 / c1:  [count * m] int64, candidate-major — cell j of candidate c is
 *           (c0[c*m + j], c1[c*m + j]) = (X=0 count, X=1 count).
 * n:        number of tuples (> 0; every candidate's counts sum to n —
 *           the caller validates, exactly as the NumPy paths do).
 * out:      [count] double, the (non-positive) F scores.
 *
 * Returns 0 on success, 1 on allocation failure, 2 on invalid arguments.
 */
int repro_score_f_batch(const int64_t *c0, const int64_t *c1,
                        int64_t count, int64_t m, int64_t n,
                        double *out)
{
    /* Masses at or above n/2 saturate the shortfall, so coordinates are
     * capped at ceil(n/2): capping only merges states whose shortfall
     * terms are already exactly zero (same argument as score_F_dp). */
    int64_t cap, c, j, i;
    buffer_t bufs[2];
    int cur = 0;
    int status = 0;

    if (n <= 0 || count < 0 || m < 0 || c0 == NULL || c1 == NULL ||
        out == NULL) {
        return 2;
    }
    cap = (n + 1) / 2;

    for (i = 0; i < 2; i++) {
        bufs[i].capacity = 1024;
        bufs[i].a = malloc((size_t)bufs[i].capacity * sizeof(int64_t));
        bufs[i].b = malloc((size_t)bufs[i].capacity * sizeof(int64_t));
        if (bufs[i].a == NULL || bufs[i].b == NULL) {
            status = 1;
        }
    }

    for (c = 0; c < count && status == 0; c++) {
        const int64_t *r0 = c0 + c * m;
        const int64_t *r1 = c1 + c * m;
        int64_t base_a = 0, base_b = 0;
        int64_t *fa, *fb;
        int64_t size;
        double best;

        /* One-sided cells are forced (the other branch is dominated):
         * fold them into the start state, exactly like the NumPy
         * kernel's base_a / base_b. */
        for (j = 0; j < m; j++) {
            if (r1[j] == 0) {
                base_a += r0[j];
            }
            if (r0[j] == 0) {
                base_b += r1[j];
            }
        }
        if (base_a > cap) {
            base_a = cap;
        }
        if (base_b > cap) {
            base_b = cap;
        }
        bufs[cur].a[0] = base_a;
        bufs[cur].b[0] = base_b;
        size = 1;

        for (j = 0; j < m && status == 0; j++) {
            const int64_t a0 = r0[j];
            const int64_t b1 = r1[j];
            int64_t s1, e2, i1, i2, outn, bestb;
            int64_t *ta, *tb;

            if (a0 == 0 || b1 == 0) {
                continue; /* folded into the start state above */
            }
            fa = bufs[cur].a;
            fb = bufs[cur].b;

            /* Branch 1 sends the cell to Z0+ — states (min(a+c0, cap), b),
             * a non-increasing with a capped prefix.  All capped entries
             * share a = cap, and b grows along the frontier, so only the
             * last of them can survive pruning: start the scan there. */
            s1 = 0;
            while (s1 + 1 < size && fa[s1 + 1] + a0 >= cap) {
                s1++;
            }
            /* Branch 2 sends the cell to Z1+ — states (a, min(b+c1, cap)),
             * b non-decreasing with a capped suffix; only the first capped
             * entry (largest a) can survive: end the scan just past it. */
            e2 = size;
            while (e2 - 1 > 0 && fb[e2 - 2] + b1 >= cap) {
                e2--;
            }

            if (ensure_capacity(&bufs[1 - cur],
                                (size - s1) + e2 + 2) != 0) {
                status = 1;
                break;
            }
            ta = bufs[1 - cur].a;
            tb = bufs[1 - cur].b;

            /* Two-pointer merge in (a desc, b desc) order — the order of
             * the NumPy prune's lexsort((-b, -a)) — keeping a state iff
             * its b strictly exceeds every b seen so far (the running-max
             * scan of Definition 4.6). */
            i1 = s1;
            i2 = 0;
            outn = 0;
            bestb = INT64_MIN;
            while (i1 < size || i2 < e2) {
                int64_t aa, bb;
                int use1;
                if (i1 >= size) {
                    use1 = 0;
                } else if (i2 >= e2) {
                    use1 = 1;
                } else {
                    int64_t a1v = fa[i1] + a0;
                    int64_t b2v = fb[i2] + b1;
                    if (a1v > cap) {
                        a1v = cap;
                    }
                    if (b2v > cap) {
                        b2v = cap;
                    }
                    if (a1v != fa[i2]) {
                        use1 = (a1v > fa[i2]);
                    } else {
                        use1 = (fb[i1] >= b2v);
                    }
                }
                if (use1) {
                    aa = fa[i1] + a0;
                    if (aa > cap) {
                        aa = cap;
                    }
                    bb = fb[i1];
                    i1++;
                } else {
                    aa = fa[i2];
                    bb = fb[i2] + b1;
                    if (bb > cap) {
                        bb = cap;
                    }
                    i2++;
                }
                if (bb > bestb) {
                    ta[outn] = aa;
                    tb[outn] = bb;
                    outn++;
                    bestb = bb;
                }
            }
            cur = 1 - cur;
            size = outn;
        }
        if (status != 0) {
            break;
        }

        /* Shortfall floats: the one place doubles appear, using the same
         * expression and operand order as both Python paths.  int64 ->
         * double casts round exactly like NumPy's astype(float64). */
        fa = bufs[cur].a;
        fb = bufs[cur].b;
        best = 2.0; /* shortfalls are in [0, 1] */
        for (i = 0; i < size; i++) {
            double sa = 0.5 - (double)fa[i] / (double)n;
            double sb = 0.5 - (double)fb[i] / (double)n;
            double value;
            if (sa < 0.0) {
                sa = 0.0;
            }
            if (sb < 0.0) {
                sb = 0.0;
            }
            value = sa + sb;
            if (value < best) {
                best = value;
            }
        }
        out[c] = -best;
    }

    for (i = 0; i < 2; i++) {
        free(bufs[i].a);
        free(bufs[i].b);
    }
    return status;
}
