"""Distribution learning: noisy conditionals via the Laplace mechanism.

Implements Algorithm 1 (binary domains, degree-``k`` networks: the first
``k`` conditionals are derived from the ``(k+1)``-th noisy joint at no
extra privacy cost) and Algorithm 3 (general domains: one noisy joint per
AP pair, budget split evenly over all ``d``).

Each released conditional is a :class:`ConditionalTable`: a row-stochastic
matrix ``Pr*[X | Π]`` indexed by the mixed-radix flattening of the parent
values (parents sorted by name, as in :class:`~repro.bn.network.APPair`).

Batched materialization
-----------------------
The contingency counts behind every ``Pr[Π, X]`` are pure data statistics;
only the Laplace perturbation consumes randomness or budget.  A
:class:`JointCounter` therefore materializes all of a network's joints in
grouped single-pass ``np.bincount`` calls (pairs sharing a parent set share
one pass, and the flattened parent index of each parent set is computed
once and reused), then memoizes the integer counts per AP pair so repeated
fits over the same table — an ε sweep, or the repeat cells of the figure
experiments — never rescan the data.  Noise draws stay strictly per-pair in
network order, so seeded outputs are bit-identical to the historical
per-pair path (pinned by the golden-fingerprint regression tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bn.network import APPair, BayesianNetwork
from repro.bn.quality import ParentIndexCache, generalized_codes
from repro.data.marginals import (
    conditional_from_joint,
    domain_size,
    ensure_int64_domain,
    flatten_index,
    normalize_distribution,
    project_distribution,
    stacked_joint_counts,
)
from repro.data.table import Table
from repro.dp.accountant import PrivacyAccountant, split_epsilon_even
from repro.dp.mechanisms import laplace_mechanism

#: L1 sensitivity of a joint probability distribution of one table:
#: changing one tuple moves 1/n of mass from one cell to another.
JOINT_DISTRIBUTION_SENSITIVITY = 2.0


@dataclass(frozen=True)
class ConditionalTable:
    """One released conditional distribution ``Pr*[X | Π]``.

    ``matrix`` has one row per flattened parent configuration (mixed radix
    over ``parent_sizes``, parents in ``parents`` order) and one column per
    child value; rows sum to 1.
    """

    child: str
    parents: Tuple[Tuple[str, int], ...]
    parent_sizes: Tuple[int, ...]
    child_size: int
    matrix: np.ndarray

    def __post_init__(self) -> None:
        expected = (domain_size(self.parent_sizes), self.child_size)
        if self.matrix.shape != expected:
            raise ValueError(
                f"conditional for {self.child!r}: matrix shape "
                f"{self.matrix.shape} != expected {expected}"
            )

    @property
    def row_cdfs(self) -> np.ndarray:
        """Per-row CDFs of ``matrix``, computed once and cached.

        Ancestral sampling inverts each row's CDF per draw batch; caching
        here makes repeated ``model.sample()`` / ``fit_sample(n=...)``
        calls on one fitted model stop recomputing ``np.cumsum`` per call.
        The values are exactly ``np.cumsum(matrix, axis=1)`` with the last
        column clamped to 1.0 (guarding rounding drift), so cached and
        fresh computations are bit-identical.  The array is read-only.
        """
        cached = getattr(self, "_row_cdfs", None)
        if cached is None:
            cached = np.cumsum(self.matrix, axis=1)
            cached[:, -1] = 1.0
            cached.setflags(write=False)
            object.__setattr__(self, "_row_cdfs", cached)
        return cached

    @property
    def binary_thresholds(self) -> np.ndarray:
        """First CDF column as a contiguous vector (binary children only).

        For a binary child the whole CDF inversion reduces to one
        comparison against this column (the last column is exactly 1.0 and
        uniforms lie in ``[0, 1)``); a contiguous copy makes the per-draw
        gather cheap.  Values are exactly ``row_cdfs[:, 0]``.
        """
        cached = getattr(self, "_binary_thresholds", None)
        if cached is None:
            cached = np.ascontiguousarray(self.row_cdfs[:, 0])
            cached.setflags(write=False)
            object.__setattr__(self, "_binary_thresholds", cached)
        return cached


@dataclass(frozen=True)
class NoisyModel:
    """The output of distribution learning: conditionals in network order."""

    network: BayesianNetwork
    conditionals: Tuple[ConditionalTable, ...]

    def __post_init__(self) -> None:
        # Sampling looks a conditional up once per attribute per draw batch;
        # index by child so the lookup is O(1) instead of a scan over d.
        object.__setattr__(
            self,
            "_by_child",
            {table.child: table for table in self.conditionals},
        )

    def conditional_for(self, child: str) -> ConditionalTable:
        try:
            return self._by_child[child]
        except KeyError:
            raise KeyError(f"no conditional for {child!r}") from None


class JointCounter:
    """Batched, memoized contingency counts for AP-pair joints.

    All state is derived deterministically from the data: the flattened
    parent configuration of each parent set (a
    :class:`~repro.bn.quality.ParentIndexCache`, shareable with the
    candidate scorer so parent sets selected during structure search are
    never re-flattened here) and the integer counts of each
    ``(child, parents)`` joint.  Counting consumes no randomness and
    spends no budget, so one counter may be shared across many fits over
    the same table (e.g. via :class:`~repro.core.scoring.ScoringCache`)
    without perturbing any seeded output.  Cached count arrays are
    read-only; consumers copy on conversion to probabilities.

    ``table`` may also be a :class:`~repro.data.chunks.ChunkedSource`:
    counts then accumulate chunk by chunk (exact int64 addition — the same
    integers the resident scan produces), with :meth:`warm` counting all
    of a network's parent-set groups in a single pass over the rows.  The
    per-row parent-index cache only applies to resident tables.
    """

    def __init__(
        self, table, parent_index: Optional[ParentIndexCache] = None
    ) -> None:
        self._resident = isinstance(table, Table)
        if parent_index is not None and (
            not self._resident or parent_index.table is not table
        ):
            raise ValueError("parent_index was built for a different table")
        self.table = table
        self._parent_index = (
            parent_index
            if parent_index is not None
            else (ParentIndexCache(table) if self._resident else None)
        )
        self._counts: Dict[Tuple, Tuple[np.ndarray, Tuple[int, ...]]] = {}

    def _pair_key(self, pair: APPair) -> Tuple:
        return (pair.child, pair.parents)

    def warm(self, pairs: Sequence[APPair]) -> None:
        """Materialize the counts of every listed pair in grouped passes.

        Pairs sharing a parent set are counted in one offset-shifted
        ``np.bincount`` over the shared flattened parent index (see
        :func:`repro.data.marginals.stacked_joint_counts`); the resulting
        integer segments are identical to per-pair bincounts.  On a
        chunked source, *all* groups are accumulated in one streaming
        pass over the rows.
        """
        groups: Dict[Tuple, Dict[str, None]] = {}
        for pair in pairs:
            if self._pair_key(pair) not in self._counts:
                # Dict-as-ordered-set: dedupe children per parent set while
                # preserving first-seen order.
                groups.setdefault(pair.parents, {})[pair.child] = None
        if not groups:
            return
        if self._resident:
            for parents, children in groups.items():
                self._count_group(parents, list(children))
            return
        # Lazy import: data.chunks is a sibling leaf module, imported here
        # to keep the module import graph unchanged for resident callers.
        from repro.data.chunks import stream_grouped_joint_counts

        group_list = [
            (parents, tuple(children)) for parents, children in groups.items()
        ]
        for (parents, children), counted in zip(
            group_list, stream_grouped_joint_counts(self.table, group_list)
        ):
            self._store_group(parents, children, counted)

    def _store_group(self, parents, children, counted) -> None:
        """File one group's streamed counts under its per-pair keys."""
        block, offsets, lengths, parent_sizes, child_sizes = counted
        for child, child_size, offset, length in zip(
            children, child_sizes, offsets, lengths
        ):
            counts = np.ascontiguousarray(block[offset : offset + length])
            counts.setflags(write=False)
            self._counts[(child, parents)] = (
                counts,
                tuple(parent_sizes) + (int(child_size),),
            )

    def _count_group(
        self, parents: Tuple[Tuple[str, int], ...], children: Sequence[str]
    ) -> None:
        if not self._resident:
            from repro.data.chunks import stream_stacked_joint_counts

            self._store_group(
                parents,
                tuple(children),
                stream_stacked_joint_counts(self.table, parents, children),
            )
            return
        parent_flat, parent_sizes = self._parent_index.flat(parents)
        parent_dom = domain_size(parent_sizes)
        child_sizes = [self.table.attribute(c).size for c in children]
        for child, child_size in zip(children, child_sizes):
            ensure_int64_domain(
                parent_dom * child_size, f"joint domain of (Π, {child!r})"
            )
        block, offsets, lengths = stacked_joint_counts(
            parent_flat,
            parent_dom,
            [self.table.column(c) for c in children],
            child_sizes,
        )
        for child, child_size, offset, length in zip(
            children, child_sizes, offsets, lengths
        ):
            counts = np.ascontiguousarray(block[offset : offset + length])
            counts.setflags(write=False)
            self._counts[(child, parents)] = (
                counts,
                parent_sizes + (child_size,),
            )

    def counts(self, pair: APPair) -> Tuple[np.ndarray, Tuple[int, ...]]:
        """Integer counts of ``Pr[Π, X]`` (child innermost) and the sizes."""
        key = self._pair_key(pair)
        if key not in self._counts:
            self._count_group(pair.parents, [pair.child])
        return self._counts[key]


def _pair_layout(
    table: Table, pair: APPair
) -> Tuple[List[np.ndarray], List[int]]:
    """Columns and sizes for ``Pr[Π, X]`` (parents in pair order, child last)."""
    columns: List[np.ndarray] = []
    sizes: List[int] = []
    for name, level in pair.parents:
        codes, size = generalized_codes(table, name, level)
        columns.append(codes)
        sizes.append(size)
    columns.append(table.column(pair.child))
    sizes.append(table.attribute(pair.child).size)
    return columns, sizes


def _noisy_joint(
    table,
    pair: APPair,
    epsilon_share: Optional[float],
    rng: np.random.Generator,
    counter: Optional[JointCounter] = None,
) -> Tuple[np.ndarray, List[int]]:
    """Materialize ``Pr[Π, X]``, perturb, clamp, normalize (Alg 1/3 lines 3-5).

    ``epsilon_share`` is the per-marginal budget (``ε₂/(d-k)`` in
    Algorithm 1, ``ε₂/d`` in Algorithm 3), so the Laplace scale is the
    paper's ``2(d-k)/(n·ε₂)`` resp. ``2d/(n·ε₂)``.  ``None`` skips the
    noise entirely — the non-private BestMarginal diagnostic of Figure 11.

    With a ``counter``, the integer counts come from its (batched, memoized)
    cache; they are the exact integers the direct scan produces, so the
    derived floats — and every downstream noise draw — are bit-identical.
    """
    if counter is not None:
        raw, sizes = counter.counts(pair)
        counts = raw.astype(float)
        sizes = list(sizes)
        total = counts.size
    else:
        columns, sizes = _pair_layout(table, pair)
        total = domain_size(sizes)
        flat = flatten_index(np.stack(columns, axis=1), sizes)
        counts = np.bincount(flat, minlength=total).astype(float)
    joint = counts / table.n if table.n else np.full(total, 1.0 / total)
    if epsilon_share is None:
        return normalize_distribution(joint), sizes
    noisy = laplace_mechanism(
        joint,
        sensitivity=JOINT_DISTRIBUTION_SENSITIVITY / max(table.n, 1),
        epsilon=epsilon_share,
        rng=rng,
    )
    return normalize_distribution(noisy), sizes


def _conditional_from(
    pair: APPair, joint: np.ndarray, sizes: Sequence[int]
) -> ConditionalTable:
    child_size = int(sizes[-1])
    return ConditionalTable(
        child=pair.child,
        parents=pair.parents,
        parent_sizes=tuple(int(s) for s in sizes[:-1]),
        child_size=child_size,
        matrix=conditional_from_joint(joint, child_size),
    )


def noisy_conditionals_general(
    table,
    network: BayesianNetwork,
    epsilon2: Optional[float],
    rng: np.random.Generator,
    accountant: Optional[PrivacyAccountant] = None,
    counter: Optional[JointCounter] = None,
    batched: bool = True,
) -> NoisyModel:
    """Algorithm 3: one noisy joint per AP pair, ε₂ split over all ``d``.

    ``epsilon2 = None`` releases exact conditionals (non-private; the
    BestMarginal diagnostic of Figure 11).  ``counter`` reuses a shared
    :class:`JointCounter` (e.g. across the fits of a sweep); without one,
    ``batched=True`` (the default) builds a fresh counter so the network's
    joints are still materialized in grouped single-pass bincounts.
    ``batched=False`` with no counter keeps the historical per-pair scan —
    the naive reference for the distribution-learning benchmark.
    """
    if epsilon2 is not None and epsilon2 <= 0:
        raise ValueError("epsilon2 must be positive")
    if counter is None and batched:
        # repro: allow[PRIV003] -- constructor only binds the source; counting runs per-pair after each in-loop charge
        counter = JointCounter(table)
    if counter is None and not isinstance(table, Table):
        raise ValueError(
            "batched=False requires a resident Table; a chunked source "
            "must count through a JointCounter"
        )
    if counter is not None:
        if counter.table is not table:
            raise ValueError("counter was built for a different table")
        counter.warm(list(network.pairs))
    d = network.d
    share = None if epsilon2 is None else split_epsilon_even(epsilon2, d)
    conditionals: List[ConditionalTable] = []
    for pair in network:
        if accountant is not None and share is not None:
            accountant.charge(f"marginal[{pair.child}]", share)
        joint, sizes = _noisy_joint(table, pair, share, rng, counter)
        conditionals.append(_conditional_from(pair, joint, sizes))
    return NoisyModel(network=network, conditionals=tuple(conditionals))


def noisy_conditionals_fixed_k(
    table,
    network: BayesianNetwork,
    k: int,
    epsilon2: Optional[float],
    rng: np.random.Generator,
    accountant: Optional[PrivacyAccountant] = None,
    counter: Optional[JointCounter] = None,
    batched: bool = True,
) -> NoisyModel:
    """Algorithm 1: materialize ``d - k`` joints; derive the first ``k``
    conditionals from the ``(k+1)``-th noisy joint at zero privacy cost.

    Requires the structural guarantee of Algorithm 2 (Section 3): for every
    ``i ≤ k``, ``X_i ∈ Π_{k+1}`` and ``Π_i ⊂ Π_{k+1}``.  Falls back to
    materializing a pair directly if the guarantee does not hold for it
    (that costs budget, so callers built via Algorithm 2 never hit it).

    ``epsilon2 = None`` releases exact conditionals (non-private; the
    BestMarginal diagnostic of Figure 11).  ``counter`` / ``batched`` work
    as in :func:`noisy_conditionals_general`; only the ``d - k``
    materialized pairs are pre-counted (fallback pairs count on demand).
    """
    if epsilon2 is not None and epsilon2 <= 0:
        raise ValueError("epsilon2 must be positive")
    d = network.d
    if not 0 <= k < max(d, 1):
        raise ValueError(f"k={k} out of range for d={d}")
    if counter is None and batched:
        # repro: allow[PRIV003] -- constructor only binds the source; counting runs per-pair after each in-loop charge
        counter = JointCounter(table)
    if counter is None and not isinstance(table, Table):
        raise ValueError(
            "batched=False requires a resident Table; a chunked source "
            "must count through a JointCounter"
        )
    pairs = list(network.pairs)
    if counter is not None:
        if counter.table is not table:
            raise ValueError("counter was built for a different table")
        counter.warm(pairs[k:])
    share = None if epsilon2 is None else split_epsilon_even(
        epsilon2, max(d - k, 1)
    )
    conditionals: Dict[str, ConditionalTable] = {}
    anchor_joint: Optional[np.ndarray] = None
    anchor_sizes: Optional[List[int]] = None
    anchor_names: Optional[List[str]] = None
    for i in range(k, d):
        pair = pairs[i]
        if accountant is not None and share is not None:
            accountant.charge(f"marginal[{pair.child}]", share)
        joint, sizes = _noisy_joint(table, pair, share, rng, counter)
        conditionals[pair.child] = _conditional_from(pair, joint, sizes)
        if i == k:
            anchor_joint, anchor_sizes = joint, sizes
            anchor_names = [name for name, _ in pair.parents] + [pair.child]
    for i in range(min(k, d)):
        pair = pairs[i]
        derived = _derive_from_anchor(
            pair, anchor_joint, anchor_sizes, anchor_names
        )
        if derived is None:
            # Structural guarantee missing: materialize directly (charged).
            if accountant is not None and share is not None:
                accountant.charge(f"marginal[{pair.child}] (fallback)", share)
            joint, sizes = _noisy_joint(table, pair, share, rng, counter)
            derived = _conditional_from(pair, joint, sizes)
        conditionals[pair.child] = derived
    ordered = tuple(conditionals[pair.child] for pair in pairs)
    return NoisyModel(network=network, conditionals=ordered)


def _derive_from_anchor(
    pair: APPair,
    anchor_joint: Optional[np.ndarray],
    anchor_sizes: Optional[List[int]],
    anchor_names: Optional[List[str]],
) -> Optional[ConditionalTable]:
    """Derive ``Pr*[X_i | Π_i]`` from ``Pr*[X_{k+1}, Π_{k+1}]`` (Alg 1 l.8)."""
    if anchor_joint is None or anchor_names is None:
        return None
    if any(level != 0 for _, level in pair.parents):
        return None
    wanted = [name for name, _ in pair.parents] + [pair.child]
    if any(name not in anchor_names for name in wanted):
        return None
    keep = [anchor_names.index(name) for name in wanted]
    projected = project_distribution(anchor_joint, anchor_sizes, keep)
    sizes = [anchor_sizes[i] for i in keep]
    return _conditional_from(pair, projected, sizes)
