"""Data synthesis: ancestral sampling from the noisy model (Section 3).

Attributes are sampled in the network's construction order, so every parent
is available (at raw granularity) before any child that conditions on it.
Generalized parents are handled by mapping the already-sampled raw codes
through the attribute's taxonomy before indexing the conditional table.
Sampling is vectorized: all ``n`` tuples draw each attribute in one shot,
inverting each conditional's row CDFs — which are computed once per fitted
model and cached on the :class:`~repro.core.noisy_conditionals.ConditionalTable`
(see its ``row_cdfs``), so repeated ``model.sample()`` calls never redo the
``np.cumsum``.  Binary children take a single-comparison fast path that
draws the same uniforms and returns the same codes as the general CDF
inversion.

CDF inversion
-------------
The general path historically materialized the full ``(n, child_size)``
comparison ``uniforms[:, None] > cdf[parent_rows]`` and summed it — O(n·C)
work and memory per draw batch.  :func:`invert_row_cdfs` replaces that with
a vectorized binary search over the CDF columns: O(n·log C) gathers, no
``n × C`` intermediate, and — because each probe evaluates the *same*
``cdf < u`` predicate on the same floats — a provably identical result
(the count of CDF entries strictly below the uniform equals the lower
bound of the first entry at or above it, by monotonicity of each CDF
row).  :func:`broadcast_invert_row_cdfs` keeps the reference
implementation for the equivalence tests and the scaling benchmark.

Streaming releases
------------------
:func:`sample_synthetic_chunks` yields the release as bounded-size chunk
tables instead of one resident ``n × d`` table, for
:func:`repro.data.io.write_csv` to stream to disk.  Each attribute draws
from its own ``rng.spawn`` child stream, so the concatenated output is
invariant to the chunk size (stream ``i`` emits the same ``n`` uniforms in
the same order no matter how they are split across chunks).  Note this is
a *different* (equally seeded-deterministic) stream than the single-stream
:func:`sample_synthetic`, whose draw order interleaves attributes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Sequence

import numpy as np

from repro.core.noisy_conditionals import ConditionalTable, NoisyModel
from repro.core.rng import fallback_rng
from repro.data.attribute import Attribute
from repro.data.chunks import DEFAULT_CHUNK_ROWS
from repro.data.table import Table


def broadcast_invert_row_cdfs(
    cdf: np.ndarray, rows: np.ndarray, uniforms: np.ndarray
) -> np.ndarray:
    """Reference CDF inversion: full ``(n, C)`` comparison, then sum.

    For each tuple ``t``, counts how many entries of ``cdf[rows[t]]`` its
    uniform strictly exceeds.  Kept as the brute-force reference that
    :func:`invert_row_cdfs` is tested against (and benchmarked against in
    ``benchmarks/test_bench_scale.py``); O(n·C) time and memory.
    """
    return (uniforms[:, None] > cdf[rows]).sum(axis=1).astype(np.int64)


def invert_row_cdfs(
    cdf: np.ndarray, rows: np.ndarray, uniforms: np.ndarray
) -> np.ndarray:
    """Batched per-row CDF inversion by vectorized binary search.

    ``cdf`` is a ``(rows, C)`` matrix of nondecreasing row CDFs,
    ``rows[t]`` selects tuple ``t``'s row and ``uniforms[t]`` its draw.
    Returns, per tuple, the first column index whose CDF value is
    ``>= uniform`` — equivalently the number of entries strictly below it,
    exactly what :func:`broadcast_invert_row_cdfs` computes: every binary-
    search probe evaluates the identical ``cdf < u`` float comparison, and
    the probed predicate is monotone along each (nondecreasing) CDF row,
    so the two inversions agree bit for bit on every input.  O(n·log C)
    gathers instead of an ``n × C`` broadcast.
    """
    count = rows.shape[0]
    width = cdf.shape[1]
    lo = np.zeros(count, dtype=np.int64)
    hi = np.full(count, width, dtype=np.int64)
    while True:
        active = lo < hi
        if not active.any():
            return lo
        mid = (lo + hi) >> 1
        # Converged lanes may sit at mid == width; clamp their (discarded)
        # probe index instead of branching per lane.
        below = cdf[rows, np.minimum(mid, width - 1)] < uniforms
        lo = np.where(active & below, mid + 1, lo)
        hi = np.where(active & ~below, mid, hi)


def _invert_conditional(
    conditional: ConditionalTable,
    parent_rows: np.ndarray,
    uniforms: np.ndarray,
) -> np.ndarray:
    """Map uniforms to child codes through the conditional's row CDFs.

    For binary children only the first CDF column can be exceeded
    (uniforms lie in ``[0, 1)`` and the last column is exactly 1.0), so
    one gather + one comparison yields the identical codes.
    """
    if conditional.child_size == 2:
        thresholds = conditional.binary_thresholds
        return (uniforms > thresholds[parent_rows]).astype(np.int64)
    return invert_row_cdfs(conditional.row_cdfs, parent_rows, uniforms)


def _sample_rows(
    conditional: ConditionalTable,
    parent_rows: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw one child value per tuple from the conditional's row CDFs."""
    uniforms = rng.random(parent_rows.shape[0])
    return _invert_conditional(conditional, parent_rows, uniforms)


def _check_schema(
    model: NoisyModel, attributes: Sequence[Attribute]
) -> Dict[str, Attribute]:
    """Validate that the network places exactly the requested schema."""
    by_name: Dict[str, Attribute] = {a.name: a for a in attributes}
    placed = {pair.child for pair in model.network}
    missing = [a.name for a in attributes if a.name not in placed]
    if missing:
        raise ValueError(
            "model's network does not place schema attribute(s) "
            f"{missing}; a truncated or custom network cannot synthesize "
            "columns for them"
        )
    unknown = sorted(placed - set(by_name))
    if unknown:
        raise ValueError(
            f"model's network places attribute(s) {unknown} that are not "
            "in the requested schema"
        )
    return by_name


def _ancestral_block(
    model: NoisyModel,
    by_name: Dict[str, Attribute],
    n: int,
    draw: Callable[[int, ConditionalTable, np.ndarray], np.ndarray],
) -> Dict[str, np.ndarray]:
    """Sample one block of ``n`` tuples, attribute by attribute.

    ``draw(index, conditional, parent_rows)`` produces the child codes of
    the network's ``index``-th attribute — a single shared stream through
    :func:`_sample_rows` for the monolithic path, one spawned stream per
    attribute for the chunked path.
    """
    sampled: Dict[str, np.ndarray] = {}
    for index, pair in enumerate(model.network):
        conditional = model.conditional_for(pair.child)
        if pair.parents:
            parent_codes = []
            for name, level in pair.parents:
                codes = sampled[name]
                if level != 0:
                    codes = by_name[name].generalization_map(level)[codes]
                parent_codes.append(codes)
            # Mixed-radix accumulation, same integer arithmetic as
            # data.marginals.flatten_index without its stack/validation
            # overhead per draw batch: the conditional's matrix shape
            # already proves the parent domain fits int64 indexing.
            rows = parent_codes[0]
            for codes, size in zip(
                parent_codes[1:], conditional.parent_sizes[1:]
            ):
                rows = rows * int(size) + codes
        else:
            rows = np.zeros(n, dtype=np.int64)
        sampled[pair.child] = draw(index, conditional, rows)
    return sampled


def sample_synthetic(
    model: NoisyModel,
    attributes: Sequence[Attribute],
    n: int,
    rng: Optional[np.random.Generator] = None,
) -> Table:
    """Sample ``n`` synthetic tuples from the noisy Bayesian model.

    Parameters
    ----------
    model:
        Output of the distribution-learning phase.  Its network must place
        every attribute of ``attributes`` (and no attribute outside them);
        a mismatched schema raises :class:`ValueError` up front, naming
        the offending attributes.
    attributes:
        The schema of the original table (synthetic tuples use the same
        attributes, in the same order — the released dataset "obeys the
        same schema and format of the original input").
    n:
        Number of tuples; the paper releases ``n`` equal to the input size.
    """
    rng = fallback_rng(rng)
    if n < 0:
        raise ValueError("n must be non-negative")
    by_name = _check_schema(model, attributes)
    # _sample_rows is resolved at call time so the benchmark's seed-path
    # reference implementation can be swapped in for timing comparisons.
    sampled = _ancestral_block(
        model,
        by_name,
        n,
        lambda index, conditional, rows: _sample_rows(conditional, rows, rng),
    )
    ordered_attrs = [by_name[a.name] for a in attributes]
    # Codes are in [0, attr.size) by construction (each draw inverts a
    # conditional with exactly attr.size columns), so skip the validating
    # constructor's per-column scans.
    return Table.from_trusted_columns(
        ordered_attrs, {a.name: sampled[a.name] for a in ordered_attrs}
    )


def sample_synthetic_split(
    model: NoisyModel,
    attributes: Sequence[Attribute],
    counts: Sequence[int],
    rng: Optional[np.random.Generator] = None,
) -> list:
    """One coalesced draw serving many ``sample(n_i)`` requests.

    Draws ``sum(counts)`` tuples with a **single** vectorized
    :func:`sample_synthetic` pass and slices the result into one table per
    requested count, in order.  This is the serving layer's batching
    primitive: ``m`` concurrent requests cost one ancestral pass over the
    network (one uniform block and one CDF inversion per attribute)
    instead of ``m``, and the concatenation of the returned tables is
    bit-identical to ``sample_synthetic(model, attributes, sum(counts),
    rng)`` — slicing rows is pure post-processing of the very same draw,
    so coalescing changes throughput, never output.
    """
    counts = [int(count) for count in counts]
    if any(count < 0 for count in counts):
        raise ValueError(f"counts must be non-negative; got {counts}")
    total = sum(counts)
    table = sample_synthetic(model, attributes, total, rng)
    slices = []
    start = 0
    for count in counts:
        slices.append(table.take(np.arange(start, start + count)))
        start += count
    return slices


def sample_synthetic_chunks(
    model: NoisyModel,
    attributes: Sequence[Attribute],
    n: int,
    rng: Optional[np.random.Generator] = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Iterator[Table]:
    """Sample ``n`` synthetic tuples as a stream of bounded-size chunks.

    Yields :class:`~repro.data.Table` chunks of at most ``chunk_rows``
    rows whose concatenation is the full release — feed them straight to
    :func:`repro.data.io.write_csv` and a million-row release never holds
    more than one chunk of codes in memory.  At least one (possibly
    empty) chunk is always yielded, so the schema survives ``n == 0``.

    Determinism: the parent stream spawns one child stream per network
    attribute (``rng.spawn``), and stream ``i`` draws attribute ``i``'s
    ``n`` uniforms in row order across chunks — so for a fixed seed the
    concatenated release is **invariant to ``chunk_rows``** (asserted in
    ``tests/core/test_sampler.py``).  The draw order differs from the
    single-stream :func:`sample_synthetic`, so the two paths are each
    deterministic but not bit-identical to each other.
    """
    rng = fallback_rng(rng)
    if n < 0:
        raise ValueError("n must be non-negative")
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be positive")
    by_name = _check_schema(model, attributes)
    ordered_attrs = [by_name[a.name] for a in attributes]
    streams = rng.spawn(model.network.d)
    start = 0
    while True:
        count = min(chunk_rows, n - start)
        sampled = _ancestral_block(
            model,
            by_name,
            count,
            lambda index, conditional, rows: _invert_conditional(
                conditional, rows, streams[index].random(rows.shape[0])
            ),
        )
        # Codes are in-range by construction, exactly as in
        # sample_synthetic; skip the validating constructor's scans.
        yield Table.from_trusted_columns(
            ordered_attrs, {a.name: sampled[a.name] for a in ordered_attrs}
        )
        start += count
        if start >= n:
            return
