"""Data synthesis: ancestral sampling from the noisy model (Section 3).

Attributes are sampled in the network's construction order, so every parent
is available (at raw granularity) before any child that conditions on it.
Generalized parents are handled by mapping the already-sampled raw codes
through the attribute's taxonomy before indexing the conditional table.
Sampling is vectorized: all ``n`` tuples draw each attribute in one shot.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.noisy_conditionals import ConditionalTable, NoisyModel
from repro.data.attribute import Attribute
from repro.data.marginals import flatten_index
from repro.data.table import Table


def _sample_rows(
    conditional: ConditionalTable,
    parent_rows: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw one child value per tuple from the conditional's row CDFs."""
    matrix = conditional.matrix
    cdf = np.cumsum(matrix, axis=1)
    cdf[:, -1] = 1.0  # guard against rounding drift in the last column
    uniforms = rng.random(parent_rows.shape[0])
    return (uniforms[:, None] > cdf[parent_rows]).sum(axis=1).astype(np.int64)


def sample_synthetic(
    model: NoisyModel,
    attributes: Sequence[Attribute],
    n: int,
    rng: Optional[np.random.Generator] = None,
) -> Table:
    """Sample ``n`` synthetic tuples from the noisy Bayesian model.

    Parameters
    ----------
    model:
        Output of the distribution-learning phase.
    attributes:
        The schema of the original table (synthetic tuples use the same
        attributes, in the same order — the released dataset "obeys the
        same schema and format of the original input").
    n:
        Number of tuples; the paper releases ``n`` equal to the input size.
    """
    if rng is None:
        rng = np.random.default_rng()
    if n < 0:
        raise ValueError("n must be non-negative")
    by_name: Dict[str, Attribute] = {a.name: a for a in attributes}
    sampled: Dict[str, np.ndarray] = {}
    for pair in model.network:
        conditional = model.conditional_for(pair.child)
        if pair.parents:
            parent_codes = []
            for name, level in pair.parents:
                codes = sampled[name]
                if level != 0:
                    codes = by_name[name].generalization_map(level)[codes]
                parent_codes.append(codes)
            rows = flatten_index(
                np.stack(parent_codes, axis=1), conditional.parent_sizes
            )
        else:
            rows = np.zeros(n, dtype=np.int64)
        sampled[pair.child] = _sample_rows(conditional, rows, rng)
    columns = {name: sampled[name] for name in by_name}
    ordered_attrs = [by_name[a.name] for a in attributes]
    return Table(ordered_attrs, {a.name: columns[a.name] for a in ordered_attrs})
