"""Data synthesis: ancestral sampling from the noisy model (Section 3).

Attributes are sampled in the network's construction order, so every parent
is available (at raw granularity) before any child that conditions on it.
Generalized parents are handled by mapping the already-sampled raw codes
through the attribute's taxonomy before indexing the conditional table.
Sampling is vectorized: all ``n`` tuples draw each attribute in one shot,
inverting each conditional's row CDFs — which are computed once per fitted
model and cached on the :class:`~repro.core.noisy_conditionals.ConditionalTable`
(see its ``row_cdfs``), so repeated ``model.sample()`` calls never redo the
``np.cumsum``.  Binary children take a single-comparison fast path that
draws the same uniforms and returns the same codes as the general CDF
inversion.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.noisy_conditionals import ConditionalTable, NoisyModel
from repro.core.rng import fallback_rng
from repro.data.attribute import Attribute
from repro.data.table import Table


def _sample_rows(
    conditional: ConditionalTable,
    parent_rows: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw one child value per tuple from the conditional's row CDFs.

    The general path counts, per tuple, how many CDF entries the uniform
    strictly exceeds.  For binary children only the first CDF column can be
    exceeded (uniforms lie in ``[0, 1)`` and the last column is exactly
    1.0), so one gather + one comparison yields the identical codes.
    """
    uniforms = rng.random(parent_rows.shape[0])
    if conditional.child_size == 2:
        thresholds = conditional.binary_thresholds
        return (uniforms > thresholds[parent_rows]).astype(np.int64)
    cdf = conditional.row_cdfs
    return (uniforms[:, None] > cdf[parent_rows]).sum(axis=1).astype(np.int64)


def sample_synthetic(
    model: NoisyModel,
    attributes: Sequence[Attribute],
    n: int,
    rng: Optional[np.random.Generator] = None,
) -> Table:
    """Sample ``n`` synthetic tuples from the noisy Bayesian model.

    Parameters
    ----------
    model:
        Output of the distribution-learning phase.  Its network must place
        every attribute of ``attributes`` (and no attribute outside them);
        a mismatched schema raises :class:`ValueError` up front, naming
        the offending attributes.
    attributes:
        The schema of the original table (synthetic tuples use the same
        attributes, in the same order — the released dataset "obeys the
        same schema and format of the original input").
    n:
        Number of tuples; the paper releases ``n`` equal to the input size.
    """
    rng = fallback_rng(rng)
    if n < 0:
        raise ValueError("n must be non-negative")
    by_name: Dict[str, Attribute] = {a.name: a for a in attributes}
    placed = {pair.child for pair in model.network}
    missing = [a.name for a in attributes if a.name not in placed]
    if missing:
        raise ValueError(
            "model's network does not place schema attribute(s) "
            f"{missing}; a truncated or custom network cannot synthesize "
            "columns for them"
        )
    unknown = sorted(placed - set(by_name))
    if unknown:
        raise ValueError(
            f"model's network places attribute(s) {unknown} that are not "
            "in the requested schema"
        )
    sampled: Dict[str, np.ndarray] = {}
    for pair in model.network:
        conditional = model.conditional_for(pair.child)
        if pair.parents:
            parent_codes = []
            for name, level in pair.parents:
                codes = sampled[name]
                if level != 0:
                    codes = by_name[name].generalization_map(level)[codes]
                parent_codes.append(codes)
            # Mixed-radix accumulation, same integer arithmetic as
            # data.marginals.flatten_index without its stack/validation
            # overhead per draw batch: the conditional's matrix shape
            # already proves the parent domain fits int64 indexing.
            rows = parent_codes[0]
            for codes, size in zip(
                parent_codes[1:], conditional.parent_sizes[1:]
            ):
                rows = rows * int(size) + codes
        else:
            rows = np.zeros(n, dtype=np.int64)
        sampled[pair.child] = _sample_rows(conditional, rows, rng)
    ordered_attrs = [by_name[a.name] for a in attributes]
    # Codes are in [0, attr.size) by construction (each draw inverts a
    # conditional with exactly attr.size columns), so skip the validating
    # constructor's per-column scans.
    return Table.from_trusted_columns(
        ordered_attrs, {a.name: sampled[a.name] for a in ordered_attrs}
    )
