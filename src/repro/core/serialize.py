"""Serialization of fitted PrivBayes models.

A release consists of the network structure plus the noisy conditionals —
everything needed to sample more synthetic data later (sampling is free
post-processing, so resampling from a stored model costs no extra ε).
Models round-trip through a plain-JSON document; the schema (attribute
domains and taxonomies) is embedded so a stored model is self-contained.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.bn.network import APPair, BayesianNetwork
from repro.core.noisy_conditionals import ConditionalTable, NoisyModel
from repro.data.attribute import Attribute, AttributeKind
from repro.data.marginals import domain_size
from repro.data.taxonomy import TaxonomyTree

PathLike = Union[str, Path]

FORMAT_VERSION = 1

#: Loaded conditionals must have rows summing to 1 within this tolerance
#: (distribution learning normalizes exactly; JSON round-trips floats
#: bit-exactly, so real drift here means the file was edited or damaged).
ROW_SUM_TOLERANCE = 1e-6


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives in the destination's own directory so the
    final rename never crosses a filesystem; a crash mid-write leaves the
    previous contents of ``path`` untouched instead of a truncated file —
    readers see either the old document or the new one, never a prefix.
    Used by :func:`save_model` and the serving layer's dataset ledger.
    """
    path = Path(path)
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as tmp_file:
            tmp_file.write(text)
            tmp_file.flush()
            os.fsync(tmp_file.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _taxonomy_to_dict(taxonomy: TaxonomyTree) -> dict:
    levels = []
    for level in range(1, taxonomy.height):
        # Recover the per-level parent arrays from the leaf maps.
        below = taxonomy.leaf_to_level(level - 1)
        here = taxonomy.leaf_to_level(level)
        size_below = taxonomy.level_size(level - 1)
        parents = [0] * size_below
        for leaf in range(taxonomy.leaf_count):
            parents[int(below[leaf])] = int(here[leaf])
        levels.append(
            {"parents": parents, "labels": list(taxonomy.level_labels(level))}
        )
    return {"leaves": list(taxonomy.level_labels(0)), "levels": levels}


def _taxonomy_from_dict(data: dict) -> TaxonomyTree:
    return TaxonomyTree(
        data["leaves"],
        [(lvl["parents"], lvl["labels"]) for lvl in data["levels"]],
    )


def _attribute_to_dict(attr: Attribute) -> dict:
    out = {
        "name": attr.name,
        "values": list(attr.values),
        "kind": attr.kind.value,
    }
    if attr.taxonomy is not None:
        out["taxonomy"] = _taxonomy_to_dict(attr.taxonomy)
    return out


def _attribute_from_dict(data: dict) -> Attribute:
    taxonomy = (
        _taxonomy_from_dict(data["taxonomy"]) if "taxonomy" in data else None
    )
    return Attribute(
        name=data["name"],
        values=tuple(data["values"]),
        kind=AttributeKind(data["kind"]),
        taxonomy=taxonomy,
    )


def model_to_dict(model: NoisyModel, attributes) -> dict:
    """Serialize a noisy model (+ schema) to a JSON-compatible dict."""
    return {
        "format_version": FORMAT_VERSION,
        "attributes": [_attribute_to_dict(a) for a in attributes],
        "network": [
            {"child": pair.child, "parents": [list(p) for p in pair.parents]}
            for pair in model.network
        ],
        "conditionals": [
            {
                "child": cond.child,
                "parents": [list(p) for p in cond.parents],
                "parent_sizes": list(cond.parent_sizes),
                "child_size": cond.child_size,
                "matrix": cond.matrix.tolist(),
            }
            for cond in model.conditionals
        ],
    }


def _conditional_from_entry(entry: dict, index: int) -> ConditionalTable:
    """Deserialize + validate one conditional, naming it in every error."""
    name = entry.get("child") if isinstance(entry, dict) else None
    label = repr(name) if isinstance(name, str) else f"#{index}"
    try:
        child = str(entry["child"])
        parents = tuple(
            (str(pname), int(level)) for pname, level in entry["parents"]
        )
        parent_sizes = tuple(int(s) for s in entry["parent_sizes"])
        child_size = int(entry["child_size"])
        matrix = np.asarray(entry["matrix"], dtype=float)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"conditional {label}: malformed entry ({exc})"
        ) from exc
    if any(size < 1 for size in parent_sizes) or child_size < 1:
        raise ValueError(
            f"conditional {label}: domain sizes must be positive; got "
            f"parent_sizes={parent_sizes}, child_size={child_size}"
        )
    expected = (domain_size(parent_sizes), child_size)
    if matrix.ndim != 2 or matrix.shape != expected:
        raise ValueError(
            f"conditional {label}: matrix shape {matrix.shape} != expected "
            f"{expected} (= (prod(parent_sizes), child_size))"
        )
    if not np.isfinite(matrix).all():
        raise ValueError(
            f"conditional {label}: matrix contains non-finite entries"
        )
    if (matrix < 0).any():
        raise ValueError(
            f"conditional {label}: matrix contains negative probabilities"
        )
    row_sums = matrix.sum(axis=1)
    off = np.abs(row_sums - 1.0) > ROW_SUM_TOLERANCE
    if off.any():
        row = int(np.argmax(off))
        raise ValueError(
            f"conditional {label}: row {row} sums to {row_sums[row]:.6g}, "
            "not 1 — not a probability distribution"
        )
    return ConditionalTable(
        child=child,
        parents=parents,
        parent_sizes=parent_sizes,
        child_size=child_size,
        matrix=matrix,
    )


def _parent_level_size(attribute: Attribute, level: int) -> int:
    if level == 0:
        return attribute.size
    if attribute.taxonomy is None:
        raise ValueError(
            f"attribute {attribute.name!r} has no taxonomy but is used as "
            f"a generalized parent at level {level}"
        )
    return attribute.taxonomy.level_size(level)


def _validate_model(
    network: BayesianNetwork,
    conditionals: Sequence[ConditionalTable],
    attributes: Sequence[Attribute],
) -> None:
    """Cross-check network ↔ conditionals ↔ schema before accepting a load.

    A stale or hand-edited document that passed the per-conditional checks
    can still disagree with itself (a conditional for an attribute the
    network never places, domain sizes drifted from the schema); catching
    that here raises a :class:`ValueError` naming the bad conditional
    instead of a late ``IndexError`` — or silent garbage — deep inside
    ``sample_synthetic``.
    """
    by_name = {a.name: a for a in attributes}
    cond_by_child: Dict[str, ConditionalTable] = {}
    for cond in conditionals:
        if cond.child in cond_by_child:
            raise ValueError(
                f"duplicate conditional for child {cond.child!r}"
            )
        cond_by_child[cond.child] = cond
    network_children = [pair.child for pair in network]
    if sorted(network_children) != sorted(cond_by_child):
        missing = sorted(set(network_children) - set(cond_by_child))
        extra = sorted(set(cond_by_child) - set(network_children))
        raise ValueError(
            "network children do not match conditionals: "
            f"missing conditionals for {missing}, "
            f"conditionals without a network pair: {extra}"
        )
    for pair in network:
        cond = cond_by_child[pair.child]
        if cond.parents != pair.parents:
            raise ValueError(
                f"conditional {pair.child!r}: parents {cond.parents} != "
                f"network parents {pair.parents}"
            )
        attribute = by_name.get(pair.child)
        if attribute is None:
            raise ValueError(
                f"conditional {pair.child!r}: child is not a schema "
                f"attribute (schema has {sorted(by_name)})"
            )
        if cond.child_size != attribute.size:
            raise ValueError(
                f"conditional {pair.child!r}: child_size {cond.child_size} "
                f"!= schema domain size {attribute.size}"
            )
        for (pname, level), size in zip(cond.parents, cond.parent_sizes):
            parent_attr = by_name.get(pname)
            if parent_attr is None:
                raise ValueError(
                    f"conditional {pair.child!r}: parent {pname!r} is not "
                    "a schema attribute"
                )
            expected = _parent_level_size(parent_attr, level)
            if size != expected:
                raise ValueError(
                    f"conditional {pair.child!r}: parent {pname!r} at "
                    f"level {level} has size {size} != schema size "
                    f"{expected}"
                )


def model_from_dict(data: dict):
    """Inverse of :func:`model_to_dict`; returns (model, attributes).

    Validates everything it loads — per-conditional (matrix shape equals
    ``(prod(parent_sizes), child_size)``, entries finite and nonnegative,
    rows summing to ~1) and cross-document (network children match the
    conditionals and the schema, parent domains match the attribute /
    taxonomy-level sizes) — raising :class:`ValueError` that names the
    bad conditional, so a damaged registry entry fails at load time
    rather than as garbage samples or a late ``IndexError``.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported model format version {version!r}")
    try:
        attribute_entries = data["attributes"]
        network_entries = data["network"]
        conditional_entries = data["conditionals"]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"model document is missing section {exc}") from exc
    attributes = [_attribute_from_dict(a) for a in attribute_entries]
    network = BayesianNetwork(
        [
            APPair.make(entry["child"], [tuple(p) for p in entry["parents"]])
            for entry in network_entries
        ]
    )
    conditionals = tuple(
        _conditional_from_entry(entry, index)
        for index, entry in enumerate(conditional_entries)
    )
    _validate_model(network, conditionals, attributes)
    return NoisyModel(network=network, conditionals=conditionals), attributes


def save_model(model: NoisyModel, attributes, path: PathLike) -> None:
    """Write a model (+ schema) to a JSON file, atomically.

    The document lands via :func:`atomic_write_text`: a crash mid-write
    cannot leave a truncated registry entry — ``path`` holds either the
    previous model or the complete new one.
    """
    atomic_write_text(path, json.dumps(model_to_dict(model, attributes)))


def load_model(path: PathLike):
    """Load a model saved by :func:`save_model`; returns (model, attrs).

    Raises :class:`ValueError` naming the file for documents that are not
    valid JSON (e.g. a truncated write from the historical non-atomic
    path) and for structurally invalid models (see
    :func:`model_from_dict`).
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"model file {path} is not valid JSON (truncated or corrupt "
            f"write?): {exc}"
        ) from exc
    try:
        return model_from_dict(data)
    except ValueError as exc:
        raise ValueError(f"model file {path}: {exc}") from exc
