"""Serialization of fitted PrivBayes models.

A release consists of the network structure plus the noisy conditionals —
everything needed to sample more synthetic data later (sampling is free
post-processing, so resampling from a stored model costs no extra ε).
Models round-trip through a plain-JSON document; the schema (attribute
domains and taxonomies) is embedded so a stored model is self-contained.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.bn.network import APPair, BayesianNetwork
from repro.core.noisy_conditionals import ConditionalTable, NoisyModel
from repro.data.attribute import Attribute, AttributeKind
from repro.data.taxonomy import TaxonomyTree

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def _taxonomy_to_dict(taxonomy: TaxonomyTree) -> dict:
    levels = []
    for level in range(1, taxonomy.height):
        # Recover the per-level parent arrays from the leaf maps.
        below = taxonomy.leaf_to_level(level - 1)
        here = taxonomy.leaf_to_level(level)
        size_below = taxonomy.level_size(level - 1)
        parents = [0] * size_below
        for leaf in range(taxonomy.leaf_count):
            parents[int(below[leaf])] = int(here[leaf])
        levels.append(
            {"parents": parents, "labels": list(taxonomy.level_labels(level))}
        )
    return {"leaves": list(taxonomy.level_labels(0)), "levels": levels}


def _taxonomy_from_dict(data: dict) -> TaxonomyTree:
    return TaxonomyTree(
        data["leaves"],
        [(lvl["parents"], lvl["labels"]) for lvl in data["levels"]],
    )


def _attribute_to_dict(attr: Attribute) -> dict:
    out = {
        "name": attr.name,
        "values": list(attr.values),
        "kind": attr.kind.value,
    }
    if attr.taxonomy is not None:
        out["taxonomy"] = _taxonomy_to_dict(attr.taxonomy)
    return out


def _attribute_from_dict(data: dict) -> Attribute:
    taxonomy = (
        _taxonomy_from_dict(data["taxonomy"]) if "taxonomy" in data else None
    )
    return Attribute(
        name=data["name"],
        values=tuple(data["values"]),
        kind=AttributeKind(data["kind"]),
        taxonomy=taxonomy,
    )


def model_to_dict(model: NoisyModel, attributes) -> dict:
    """Serialize a noisy model (+ schema) to a JSON-compatible dict."""
    return {
        "format_version": FORMAT_VERSION,
        "attributes": [_attribute_to_dict(a) for a in attributes],
        "network": [
            {"child": pair.child, "parents": [list(p) for p in pair.parents]}
            for pair in model.network
        ],
        "conditionals": [
            {
                "child": cond.child,
                "parents": [list(p) for p in cond.parents],
                "parent_sizes": list(cond.parent_sizes),
                "child_size": cond.child_size,
                "matrix": cond.matrix.tolist(),
            }
            for cond in model.conditionals
        ],
    }


def model_from_dict(data: dict):
    """Inverse of :func:`model_to_dict`; returns (model, attributes)."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported model format version {version!r}")
    attributes = [_attribute_from_dict(a) for a in data["attributes"]]
    network = BayesianNetwork(
        [
            APPair.make(entry["child"], [tuple(p) for p in entry["parents"]])
            for entry in data["network"]
        ]
    )
    conditionals = tuple(
        ConditionalTable(
            child=entry["child"],
            parents=tuple((name, int(level)) for name, level in entry["parents"]),
            parent_sizes=tuple(int(s) for s in entry["parent_sizes"]),
            child_size=int(entry["child_size"]),
            matrix=np.asarray(entry["matrix"], dtype=float),
        )
        for entry in data["conditionals"]
    )
    return NoisyModel(network=network, conditionals=conditionals), attributes


def save_model(model: NoisyModel, attributes, path: PathLike) -> None:
    """Write a model (+ schema) to a JSON file."""
    Path(path).write_text(json.dumps(model_to_dict(model, attributes)))


def load_model(path: PathLike):
    """Load a model saved by :func:`save_model`; returns (model, attrs)."""
    return model_from_dict(json.loads(Path(path).read_text()))
