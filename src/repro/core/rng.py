"""Central RNG fallback: the one approved unseeded-randomness sink.

Every public entry point accepts an optional numpy ``Generator`` so callers
control determinism end to end (seeded goldens, sweep cells, subprocess
workers).  When a caller passes ``None`` the library still needs *some*
source of randomness; historically each call site constructed its own
unseeded ``np.random.default_rng()``, which left the determinism static
analysis (rule DET001 of :mod:`repro.analysis`) unable to tell deliberate
OS-entropy fallbacks from accidental ones — the class of drift behind the
fig12-15 seeding bug.

:func:`fallback_rng` is that fallback, in exactly one annotated place.  The
analyzer flags every other unseeded constructor; new code must either
thread an explicit ``rng`` or call this helper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def fallback_rng(
    rng: Optional[np.random.Generator] = None,
) -> np.random.Generator:
    """Return ``rng`` unchanged, or a fresh OS-entropy generator when ``None``.

    The seeded path is the identity, so routing call sites through this
    helper cannot change any seeded output (the golden-fingerprint
    regression tests pin this).
    """
    if rng is not None:
        return rng
    return np.random.default_rng()  # repro: allow[DET001] -- the sole sanctioned OS-entropy fallback; every other site threads an rng or calls fallback_rng()
