"""Score functions for exponential-mechanism AP-pair selection.

Three score functions, matching Table 4 of the paper:

* ``I(X, Π)`` — mutual information (Section 4.2).  Sensitivity per
  Lemma 4.1; large relative to its range, hence noisy selection.
* ``F(X, Π)`` — negative half L1 distance to the closest *maximum* joint
  distribution (Equation 7).  Sensitivity ``1/n`` (Theorem 4.5).  Exact
  computation is NP-hard in general (Theorem 5.1); for a binary child the
  pseudo-polynomial dynamic program of Section 4.4 (with dominated-state
  pruning, Definition 4.6) computes it in ``O(n * |dom(Π)|)``.
* ``R(X, Π)`` — half L1 distance to the independent (zero mutual
  information) joint (Equation 11).  Sensitivity ``3/n + 2/n²``
  (Theorem 5.3); computable on any domain.

All functions take the empirical joint ``Pr[Π, X]`` as a flat vector with
the child attribute innermost (the layout produced by
:func:`repro.data.marginals.marginal_counts` with the child listed last).
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.infotheory.measures import mutual_information

# ---------------------------------------------------------------------------
# Mutual information I and its sensitivity (Lemma 4.1)
# ---------------------------------------------------------------------------


def score_I(joint: np.ndarray, child_size: int) -> float:
    """Mutual information score (Section 4.2)."""
    return mutual_information(joint, child_size)


def sensitivity_I(n: int, binary: bool) -> float:
    """``S(I)`` per Lemma 4.1.

    ``binary`` means the child *or* the parent set has a binary domain.
    """
    if n <= 1:
        # Degenerate single-tuple dataset: fall back to the range bound.
        return 1.0
    n = float(n)
    if binary:
        return (1.0 / n) * math.log2(n) + ((n - 1.0) / n) * math.log2(n / (n - 1.0))
    return (2.0 / n) * math.log2((n + 1.0) / 2.0) + (
        (n - 1.0) / n
    ) * math.log2((n + 1.0) / (n - 1.0))


# ---------------------------------------------------------------------------
# Surrogate F (Sections 4.3-4.4): binary child, dynamic program
# ---------------------------------------------------------------------------


def _pareto_prune(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Keep only non-dominated (a, b) states (Definition 4.6), vectorized.

    Sorts by ``a`` descending / ``b`` descending and keeps states whose
    ``b`` strictly exceeds every ``b`` seen at a larger-or-equal ``a``.
    """
    order = np.lexsort((-b, -a))
    a = a[order]
    b = b[order]
    best_b = np.maximum.accumulate(b)
    # A state survives when its b sets a new running maximum (ties resolved
    # by keeping the first occurrence, i.e. the one with the largest a).
    keep = np.empty(b.size, dtype=bool)
    keep[0] = True
    keep[1:] = b[1:] > best_b[:-1]
    return a[keep], b[keep]


def score_F(joint_counts: np.ndarray, n: int) -> float:
    """Exact ``F(X, Π)`` for a binary child via the Section 4.4 DP.

    Parameters
    ----------
    joint_counts:
        Integer contingency counts laid out as ``Pr[Π, X]`` with the binary
        child innermost: a flat vector of length ``2 * |dom(Π)|`` whose
        entry ``2j + x`` counts tuples with ``Π = π_j, X = x``.
    n:
        Number of tuples (the counts must sum to ``n``).

    Returns the (non-positive) score
    ``F = -min_{Pr⋄} ||Pr - Pr⋄||_1 / 2`` over all maximum joint
    distributions ``Pr⋄`` (Equation 7), evaluated through the reachable
    ``(K0, K1)`` mass states of Equation 10 with dominated-state pruning
    (Definition 4.6) — ``O(n · |dom(Π)|)`` overall.
    """
    counts = np.asarray(joint_counts)
    if counts.size % 2 != 0:
        raise ValueError("F requires a binary child (even-length joint)")
    matrix = counts.reshape(-1, 2)
    int_matrix = np.rint(matrix).astype(np.int64)
    if not np.allclose(matrix, int_matrix):
        raise ValueError("F expects integer contingency counts")
    total = int(int_matrix.sum())
    if total != n:
        raise ValueError(f"counts sum to {total}, expected n={n}")
    if n == 0:
        return -0.5
    # Each column π contributes its X=0 count to K0 or its X=1 count to K1
    # (Equation 10).  Masses at or above n/2 saturate the objective, so
    # coordinates are capped there to bound the frontier size.
    cap = (n + 1) // 2
    a = np.zeros(1, dtype=np.int64)
    b = np.zeros(1, dtype=np.int64)
    for c0, c1 in int_matrix:
        new_a = np.concatenate([np.minimum(a + int(c0), cap), a])
        new_b = np.concatenate([b, np.minimum(b + int(c1), cap)])
        a, b = _pareto_prune(new_a, new_b)
    shortfall = np.maximum(0.0, 0.5 - a / n) + np.maximum(0.0, 0.5 - b / n)
    return -float(shortfall.min())


def score_F_bruteforce(joint_counts: np.ndarray, n: int) -> float:
    """Exponential-time reference implementation of ``F`` (for tests).

    Enumerates all ``2^|dom(Π)|`` assignments of columns to ``Z⁺₀ / Z⁺₁``
    (the equivalence classes of Section 4.4).
    """
    counts = np.asarray(joint_counts)
    matrix = np.rint(counts.reshape(-1, 2)).astype(np.int64)
    m = matrix.shape[0]
    if m > 20:
        raise ValueError("brute force limited to 20 parent cells")
    if n == 0:
        return -0.5
    best = float("inf")
    for mask in range(1 << m):
        k0 = 0
        k1 = 0
        for j in range(m):
            if mask & (1 << j):
                k0 += int(matrix[j, 0])
            else:
                k1 += int(matrix[j, 1])
        value = max(0.0, 0.5 - k0 / n) + max(0.0, 0.5 - k1 / n)
        best = min(best, value)
    return -best


def sensitivity_F(n: int) -> float:
    """``S(F) = 1/n`` (Theorem 4.5)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return 1.0 / n


# ---------------------------------------------------------------------------
# Surrogate R (Section 5.3): any domain
# ---------------------------------------------------------------------------


def score_R(joint: np.ndarray, child_size: int) -> float:
    """``R(X, Π)`` (Equation 11): TV distance to the independent joint.

    ``R = ||Pr[X, Π] - Pr[X] ⊗ Pr[Π]||_1 / 2``; by Pinsker's inequality
    ``R ≤ sqrt(I * ln2 / 2)``, so large ``R`` witnesses large mutual
    information.
    """
    joint = np.asarray(joint, dtype=float)
    matrix = joint.reshape(-1, child_size)
    parent = matrix.sum(axis=1, keepdims=True)
    child = matrix.sum(axis=0, keepdims=True)
    independent = parent @ child
    return float(0.5 * np.abs(matrix - independent).sum())


def sensitivity_R(n: int) -> float:
    """``S(R) ≤ 3/n + 2/n²`` (Theorem 5.3)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return 3.0 / n + 2.0 / (n * n)
