"""Score functions for exponential-mechanism AP-pair selection.

Three score functions, matching Table 4 of the paper:

* ``I(X, Π)`` — mutual information (Section 4.2).  Sensitivity per
  Lemma 4.1; large relative to its range, hence noisy selection.
* ``F(X, Π)`` — negative half L1 distance to the closest *maximum* joint
  distribution (Equation 7).  Sensitivity ``1/n`` (Theorem 4.5).  Exact
  computation is NP-hard in general (Theorem 5.1); for a binary child the
  pseudo-polynomial dynamic program of Section 4.4 (with dominated-state
  pruning, Definition 4.6) computes it in ``O(n * |dom(Π)|)``.
* ``R(X, Π)`` — half L1 distance to the independent (zero mutual
  information) joint (Equation 11).  Sensitivity ``3/n + 2/n²``
  (Theorem 5.3); computable on any domain.

All functions take the empirical joint ``Pr[Π, X]`` as a flat vector with
the child attribute innermost (the layout produced by
:func:`repro.data.marginals.marginal_counts` with the child listed last).

These are thin per-candidate wrappers over the batched kernels of
:mod:`repro.core.score_kernels` — each delegates with a batch of one, so a
scalar call returns exactly the float the batched engine produces for the
same candidate — and the batched F kernel in turn rides whichever backend
:mod:`repro.core.kernel_backend` selected (the compiled ``scoref.c``
frontier-merge tier when a C toolchain is available, NumPy otherwise;
both bit-identical, see ``python -m repro.kernels``).
:func:`score_F_bruteforce` stays here as the independent
exponential-time test oracle.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.score_kernels import (
    score_F_batch,
    score_I_batch,
    score_R_batch,
)

# ---------------------------------------------------------------------------
# Mutual information I and its sensitivity (Lemma 4.1)
# ---------------------------------------------------------------------------


def score_I(joint: np.ndarray, child_size: int) -> float:
    """Mutual information score (Section 4.2)."""
    flat = np.asarray(joint, dtype=float).reshape(-1)
    return float(score_I_batch(flat, child_size)[0])


def sensitivity_I(n: int, binary: bool) -> float:
    """``S(I)`` per Lemma 4.1.

    ``binary`` means the child *or* the parent set has a binary domain.
    """
    if n <= 1:
        # Degenerate single-tuple dataset: fall back to the range bound.
        return 1.0
    n = float(n)
    if binary:
        return (1.0 / n) * math.log2(n) + ((n - 1.0) / n) * math.log2(n / (n - 1.0))
    return (2.0 / n) * math.log2((n + 1.0) / 2.0) + (
        (n - 1.0) / n
    ) * math.log2((n + 1.0) / (n - 1.0))


# ---------------------------------------------------------------------------
# Surrogate F (Sections 4.3-4.4): binary child, dynamic program
# ---------------------------------------------------------------------------


def score_F(joint_counts: np.ndarray, n: int) -> float:
    """Exact ``F(X, Π)`` for a binary child (Sections 4.3-4.4).

    Parameters
    ----------
    joint_counts:
        Integer contingency counts laid out as ``Pr[Π, X]`` with the binary
        child innermost: a flat vector of length ``2 * |dom(Π)|`` whose
        entry ``2j + x`` counts tuples with ``Π = π_j, X = x``.
    n:
        Number of tuples (the counts must sum to ``n``).

    Returns the (non-positive) score
    ``F = -min_{Pr⋄} ||Pr - Pr⋄||_1 / 2`` over all maximum joint
    distributions ``Pr⋄`` (Equation 7), evaluated over the reachable
    ``(K0, K1)`` mass states of Equation 10 with dominated-state pruning
    (Definition 4.6).  Delegates to the batched kernel
    (:func:`repro.core.score_kernels.score_F_batch`) with a batch of one;
    the per-candidate dynamic program survives as
    :func:`repro.core.score_kernels.score_F_dp`, the kernel's oracle.
    """
    flat = np.asarray(joint_counts).reshape(-1)
    return float(score_F_batch(flat, n)[0])


def score_F_bruteforce(joint_counts: np.ndarray, n: int) -> float:
    """Exponential-time reference implementation of ``F`` (for tests).

    Enumerates all ``2^|dom(Π)|`` assignments of columns to ``Z⁺₀ / Z⁺₁``
    (the equivalence classes of Section 4.4).
    """
    counts = np.asarray(joint_counts)
    matrix = np.rint(counts.reshape(-1, 2)).astype(np.int64)
    m = matrix.shape[0]
    if m > 20:
        raise ValueError("brute force limited to 20 parent cells")
    if n == 0:
        return -0.5
    best = float("inf")
    for mask in range(1 << m):
        k0 = 0
        k1 = 0
        for j in range(m):
            if mask & (1 << j):
                k0 += int(matrix[j, 0])
            else:
                k1 += int(matrix[j, 1])
        value = max(0.0, 0.5 - k0 / n) + max(0.0, 0.5 - k1 / n)
        best = min(best, value)
    return -best


def sensitivity_F(n: int) -> float:
    """``S(F) = 1/n`` (Theorem 4.5)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return 1.0 / n


# ---------------------------------------------------------------------------
# Surrogate R (Section 5.3): any domain
# ---------------------------------------------------------------------------


def score_R(joint: np.ndarray, child_size: int) -> float:
    """``R(X, Π)`` (Equation 11): TV distance to the independent joint.

    ``R = ||Pr[X, Π] - Pr[X] ⊗ Pr[Π]||_1 / 2``; by Pinsker's inequality
    ``R ≤ sqrt(I * ln2 / 2)``, so large ``R`` witnesses large mutual
    information.
    """
    flat = np.asarray(joint, dtype=float).reshape(-1)
    return float(score_R_batch(flat, child_size)[0])


def sensitivity_R(n: int) -> float:
    """``S(R) ≤ 3/n + 2/n²`` (Theorem 5.3)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return 3.0 / n + 2.0 / (n * n)
