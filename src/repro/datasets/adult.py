"""Adult: UCI 1994 US Census extract (45,222 rows, 15 mixed attributes).

Schema-faithful generator for the classic Adult dataset: the real attribute
names and domains (including the 41-country ``native_country``), taxonomy
trees over the categorical attributes (the ``workclass`` tree is exactly
Figure 3 of the paper), and 16-bin discretization for the six continuous
attributes.  Row generation follows the dataset's well-known dependencies:
education drives occupation and salary, age drives marital status and
capital income, sex skews hours and salary, and so on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.attribute import Attribute, AttributeKind, discretize_continuous
from repro.data.table import Table
from repro.data.taxonomy import TaxonomyTree

DEFAULT_N = 45_222

WORKCLASS = (
    "Self-emp-inc",
    "Self-emp-not-inc",
    "Federal-gov",
    "State-gov",
    "Local-gov",
    "Private",
    "Without-pay",
    "Never-worked",
)

#: Figure 3 of the paper, verbatim.
WORKCLASS_GROUPS = (
    ("Self-employed", ("Self-emp-inc", "Self-emp-not-inc")),
    ("Government", ("Federal-gov", "State-gov", "Local-gov")),
    ("Private", ("Private",)),
    ("Unemployed", ("Without-pay", "Never-worked")),
)

EDUCATION = (
    "Preschool",
    "1st-4th",
    "5th-6th",
    "7th-8th",
    "9th",
    "10th",
    "11th",
    "12th",
    "HS-grad",
    "Some-college",
    "Assoc-voc",
    "Assoc-acdm",
    "Bachelors",
    "Masters",
    "Prof-school",
    "Doctorate",
)

EDUCATION_GROUPS = (
    ("Dropout", ("Preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th", "11th", "12th")),
    ("HS-level", ("HS-grad", "Some-college")),
    ("Associate", ("Assoc-voc", "Assoc-acdm")),
    ("Post-secondary", ("Bachelors", "Masters", "Prof-school", "Doctorate")),
)

MARITAL = (
    "Never-married",
    "Married-civ-spouse",
    "Married-AF-spouse",
    "Married-spouse-absent",
    "Separated",
    "Divorced",
    "Widowed",
)

MARITAL_GROUPS = (
    ("Single", ("Never-married",)),
    ("Married", ("Married-civ-spouse", "Married-AF-spouse", "Married-spouse-absent")),
    ("Was-married", ("Separated", "Divorced", "Widowed")),
)

OCCUPATION = (
    "Exec-managerial",
    "Prof-specialty",
    "Tech-support",
    "Sales",
    "Adm-clerical",
    "Craft-repair",
    "Machine-op-inspct",
    "Transport-moving",
    "Handlers-cleaners",
    "Farming-fishing",
    "Other-service",
    "Protective-serv",
    "Priv-house-serv",
    "Armed-Forces",
)

OCCUPATION_GROUPS = (
    ("White-collar", ("Exec-managerial", "Prof-specialty", "Tech-support", "Sales", "Adm-clerical")),
    ("Blue-collar", ("Craft-repair", "Machine-op-inspct", "Transport-moving", "Handlers-cleaners", "Farming-fishing")),
    ("Service", ("Other-service", "Protective-serv", "Priv-house-serv", "Armed-Forces")),
)

RELATIONSHIP = (
    "Husband",
    "Wife",
    "Own-child",
    "Other-relative",
    "Unmarried",
    "Not-in-family",
)

RACE = ("White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other")

RACE_GROUPS = (
    ("White", ("White",)),
    ("Non-white", ("Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other")),
)

SEX = ("Female", "Male")

#: The 41 native countries of the real dataset, grouped by region
#: ("according to the CIA World Factbook", Section 5.1).
COUNTRY_REGIONS = (
    ("North-America", ("United-States", "Canada", "Mexico", "Outlying-US(Guam-USVI-etc)")),
    ("Central-America", ("Cuba", "Jamaica", "Honduras", "Puerto-Rico", "Haiti",
                         "Dominican-Republic", "El-Salvador", "Guatemala", "Nicaragua",
                         "Trinadad&Tobago")),
    ("South-America", ("Columbia", "Ecuador", "Peru",)),
    ("Western-Europe", ("England", "Germany", "Ireland", "France", "Scotland",
                        "Holand-Netherlands", "Italy", "Portugal")),
    ("Eastern-Europe", ("Poland", "Hungary", "Yugoslavia", "Greece")),
    ("Asia", ("India", "Iran", "Philippines", "Cambodia", "Thailand", "Laos",
              "Taiwan", "China", "Japan", "Vietnam", "Hong", "South")),
)

COUNTRIES = tuple(c for _, members in COUNTRY_REGIONS for c in members)


def _categorical(name, values, groups=None, kind=AttributeKind.CATEGORICAL):
    taxonomy = TaxonomyTree.from_groups(values, groups) if groups else None
    return Attribute(name=name, values=values, kind=kind, taxonomy=taxonomy)


def _choice_rows(rng, probs):
    """Vectorized categorical draw: one row of probabilities per sample."""
    cdf = np.cumsum(probs, axis=1)
    cdf[:, -1] = 1.0
    return (rng.random(probs.shape[0])[:, None] > cdf).sum(axis=1).astype(np.int64)


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def load_adult(n: Optional[int] = None, seed: int = 0) -> Table:
    """Generate the Adult stand-in (schema-faithful; see module docstring)."""
    n = DEFAULT_N if n is None else int(n)
    rng = np.random.default_rng(seed)

    age = 17.0 + 73.0 * rng.beta(2.0, 3.5, size=n)
    sex = (rng.random(n) < 0.675).astype(np.int64)  # 1 = Male

    # Education: index 0..15, pushed up for prime-age workers.
    edu_score = rng.normal(9.5 + 1.2 * (age > 25) - 1.5 * (age < 21), 2.8, size=n)
    education = np.clip(np.rint(edu_score), 0, len(EDUCATION) - 1).astype(np.int64)
    education_num = np.clip(education + 1 + rng.normal(0, 0.3, n), 1, 16)

    # Workclass: mostly Private; self-employment grows with age,
    # never-worked concentrates among the young.
    wc_logits = np.zeros((n, len(WORKCLASS)))
    wc_logits[:, WORKCLASS.index("Private")] = 2.2
    wc_logits[:, WORKCLASS.index("Self-emp-not-inc")] = 0.2 + 0.02 * (age - 40)
    wc_logits[:, WORKCLASS.index("Self-emp-inc")] = -0.6 + 0.03 * (age - 45)
    wc_logits[:, WORKCLASS.index("Federal-gov")] = -0.4
    wc_logits[:, WORKCLASS.index("State-gov")] = -0.3
    wc_logits[:, WORKCLASS.index("Local-gov")] = 0.0
    wc_logits[:, WORKCLASS.index("Without-pay")] = -3.0
    wc_logits[:, WORKCLASS.index("Never-worked")] = -4.0 + 2.5 * (age < 20)
    wc_probs = np.exp(wc_logits - wc_logits.max(axis=1, keepdims=True))
    wc_probs /= wc_probs.sum(axis=1, keepdims=True)
    workclass = _choice_rows(rng, wc_probs)

    # Marital status: driven by age.
    m_logits = np.zeros((n, len(MARITAL)))
    m_logits[:, MARITAL.index("Never-married")] = 2.5 - 0.09 * (age - 17)
    m_logits[:, MARITAL.index("Married-civ-spouse")] = -1.0 + 0.07 * (age - 17)
    m_logits[:, MARITAL.index("Married-AF-spouse")] = -4.5
    m_logits[:, MARITAL.index("Married-spouse-absent")] = -3.0
    m_logits[:, MARITAL.index("Separated")] = -2.6 + 0.01 * age
    m_logits[:, MARITAL.index("Divorced")] = -2.8 + 0.045 * (age - 17)
    m_logits[:, MARITAL.index("Widowed")] = -6.0 + 0.09 * age
    m_probs = np.exp(m_logits - m_logits.max(axis=1, keepdims=True))
    m_probs /= m_probs.sum(axis=1, keepdims=True)
    marital = _choice_rows(rng, m_probs)

    # Relationship follows marital status and sex.
    married = np.isin(marital, [MARITAL.index("Married-civ-spouse"),
                                MARITAL.index("Married-AF-spouse")])
    relationship = np.full(n, RELATIONSHIP.index("Not-in-family"), dtype=np.int64)
    relationship[married & (sex == 1)] = RELATIONSHIP.index("Husband")
    relationship[married & (sex == 0)] = RELATIONSHIP.index("Wife")
    young_single = (~married) & (age < 24)
    relationship[young_single & (rng.random(n) < 0.7)] = RELATIONSHIP.index("Own-child")
    leftover = (~married) & (relationship == RELATIONSHIP.index("Not-in-family"))
    unmarried_draw = rng.random(n) < 0.3
    relationship[leftover & unmarried_draw] = RELATIONSHIP.index("Unmarried")
    other_draw = rng.random(n) < 0.08
    relationship[leftover & ~unmarried_draw & other_draw] = RELATIONSHIP.index("Other-relative")

    # Occupation: white-collar odds grow with education; armed forces rare.
    occ_logits = np.zeros((n, len(OCCUPATION)))
    edu_hi = (education_num - 9.0) / 3.0
    for j, name in enumerate(OCCUPATION):
        group = next(g for g, members in OCCUPATION_GROUPS if name in members)
        if group == "White-collar":
            occ_logits[:, j] = 0.4 + 0.9 * edu_hi
        elif group == "Blue-collar":
            occ_logits[:, j] = 0.5 - 0.7 * edu_hi - 0.8 * (sex == 0)
        else:
            occ_logits[:, j] = -0.4 - 0.1 * edu_hi
    occ_logits[:, OCCUPATION.index("Armed-Forces")] = -5.0
    occ_logits[:, OCCUPATION.index("Priv-house-serv")] = -3.5 + 1.0 * (sex == 0)
    occ_probs = np.exp(occ_logits - occ_logits.max(axis=1, keepdims=True))
    occ_probs /= occ_probs.sum(axis=1, keepdims=True)
    occupation = _choice_rows(rng, occ_probs)

    race_probs = np.array([0.855, 0.093, 0.031, 0.009, 0.012])
    race = rng.choice(len(RACE), size=n, p=race_probs).astype(np.int64)

    country = np.full(n, COUNTRIES.index("United-States"), dtype=np.int64)
    foreign = rng.random(n) < 0.093
    foreign_idx = np.nonzero(foreign)[0]
    non_us = [i for i, c in enumerate(COUNTRIES) if c != "United-States"]
    weights = np.array(
        [3.0 if COUNTRIES[i] == "Mexico" else 1.0 for i in non_us]
    )
    weights /= weights.sum()
    country[foreign_idx] = rng.choice(non_us, size=foreign_idx.size, p=weights)

    hours = np.clip(
        rng.normal(40 + 4.0 * (sex == 1) + 1.5 * edu_hi - 12.0 * (age < 20), 9.0),
        1,
        99,
    )

    fnlwgt = np.exp(rng.normal(11.9, 0.55, size=n))

    prime_age = np.clip((age - 17) / 25.0, 0, 1.2)
    gain_p = _sigmoid(-3.4 + 0.8 * edu_hi + 0.8 * prime_age)
    capital_gain = np.where(
        rng.random(n) < gain_p, np.exp(rng.normal(8.3, 1.0, n)), 0.0
    )
    capital_gain = np.clip(capital_gain, 0, 99_999)
    loss_p = _sigmoid(-3.8 + 0.4 * edu_hi + 0.5 * prime_age)
    capital_loss = np.where(
        rng.random(n) < loss_p, np.exp(rng.normal(7.4, 0.4, n)), 0.0
    )
    capital_loss = np.clip(capital_loss, 0, 4_500)

    white_collar = np.isin(
        occupation,
        [OCCUPATION.index(o) for o in ("Exec-managerial", "Prof-specialty", "Tech-support", "Sales")],
    )
    salary_logit = (
        -3.1
        + 0.55 * edu_hi * 3.0
        + 0.035 * (np.clip(age, 17, 60) - 30)
        + 0.03 * (hours - 40)
        + 0.9 * (sex == 1)
        + 0.8 * white_collar
        + 1.2 * married
        + 2.0 * (capital_gain > 5_000)
    )
    salary = (rng.random(n) < _sigmoid(salary_logit)).astype(np.int64)

    # --- Assemble the schema (continuous attributes → 16 equi-width bins).
    age_attr, age_codes = discretize_continuous("age", age, low=17, high=90)
    fnlwgt_attr, fnlwgt_codes = discretize_continuous("fnlwgt", fnlwgt)
    edu_num_attr, edu_num_codes = discretize_continuous(
        "education_num", education_num, low=1, high=16
    )
    gain_attr, gain_codes = discretize_continuous(
        "capital_gain", capital_gain, low=0, high=99_999
    )
    loss_attr, loss_codes = discretize_continuous(
        "capital_loss", capital_loss, low=0, high=4_500
    )
    hours_attr, hours_codes = discretize_continuous(
        "hours_per_week", hours, low=1, high=99
    )

    attrs = [
        age_attr,
        _categorical("workclass", WORKCLASS, WORKCLASS_GROUPS),
        fnlwgt_attr,
        _categorical("education", EDUCATION, EDUCATION_GROUPS),
        edu_num_attr,
        _categorical("marital_status", MARITAL, MARITAL_GROUPS),
        _categorical("occupation", OCCUPATION, OCCUPATION_GROUPS),
        _categorical("relationship", RELATIONSHIP),
        _categorical("race", RACE, RACE_GROUPS),
        Attribute("sex", SEX, AttributeKind.BINARY),
        gain_attr,
        loss_attr,
        hours_attr,
        _categorical("native_country", COUNTRIES, COUNTRY_REGIONS),
        Attribute("salary", ("<=50K", ">50K"), AttributeKind.BINARY),
    ]
    columns = {
        "age": age_codes,
        "workclass": workclass,
        "fnlwgt": fnlwgt_codes,
        "education": education,
        "education_num": edu_num_codes,
        "marital_status": marital,
        "occupation": occupation,
        "relationship": relationship,
        "race": race,
        "sex": sex,
        "capital_gain": gain_codes,
        "capital_loss": loss_codes,
        "hours_per_week": hours_codes,
        "native_country": country,
        "salary": salary,
    }
    return Table(attrs, columns)
