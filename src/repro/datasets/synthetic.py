"""Ground-truth Bayesian-network data generators.

Used both as a generic workload source for tests/benchmarks and as the
substrate for the schema-faithful dataset generators: a ground-truth
network with known conditionals is the natural way to produce correlated
discrete data whose low-dimensional structure PrivBayes should recover.

Two emission modes share one ancestral-sampling core:

* :func:`sample_network` — resident: all ``n`` rows in one
  :class:`~repro.data.Table` (the historical path; its seeded outputs,
  including the four schema-faithful dataset generators built on it, are
  pinned by golden tests and unchanged).
* :class:`NetworkSource` — streaming: the same network emitted as a
  re-iterable :class:`~repro.data.chunks.ChunkedSource` of bounded
  chunks, the million-row workload feed for the scale benchmarks.  Each
  node draws from its own deterministic child stream, so the emitted
  rows are invariant to the chunk size and identical on every pass —
  but (by the per-node stream split) not row-identical to
  :func:`sample_network` under the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.attribute import Attribute
from repro.data.chunks import ChunkedSource, DEFAULT_CHUNK_ROWS
from repro.data.marginals import domain_size, flatten_index
from repro.data.table import Table


@dataclass(frozen=True)
class NodeSpec:
    """One node of a ground-truth network: attribute, parents, CPT.

    ``cpt`` has one row per flattened parent configuration (mixed radix
    over the parents in listed order) and one column per attribute value;
    rows must be stochastic.
    """

    attribute: Attribute
    parents: Tuple[str, ...]
    cpt: np.ndarray

    def __post_init__(self) -> None:
        if self.cpt.ndim != 2 or self.cpt.shape[1] != self.attribute.size:
            raise ValueError(
                f"CPT for {self.attribute.name!r} has shape {self.cpt.shape}; "
                f"expected (*, {self.attribute.size})"
            )
        if not np.allclose(self.cpt.sum(axis=1), 1.0, atol=1e-8):
            raise ValueError(f"CPT rows for {self.attribute.name!r} must sum to 1")


def _spec_cdfs(specs: Sequence[NodeSpec]) -> List[np.ndarray]:
    """Row CDFs of every spec's CPT, last column clamped to exactly 1.0."""
    cdfs = []
    for spec in specs:
        cdf = np.cumsum(spec.cpt, axis=1)
        cdf[:, -1] = 1.0
        cdfs.append(cdf)
    return cdfs


def _sample_spec_block(
    specs: Sequence[NodeSpec],
    cdfs: Sequence[np.ndarray],
    n: int,
    uniforms_for: Callable[[int, int], np.ndarray],
) -> Dict[str, np.ndarray]:
    """One ancestral-sampling pass of ``n`` rows over the network.

    ``uniforms_for(index, count)`` supplies spec ``index``'s uniforms; the
    CDF inversion is the shared binary search of
    :func:`repro.core.sampler.invert_row_cdfs`, bit-identical to the
    historical ``(uniforms[:, None] > cdf[rows]).sum(axis=1)`` broadcast.
    """
    # Imported here: repro.core.sampler sits above the data layer this
    # module otherwise stays within.
    from repro.core.sampler import invert_row_cdfs

    sampled: Dict[str, np.ndarray] = {}
    sizes: Dict[str, int] = {}
    for index, spec in enumerate(specs):
        if spec.parents:
            parent_cols = np.stack([sampled[p] for p in spec.parents], axis=1)
            parent_sizes = [sizes[p] for p in spec.parents]
            rows = flatten_index(parent_cols, parent_sizes)
        else:
            rows = np.zeros(n, dtype=np.int64)
        sampled[spec.attribute.name] = invert_row_cdfs(
            cdfs[index], rows, uniforms_for(index, n)
        )
        sizes[spec.attribute.name] = spec.attribute.size
    return sampled


def sample_network(
    specs: Sequence[NodeSpec], n: int, rng: np.random.Generator
) -> Table:
    """Ancestral sampling of ``n`` rows from a ground-truth network."""
    sampled = _sample_spec_block(
        specs, _spec_cdfs(specs), n, lambda index, count: rng.random(count)
    )
    attrs = [spec.attribute for spec in specs]
    return Table(attrs, {a.name: sampled[a.name] for a in attrs})


class NetworkSource(ChunkedSource):
    """A ground-truth network emitted as a chunked source (see module doc).

    ``seed`` fully determines the rows: every call to :meth:`chunks`
    rebuilds one child stream per spec from it (``rng.spawn`` semantics
    via :class:`numpy.random.SeedSequence`), and spec ``i``'s stream draws
    its ``n`` uniforms in row order across chunks — so the stream is
    re-iterable, deterministic, and invariant to ``chunk_rows``, as the
    :class:`~repro.data.chunks.ChunkedSource` protocol requires.
    """

    def __init__(
        self,
        specs: Sequence[NodeSpec],
        n: int,
        seed: int = 0,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be positive")
        self._specs = list(specs)
        self._cdfs = _spec_cdfs(self._specs)
        self._attributes = tuple(spec.attribute for spec in self._specs)
        self._n = int(n)
        self._seed = int(seed)
        self._chunk_rows = int(chunk_rows)

    def chunks(self) -> Iterator[Mapping[str, np.ndarray]]:
        streams = np.random.default_rng(self._seed).spawn(len(self._specs))
        start = 0
        while True:
            count = min(self._chunk_rows, self._n - start)
            yield _sample_spec_block(
                self._specs,
                self._cdfs,
                count,
                lambda index, rows: streams[index].random(rows),
            )
            start += count
            if start >= self._n:
                return


def random_network_specs(
    attributes: Sequence[Attribute],
    max_parents: int,
    rng: np.random.Generator,
    concentration: float = 0.4,
) -> List[NodeSpec]:
    """Random ground-truth network over the given schema.

    Each attribute (after the first) receives up to ``max_parents`` random
    parents from its predecessors; CPT rows are Dirichlet draws with the
    given ``concentration`` — small values make rows near-deterministic,
    i.e. strongly correlated data.
    """
    if max_parents < 0:
        raise ValueError("max_parents must be non-negative")
    specs: List[NodeSpec] = []
    placed: List[Attribute] = []
    for attr in attributes:
        width = min(max_parents, len(placed))
        count = int(rng.integers(0, width + 1)) if width else 0
        parent_attrs = (
            [placed[i] for i in rng.choice(len(placed), size=count, replace=False)]
            if count
            else []
        )
        rows = domain_size([p.size for p in parent_attrs])
        cpt = rng.dirichlet(np.full(attr.size, concentration), size=rows)
        specs.append(
            NodeSpec(
                attribute=attr,
                parents=tuple(p.name for p in parent_attrs),
                cpt=cpt,
            )
        )
        placed.append(attr)
    return specs


def random_binary_table(
    n: int,
    d: int,
    max_parents: int = 2,
    concentration: float = 0.4,
    seed: int = 0,
    structure_seed: Optional[int] = None,
) -> Table:
    """Convenience: ``n`` rows of ``d`` correlated binary attributes.

    ``structure_seed`` fixes the ground-truth network independently of the
    row-sampling ``seed`` so several draws of "the same dataset" exist.
    """
    structure_rng = np.random.default_rng(
        seed if structure_seed is None else structure_seed
    )
    attrs = [Attribute.binary(f"x{i}") for i in range(d)]
    specs = random_network_specs(attrs, max_parents, structure_rng, concentration)
    return sample_network(specs, n, np.random.default_rng(seed))


def random_binary_source(
    n: int,
    d: int,
    max_parents: int = 2,
    concentration: float = 0.4,
    seed: int = 0,
    structure_seed: Optional[int] = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> NetworkSource:
    """Chunk-emitting counterpart of :func:`random_binary_table`.

    The ground-truth network is built exactly as in
    :func:`random_binary_table` (same ``structure_seed`` → same specs);
    the rows stream from a :class:`NetworkSource`, so arbitrarily large
    ``n`` never materializes.  Per-node streams mean the rows differ from
    ``random_binary_table(n, d, ..., seed)`` — both are seeded and
    deterministic, but they are distinct processes.
    """
    structure_rng = np.random.default_rng(
        seed if structure_seed is None else structure_seed
    )
    attrs = [Attribute.binary(f"x{i}") for i in range(d)]
    specs = random_network_specs(attrs, max_parents, structure_rng, concentration)
    return NetworkSource(specs, n, seed=seed, chunk_rows=chunk_rows)


def cpt_from_logits(logits: np.ndarray) -> np.ndarray:
    """Row-softmax helper for hand-built CPTs."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    weights = np.exp(shifted)
    return weights / weights.sum(axis=-1, keepdims=True)
