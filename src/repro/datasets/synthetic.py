"""Ground-truth Bayesian-network data generators.

Used both as a generic workload source for tests/benchmarks and as the
substrate for the schema-faithful dataset generators: a ground-truth
network with known conditionals is the natural way to produce correlated
discrete data whose low-dimensional structure PrivBayes should recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.attribute import Attribute
from repro.data.marginals import domain_size, flatten_index
from repro.data.table import Table


@dataclass(frozen=True)
class NodeSpec:
    """One node of a ground-truth network: attribute, parents, CPT.

    ``cpt`` has one row per flattened parent configuration (mixed radix
    over the parents in listed order) and one column per attribute value;
    rows must be stochastic.
    """

    attribute: Attribute
    parents: Tuple[str, ...]
    cpt: np.ndarray

    def __post_init__(self) -> None:
        if self.cpt.ndim != 2 or self.cpt.shape[1] != self.attribute.size:
            raise ValueError(
                f"CPT for {self.attribute.name!r} has shape {self.cpt.shape}; "
                f"expected (*, {self.attribute.size})"
            )
        if not np.allclose(self.cpt.sum(axis=1), 1.0, atol=1e-8):
            raise ValueError(f"CPT rows for {self.attribute.name!r} must sum to 1")


def sample_network(
    specs: Sequence[NodeSpec], n: int, rng: np.random.Generator
) -> Table:
    """Ancestral sampling of ``n`` rows from a ground-truth network."""
    sampled: Dict[str, np.ndarray] = {}
    sizes: Dict[str, int] = {}
    for spec in specs:
        if spec.parents:
            parent_cols = np.stack([sampled[p] for p in spec.parents], axis=1)
            parent_sizes = [sizes[p] for p in spec.parents]
            rows = flatten_index(parent_cols, parent_sizes)
        else:
            rows = np.zeros(n, dtype=np.int64)
        cdf = np.cumsum(spec.cpt, axis=1)
        cdf[:, -1] = 1.0
        uniforms = rng.random(n)
        sampled[spec.attribute.name] = (
            (uniforms[:, None] > cdf[rows]).sum(axis=1).astype(np.int64)
        )
        sizes[spec.attribute.name] = spec.attribute.size
    attrs = [spec.attribute for spec in specs]
    return Table(attrs, {a.name: sampled[a.name] for a in attrs})


def random_network_specs(
    attributes: Sequence[Attribute],
    max_parents: int,
    rng: np.random.Generator,
    concentration: float = 0.4,
) -> List[NodeSpec]:
    """Random ground-truth network over the given schema.

    Each attribute (after the first) receives up to ``max_parents`` random
    parents from its predecessors; CPT rows are Dirichlet draws with the
    given ``concentration`` — small values make rows near-deterministic,
    i.e. strongly correlated data.
    """
    if max_parents < 0:
        raise ValueError("max_parents must be non-negative")
    specs: List[NodeSpec] = []
    placed: List[Attribute] = []
    for attr in attributes:
        width = min(max_parents, len(placed))
        count = int(rng.integers(0, width + 1)) if width else 0
        parent_attrs = (
            [placed[i] for i in rng.choice(len(placed), size=count, replace=False)]
            if count
            else []
        )
        rows = domain_size([p.size for p in parent_attrs])
        cpt = rng.dirichlet(np.full(attr.size, concentration), size=rows)
        specs.append(
            NodeSpec(
                attribute=attr,
                parents=tuple(p.name for p in parent_attrs),
                cpt=cpt,
            )
        )
        placed.append(attr)
    return specs


def random_binary_table(
    n: int,
    d: int,
    max_parents: int = 2,
    concentration: float = 0.4,
    seed: int = 0,
    structure_seed: Optional[int] = None,
) -> Table:
    """Convenience: ``n`` rows of ``d`` correlated binary attributes.

    ``structure_seed`` fixes the ground-truth network independently of the
    row-sampling ``seed`` so several draws of "the same dataset" exist.
    """
    structure_rng = np.random.default_rng(
        seed if structure_seed is None else structure_seed
    )
    attrs = [Attribute.binary(f"x{i}") for i in range(d)]
    specs = random_network_specs(attrs, max_parents, structure_rng, concentration)
    return sample_network(specs, n, np.random.default_rng(seed))


def cpt_from_logits(logits: np.ndarray) -> np.ndarray:
    """Row-softmax helper for hand-built CPTs."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    weights = np.exp(shifted)
    return weights / weights.sum(axis=-1, keepdims=True)
