"""NLTCS: National Long Term Care Survey (21,574 rows, 16 binary attributes).

The real dataset records, for each surveyed person, whether they are unable
to perform each of 16 activities of daily living (ADLs) and instrumental
activities (IADLs).  Disabilities are strongly positively correlated and
roughly ordered by severity.

The generator reproduces that structure with a latent frailty variable:
each person draws a frailty score, each activity has a difficulty
threshold, and a handful of direct implications tie closely related
activities together (e.g. being unable to get about outside makes being
unable to travel very likely).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.attribute import Attribute
from repro.data.table import Table

DEFAULT_N = 21_574

#: The 16 activity attributes of the survey, roughly easiest → hardest.
ACTIVITIES = (
    "eating",
    "getting_in_out_bed",
    "getting_about_inside",
    "dressing",
    "bathing",
    "using_toilet",
    "doing_heavy_housework",
    "doing_light_housework",
    "doing_laundry",
    "cooking",
    "grocery_shopping",
    "getting_about_outside",
    "traveling",
    "managing_money",
    "taking_medicine",
    "telephoning",
)

#: Difficulty offsets: larger → more people are unable to do it.
_DIFFICULTY = {
    "eating": -2.8,
    "getting_in_out_bed": -2.2,
    "getting_about_inside": -1.9,
    "dressing": -2.3,
    "bathing": -1.6,
    "using_toilet": -2.1,
    "doing_heavy_housework": 0.2,
    "doing_light_housework": -1.8,
    "doing_laundry": -1.2,
    "cooking": -1.5,
    "grocery_shopping": -0.7,
    "getting_about_outside": -0.9,
    "traveling": -0.6,
    "managing_money": -1.4,
    "taking_medicine": -1.7,
    "telephoning": -2.0,
}

#: Direct implications (a, b, strength): being unable to do `a` adds
#: `strength` to the log-odds of being unable to do `b`.  Topologically
#: ordered: every cause is finalized before any effect derived from it.
_IMPLICATIONS = (
    ("getting_in_out_bed", "getting_about_inside", 1.8),
    ("getting_about_inside", "getting_about_outside", 2.0),
    ("getting_about_outside", "traveling", 2.5),
    ("using_toilet", "bathing", 1.3),
    ("bathing", "dressing", 1.5),
    ("doing_heavy_housework", "doing_laundry", 1.2),
    ("cooking", "grocery_shopping", 1.4),
    ("managing_money", "telephoning", 1.1),
)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def load_nltcs(n: Optional[int] = None, seed: int = 0) -> Table:
    """Generate the NLTCS stand-in (schema-faithful; see module docstring).

    Parameters
    ----------
    n:
        Number of rows; defaults to the paper's 21,574.
    seed:
        Row-sampling seed; the generative process itself is fixed.
    """
    n = DEFAULT_N if n is None else int(n)
    rng = np.random.default_rng(seed)
    # Latent frailty: heavy mass near zero (most respondents able), a tail
    # of severely disabled respondents.
    frailty = rng.gamma(shape=2.0, scale=1.0, size=n)
    columns = {}
    # First pass: frailty-driven marginals.
    for name in ACTIVITIES:
        logit = 0.9 * frailty + _DIFFICULTY[name] + 0.3 * rng.standard_normal(n)
        columns[name] = (rng.random(n) < _sigmoid(logit)).astype(np.int64)
    # Second pass: direct implications between closely related activities.
    # The coupling is symmetric (±strength) so the cause carries signal
    # beyond what the shared frailty already explains.
    for cause, effect, strength in _IMPLICATIONS:
        boosted = _sigmoid(
            0.9 * frailty
            + _DIFFICULTY[effect]
            + strength * (2 * columns[cause] - 1)
        )
        # repro: allow[DET004] -- seeded one-shot generator: the draw sequence is part of the frozen stand-in dataset definition
        columns[effect] = (rng.random(n) < boosted).astype(np.int64)
    attrs = [Attribute.binary(name, ("able", "unable")) for name in ACTIVITIES]
    return Table(attrs, columns)
