"""ACS: IPUMS-USA American Community Survey sample (47,461 rows, 23 binary).

The paper's ACS extract consists of 23 binary person/household flags from
the 2013-2014 ACS samples.  The generator reproduces the flavour of that
extract: household/economic flags driven by a latent socioeconomic score,
life-cycle flags driven by a latent age score, and a few direct couplings
(a mortgage requires owning a dwelling; school attendance is a young-age
phenomenon; veteran status implies adulthood).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.attribute import Attribute
from repro.data.table import Table

DEFAULT_N = 47_461

#: (name, socioeconomic weight, age weight, offset)
_FLAGS = (
    ("owns_dwelling", 1.6, 0.8, -0.4),
    ("has_mortgage", 1.2, 0.3, -0.8),
    ("multi_generation", -0.4, 0.2, -1.6),
    ("attends_school", -0.2, -2.4, -0.9),
    ("is_male", 0.0, 0.0, 0.0),
    ("is_married", 0.5, 1.4, -0.6),
    ("has_children_at_home", 0.2, 0.3, -0.7),
    ("employed", 1.3, -0.5, 0.5),
    ("works_full_time", 1.1, -0.4, 0.1),
    ("self_employed", 0.4, 0.5, -2.0),
    ("veteran", 0.1, 1.2, -2.2),
    ("has_disability", -0.8, 1.1, -1.5),
    ("has_health_insurance", 1.2, 0.6, 0.8),
    ("college_degree", 1.8, 0.0, -0.9),
    ("speaks_english_only", 0.3, 0.4, 0.9),
    ("born_in_state", -0.1, -0.3, 0.2),
    ("moved_last_year", -0.3, -1.1, -1.2),
    ("has_vehicle", 1.1, 0.4, 1.0),
    ("urban_residence", 0.3, -0.3, 0.6),
    ("receives_assistance", -1.6, -0.2, -1.4),
    ("pays_rent", -1.4, -0.7, -0.3),
    ("has_broadband", 1.0, -0.6, 0.7),
    ("multiple_earners", 0.9, 0.1, -0.5),
)

#: Direct structural couplings: (cause, effect, strength in log-odds).
_COUPLINGS = (
    ("owns_dwelling", "has_mortgage", 2.6),
    ("owns_dwelling", "pays_rent", -3.0),
    ("employed", "works_full_time", 2.4),
    ("is_married", "multiple_earners", 1.8),
    ("attends_school", "employed", -1.0),
    ("college_degree", "has_broadband", 1.0),
)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def load_acs(n: Optional[int] = None, seed: int = 0) -> Table:
    """Generate the ACS stand-in (schema-faithful; see module docstring)."""
    n = DEFAULT_N if n is None else int(n)
    rng = np.random.default_rng(seed)
    socioeconomic = rng.standard_normal(n)
    age = rng.standard_normal(n)
    columns = {}
    base_logits = {}
    for name, socio_w, age_w, offset in _FLAGS:
        logit = (
            socio_w * socioeconomic
            + age_w * age
            + offset
            + 0.4 * rng.standard_normal(n)
        )
        base_logits[name] = logit
        columns[name] = (rng.random(n) < _sigmoid(logit)).astype(np.int64)
    for cause, effect, strength in _COUPLINGS:
        boosted = _sigmoid(base_logits[effect] + strength * (2 * columns[cause] - 1))
        # repro: allow[DET004] -- seeded one-shot generator: the draw sequence is part of the frozen stand-in dataset definition
        columns[effect] = (rng.random(n) < boosted).astype(np.int64)
    attrs = [Attribute.binary(name, ("no", "yes")) for name, _, _, _ in _FLAGS]
    return Table(attrs, columns)
