"""BR2000: IPUMS-International Brazil 2000 census sample (38,000 rows, 14 attrs).

Schema-faithful generator for the paper's Brazilian census extract: mixed
continuous/categorical attributes with taxonomy trees derived from common
knowledge (regions, religions grouped by family, schooling grouped by
stage).  The SVM tasks of Section 6.1 predict whether a person is Catholic,
owns a car, has a child, and is older than 20 — the generator gives each of
those labels real signal (religion varies by region and age; car ownership
tracks income; children track age and marital status).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.attribute import Attribute, AttributeKind, discretize_continuous
from repro.data.table import Table
from repro.data.taxonomy import TaxonomyTree

DEFAULT_N = 38_000

RELIGION = (
    "Catholic",
    "Traditional-Protestant",
    "Evangelical",
    "Spiritist",
    "Afro-Brazilian",
    "Jewish",
    "Other",
    "None",
)

RELIGION_GROUPS = (
    ("Christian", ("Catholic", "Traditional-Protestant", "Evangelical")),
    ("Other-faith", ("Spiritist", "Afro-Brazilian", "Jewish", "Other")),
    ("No-religion", ("None",)),
)

REGION = ("North", "Northeast", "Southeast", "South", "Center-West")

EDUCATION = (
    "None",
    "Primary-incomplete",
    "Primary-complete",
    "Lower-secondary",
    "Upper-secondary",
    "Technical",
    "University-incomplete",
    "University-complete",
)

EDUCATION_GROUPS = (
    ("No-schooling", ("None",)),
    ("Primary", ("Primary-incomplete", "Primary-complete")),
    ("Secondary", ("Lower-secondary", "Upper-secondary", "Technical")),
    ("Tertiary", ("University-incomplete", "University-complete")),
)

MARITAL = ("Single", "Married", "Consensual-union", "Separated", "Widowed")

EMPLOYMENT = (
    "Employee",
    "Self-employed",
    "Employer",
    "Unpaid-family-worker",
    "Unemployed",
    "Not-in-labor-force",
)

EMPLOYMENT_GROUPS = (
    ("Working", ("Employee", "Self-employed", "Employer", "Unpaid-family-worker")),
    ("Not-working", ("Unemployed", "Not-in-labor-force")),
)

CARS = ("0", "1", "2", "3+")
CHILDREN = ("0", "1", "2", "3", "4", "5", "6", "7+")
HOUSE = ("Owned", "Rented", "Other")


def _categorical(name, values, groups=None):
    taxonomy = TaxonomyTree.from_groups(values, groups) if groups else None
    kind = AttributeKind.BINARY if len(values) == 2 else AttributeKind.CATEGORICAL
    return Attribute(name=name, values=values, kind=kind, taxonomy=taxonomy)


def _choice_rows(rng, probs):
    cdf = np.cumsum(probs, axis=1)
    cdf[:, -1] = 1.0
    return (rng.random(probs.shape[0])[:, None] > cdf).sum(axis=1).astype(np.int64)


def _softmax_rows(logits):
    shifted = logits - logits.max(axis=1, keepdims=True)
    weights = np.exp(shifted)
    return weights / weights.sum(axis=1, keepdims=True)


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def load_br2000(n: Optional[int] = None, seed: int = 0) -> Table:
    """Generate the BR2000 stand-in (schema-faithful; see module docstring)."""
    n = DEFAULT_N if n is None else int(n)
    rng = np.random.default_rng(seed)

    # Census covers all ages; skew young (Brazil 2000 median age ≈ 25).
    age = 100.0 * rng.beta(1.4, 2.8, size=n)
    sex = (rng.random(n) < 0.49).astype(np.int64)  # 1 = Male
    region = rng.choice(
        len(REGION), size=n, p=[0.07, 0.28, 0.43, 0.15, 0.07]
    ).astype(np.int64)
    urban = (
        rng.random(n) < np.take([0.60, 0.65, 0.92, 0.82, 0.86], region)
    ).astype(np.int64)

    # Education: better in the Southeast/South and in urban areas; the very
    # young haven't completed much schooling yet.
    edu_mean = (
        2.2
        + 1.1 * np.take([0.0, -0.3, 0.7, 0.6, 0.4], region)
        + 0.9 * urban
        - 2.0 * (age < 12)
        + 0.8 * (age > 22)
    )
    education = np.clip(
        np.rint(rng.normal(edu_mean, 1.4)), 0, len(EDUCATION) - 1
    ).astype(np.int64)

    literate = (
        rng.random(n) < _sigmoid(-1.0 + 1.1 * education + 0.5 * urban - 2.0 * (age < 7))
    ).astype(np.int64)

    # Marital status and children track age.
    m_logits = np.zeros((n, len(MARITAL)))
    m_logits[:, MARITAL.index("Single")] = 2.8 - 0.10 * age
    m_logits[:, MARITAL.index("Married")] = -2.5 + 0.085 * age
    m_logits[:, MARITAL.index("Consensual-union")] = -2.2 + 0.05 * age
    m_logits[:, MARITAL.index("Separated")] = -4.0 + 0.05 * age
    m_logits[:, MARITAL.index("Widowed")] = -7.5 + 0.10 * age
    marital = _choice_rows(rng, _softmax_rows(m_logits))

    partnered = np.isin(
        marital, [MARITAL.index("Married"), MARITAL.index("Consensual-union")]
    )
    child_rate = np.clip(
        0.12 * np.clip(age - 16, 0, 30) * (1.0 + 0.8 * partnered) * (1.0 - 0.15 * urban),
        0.0,
        None,
    )
    children = np.minimum(rng.poisson(child_rate), len(CHILDREN) - 1).astype(np.int64)

    e_logits = np.zeros((n, len(EMPLOYMENT)))
    working_age = (age >= 14) & (age <= 65)
    e_logits[:, EMPLOYMENT.index("Employee")] = 1.2 * working_age + 0.3 * education
    e_logits[:, EMPLOYMENT.index("Self-employed")] = 0.6 * working_age + 0.1 * education
    e_logits[:, EMPLOYMENT.index("Employer")] = -2.0 + 0.35 * education
    e_logits[:, EMPLOYMENT.index("Unpaid-family-worker")] = -1.5 + 0.8 * (~working_age)
    e_logits[:, EMPLOYMENT.index("Unemployed")] = 0.2 * working_age
    e_logits[:, EMPLOYMENT.index("Not-in-labor-force")] = (
        1.5 * (~working_age) + 0.7 * (sex == 0) - 0.1 * education
    )
    employment = _choice_rows(rng, _softmax_rows(e_logits))

    working = np.isin(
        employment,
        [EMPLOYMENT.index(e) for e in ("Employee", "Self-employed", "Employer")],
    )
    log_income = (
        4.0
        + 0.35 * education
        + 0.8 * working
        + 0.4 * urban
        + 0.3 * np.take([0.0, -0.4, 0.5, 0.4, 0.2], region)
        + rng.normal(0, 0.8, n)
    )
    income = np.where(age >= 14, np.exp(log_income), 0.0)
    income = np.clip(income, 0, 20_000)

    car_rate = _sigmoid(-5.2 + 0.85 * np.log1p(income))
    c_probs = np.stack(
        [
            1.0 - car_rate,
            car_rate * 0.72,
            car_rate * 0.22,
            car_rate * 0.06,
        ],
        axis=1,
    )
    c_probs /= c_probs.sum(axis=1, keepdims=True)
    cars = _choice_rows(rng, c_probs)

    # Religion: Catholicism dominant, stronger in the Northeast and among
    # older people; evangelicals younger and more urban.
    r_logits = np.zeros((n, len(RELIGION)))
    r_logits[:, RELIGION.index("Catholic")] = (
        1.9 + 0.012 * age + 0.3 * np.take([0.2, 0.5, 0.0, 0.2, 0.1], region)
    )
    r_logits[:, RELIGION.index("Traditional-Protestant")] = -0.4
    r_logits[:, RELIGION.index("Evangelical")] = 0.2 - 0.008 * age + 0.3 * urban
    r_logits[:, RELIGION.index("Spiritist")] = -1.6 + 0.4 * (education >= 5)
    r_logits[:, RELIGION.index("Afro-Brazilian")] = -2.4 + 0.5 * (region == 1)
    r_logits[:, RELIGION.index("Jewish")] = -4.5
    r_logits[:, RELIGION.index("Other")] = -2.2
    r_logits[:, RELIGION.index("None")] = -0.6 - 0.010 * age + 0.3 * urban
    religion = _choice_rows(rng, _softmax_rows(r_logits))

    h_probs = np.stack(
        [
            _sigmoid(-0.2 + 0.25 * np.log1p(income) - 0.8),
            np.full(n, 0.30),
            np.full(n, 0.12),
        ],
        axis=1,
    )
    h_probs /= h_probs.sum(axis=1, keepdims=True)
    house = _choice_rows(rng, h_probs)

    age_attr, age_codes = discretize_continuous("age", age, low=0, high=100)
    income_attr, income_codes = discretize_continuous(
        "income", income, low=0, high=20_000
    )

    attrs = [
        age_attr,
        _categorical("sex", ("Female", "Male")),
        _categorical("region", REGION),
        _categorical("urban", ("Rural", "Urban")),
        _categorical("education", EDUCATION, EDUCATION_GROUPS),
        _categorical("literate", ("No", "Yes")),
        _categorical("marital_status", MARITAL),
        _categorical("n_children", CHILDREN),
        _categorical("employment", EMPLOYMENT, EMPLOYMENT_GROUPS),
        income_attr,
        _categorical("n_cars", CARS),
        _categorical("religion", RELIGION, RELIGION_GROUPS),
        _categorical("house_tenure", HOUSE),
        _categorical("water_access", ("No", "Yes")),
    ]
    water = (
        rng.random(n) < _sigmoid(0.3 + 0.9 * urban + 0.2 * np.log1p(income) - 0.6)
    ).astype(np.int64)
    columns = {
        "age": age_codes,
        "sex": sex,
        "region": region,
        "urban": urban,
        "education": education,
        "literate": literate,
        "marital_status": marital,
        "n_children": children,
        "employment": employment,
        "income": income_codes,
        "n_cars": cars,
        "religion": religion,
        "house_tenure": house,
        "water_access": water,
    }
    return Table(attrs, columns)
