"""Evaluation datasets (Section 6.1, Table 5).

The paper evaluates on NLTCS, ACS (IPUMS-USA), Adult (UCI) and BR2000
(IPUMS-Brazil).  Those files cannot be fetched in this offline environment,
so each module here is a *schema-faithful seeded generator*: the real
schema (attribute names, domain sizes, taxonomy trees) with rows sampled
from a hand-built ground-truth process that encodes the well-known
correlations of the source data (see DESIGN.md §3).  Table 5's cardinality,
dimensionality and domain size are matched exactly at the default sizes.
"""

from repro.datasets.acs import load_acs
from repro.datasets.adult import load_adult
from repro.datasets.br2000 import load_br2000
from repro.datasets.nltcs import load_nltcs
from repro.datasets.synthetic import (
    NetworkSource,
    NodeSpec,
    random_binary_source,
    random_binary_table,
    random_network_specs,
    sample_network,
)

LOADERS = {
    "nltcs": load_nltcs,
    "acs": load_acs,
    "adult": load_adult,
    "br2000": load_br2000,
}

#: Table 5 of the paper: (cardinality, dimensionality, log2 domain size).
TABLE5 = {
    "nltcs": (21_574, 16, 16),
    "acs": (47_461, 23, 23),
    "adult": (45_222, 15, 52),
    "br2000": (38_000, 14, 32),
}


def load_dataset(name: str, n=None, seed: int = 0):
    """Load one of the four evaluation datasets by name."""
    try:
        loader = LOADERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(LOADERS)}"
        ) from None
    return loader(n=n, seed=seed)


__all__ = [
    "load_nltcs",
    "load_acs",
    "load_adult",
    "load_br2000",
    "load_dataset",
    "LOADERS",
    "TABLE5",
    "NodeSpec",
    "NetworkSource",
    "sample_network",
    "random_network_specs",
    "random_binary_table",
    "random_binary_source",
]
