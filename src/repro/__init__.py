"""repro — a full reproduction of PrivBayes (SIGMOD 2014 / TODS 2017).

PrivBayes releases a differentially private synthetic version of a sensitive
table by (1) privately learning a low-degree Bayesian network over the
attributes, (2) privately materializing the network's low-dimensional
conditionals, and (3) sampling tuples from the resulting model.

Quickstart::

    import numpy as np
    from repro import PrivBayes
    from repro.datasets import load_adult

    table = load_adult(n=10_000, seed=7)
    synthetic = PrivBayes(epsilon=1.0).fit_sample(
        table, rng=np.random.default_rng(7)
    )

See :mod:`repro.release` for the encoding-aware convenience wrapper used by
the experiments (Binary-F / Gray-F / Vanilla-R / Hierarchical-R).
"""

from repro.core.privbayes import PrivBayes, PrivBayesConfig, PrivBayesModel
from repro.data import Attribute, AttributeKind, Table, TaxonomyTree
from repro.release import release_synthetic

__version__ = "1.0.0"

__all__ = [
    "PrivBayes",
    "PrivBayesConfig",
    "PrivBayesModel",
    "Attribute",
    "AttributeKind",
    "Table",
    "TaxonomyTree",
    "release_synthetic",
    "__version__",
]
