"""Featurization of tables for linear classification.

Each SVM task of Section 6.1 predicts a *binary* label derived from one
attribute (e.g. "holds a post-secondary degree" from ``education``) using
all other attributes as features.  Features are one-hot encodings of the
attribute codes, rescaled so every row has L2 norm at most 1 — the
normalization PrivateERM's privacy analysis requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.data.table import Table


@dataclass(frozen=True)
class BinaryTask:
    """A binary classification task over one attribute.

    Parameters
    ----------
    name:
        Display name (e.g. ``"Y = salary"``).
    target:
        Attribute whose value defines the label.
    positive:
        Labels of ``target`` mapped to class +1; all others map to -1.
    """

    name: str
    target: str
    positive: Tuple[str, ...]

    def labels(self, table: Table) -> np.ndarray:
        """±1 labels for every row of ``table``."""
        attr = table.attribute(self.target)
        positive_codes = {attr.values.index(v) for v in self.positive}
        codes = table.column(self.target)
        return np.where(np.isin(codes, list(positive_codes)), 1.0, -1.0)


def featurize(
    table: Table, task: BinaryTask
) -> Tuple[np.ndarray, np.ndarray]:
    """One-hot features (rows normalized to ||x|| ≤ 1) and ±1 labels.

    The target attribute is excluded from the features.  The feature layout
    depends only on the schema, so classifiers trained on synthetic data
    apply directly to real test rows.
    """
    feature_attrs = [a for a in table.attributes if a.name != task.target]
    width = sum(a.size for a in feature_attrs) + 1  # +1 bias column
    X = np.zeros((table.n, width))
    offset = 0
    for attr in feature_attrs:
        codes = table.column(attr.name)
        X[np.arange(table.n), offset + codes] = 1.0
        offset += attr.size
    X[:, -1] = 1.0  # bias
    # Every row has exactly d non-zero entries of magnitude 1; normalize by
    # sqrt(d) so ||x||₂ = 1 exactly (PrivateERM requires ||x|| ≤ 1).
    X /= np.sqrt(len(feature_attrs) + 1)
    return X, task.labels(table)
