"""Linear SVM substrate (Section 6.1 classification tasks).

Implemented from scratch (no sklearn/LIBSVM available offline):

* :class:`LinearSVM` — hinge-loss C-SVM (C = 1) via L-BFGS on a smoothed
  hinge; used for NoPrivacy and for classifiers trained on synthetic data.
* :class:`HuberSVM` — Huber-loss SVM of Chaudhuri et al., the model class
  PrivateERM perturbs.
* :func:`featurize` — one-hot feature matrix + ±1 labels from a
  :class:`~repro.data.Table` and a binary task definition.
"""

from repro.svm.features import BinaryTask, featurize
from repro.svm.linear import HuberSVM, LinearSVM, misclassification_rate

__all__ = [
    "LinearSVM",
    "HuberSVM",
    "misclassification_rate",
    "featurize",
    "BinaryTask",
]
