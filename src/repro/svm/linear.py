"""Linear SVM trainers (from scratch; scipy L-BFGS for optimization).

:class:`LinearSVM` minimizes the standard C-SVM objective with ``C = 1``
(Section 6.1 uses the hinge-loss C-SVM model with C = 1)::

    J(w) = (1/2)||w||² + C · Σ_i max(0, 1 - y_i·x_i·w)

with the hinge smoothed by a small Huber corner so L-BFGS applies; the
smoothing radius is far below the decision resolution of the evaluation.

:class:`HuberSVM` minimizes the Huber-loss ERM objective of Chaudhuri,
Monteleoni and Sarwate (2011)::

    J(w) = (1/n) Σ_i ℓ_huber(y_i·x_i·w) + (λ/2)||w||²  [+ bᵀw/n]

which is the model PrivateERM perturbs (the optional linear term carries
the objective-perturbation noise).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import minimize


def misclassification_rate(model, X: np.ndarray, y: np.ndarray) -> float:
    """Fraction of rows whose predicted sign differs from the label."""
    predictions = model.predict(X)
    return float(np.mean(predictions != y))


def _smoothed_hinge(margins: np.ndarray, delta: float):
    """Huber-smoothed hinge value and derivative wrt the margin.

    Quadratic within ``delta`` of the corner at margin 1, linear below,
    zero above — standard smoothing that keeps L-BFGS happy.
    """
    value = np.zeros_like(margins)
    grad = np.zeros_like(margins)
    below = margins < 1.0 - delta
    value[below] = 1.0 - margins[below]
    grad[below] = -1.0
    corner = (~below) & (margins < 1.0 + delta)
    z = 1.0 + delta - margins[corner]
    value[corner] = z * z / (4.0 * delta)
    grad[corner] = -z / (2.0 * delta)
    return value, grad


class LinearSVM:
    """Hinge-loss C-SVM (C = 1) trained by L-BFGS on a smoothed hinge."""

    def __init__(self, C: float = 1.0, smoothing: float = 1e-3) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.smoothing = smoothing
        self.weights: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of rows")
        n, p = X.shape
        delta = self.smoothing

        def objective(w):
            margins = y * (X @ w)
            loss, grad_margin = _smoothed_hinge(margins, delta)
            value = 0.5 * w @ w + self.C * loss.sum()
            grad = w + self.C * (X.T @ (grad_margin * y))
            return value, grad

        start = np.zeros(p)
        result = minimize(objective, start, jac=True, method="L-BFGS-B")
        self.weights = result.x
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit must be called before predictions")
        return np.asarray(X, dtype=float) @ self.weights

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.where(self.decision_function(X) >= 0.0, 1.0, -1.0)


class HuberSVM:
    """Huber-loss regularized ERM (the PrivateERM model class).

    ``perturbation`` adds the objective-perturbation linear term
    ``bᵀw / n`` used by PrivateERM; leave it ``None`` for the non-private
    fit.
    """

    def __init__(self, lam: float = 1e-3, huber_h: float = 0.5) -> None:
        if lam <= 0:
            raise ValueError("lam must be positive")
        if huber_h <= 0:
            raise ValueError("huber_h must be positive")
        self.lam = lam
        self.huber_h = huber_h
        self.weights: Optional[np.ndarray] = None

    def _huber_loss(self, margins: np.ndarray):
        """Chaudhuri et al.'s Huber loss and derivative wrt the margin."""
        h = self.huber_h
        value = np.zeros_like(margins)
        grad = np.zeros_like(margins)
        below = margins < 1.0 - h
        value[below] = 1.0 - margins[below]
        grad[below] = -1.0
        corner = (~below) & (margins <= 1.0 + h)
        z = 1.0 + h - margins[corner]
        value[corner] = z * z / (4.0 * h)
        grad[corner] = -z / (2.0 * h)
        return value, grad

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        perturbation: Optional[np.ndarray] = None,
        extra_regularization: float = 0.0,
    ) -> "HuberSVM":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        n, p = X.shape
        b = np.zeros(p) if perturbation is None else np.asarray(perturbation)
        lam = self.lam + extra_regularization

        def objective(w):
            margins = y * (X @ w)
            loss, grad_margin = self._huber_loss(margins)
            value = loss.mean() + 0.5 * lam * (w @ w) + (b @ w) / n
            grad = (X.T @ (grad_margin * y)) / n + lam * w + b / n
            return value, grad

        result = minimize(objective, np.zeros(p), jac=True, method="L-BFGS-B")
        self.weights = result.x
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit must be called before predictions")
        return np.asarray(X, dtype=float) @ self.weights

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.where(self.decision_function(X) >= 0.0, 1.0, -1.0)
