"""Range-count query workloads over ordered (binned) attributes.

The introduction motivates query-independence: released data should stay
accurate for "almost any type of (linear or non-linear) query".  Range
counts are the classic linear workload (Section 1.1's wavelet/hierarchy
baselines target them); this module generates random multi-dimensional
range queries over the ordered attributes of a table and evaluates the
relative error of a synthetic release on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.rng import fallback_rng
from repro.data.attribute import AttributeKind
from repro.data.table import Table


@dataclass(frozen=True)
class RangeQuery:
    """Conjunction of per-attribute closed code ranges ``lo <= x <= hi``."""

    conditions: Tuple[Tuple[str, int, int], ...]

    def count(self, table: Table) -> int:
        """Number of rows satisfying every condition."""
        mask = np.ones(table.n, dtype=bool)
        for name, lo, hi in self.conditions:
            col = table.column(name)
            mask &= (col >= lo) & (col <= hi)
        return int(mask.sum())

    def fraction(self, table: Table) -> float:
        if table.n == 0:
            return 0.0
        return self.count(table) / table.n

    def __str__(self) -> str:  # pragma: no cover - display helper
        parts = [f"{lo} <= {name} <= {hi}" for name, lo, hi in self.conditions]
        return " AND ".join(parts)


def ordered_attributes(table: Table) -> List[str]:
    """Attributes with a meaningful order (binned continuous columns)."""
    return [
        attr.name
        for attr in table.attributes
        if attr.kind is AttributeKind.CONTINUOUS
    ]


def random_range_queries(
    table: Table,
    count: int,
    dimensions: int = 2,
    rng: Optional[np.random.Generator] = None,
    attributes: Optional[Sequence[str]] = None,
) -> List[RangeQuery]:
    """Generate random range queries over ordered attributes.

    Each query picks ``dimensions`` distinct ordered attributes and a
    random sub-range of each.  Falls back to all attributes if the table
    has no continuous ones (ranges over categorical codes are less
    meaningful but still well-defined).
    """
    rng = fallback_rng(rng)
    if count < 1:
        raise ValueError("count must be positive")
    pool = list(attributes) if attributes else ordered_attributes(table)
    if not pool:
        pool = list(table.attribute_names)
    if dimensions < 1 or dimensions > len(pool):
        raise ValueError(
            f"dimensions={dimensions} out of range [1, {len(pool)}]"
        )
    queries = []
    for _ in range(count):
        chosen = rng.choice(len(pool), size=dimensions, replace=False)
        conditions = []
        for idx in chosen:
            name = pool[int(idx)]
            size = table.attribute(name).size
            lo = int(rng.integers(0, size))
            hi = int(rng.integers(lo, size))
            conditions.append((name, lo, hi))
        queries.append(RangeQuery(conditions=tuple(conditions)))
    return queries


def average_range_error(
    original: Table,
    synthetic: Table,
    queries: Sequence[RangeQuery],
) -> float:
    """Mean absolute error of the query *fractions* (scale-free metric)."""
    if not queries:
        raise ValueError("empty query list")
    errors = [
        abs(q.fraction(original) - q.fraction(synthetic)) for q in queries
    ]
    return float(np.mean(errors))
