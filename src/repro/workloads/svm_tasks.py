"""The four-per-dataset SVM classification tasks of Section 6.1.

Each task predicts a binary property of one attribute from all other
attributes.  Some labels are direct binary attributes; others are derived
binarizations (e.g. Adult's "holds a post-secondary degree" from the
16-value ``education``), exactly as the paper describes them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.data.table import Table
from repro.svm.features import BinaryTask


def _positive_prefix_bins(table: Table, attr_name: str, threshold: float) -> Tuple[str, ...]:
    """Bin labels of a discretized continuous attribute whose lower edge is
    at or above ``threshold`` (used for BR2000's "older than 20")."""
    attr = table.attribute(attr_name)
    chosen = []
    for label in attr.values:
        lower = float(label.strip("(]").split(",")[0])
        if lower >= threshold - 1e-9:
            chosen.append(label)
    return tuple(chosen)


def _nltcs_tasks(table: Table) -> List[BinaryTask]:
    return [
        BinaryTask("Y = outside", "getting_about_outside", ("unable",)),
        BinaryTask("Y = money", "managing_money", ("unable",)),
        BinaryTask("Y = bathing", "bathing", ("unable",)),
        BinaryTask("Y = traveling", "traveling", ("unable",)),
    ]


def _acs_tasks(table: Table) -> List[BinaryTask]:
    return [
        BinaryTask("Y = dwelling", "owns_dwelling", ("yes",)),
        BinaryTask("Y = mortgage", "has_mortgage", ("yes",)),
        BinaryTask("Y = multi-gen", "multi_generation", ("yes",)),
        BinaryTask("Y = school", "attends_school", ("yes",)),
    ]


def _adult_tasks(table: Table) -> List[BinaryTask]:
    return [
        BinaryTask("Y = gender", "sex", ("Female",)),
        BinaryTask("Y = salary", "salary", (">50K",)),
        BinaryTask(
            "Y = education",
            "education",
            ("Bachelors", "Masters", "Prof-school", "Doctorate"),
        ),
        BinaryTask("Y = marital", "marital_status", ("Never-married",)),
    ]


def _br2000_tasks(table: Table) -> List[BinaryTask]:
    return [
        BinaryTask("Y = religion", "religion", ("Catholic",)),
        BinaryTask("Y = car", "n_cars", ("1", "2", "3+")),
        BinaryTask(
            "Y = child", "n_children", ("1", "2", "3", "4", "5", "6", "7+")
        ),
        BinaryTask(
            "Y = age", "age", _positive_prefix_bins(table, "age", 18.75)
        ),
    ]


SVM_TASKS: Dict[str, Callable[[Table], List[BinaryTask]]] = {
    "nltcs": _nltcs_tasks,
    "acs": _acs_tasks,
    "adult": _adult_tasks,
    "br2000": _br2000_tasks,
}


def tasks_for(dataset: str, table: Table) -> List[BinaryTask]:
    """The four Section 6.1 tasks for a dataset, bound to its schema."""
    try:
        builder = SVM_TASKS[dataset.lower()]
    except KeyError:
        raise ValueError(
            f"no SVM tasks defined for {dataset!r}; choose from {sorted(SVM_TASKS)}"
        ) from None
    return builder(table)
