"""Evaluation workloads of Section 6.1: α-way marginals and SVM tasks."""

from repro.workloads.marginal_queries import (
    all_alpha_marginals,
    average_variation_distance,
    synthetic_marginals,
)
from repro.workloads.range_queries import (
    RangeQuery,
    average_range_error,
    random_range_queries,
)
from repro.workloads.svm_tasks import SVM_TASKS, tasks_for

__all__ = [
    "all_alpha_marginals",
    "synthetic_marginals",
    "average_variation_distance",
    "RangeQuery",
    "random_range_queries",
    "average_range_error",
    "SVM_TASKS",
    "tasks_for",
]
