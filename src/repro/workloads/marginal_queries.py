"""α-way marginal workloads ``Q_α`` and their accuracy metric.

``Q_α`` is the set of all α-way marginals of a dataset (Section 6.1); the
accuracy of a released marginal is the total variation distance to the
noise-free marginal, and a method's error on ``Q_α`` is the average over
all marginals.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.marginals import joint_distribution
from repro.data.table import Table
from repro.infotheory.measures import total_variation_distance

Workload = List[Tuple[str, ...]]


def all_alpha_marginals(table: Table, alpha: int) -> Workload:
    """All ``C(d, α)`` attribute subsets of size α, in schema order."""
    if not 1 <= alpha <= table.d:
        raise ValueError(f"alpha={alpha} out of range [1, {table.d}]")
    return [tuple(c) for c in itertools.combinations(table.attribute_names, alpha)]


def synthetic_marginals(
    synthetic: Table, workload: Workload
) -> Dict[Tuple[str, ...], np.ndarray]:
    """Evaluate a workload on a synthetic table (PrivBayes' answer format)."""
    return {
        tuple(names): joint_distribution(synthetic, list(names))
        for names in workload
    }


def average_variation_distance(
    reference: Table,
    released: Dict[Tuple[str, ...], np.ndarray],
    workload: Workload,
) -> float:
    """Mean total-variation distance between released and true marginals."""
    if not workload:
        raise ValueError("empty workload")
    distances = []
    for names in workload:
        truth = joint_distribution(reference, list(names))
        distances.append(total_variation_distance(truth, released[tuple(names)]))
    return float(np.mean(distances))
