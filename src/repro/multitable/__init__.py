"""Multi-table release: the paper's Section 7 "natural next step".

The concluding remarks observe that extending PrivBayes beyond a single
table requires care: "as we consider more complex schemas, the impact of
an individual (and hence the scale of noise needed for privacy) may grow
very large".  This package implements the two-table case — a primary
table (one row per individual) linked to a child table (zero or more rows
per individual) — with exactly that care: child-side contributions are
bounded by truncation, and the child model's budget is scaled by the
contribution bound (group privacy), so the end-to-end release remains
ε-differentially private at the individual level.
"""

from repro.multitable.linked import LinkedTables
from repro.multitable.release import TwoTableRelease, release_two_tables

__all__ = ["LinkedTables", "release_two_tables", "TwoTableRelease"]
