"""Linked two-table schema: a primary table plus owned child rows."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.data.table import Table


class LinkedTables:
    """A primary table and a child table linked by an owner index.

    Each primary row represents one individual; ``owners[j]`` is the
    primary row index that owns child row ``j``.  Individuals may own any
    number of child rows, including zero.
    """

    def __init__(self, primary: Table, child: Table, owners: np.ndarray) -> None:
        owners = np.asarray(owners, dtype=np.int64)
        if owners.ndim != 1 or owners.shape[0] != child.n:
            raise ValueError(
                f"owners has shape {owners.shape}, expected ({child.n},)"
            )
        if child.n and (owners.min() < 0 or owners.max() >= primary.n):
            raise ValueError("owner indices outside the primary table")
        self.primary = primary
        self.child = child
        self.owners = owners

    @property
    def n_individuals(self) -> int:
        return self.primary.n

    @property
    def n_child_rows(self) -> int:
        return self.child.n

    def fanout_counts(self) -> np.ndarray:
        """Child rows owned by each individual (length = primary.n)."""
        return np.bincount(self.owners, minlength=self.primary.n)

    def max_fanout(self) -> int:
        counts = self.fanout_counts()
        return int(counts.max()) if counts.size else 0

    def children_of(self, individual: int) -> Table:
        """The child rows owned by one primary row."""
        if not 0 <= individual < self.primary.n:
            raise IndexError(f"individual {individual} out of range")
        return self.child.take(np.nonzero(self.owners == individual)[0])

    def truncate(
        self, max_rows: int, rng: Optional[np.random.Generator] = None
    ) -> "LinkedTables":
        """Keep at most ``max_rows`` child rows per individual.

        Bounding the per-individual contribution is the standard first step
        of user-level DP over fan-out data; dropped rows are chosen
        uniformly at random (or first-k when no rng is given).
        """
        if max_rows < 0:
            raise ValueError("max_rows must be non-negative")
        keep_indices = []
        by_owner: Dict[int, list] = {}
        for j, owner in enumerate(self.owners.tolist()):
            by_owner.setdefault(owner, []).append(j)
        for owner in sorted(by_owner):
            rows = by_owner[owner]
            if len(rows) > max_rows:
                if rng is None:
                    rows = rows[:max_rows]
                else:
                    chosen = rng.choice(len(rows), size=max_rows, replace=False)
                    rows = [rows[i] for i in sorted(chosen)]
            keep_indices.extend(rows)
        keep = np.array(sorted(keep_indices), dtype=np.int64)
        return LinkedTables(
            self.primary, self.child.take(keep), self.owners[keep]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkedTables(individuals={self.primary.n}, "
            f"child_rows={self.child.n}, max_fanout={self.max_fanout()})"
        )
