"""Two-table ε-DP release via PrivBayes + bounded contribution.

Privacy analysis (individual-level, i.e. removing one individual removes
their primary row *and* all their child rows):

1. **Truncation** to at most ``max_fanout`` child rows per individual is
   data-independent preprocessing of each individual's own rows.
2. **Primary model** (budget ε_primary): one row per individual, plain
   PrivBayes — sensitivity as in the single-table case.
3. **Fanout distribution** (budget ε_fanout): the histogram of
   per-individual child-row counts over {0..max_fanout} changes by at most
   2/N in L1 when one individual changes — one Laplace release.
4. **Child model** (budget ε_child): one individual influences at most
   ``max_fanout`` child rows, so by group privacy a mechanism that is
   (ε_child / max_fanout)-DP at child-row level is ε_child-DP at
   individual level — PrivBayes runs on the truncated child table with the
   scaled budget.

Sequential composition over the three data accesses gives
ε = ε_primary + ε_fanout + ε_child end to end — exactly the "more careful
analysis" the paper's Section 7 calls for, with the noise growth made
explicit through the ``max_fanout`` factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.privbayes import PrivBayes, PrivBayesModel
from repro.core.rng import fallback_rng
from repro.data.marginals import normalize_distribution
from repro.dp.accountant import (
    PrivacyAccountant,
    scale_for_group_privacy,
    split_epsilon,
)
from repro.dp.mechanisms import laplace_mechanism
from repro.multitable.linked import LinkedTables

#: Default budget split across the three releases.
DEFAULT_SPLIT = (0.45, 0.10, 0.45)  # primary, fanout, child


@dataclass
class TwoTableRelease:
    """A fitted two-table model, ready to synthesize linked tables."""

    primary_model: PrivBayesModel
    child_model: PrivBayesModel
    fanout_distribution: np.ndarray
    max_fanout: int
    accountant: PrivacyAccountant

    def sample(
        self,
        n_individuals: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> LinkedTables:
        """Synthesize a linked pair of tables (free post-processing)."""
        rng = fallback_rng(rng)
        count = (
            self.primary_model.source_n
            if n_individuals is None
            else int(n_individuals)
        )
        primary = self.primary_model.sample(count, rng)
        fanouts = rng.choice(
            self.max_fanout + 1, size=count, p=self.fanout_distribution
        )
        total_children = int(fanouts.sum())
        child = self.child_model.sample(total_children, rng)
        owners = np.repeat(np.arange(count), fanouts)
        return LinkedTables(primary, child, owners)


def release_two_tables(
    linked: LinkedTables,
    epsilon: float,
    max_fanout: Optional[int] = None,
    split=DEFAULT_SPLIT,
    rng: Optional[np.random.Generator] = None,
    scoring_cache=None,
    **privbayes_kwargs,
) -> TwoTableRelease:
    """Fit an ε-DP two-table model (see module docstring for the analysis).

    Parameters
    ----------
    linked:
        The sensitive primary/child pair.
    max_fanout:
        Contribution bound; child rows beyond it are dropped per
        individual.  Defaults to the observed maximum — note that using
        the data-derived maximum leaks its value; pass a fixed public
        bound for strict end-to-end DP.
    split:
        Budget fractions (primary, fanout, child); must sum to 1.
    scoring_cache:
        Optional :class:`~repro.core.scoring.ScoringCache` shared across
        repeated releases (an ε sweep over the same linked pair): candidate
        scores, parent-set enumerations and contingency counts of both the
        primary and the truncated child table are data statistics, computed
        once across all fits.  Only useful when the truncation is
        deterministic for the caller's rng (the cache keys on table
        identity, so a fresh truncation simply misses).
    privbayes_kwargs:
        Extra configuration forwarded to both PrivBayes pipelines
        (``beta``, ``theta``, ``score``, ...).
    """
    rng = fallback_rng(rng)
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if len(split) != 3 or abs(sum(split) - 1.0) > 1e-9 or min(split) <= 0:
        raise ValueError("split must be three positive fractions summing to 1")
    if max_fanout is None:
        # repro: allow[PRIV003] -- documented leak: the data-derived default bound is public-by-assumption (pass a fixed bound for strict DP)
        max_fanout = linked.max_fanout()
    if max_fanout < 1:
        raise ValueError("max_fanout must be at least 1")
    accountant = PrivacyAccountant(epsilon)
    eps_primary, eps_fanout, eps_child = split_epsilon(epsilon, split)

    # repro: allow[PRIV003] -- contribution-bounding preprocessing; its effect is priced into the three phase charges below
    truncated = linked.truncate(max_fanout, rng)

    # --- primary table: plain single-table PrivBayes -------------------
    accountant.charge("primary table (PrivBayes)", eps_primary)
    primary_model = PrivBayes(epsilon=eps_primary, **privbayes_kwargs).fit(
        truncated.primary, rng=rng, scoring_cache=scoring_cache
    )

    # --- fanout histogram: one Laplace release --------------------------
    accountant.charge("fanout histogram (Laplace)", eps_fanout)
    counts = np.bincount(
        truncated.fanout_counts(), minlength=max_fanout + 1
    ).astype(float)
    histogram = counts / max(linked.n_individuals, 1)
    noisy = laplace_mechanism(
        histogram,
        sensitivity=2.0 / max(linked.n_individuals, 1),
        epsilon=eps_fanout,
        rng=rng,
    )
    fanout_distribution = normalize_distribution(noisy)

    # --- child table: group-privacy-scaled PrivBayes --------------------
    accountant.charge(
        f"child table (PrivBayes at eps/{max_fanout} for group privacy)",
        eps_child,
    )
    if truncated.child.n == 0:
        raise ValueError("child table has no rows after truncation")
    child_model = PrivBayes(
        epsilon=scale_for_group_privacy(eps_child, max_fanout),
        **privbayes_kwargs,
    ).fit(truncated.child, rng=rng, scoring_cache=scoring_cache)

    return TwoTableRelease(
        primary_model=primary_model,
        child_model=child_model,
        fanout_distribution=fanout_distribution,
        max_fanout=max_fanout,
        accountant=accountant,
    )
