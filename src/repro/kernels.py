"""Kernel-backend diagnostic CLI: ``python -m repro.kernels``.

Prints which score-kernel backend this environment selected
(:mod:`repro.core.kernel_backend`), whether a C toolchain is available,
and where the compiled artifact lives — then runs a ~1-second self-check
that re-scores a seeded randomized grid and asserts the backends agree
bit-for-bit.  Exit status 0 means the reported backend is healthy; 1
means the self-check failed (or a requested backend cannot be provided).

Typical uses::

    python -m repro.kernels                         # what am I running?
    REPRO_KERNEL_BACKEND=native python -m repro.kernels   # require the C tier

The self-check compares the native kernel against the pure-NumPy kernel
when both are available; in a NumPy-only environment it falls back to
checking the batched kernel against the per-candidate reference DP, so
the exit code is meaningful everywhere.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import kernel_backend
from repro.core.score_kernels import score_F_batch, score_F_dp

#: Self-check shape: ~1 second of work on a small machine, while still
#: exercising the blocked-DP regime (m > enum threshold) where the native
#: kernel actually runs.
_CHECK_SEED = 20140622  # SIGMOD'14 flavor; any fixed seed works
_CHECK_N = 4000
_CHECK_CELLS = 20
_CHECK_COUNT = 400


def _check_grid() -> np.ndarray:
    """Seeded randomized contingency batch covering the DP regime."""
    rng = np.random.default_rng(_CHECK_SEED)
    cells = 2 * _CHECK_CELLS
    probs = rng.dirichlet(np.ones(cells), size=_CHECK_COUNT)
    counts = np.vstack(
        [rng.multinomial(_CHECK_N, p) for p in probs]
    ).astype(np.int64)
    # Sprinkle zero-heavy rows: zero out cells and dump the mass into the
    # first cell so every candidate still sums to n.
    zero = rng.random(counts.shape) < 0.3
    zero[:, 0] = False
    removed = np.where(zero, counts, 0).sum(axis=1)
    counts[zero] = 0
    counts[:, 0] += removed
    return counts


def self_check() -> str:
    """Run the parity self-check; return a description of what was compared.

    Raises ``AssertionError`` (bit-mismatch) or
    :class:`~repro.core.kernel_backend.KernelBackendError` on failure.
    """
    counts = _check_grid()
    reference = score_F_batch(counts, _CHECK_N, backend="numpy")
    if kernel_backend.NATIVE_KERNEL is not None:
        native = score_F_batch(counts, _CHECK_N, backend="native")
        if not np.array_equal(reference, native):
            raise AssertionError(
                "native and numpy kernels disagree on the self-check grid"
            )
        return (
            f"native == numpy on {_CHECK_COUNT} candidates "
            f"(m={_CHECK_CELLS}, n={_CHECK_N}): bit-identical"
        )
    sample = counts[:: max(1, _CHECK_COUNT // 50)]
    dp = np.array([score_F_dp(row, _CHECK_N) for row in sample])
    batch = score_F_batch(sample, _CHECK_N, backend="numpy")
    if not np.array_equal(dp, batch):
        raise AssertionError(
            "numpy kernel and reference DP disagree on the self-check grid"
        )
    return (
        f"numpy == reference DP on {sample.shape[0]} candidates "
        f"(m={_CHECK_CELLS}, n={_CHECK_N}): bit-identical"
    )


def main(argv=None) -> int:
    print(f"requested mode   : {kernel_backend.requested_mode()} "
          f"(${kernel_backend.BACKEND_ENV})")
    print(f"selected backend : {kernel_backend.SELECTED_BACKEND}")
    cc = kernel_backend.compiler()
    print(f"compiler         : {cc or 'none found ($CC / cc)'}")
    print(f"cache directory  : {kernel_backend.cache_dir()}")
    artifact = kernel_backend.artifact_path()
    state = "present" if artifact.exists() else "not built"
    print(f"artifact         : {artifact} ({state})")
    try:
        print(f"self-check       : {self_check()}")
    except (AssertionError, kernel_backend.KernelBackendError) as error:
        print(f"self-check       : FAILED — {error}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
