"""Laplace, Contingency and Uniform marginal-release baselines (Section 6.1).

All marginal baselines share one interface: ``release(table, workload,
epsilon, rng)`` returns ``{marginal_names: probability_vector}`` with the
paper's two consistency steps applied (non-negativity, then normalization).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.marginals import (
    domain_size,
    flatten_index,
    marginal_counts,
    normalize_distribution,
    project_distribution,
)
from repro.data.table import Table
from repro.dp.accountant import split_epsilon_even
from repro.dp.mechanisms import laplace_mechanism

Workload = Sequence[Tuple[str, ...]]


class LaplaceMarginals:
    """Materialize every workload marginal and add Laplace noise directly.

    The budget is split evenly over the ``M`` workload marginals; each
    marginal (as a probability vector) has sensitivity ``2/n``, so every
    cell receives ``Lap(2M / (n ε))`` noise — exactly why this baseline
    deteriorates as α (and hence M) grows (Section 6.5).
    """

    name = "Laplace"

    def release(
        self,
        table: Table,
        workload: Workload,
        epsilon: float,
        rng: np.random.Generator,
    ) -> Dict[Tuple[str, ...], np.ndarray]:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        workload = [tuple(names) for names in workload]
        share = split_epsilon_even(epsilon, max(len(workload), 1))
        released = {}
        for names in workload:
            counts = marginal_counts(table, names)
            marginal = counts / max(table.n, 1)
            noisy = laplace_mechanism(
                marginal, sensitivity=2.0 / max(table.n, 1), epsilon=share, rng=rng
            )
            released[names] = normalize_distribution(noisy)
        return released


class ContingencyMarginals:
    """Noisy full contingency table, projected onto the workload.

    Only one Laplace release (sensitivity ``2/n`` on the full joint), but
    over a domain of ``prod |dom(A_i)|`` cells — the signal-to-noise
    problem of Section 1 in its purest form.  Only applicable when the full
    domain fits in memory (NLTCS and ACS in the paper).
    """

    name = "Contingency"

    def __init__(self, max_cells: int = 2 ** 24) -> None:
        self.max_cells = max_cells

    def release(
        self,
        table: Table,
        workload: Workload,
        epsilon: float,
        rng: np.random.Generator,
    ) -> Dict[Tuple[str, ...], np.ndarray]:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        names = list(table.attribute_names)
        sizes = [table.attribute(name).size for name in names]
        total = domain_size(sizes)
        if total > self.max_cells:
            raise ValueError(
                f"full domain has {total} cells > limit {self.max_cells}; "
                "the Contingency baseline does not scale to this dataset"
            )
        codes = table.records()
        flat = flatten_index(codes, sizes)
        counts = np.bincount(flat, minlength=total).astype(float)
        joint = counts / max(table.n, 1)
        noisy = normalize_distribution(
            laplace_mechanism(
                joint, sensitivity=2.0 / max(table.n, 1), epsilon=epsilon, rng=rng
            )
        )
        position = {name: i for i, name in enumerate(names)}
        released = {}
        for marginal_names in workload:
            keep = [position[name] for name in marginal_names]
            released[tuple(marginal_names)] = normalize_distribution(
                project_distribution(noisy, sizes, keep)
            )
        return released


class UniformMarginals:
    """The trivial baseline: a uniform distribution for every marginal."""

    name = "Uniform"

    def release(
        self,
        table: Table,
        workload: Workload,
        epsilon: float,
        rng: np.random.Generator,
    ) -> Dict[Tuple[str, ...], np.ndarray]:
        released = {}
        for names in workload:
            size = domain_size([table.attribute(name).size for name in names])
            released[tuple(names)] = np.full(size, 1.0 / size)
        return released
