"""Classification baselines of Figures 16-19.

* :class:`MajorityClassifier` — counts the positive labels with Laplace
  noise and predicts the (noisy) majority class for every row.
* :class:`PrivateERM` — Chaudhuri, Monteleoni & Sarwate (2011) objective
  perturbation for the Huber-loss SVM (their Algorithm 2).
* :class:`PrivGene` — Zhang et al. (2013): genetic model fitting where
  parent selection runs through the exponential mechanism with the number
  of correctly classified tuples as fitness (sensitivity 1).

Each ``fit`` consumes the ε it is given; the experiment harness splits the
overall budget across the four simultaneous tasks (ε/4 each), matching
Section 6.6, and runs "PrivateERM (Single)" by passing the full ε.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.dp.accountant import split_epsilon_even
from repro.dp.mechanisms import exponential_mechanism, laplace_noise, laplace_scale
from repro.svm.linear import HuberSVM


class MajorityClassifier:
    """Noisy majority vote (Section 6.1's naïve baseline)."""

    name = "Majority"

    def __init__(self) -> None:
        self.majority: Optional[float] = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
    ) -> "MajorityClassifier":
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        positives = float(np.sum(y > 0))
        noisy = positives + float(
            laplace_noise(laplace_scale(1.0, epsilon), 1, rng)[0]
        )
        self.majority = 1.0 if noisy > len(y) / 2.0 else -1.0
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.majority is None:
            raise RuntimeError("fit must be called before predictions")
        return np.full(X.shape[0], self.majority)


class PrivateERM:
    """Objective perturbation for Huber-SVM ERM (Chaudhuri et al. 2011).

    Requires feature rows with ``||x||₂ ≤ 1`` (the featurizer guarantees
    this).  The Huber loss with corner ``h`` has ``|ℓ''| ≤ c = 1/(2h)``;
    Algorithm 2 of the paper then calibrates a random linear term (and,
    when ε is small relative to λ, extra regularization Δ).
    """

    name = "PrivateERM"

    def __init__(self, lam: float = 0.01, huber_h: float = 0.5) -> None:
        self.lam = lam
        self.huber_h = huber_h
        self.model: Optional[HuberSVM] = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
    ) -> "PrivateERM":
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        n, p = X.shape
        c = 1.0 / (2.0 * self.huber_h)
        lam = self.lam
        # repro: allow[PRIV001] -- Chaudhuri et al. objective-perturbation calibration, not a budget split
        eps_prime = epsilon - math.log(
            1.0 + 2.0 * c / (n * lam) + (c * c) / (n * n * lam * lam)
        )
        if eps_prime > 0:
            delta = 0.0
        else:
            # repro: allow[PRIV001] -- Chaudhuri et al. objective-perturbation calibration, not a budget split
            delta = c / (n * (math.exp(epsilon / 4.0) - 1.0)) - lam
            eps_prime = epsilon / 2.0  # repro: allow[PRIV001] -- Chaudhuri et al. low-epsilon branch calibration
        # b has density ∝ exp(-ε'·||b|| / 2): direction uniform on the
        # sphere, norm ~ Gamma(p, 2/ε').
        direction = rng.standard_normal(p)
        direction /= np.linalg.norm(direction)
        norm = rng.gamma(shape=p, scale=2.0 / eps_prime)  # repro: allow[PRIV001] -- perturbation-norm density parameter from the calibrated eps'
        b = norm * direction
        model = HuberSVM(lam=lam, huber_h=self.huber_h)
        model.fit(X, y, perturbation=b, extra_regularization=delta)
        self.model = model
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit must be called before predictions")
        return self.model.predict(X)


class PrivGene:
    """Genetic model fitting with exponential-mechanism selection.

    Fitness of a candidate weight vector is its number of correctly
    classified training tuples (sensitivity 1: one tuple changes the count
    by at most 1 for every candidate).  Each iteration selects
    ``n_parents`` candidates via the exponential mechanism, then refills
    the population with crossover + Gaussian mutation offspring; the
    mutation scale decays over iterations as in the original paper.
    """

    name = "PrivGene"

    def __init__(
        self,
        population: int = 100,
        n_parents: int = 10,
        iterations: int = 10,
        initial_mutation: float = 0.5,
        decay: float = 0.7,
    ) -> None:
        self.population = population
        self.n_parents = n_parents
        self.iterations = iterations
        self.initial_mutation = initial_mutation
        self.decay = decay
        self.weights: Optional[np.ndarray] = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
    ) -> "PrivGene":
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        n, p = X.shape
        selections = self.iterations * self.n_parents
        eps_each = split_epsilon_even(epsilon, selections)
        candidates = rng.standard_normal((self.population, p))
        candidates /= np.linalg.norm(candidates, axis=1, keepdims=True)
        mutation = self.initial_mutation
        parents = candidates[: self.n_parents]
        for _ in range(self.iterations):
            fitness = self._fitness(candidates, X, y)
            chosen = []
            available = list(range(len(candidates)))
            for _ in range(self.n_parents):
                idx = exponential_mechanism(
                    fitness[available], sensitivity=1.0, epsilon=eps_each, rng=rng
                )
                chosen.append(available.pop(idx))
            parents = candidates[chosen]
            candidates = self._offspring(parents, mutation, rng)
            mutation *= self.decay
        # Final model: mean of the last parent set (data-independent given
        # the selections, so no extra budget).
        self.weights = parents.mean(axis=0)
        return self

    def _fitness(self, candidates, X, y) -> np.ndarray:
        margins = (X @ candidates.T) * y[:, None]
        return (margins > 0).sum(axis=0).astype(float)

    def _offspring(self, parents, mutation, rng) -> np.ndarray:
        p = parents.shape[1]
        children = [parents]
        needed = self.population - parents.shape[0]
        mothers = parents[rng.integers(parents.shape[0], size=needed)]
        fathers = parents[rng.integers(parents.shape[0], size=needed)]
        mask = rng.random((needed, p)) < 0.5
        crossed = np.where(mask, mothers, fathers)
        crossed += mutation * rng.standard_normal((needed, p))
        children.append(crossed)
        return np.concatenate(children, axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit must be called before predictions")
        return np.where(X @ self.weights >= 0.0, 1.0, -1.0)
