"""MWEM: Multiplicative Weights + Exponential Mechanism (Hardt et al., 2012).

Maintains a synthetic distribution ``A`` over the *full* domain, improved
iteratively: each round privately selects (exponential mechanism) the
workload query on which ``A`` errs most, measures it with Laplace noise,
and applies a multiplicative-weights update.  Queries here are marginal
cell counts: for every workload marginal and every cell, the count of rows
falling in that cell.

Like the paper, the per-iteration budget is fixed (0.05 by default —
Section 6.5 lowers the authors' 1.0 so that "at least one round of
improvement occurs" at small ε); the iteration count is ``ε / per_round``,
capped for tractability.  Applicable only when the full domain is
materializable (NLTCS/ACS in the paper).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.marginals import (
    domain_size,
    flatten_index,
    normalize_distribution,
    project_distribution,
)
from repro.data.table import Table
from repro.dp.accountant import split_epsilon_even
from repro.dp.mechanisms import exponential_mechanism, laplace_noise, laplace_scale

Workload = Sequence[Tuple[str, ...]]


class MWEM:
    """Multiplicative Weights / Exponential Mechanism baseline."""

    name = "MWEM"

    def __init__(
        self,
        per_round_epsilon: float = 0.05,
        max_rounds: int = 40,
        max_cells: int = 2 ** 24,
    ) -> None:
        self.per_round_epsilon = per_round_epsilon
        self.max_rounds = max_rounds
        self.max_cells = max_cells

    def release(
        self,
        table: Table,
        workload: Workload,
        epsilon: float,
        rng: np.random.Generator,
    ) -> Dict[Tuple[str, ...], np.ndarray]:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        names = list(table.attribute_names)
        sizes = [table.attribute(name).size for name in names]
        total = domain_size(sizes)
        if total > self.max_cells:
            raise ValueError(
                f"full domain has {total} cells > limit {self.max_cells}; "
                "MWEM does not scale to this dataset"
            )
        position = {name: i for i, name in enumerate(names)}
        n = max(table.n, 1)

        # Workload bookkeeping: per marginal, the axes it keeps and the
        # flat cell index of every row of the data.
        marginals: List[Tuple[Tuple[str, ...], List[int], np.ndarray]] = []
        for marginal_names in workload:
            keep = [position[name] for name in marginal_names]
            m_sizes = [sizes[i] for i in keep]
            codes = np.stack([table.column(name) for name in marginal_names], axis=1)
            counts = np.bincount(
                flatten_index(codes, m_sizes), minlength=domain_size(m_sizes)
            ).astype(float)
            marginals.append((tuple(marginal_names), keep, counts))

        # Round count only sizes the loop; the actual spend below flows
        # through split_epsilon_even.
        rounds = max(1, min(self.max_rounds, int(round(epsilon / self.per_round_epsilon))))  # repro: allow[PRIV001] -- ratio picks the round count, not a budget share
        # Half of each round's share for selection, half for measurement.
        eps_round = split_epsilon_even(epsilon, rounds)
        eps_half = split_epsilon_even(eps_round, 2)

        A = np.full(total, float(n) / total)  # uniform synthetic histogram
        for _ in range(rounds):
            # Score every query (marginal cell) by |true - estimate|.
            scores: List[float] = []
            index: List[Tuple[int, int]] = []
            estimates: List[np.ndarray] = []
            for j, (_, keep, counts) in enumerate(marginals):
                estimate = project_distribution(A, sizes, keep)
                estimates.append(estimate)
                errors = np.abs(counts - estimate)
                for cell in range(errors.size):
                    scores.append(float(errors[cell]))
                    index.append((j, cell))
            chosen = exponential_mechanism(
                np.asarray(scores),
                sensitivity=1.0,  # one tuple moves one cell count by 1
                epsilon=eps_half,
                rng=rng,
            )
            j, cell = index[chosen]
            _, keep, counts = marginals[j]
            measurement = counts[cell] + float(
                laplace_noise(laplace_scale(1.0, eps_half), 1, rng)[0]
            )
            estimate = estimates[j][cell]
            # Multiplicative-weights update on the full histogram.
            m_sizes = [sizes[i] for i in keep]
            member = self._cell_indicator(sizes, keep, m_sizes, cell)
            A = A * np.exp(member * (measurement - estimate) / (2.0 * n))
            A *= n / A.sum()

        released = {}
        for marginal_names, keep, _ in marginals:
            released[marginal_names] = normalize_distribution(
                project_distribution(A, sizes, keep)
            )
        return released

    @staticmethod
    def _cell_indicator(
        sizes: List[int], keep: List[int], m_sizes: List[int], cell: int
    ) -> np.ndarray:
        """0/1 vector over the full domain marking rows in the given cell."""
        out = np.zeros(sizes)
        slicer = [slice(None)] * len(sizes)
        coords = np.unravel_index(cell, m_sizes)
        for axis, i in enumerate(keep):
            slicer[i] = coords[axis]
        out[tuple(slicer)] = 1.0
        return out.reshape(-1)
