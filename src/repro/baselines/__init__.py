"""Every comparator of Section 6.

Marginal-workload baselines (Figures 12-15), each releasing a noisy
distribution per workload marginal:

* :class:`LaplaceMarginals` — direct Laplace noise on each α-way marginal.
* :class:`FourierMarginals` — Barak et al.: noisy Fourier (Walsh-Hadamard)
  coefficients over the binarized domain.
* :class:`ContingencyMarginals` — noisy full contingency table, projected.
* :class:`MWEM` — Hardt-Ligett-McSherry multiplicative weights + EM.
* :class:`UniformMarginals` — the trivial uniform answer.

Classification baselines (Figures 16-19):

* :func:`majority_classifier` — noisy majority vote.
* :class:`PrivateERM` — Chaudhuri et al. objective perturbation (Huber SVM).
* :class:`PrivGene` — Zhang et al. genetic model fitting with the
  exponential mechanism.
"""

from repro.baselines.marginal_methods import (
    ContingencyMarginals,
    LaplaceMarginals,
    UniformMarginals,
)
from repro.baselines.fourier import FourierMarginals
from repro.baselines.mwem import MWEM
from repro.baselines.classification import (
    MajorityClassifier,
    PrivateERM,
    PrivGene,
)

__all__ = [
    "LaplaceMarginals",
    "FourierMarginals",
    "ContingencyMarginals",
    "MWEM",
    "UniformMarginals",
    "MajorityClassifier",
    "PrivateERM",
    "PrivGene",
]
