"""Fourier marginal release (Barak et al., PODS 2007).

Over the binarized domain ``{0,1}^D``, the empirical distribution ``f``
has Walsh-Hadamard (Fourier) coefficients

    c_S = (1/n) · Σ_rows (-1)^(x · 1_S)          for S ⊆ {1..D}.

A marginal over a bit set ``T`` is exactly determined by the coefficients
of the subsets of ``T``::

    Pr[x_T = t] = (1/2^|T|) · Σ_{S ⊆ T} c_S · (-1)^(t · 1_S)

so the mechanism (i) collects every subset needed by the workload,
(ii) releases each coefficient once with Laplace noise (each tuple changes
each coefficient by at most 2/n, so the coefficient family has L1
sensitivity ``2M/n``), and (iii) reconstructs the workload marginals,
clamping and normalizing for consistency.

Non-binary attributes are binarized with the natural binary encoding
first; marginals are reconstructed over the bit columns of the original
attributes and then trimmed to the valid (in-domain) cells.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.marginals import (
    domain_size,
    normalize_distribution,
    unflatten_index,
)
from repro.data.table import Table
from repro.dp.mechanisms import laplace_noise
from repro.encoding.bitwise import BinaryEncoder, bits_needed

Workload = Sequence[Tuple[str, ...]]


class FourierMarginals:
    """Barak et al.'s Fourier mechanism adapted to mixed-domain workloads."""

    name = "Fourier"

    def __init__(self, max_bits_per_marginal: int = 16) -> None:
        self.max_bits_per_marginal = max_bits_per_marginal

    def release(
        self,
        table: Table,
        workload: Workload,
        epsilon: float,
        rng: np.random.Generator,
    ) -> Dict[Tuple[str, ...], np.ndarray]:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        encoder = BinaryEncoder()
        encoded = encoder.encode(table)
        bit_names = list(encoded.attribute_names)
        bit_position = {name: i for i, name in enumerate(bit_names)}
        bits = encoded.records()  # (n, D) of 0/1

        # Bit columns backing each original attribute, MSB first.
        attr_bits: Dict[str, List[int]] = {}
        for attr in table.attributes:
            width = bits_needed(attr.size)
            attr_bits[attr.name] = [
                bit_position[f"{attr.name}#b{b}"] for b in range(width)
            ]

        # Coefficient subsets needed: every subset of every marginal's bits.
        needed: set = set()
        marginal_bits: Dict[Tuple[str, ...], List[int]] = {}
        for names in workload:
            T = [b for name in names for b in attr_bits[name]]
            if len(T) > self.max_bits_per_marginal:
                raise ValueError(
                    f"marginal {names} spans {len(T)} bits > limit "
                    f"{self.max_bits_per_marginal}"
                )
            marginal_bits[tuple(names)] = T
            for r in range(len(T) + 1):
                needed.update(itertools.combinations(sorted(T), r))
        subsets = sorted(needed, key=lambda s: (len(s), s))
        M = len(subsets)

        # Noisy coefficients (one Laplace release of the whole family).
        n = max(table.n, 1)
        # Fused single-release scale 2M/(n eps); kept as one expression so
        # historical goldens stay bit-identical.
        scale = 2.0 * M / (n * epsilon)  # repro: allow[PRIV001] -- fused Laplace scale for the whole coefficient family (sensitivity 2M/n)
        coefficients: Dict[Tuple[int, ...], float] = {}
        noise = laplace_noise(scale, M, rng)
        for idx, S in enumerate(subsets):
            if S:
                parity = bits[:, list(S)].sum(axis=1) % 2
                value = float((1.0 - 2.0 * parity).sum()) / n
            else:
                value = 1.0
            coefficients[S] = value + float(noise[idx])

        # Reconstruct each marginal from its subsets' coefficients.
        released = {}
        for names in workload:
            names = tuple(names)
            T = marginal_bits[names]
            m = len(T)
            cells = np.arange(2 ** m)
            cell_bits = unflatten_index(cells, [2] * m)  # (2^m, m)
            values = np.zeros(2 ** m)
            for r in range(m + 1):
                for S in itertools.combinations(sorted(T), r):
                    mask = [T.index(b) for b in S]
                    sign = (
                        1.0 - 2.0 * (cell_bits[:, mask].sum(axis=1) % 2)
                        if mask
                        else np.ones(2 ** m)
                    )
                    values += coefficients[S] * sign
            values /= 2 ** m
            released[names] = self._trim_to_domain(table, names, T, values)
        return released

    def _trim_to_domain(
        self,
        table: Table,
        names: Tuple[str, ...],
        bit_list: List[int],
        values: np.ndarray,
    ) -> np.ndarray:
        """Fold the bitwise marginal onto the original attribute domain.

        Bit patterns with index ≥ |dom| (unused codes) are dropped; their
        (noise-only) mass disappears in the renormalization.
        """
        widths = [bits_needed(table.attribute(name).size) for name in names]
        sizes = [table.attribute(name).size for name in names]
        m = len(bit_list)
        cell_bits = unflatten_index(np.arange(2 ** m), [2] * m)
        # Recover each attribute's index from its MSB-first bit block.
        indices = []
        offset = 0
        for width in widths:
            block = cell_bits[:, offset : offset + width]
            weights = 1 << np.arange(width - 1, -1, -1)
            indices.append(block @ weights)
            offset += width
        valid = np.ones(2 ** m, dtype=bool)
        for idx, size in zip(indices, sizes):
            valid &= idx < size
        flat = np.zeros(domain_size(sizes))
        target = np.zeros(2 ** m, dtype=np.int64)
        stride = 1
        for idx, size in zip(reversed(indices), reversed(sizes)):
            target += idx * stride
            stride *= size
        np.add.at(flat, target[valid], values[valid])
        return normalize_distribution(flat)
