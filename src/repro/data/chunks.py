"""Chunked row sources: the out-of-core data plane.

The resident :class:`~repro.data.table.Table` holds every column in RAM;
that is the right call up to a few hundred thousand rows, but the paper's
pipeline only ever touches the data through *contingency counts* —
``np.bincount`` sums over rows — and integer sums over row chunks are
exactly the sums over all rows.  A :class:`ChunkedSource` exposes the same
schema metadata as a table (``attributes`` / ``n`` / ``d`` /
``attribute(name)``) but delivers the rows as a re-iterable stream of
bounded column chunks, so counting, structure learning, and distribution
learning run in memory bounded by the chunk size rather than the table
size, with bit-identical outputs.

The ``ChunkedSource`` protocol
------------------------------
A source must provide:

* ``attributes`` — the ordered :class:`~repro.data.attribute.Attribute`
  schema (a tuple, as on ``Table``);
* ``n`` — the total row count (known up front; two-pass readers learn it
  during schema inference);
* ``chunks()`` — an iterator of ``{attribute name: int64 code array}``
  mappings, each covering every attribute with equal-length columns, whose
  concatenation in order is the full dataset.  ``chunks()`` must be
  **re-iterable and deterministic**: the counting layer makes several
  passes (one per round of greedy structure search, one for distribution
  learning) and every pass must see the identical rows.  Chunks may be
  ragged (a short final chunk) or even empty; empty chunks contribute
  nothing to any count.

When to use which path
----------------------
* **Resident** (``Table``): anything that needs random row access —
  train/test splits, workload evaluation, the figure experiments at paper
  scale.  ``Table.from_chunks`` concatenates a source when a caller wants
  it resident.
* **Streaming** (``ChunkedSource``): million-row fits and releases.
  ``PrivBayes.fit`` accepts a source directly (scoring and distribution
  learning accumulate their bincounts chunk-by-chunk), and
  :func:`repro.core.sampler.sample_synthetic_chunks` +
  :func:`repro.data.io.write_csv` stream the release back out, so no
  ``n × d`` matrix of codes or decoded labels ever materializes.

Everything here is a deterministic data statistic: chunked and monolithic
counting produce the *same int64 integers* (asserted across chunk sizes,
including ragged and empty trailing chunks, in ``tests/data/test_chunks.py``),
so every downstream float, noise draw, and released tuple is bit-identical
to the resident path.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.data.attribute import Attribute
from repro.data.marginals import (
    domain_size,
    ensure_int64_domain,
    stacked_joint_counts,
)
from repro.data.table import Table

#: Default rows per chunk: 64k rows x 16 attributes x 8 bytes = 8 MiB of
#: codes per chunk — large enough to amortize numpy call overhead, small
#: enough that a handful of in-flight chunks stay cache-friendly.
DEFAULT_CHUNK_ROWS = 65_536

#: One (possibly generalized) parent set, as used throughout the library.
ParentSet = Tuple[Tuple[str, int], ...]


class ChunkedSource:
    """Base class implementing the schema-metadata half of the protocol.

    Subclasses set ``_attributes`` and ``_n`` (or override the properties)
    and implement :meth:`chunks`.  The metadata surface deliberately
    mirrors :class:`~repro.data.table.Table` so the fitting layers accept
    either interchangeably.
    """

    _attributes: Tuple[Attribute, ...] = ()
    _n: int = 0

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return self._attributes

    @property
    def n(self) -> int:
        """Total number of rows across all chunks."""
        return self._n

    @property
    def d(self) -> int:
        return len(self.attributes)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def attribute(self, name: str) -> Attribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(f"no attribute named {name!r}")

    @property
    def domain_size(self) -> int:
        return domain_size([a.size for a in self.attributes])

    def chunks(self) -> Iterator[Mapping[str, np.ndarray]]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(n={self.n}, d={self.d}, "
            f"attrs={list(self.attribute_names)})"
        )


class TableChunks(ChunkedSource):
    """A resident table viewed as a chunk stream (zero-copy column slices).

    The reference source for the chunked-vs-monolithic equivalence tests:
    its chunks concatenate to exactly the table's columns for any chunk
    size, so any counting discrepancy is the counting layer's fault.
    """

    def __init__(self, table: Table, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be positive")
        self._table = table
        self._chunk_rows = int(chunk_rows)
        self._attributes = table.attributes
        self._n = table.n

    def chunks(self) -> Iterator[Mapping[str, np.ndarray]]:
        names = self._table.attribute_names
        columns = [self._table.column(name) for name in names]
        if self._n == 0:
            yield {name: col[0:0] for name, col in zip(names, columns)}
            return
        for start in range(0, self._n, self._chunk_rows):
            stop = min(start + self._chunk_rows, self._n)
            yield {
                name: col[start:stop] for name, col in zip(names, columns)
            }


class IterableChunks(ChunkedSource):
    """Adapter for a pre-built list of column chunks (tests, custom feeds).

    ``chunk_list`` is held resident, so this is for small inputs and edge
    cases (e.g. sources with explicit empty trailing chunks); real
    out-of-core feeds should subclass :class:`ChunkedSource` and stream.
    """

    def __init__(
        self,
        attributes: Sequence[Attribute],
        chunk_list: Sequence[Mapping[str, np.ndarray]],
    ) -> None:
        self._attributes = tuple(attributes)
        self._chunk_list = [dict(chunk) for chunk in chunk_list]
        names = set(a.name for a in self._attributes)
        total = 0
        for chunk in self._chunk_list:
            if set(chunk) != names:
                raise ValueError(
                    f"chunk columns {sorted(chunk)} do not match schema "
                    f"{sorted(names)}"
                )
            lengths = {np.asarray(col).shape[0] for col in chunk.values()}
            if len(lengths) > 1:
                raise ValueError("chunk columns have differing lengths")
            total += next(iter(lengths)) if lengths else 0
        self._n = total

    def chunks(self) -> Iterator[Mapping[str, np.ndarray]]:
        for chunk in self._chunk_list:
            yield chunk


RowSource = Union[Table, ChunkedSource]


def as_chunks(
    source: RowSource, chunk_rows: int = DEFAULT_CHUNK_ROWS
) -> Iterator[Mapping[str, np.ndarray]]:
    """Chunk iterator over either a resident table or a chunked source."""
    if isinstance(source, Table):
        return TableChunks(source, chunk_rows).chunks()
    return source.chunks()


def to_table(source: ChunkedSource) -> Table:
    """Materialize a source as a resident table (see ``Table.from_chunks``)."""
    return Table.from_chunks(source.attributes, source.chunks())


# ---------------------------------------------------------------------------
# Streaming contingency counting
# ---------------------------------------------------------------------------
def generalized_level_size(attr: Attribute, level: int) -> int:
    """Domain size of ``attr`` generalized to taxonomy ``level``.

    Pure schema metadata (derived from the taxonomy's leaf map, not from
    data), equal to the size :func:`repro.bn.quality.generalized_codes`
    reports for the same level.
    """
    if level == 0:
        return attr.size
    mapping = attr.generalization_map(level)
    return int(mapping.max()) + 1 if mapping.size else 1


class _LevelMapCache:
    """Per-pass cache of taxonomy leaf->level maps, keyed (name, level)."""

    def __init__(self, source: RowSource) -> None:
        self._source = source
        self._maps: Dict[Tuple[str, int], np.ndarray] = {}

    def codes(
        self, chunk: Mapping[str, np.ndarray], name: str, level: int
    ) -> np.ndarray:
        if level == 0:
            return chunk[name]
        key = (name, level)
        if key not in self._maps:
            self._maps[key] = self._source.attribute(name).generalization_map(
                level
            )
        return self._maps[key][chunk[name]]


#: One counting group: a shared parent set and the children joined to it.
CountGroup = Tuple[ParentSet, Tuple[str, ...]]

#: Result per group: (block, offsets, lengths, parent_sizes, child_sizes) —
#: the ``stacked_joint_counts`` layout plus the mixed-radix size metadata.
GroupCounts = Tuple[
    np.ndarray, Tuple[int, ...], Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]
]


def stream_grouped_joint_counts(
    source: RowSource,
    groups: Sequence[CountGroup],
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> List[GroupCounts]:
    """Contingency counts for many parent-set groups in ONE pass over the rows.

    For each group ``(parents, children)`` this accumulates exactly the
    ``(block, offsets, lengths)`` layout of
    :func:`repro.data.marginals.stacked_joint_counts`, chunk by chunk:
    every chunk's bincount lands in int64 and integer addition is exact and
    order-free, so the accumulated block equals the single-pass block over
    the concatenated rows bit for bit.  Counting all groups of a greedy
    round (or all of a network's parent sets) in one pass is what turns
    structure learning from one data scan per parent set into one scan per
    round.

    Memory is bounded by the chunk size plus the count blocks themselves
    (which scale with the joint domains, not with ``n``).
    """
    plans = []
    blocks: List[np.ndarray] = []
    for parents, children in groups:
        parent_sizes = tuple(
            generalized_level_size(source.attribute(name), level)
            for name, level in parents
        )
        parent_dom = domain_size(parent_sizes)
        child_sizes = tuple(
            source.attribute(child).size for child in children
        )
        for child, child_size in zip(children, child_sizes):
            ensure_int64_domain(
                parent_dom * child_size, f"joint domain of (Π, {child!r})"
            )
        total = ensure_int64_domain(
            sum(parent_dom * s for s in child_sizes),
            "batched joint-count block",
        )
        plans.append((parents, children, parent_sizes, parent_dom, child_sizes))
        blocks.append(np.zeros(total, dtype=np.int64))
    maps = _LevelMapCache(source)
    offsets: Tuple[int, ...] = ()
    lengths: Tuple[int, ...] = ()
    layouts: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = [
        ((), ()) for _ in plans
    ]
    for chunk in as_chunks(source, chunk_rows):
        rows = next(iter(chunk.values())).shape[0] if chunk else 0
        for position, (parents, children, parent_sizes, parent_dom, child_sizes) in enumerate(
            plans
        ):
            if parents:
                # Mixed-radix accumulation (same integer arithmetic as
                # data.marginals.flatten_index; the domain was int64-checked
                # above, once, instead of per chunk).
                flat = np.asarray(
                    maps.codes(chunk, parents[0][0], parents[0][1]),
                    dtype=np.int64,
                )
                for (name, level), size in zip(parents[1:], parent_sizes[1:]):
                    flat = flat * int(size) + maps.codes(chunk, name, level)
            else:
                flat = np.zeros(rows, dtype=np.int64)
            block, offsets, lengths = stacked_joint_counts(
                flat,
                parent_dom,
                [chunk[child] for child in children],
                child_sizes,
            )
            blocks[position] += block
            layouts[position] = (offsets, lengths)
    results: List[GroupCounts] = []
    for position, (parents, children, parent_sizes, parent_dom, child_sizes) in enumerate(
        plans
    ):
        offsets, lengths = layouts[position]
        if not lengths:
            # Source yielded no chunks at all: derive the layout directly.
            lengths = tuple(parent_dom * s for s in child_sizes)
            acc = [0]
            for length in lengths[:-1]:
                acc.append(acc[-1] + length)
            offsets = tuple(acc)
        results.append(
            (blocks[position], offsets, lengths, parent_sizes, child_sizes)
        )
    return results


def stream_stacked_joint_counts(
    source: RowSource,
    parents: ParentSet,
    children: Sequence[str],
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> GroupCounts:
    """Single-group convenience wrapper of :func:`stream_grouped_joint_counts`."""
    return stream_grouped_joint_counts(
        source, [(tuple(parents), tuple(children))], chunk_rows
    )[0]
