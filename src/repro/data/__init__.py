"""Column-store data substrate: attributes, taxonomy trees, and tables.

Every dataset handled by this library is represented as a :class:`Table`:
an ordered list of :class:`Attribute` descriptors plus one integer-coded
numpy column per attribute.  All downstream machinery (marginals, mutual
information, the PrivBayes pipeline, baselines) operates on these
integer codes; string labels exist only at the boundary for decoding.
"""

from repro.data.attribute import Attribute, AttributeKind, discretize_continuous
from repro.data.taxonomy import TaxonomyTree
from repro.data.table import Table
from repro.data.chunks import (
    ChunkedSource,
    DEFAULT_CHUNK_ROWS,
    IterableChunks,
    TableChunks,
)
from repro.data.marginals import (
    domain_size,
    flatten_index,
    joint_distribution,
    marginal_counts,
    normalize_distribution,
    unflatten_index,
)

__all__ = [
    "Attribute",
    "AttributeKind",
    "TaxonomyTree",
    "Table",
    "ChunkedSource",
    "TableChunks",
    "IterableChunks",
    "DEFAULT_CHUNK_ROWS",
    "discretize_continuous",
    "domain_size",
    "flatten_index",
    "unflatten_index",
    "marginal_counts",
    "joint_distribution",
    "normalize_distribution",
]
