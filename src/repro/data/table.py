"""Integer-coded column-store table.

A :class:`Table` is the dataset abstraction used throughout the library:
an ordered list of :class:`~repro.data.Attribute` descriptors and one
``int64`` numpy column per attribute.  Tables are immutable by convention
(methods return new tables); columns are never mutated in place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.attribute import Attribute


class Table:
    """A dataset: attributes plus integer-coded columns.

    Parameters
    ----------
    attributes:
        Ordered schema.  Names must be unique.
    columns:
        Mapping from attribute name to an ``int64`` array of codes in
        ``[0, attr.size)``.  All columns must have equal length.
    """

    def __init__(
        self,
        attributes: Sequence[Attribute],
        columns: Mapping[str, np.ndarray],
    ) -> None:
        self._init(attributes, columns, validate_codes=True)

    @classmethod
    def from_trusted_columns(
        cls,
        attributes: Sequence[Attribute],
        columns: Mapping[str, np.ndarray],
    ) -> "Table":
        """Construct from columns whose codes are in-range by construction.

        Library-internal producers — e.g. ancestral sampling, which draws
        every code by inverting a conditional with exactly ``attr.size``
        columns — cannot emit out-of-range codes, so this path skips the
        validating constructor's O(n·d) per-column ``min``/``max`` scans
        (a real cost when sampling repeatedly from one model).  Schema
        consistency (names, lengths, dtype) is still enforced.  External
        or hand-built data must go through the normal constructor.
        """
        table = cls.__new__(cls)
        table._init(attributes, columns, validate_codes=False)
        return table

    def _init(
        self,
        attributes: Sequence[Attribute],
        columns: Mapping[str, np.ndarray],
        validate_codes: bool,
    ) -> None:
        """Shared constructor body; ``validate_codes`` gates the range scan."""
        self._attributes: Tuple[Attribute, ...] = tuple(attributes)
        names = [a.name for a in self._attributes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate attribute names")
        if set(columns) != set(names):
            raise ValueError(
                f"columns {sorted(columns)} do not match schema {sorted(names)}"
            )
        self._columns: Dict[str, np.ndarray] = {}
        n = None
        for attr in self._attributes:
            col = np.asarray(columns[attr.name], dtype=np.int64)
            if col.ndim != 1:
                raise ValueError(f"column {attr.name!r} must be 1-dimensional")
            if n is None:
                n = col.shape[0]
            elif col.shape[0] != n:
                raise ValueError("columns have differing lengths")
            if validate_codes and col.size and (
                col.min() < 0 or col.max() >= attr.size
            ):
                raise ValueError(
                    f"column {attr.name!r} has codes outside [0, {attr.size})"
                )
            self._columns[attr.name] = col
        self._n = 0 if n is None else int(n)
        self._by_name: Dict[str, Attribute] = {a.name: a for a in self._attributes}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of tuples."""
        return self._n

    @property
    def d(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return self._attributes

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def attribute(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no attribute named {name!r}") from None

    def column(self, name: str) -> np.ndarray:
        """The integer-coded column for ``name`` (do not mutate)."""
        if name not in self._columns:
            raise KeyError(f"no attribute named {name!r}")
        return self._columns[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table(n={self._n}, d={self.d}, attrs={list(self.attribute_names)})"

    @property
    def domain_size(self) -> int:
        """Product of attribute cardinalities (the ``m`` of Section 1)."""
        size = 1
        for attr in self._attributes:
            size *= attr.size
        return size

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Table":
        """Keep only the named attributes, in the given order.

        Invariant: the selected columns passed this table's validating
        constructor already and are never mutated, so re-running the
        O(n·d) per-column min/max scans would prove nothing — route
        through the trusted constructor.
        """
        attrs = [self.attribute(name) for name in names]
        cols = {name: self._columns[name] for name in names}
        return Table.from_trusted_columns(attrs, cols)

    def take(self, indices: np.ndarray) -> "Table":
        """Row subset/reorder by integer indices.

        Invariant: every selected code comes out of this table's already-
        validated columns (out-of-range *indices* still raise IndexError
        from numpy), so the derived columns are in-range by construction
        and skip the validating constructor's range scans.
        """
        indices = np.asarray(indices)
        cols = {name: col[indices] for name, col in self._columns.items()}
        return Table.from_trusted_columns(self._attributes, cols)

    def head(self, k: int) -> "Table":
        return self.take(np.arange(min(k, self._n)))

    def split(self, fraction: float, rng: np.random.Generator) -> Tuple["Table", "Table"]:
        """Random split into (first, second) with ``fraction`` of rows first.

        Used for the 80/20 train/test protocol of Section 6.1.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        perm = rng.permutation(self._n)
        cut = int(round(self._n * fraction))
        return self.take(perm[:cut]), self.take(perm[cut:])

    def with_column(self, attr: Attribute, codes: np.ndarray) -> "Table":
        """New table with one extra column appended."""
        if attr.name in self._by_name:
            raise ValueError(f"attribute {attr.name!r} already present")
        cols = dict(self._columns)
        cols[attr.name] = np.asarray(codes, dtype=np.int64)
        return Table(self._attributes + (attr,), cols)

    def drop(self, names: Iterable[str]) -> "Table":
        drop_set = set(names)
        keep = [a.name for a in self._attributes if a.name not in drop_set]
        return self.project(keep)

    def records(self) -> np.ndarray:
        """All rows as an ``(n, d)`` code matrix, in schema order."""
        if self.d == 0:
            return np.empty((self._n, 0), dtype=np.int64)
        return np.stack([self._columns[a.name] for a in self._attributes], axis=1)

    def decoded_records(self, limit: Optional[int] = None) -> List[Tuple]:
        """Rows as tuples of labels (for display / export).

        Decoding is one ``np.take`` gather per attribute over an object
        array of its labels (instead of a Python-level lookup per cell);
        the resulting tuples are the exact label objects the per-cell
        path produced.
        """
        count = self._n if limit is None else min(limit, self._n)
        if self.d == 0:
            return [() for _ in range(count)]
        decoded = [
            np.asarray(attr.values, dtype=object).take(
                self._columns[attr.name][:count]
            )
            for attr in self._attributes
        ]
        return list(zip(*decoded))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_records(
        attributes: Sequence[Attribute], matrix: np.ndarray
    ) -> "Table":
        """Build a table from an ``(n, d)`` code matrix in schema order."""
        matrix = np.asarray(matrix, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != len(attributes):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {len(attributes)} attributes"
            )
        cols = {
            attr.name: matrix[:, j].copy() for j, attr in enumerate(attributes)
        }
        return Table(attributes, cols)

    @staticmethod
    def from_chunks(
        attributes: Sequence[Attribute],
        chunks: "Iterable[Mapping[str, np.ndarray]]",
    ) -> "Table":
        """Concatenate a chunk stream into a resident table.

        ``chunks`` yields ``{name: int64 code array}`` mappings (the
        :class:`~repro.data.chunks.ChunkedSource` chunk shape); their
        row-wise concatenation becomes the table.  Use this when a caller
        wants a chunked source resident — learning does not require it.
        Chunks may come from outside the library, so the validating
        constructor's range scans are kept.
        """
        attributes = tuple(attributes)
        parts: Dict[str, List[np.ndarray]] = {a.name: [] for a in attributes}
        for chunk in chunks:
            if set(chunk) != set(parts):
                raise ValueError(
                    f"chunk columns {sorted(chunk)} do not match schema "
                    f"{sorted(parts)}"
                )
            for attr in attributes:
                parts[attr.name].append(
                    np.asarray(chunk[attr.name], dtype=np.int64)
                )
        columns = {
            name: (
                np.concatenate(arrays)
                if arrays
                else np.zeros(0, dtype=np.int64)
            )
            for name, arrays in parts.items()
        }
        return Table(attributes, columns)

    @staticmethod
    def from_labels(
        attributes: Sequence[Attribute],
        rows: Sequence[Sequence[str]],
    ) -> "Table":
        """Build a table from label tuples (encoding each via its attribute)."""
        columns: Dict[str, List[str]] = {a.name: [] for a in attributes}
        for row in rows:
            if len(row) != len(attributes):
                raise ValueError("row length does not match schema")
            for attr, label in zip(attributes, row):
                columns[attr.name].append(label)
        encoded = {
            attr.name: attr.encode(columns[attr.name]) for attr in attributes
        }
        return Table(attributes, encoded)
