"""Attribute descriptors: name, kind, integer-coded domain, optional taxonomy.

An :class:`Attribute` describes one column of a :class:`~repro.data.Table`.
The *domain* is an ordered tuple of labels; the column stores the index of
each tuple's label within that tuple.  Continuous attributes are discretized
into equi-width bins (the paper uses ``b = 16`` bins, Section 5.1) before
they enter the pipeline, so every attribute the algorithms see is discrete.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.data.taxonomy import TaxonomyTree

#: Default number of equi-width bins for continuous attributes (Section 5.1).
DEFAULT_BINS = 16


class AttributeKind(enum.Enum):
    """The three attribute families the paper distinguishes (Section 5)."""

    BINARY = "binary"
    CATEGORICAL = "categorical"
    CONTINUOUS = "continuous"


@dataclass(frozen=True)
class Attribute:
    """Schema descriptor for a single column.

    Parameters
    ----------
    name:
        Column name, unique within a table.
    values:
        Ordered domain labels.  The column stores indices into this tuple.
    kind:
        One of :class:`AttributeKind`.  ``CONTINUOUS`` attributes must have
        been discretized already; their ``values`` are bin labels.
    taxonomy:
        Optional generalization hierarchy used by the hierarchical encoding
        (Section 5.1).  Level 0 of the taxonomy must equal ``values``.
    """

    name: str
    values: Tuple[str, ...]
    kind: AttributeKind = AttributeKind.CATEGORICAL
    taxonomy: Optional[TaxonomyTree] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if len(self.values) < 1:
            raise ValueError(f"attribute {self.name!r} has an empty domain")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"attribute {self.name!r} has duplicate labels")
        if self.kind is AttributeKind.BINARY and len(self.values) != 2:
            raise ValueError(
                f"binary attribute {self.name!r} must have exactly 2 values, "
                f"got {len(self.values)}"
            )
        if self.taxonomy is not None and self.taxonomy.leaf_count != len(self.values):
            raise ValueError(
                f"attribute {self.name!r}: taxonomy has {self.taxonomy.leaf_count} "
                f"leaves but the domain has {len(self.values)} values"
            )

    @property
    def size(self) -> int:
        """Domain cardinality ``|dom(X)|``."""
        return len(self.values)

    @property
    def is_binary(self) -> bool:
        return self.size == 2

    @property
    def height(self) -> int:
        """Height of the taxonomy tree; 1 when no taxonomy is attached.

        Matches ``height(X)`` in Section 5.1: the number of usable
        generalization levels, level 0 being the raw domain.
        """
        if self.taxonomy is None:
            return 1
        return self.taxonomy.height

    def generalized(self, level: int) -> "Attribute":
        """Return the generalized attribute ``X^(level)`` (Section 5.1).

        Level 0 is the attribute itself.  Requires a taxonomy for levels > 0.
        """
        if level == 0:
            return self
        if self.taxonomy is None:
            raise ValueError(
                f"attribute {self.name!r} has no taxonomy; cannot generalize"
            )
        labels = self.taxonomy.level_labels(level)
        return Attribute(
            name=f"{self.name}^({level})",
            values=tuple(labels),
            kind=AttributeKind.CATEGORICAL if len(labels) > 2 else AttributeKind.BINARY,
            taxonomy=None,
        )

    def generalization_map(self, level: int) -> np.ndarray:
        """Integer map from raw codes to codes of ``generalized(level)``."""
        if level == 0:
            return np.arange(self.size, dtype=np.int64)
        if self.taxonomy is None:
            raise ValueError(
                f"attribute {self.name!r} has no taxonomy; cannot generalize"
            )
        return self.taxonomy.leaf_to_level(level)

    def encode(self, labels: Sequence[str]) -> np.ndarray:
        """Map labels to integer codes (inverse of :meth:`decode`)."""
        lookup = {v: i for i, v in enumerate(self.values)}
        try:
            return np.array([lookup[label] for label in labels], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(
                f"label {exc.args[0]!r} not in domain of attribute {self.name!r}"
            ) from None

    def decode(self, codes: np.ndarray) -> list:
        """Map integer codes back to labels."""
        values = self.values
        return [values[int(c)] for c in codes]

    @staticmethod
    def binary(name: str, values: Tuple[str, str] = ("0", "1")) -> "Attribute":
        """Convenience constructor for a binary attribute."""
        return Attribute(name=name, values=values, kind=AttributeKind.BINARY)


def continuous_attribute(
    name: str, low: float, high: float, bins: int = DEFAULT_BINS
) -> Tuple[Attribute, np.ndarray]:
    """Equi-width continuous attribute over ``[low, high]`` plus its bin edges.

    The schema half of :func:`discretize_continuous`, split out so
    streaming readers can infer the attribute from a range scan alone and
    encode rows chunk by chunk with :func:`encode_continuous` — producing
    the identical attribute and codes the one-shot path builds.
    """
    if bins < 2:
        raise ValueError("need at least 2 bins")
    lo = float(low)
    hi = float(high)
    if not hi > lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    labels = tuple(
        f"({edges[i]:g}, {edges[i + 1]:g}]" for i in range(bins)
    )
    taxonomy = TaxonomyTree.balanced_binary(labels)
    attr = Attribute(
        name=name,
        values=labels,
        kind=AttributeKind.CONTINUOUS,
        taxonomy=taxonomy,
    )
    return attr, edges


def encode_continuous(edges: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Bin a float column against precomputed equi-width ``edges``.

    Pure per-element binning (no data-dependent state), so encoding a
    column in chunks yields exactly the codes of encoding it whole.
    """
    bins = edges.shape[0] - 1
    data = np.asarray(data, dtype=float)
    codes = np.clip(np.searchsorted(edges, data, side="right") - 1, 0, bins - 1)
    return codes.astype(np.int64)


def discretize_continuous(
    name: str,
    data: np.ndarray,
    bins: int = DEFAULT_BINS,
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> Tuple[Attribute, np.ndarray]:
    """Discretize a continuous column into ``bins`` equi-width bins.

    Returns the discretized :class:`Attribute` (with bin-range labels and a
    binary taxonomy tree over the bins, per Section 5.1) together with the
    integer-coded column.
    """
    data = np.asarray(data, dtype=float)
    lo = float(np.min(data)) if low is None else float(low)
    hi = float(np.max(data)) if high is None else float(high)
    attr, edges = continuous_attribute(name, lo, hi, bins=bins)
    return attr, encode_continuous(edges, data)
