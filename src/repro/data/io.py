"""CSV import/export for tables, with schema inference.

Real deployments feed PrivBayes from delimited files.  This module reads a
CSV into a :class:`~repro.data.Table` (inferring binary / categorical /
continuous attributes column by column) and writes tables back out with
their labels, so the synthetic release round-trips through the same
format as the input.

Two reading paths share one schema-inference core:

* :func:`read_csv` — resident: the whole file becomes a ``Table``.
* :class:`CsvSource` — streaming: pass 1 scans the file once to infer the
  schema (per-column distinct values and numeric ranges — memory bounded
  by the domain, not the row count), pass 2 re-reads and encodes
  fixed-size chunks on demand.  ``read_csv`` is literally
  ``Table.from_chunks`` over a ``CsvSource``, so the two paths cannot
  drift apart.

:func:`write_csv` accepts a resident table, a chunked source, or an
iterator of chunk tables (e.g.
:func:`repro.core.sampler.sample_synthetic_chunks`), decoding labels with
one vectorized gather per attribute and writing rows chunk by chunk — a
million-row release never materializes ``n × d`` decoded labels.
"""

from __future__ import annotations

import csv
import itertools
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.data.attribute import (
    Attribute,
    AttributeKind,
    DEFAULT_BINS,
    continuous_attribute,
    encode_continuous,
)
from repro.data.chunks import ChunkedSource, DEFAULT_CHUNK_ROWS, TableChunks
from repro.data.table import Table

PathLike = Union[str, Path]

#: Columns whose distinct-value count exceeds this and parse as numbers
#: are treated as continuous and binned.
CONTINUOUS_THRESHOLD = 20

#: Rows per encode/write batch when a resident table is written out.
WRITE_CHUNK_ROWS = 32_768


def _is_numeric(values: List[str]) -> bool:
    try:
        for v in values:
            float(v)
        return True
    except ValueError:
        return False


class _ColumnSchema:
    """Streaming accumulator for one column's inferred schema.

    Holds the distinct stripped values seen so far (plus, for numeric
    columns, nothing extra — the range comes from the distinct set), so
    its memory is bounded by the column's domain, never by the row count.
    ``finalize`` reproduces :func:`infer_attribute`'s decision exactly and
    returns the attribute plus a chunk encoder.
    """

    def __init__(
        self,
        name: str,
        bins: int = DEFAULT_BINS,
        continuous_threshold: int = CONTINUOUS_THRESHOLD,
    ) -> None:
        self.name = name
        self.bins = bins
        self.continuous_threshold = continuous_threshold
        self._distinct: set = set()

    def add(self, value: str) -> None:
        self._distinct.add(value)

    def finalize(self) -> Tuple[Attribute, Callable[[Sequence[str]], np.ndarray]]:
        """The inferred attribute and an encoder for (chunks of) raw values.

        * ≤ 2 distinct values → binary (a single-valued column is padded
          with a ``__other_<label>`` placeholder — see the caveat on
          :func:`infer_attribute`);
        * numeric with more than ``continuous_threshold`` distinct values
          → continuous, discretized into ``bins`` equi-width bins over the
          observed min/max;
        * otherwise categorical over the sorted distinct labels.
        """
        distinct = sorted(self._distinct)
        if len(distinct) < 1:
            raise ValueError(f"column {self.name!r} is empty")
        if len(distinct) <= 2:
            if len(distinct) == 1:
                distinct = distinct + [f"__other_{distinct[0]}"]
            attr = Attribute(self.name, tuple(distinct), AttributeKind.BINARY)
            return attr, attr.encode
        if _is_numeric(distinct) and len(distinct) > self.continuous_threshold:
            # min/max over the distinct set equal min/max over all values
            # (every value's parse is in the set), so the bin edges match
            # the one-shot full-column scan exactly.
            floats = [float(v) for v in distinct]
            attr, edges = continuous_attribute(
                self.name, min(floats), max(floats), bins=self.bins
            )

            def encode(values: Sequence[str]) -> np.ndarray:
                return encode_continuous(
                    edges, np.array([float(v) for v in values])
                )

            return attr, encode
        attr = Attribute(self.name, tuple(distinct), AttributeKind.CATEGORICAL)
        return attr, attr.encode


def infer_attribute(
    name: str,
    values: List[str],
    bins: int = DEFAULT_BINS,
    continuous_threshold: int = CONTINUOUS_THRESHOLD,
):
    """Infer one column's attribute and integer codes.

    * ≤ 2 distinct values → binary;
    * numeric with more than ``continuous_threshold`` distinct values →
      continuous, discretized into ``bins`` equi-width bins;
    * otherwise categorical over the sorted distinct labels.

    .. caution::
       A column with a **single** distinct value is padded to a binary
       domain with a synthetic ``__other_<label>`` second value (several
       layers assume ≥ 2-value domains).  The placeholder never appears in
       the encoded input (all codes are 0), but a *noisy* release learns a
       perturbed distribution over both values, so synthetic rows can emit
       the placeholder label.  ``tests/data/test_io.py`` pins this
       behavior with a round-trip test; downstream consumers of released
       CSVs should treat ``__other_*`` labels as "the constant column's
       other value".
    """
    schema = _ColumnSchema(
        name, bins=bins, continuous_threshold=continuous_threshold
    )
    for value in values:
        schema.add(value)
    attr, encode = schema.finalize()
    return attr, encode(values)


class CsvSource(ChunkedSource):
    """Two-pass streaming CSV reader (see the module docstring).

    Pass 1 (at construction) streams the file once: it validates shape
    (header present, rows non-empty and rectangular — same errors as
    :func:`read_csv`), counts rows, and accumulates each column's distinct
    values.  No row data is retained.  Pass 2 (:meth:`chunks`) re-reads
    the file and encodes ``chunk_rows``-sized column chunks through the
    same encoders the resident path uses, so chunked and monolithic codes
    are identical for any chunk size.  The file must not change between
    passes; a row-count drift raises :class:`ValueError`.
    """

    def __init__(
        self,
        path: PathLike,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        bins: int = DEFAULT_BINS,
        continuous_threshold: int = CONTINUOUS_THRESHOLD,
        delimiter: str = ",",
    ) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be positive")
        self._path = Path(path)
        self._chunk_rows = int(chunk_rows)
        self._delimiter = delimiter
        schemas: List[_ColumnSchema] = []
        count = 0
        with self._path.open(newline="") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            try:
                header = next(reader)
            except StopIteration:
                raise ValueError(f"{self._path} is empty") from None
            width = len(header)
            schemas = [
                _ColumnSchema(
                    name, bins=bins, continuous_threshold=continuous_threshold
                )
                for name in header
            ]
            for row in reader:
                if not row:
                    continue
                if len(row) != width:
                    raise ValueError(
                        f"{self._path}: row {count + 2} has {len(row)} "
                        f"fields, expected {width}"
                    )
                for schema, field in zip(schemas, row):
                    schema.add(field.strip())
                count += 1
        if count == 0:
            raise ValueError(f"{self._path} has a header but no data rows")
        finalized = [schema.finalize() for schema in schemas]
        self._attributes = tuple(attr for attr, _ in finalized)
        self._encoders = tuple(encode for _, encode in finalized)
        self._n = count

    def chunks(self) -> Iterator[Mapping[str, np.ndarray]]:
        names = self.attribute_names
        width = len(names)
        seen = 0
        with self._path.open(newline="") as handle:
            reader = csv.reader(handle, delimiter=self._delimiter)
            next(reader)  # header (pass 1 guaranteed it exists)
            buffer: List[List[str]] = [[] for _ in names]
            for row in reader:
                if not row:
                    continue
                if len(row) != width or seen >= self._n:
                    raise ValueError(
                        f"{self._path} changed between schema inference and "
                        "chunked reading"
                    )
                for column, field in zip(buffer, row):
                    column.append(field.strip())
                seen += 1
                if len(buffer[0]) >= self._chunk_rows:
                    yield self._encode(names, buffer)
                    buffer = [[] for _ in names]
            if seen != self._n:
                raise ValueError(
                    f"{self._path} changed between schema inference and "
                    "chunked reading"
                )
            if buffer[0]:
                yield self._encode(names, buffer)

    def _encode(
        self, names: Sequence[str], buffer: Sequence[List[str]]
    ) -> Dict[str, np.ndarray]:
        return {
            name: encoder(column)
            for name, encoder, column in zip(names, self._encoders, buffer)
        }


def read_csv(
    path: PathLike,
    bins: int = DEFAULT_BINS,
    continuous_threshold: int = CONTINUOUS_THRESHOLD,
    delimiter: str = ",",
) -> Table:
    """Load a headed CSV file into a table with inferred schema."""
    source = CsvSource(
        path,
        bins=bins,
        continuous_threshold=continuous_threshold,
        delimiter=delimiter,
    )
    return Table.from_chunks(source.attributes, source.chunks())


def _chunk_stream(
    source: Union[Table, ChunkedSource, Iterable[Table]],
) -> Tuple[Tuple[Attribute, ...], Iterator[Mapping[str, np.ndarray]]]:
    """Normalize any writable source to (attributes, chunk iterator)."""
    if isinstance(source, Table):
        return source.attributes, TableChunks(source, WRITE_CHUNK_ROWS).chunks()
    if isinstance(source, ChunkedSource):
        return source.attributes, source.chunks()
    iterator = iter(source)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError(
            "cannot write an empty chunk stream (no schema); pass a Table "
            "or a stream with at least one (possibly empty) chunk"
        ) from None

    def tables_to_chunks() -> Iterator[Mapping[str, np.ndarray]]:
        for chunk_table in itertools.chain([first], iterator):
            yield {
                name: chunk_table.column(name)
                for name in chunk_table.attribute_names
            }

    return first.attributes, tables_to_chunks()


def write_csv(
    source: Union[Table, ChunkedSource, Iterable[Table]],
    path: PathLike,
    delimiter: str = ",",
) -> None:
    """Write decoded labels to a headed CSV file, chunk by chunk.

    ``source`` may be a resident :class:`~repro.data.Table`, any
    :class:`~repro.data.chunks.ChunkedSource`, or an iterator of chunk
    tables (the shape :func:`repro.core.sampler.sample_synthetic_chunks`
    yields) — the streaming release path holds one chunk of decoded labels
    at a time.  Each attribute decodes with a single ``np.take`` gather
    over an object array of its labels; output bytes are identical to the
    historical per-row/per-cell loop.
    """
    attributes, chunk_iter = _chunk_stream(source)
    label_arrays = [
        np.asarray(attr.values, dtype=object) for attr in attributes
    ]
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow([attr.name for attr in attributes])
        for chunk in chunk_iter:
            decoded = [
                labels.take(chunk[attr.name])
                for labels, attr in zip(label_arrays, attributes)
            ]
            writer.writerows(zip(*decoded))
