"""CSV import/export for tables, with schema inference.

Real deployments feed PrivBayes from delimited files.  This module reads a
CSV into a :class:`~repro.data.Table` (inferring binary / categorical /
continuous attributes column by column) and writes tables back out with
their labels, so the synthetic release round-trips through the same
format as the input.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.data.attribute import (
    Attribute,
    AttributeKind,
    DEFAULT_BINS,
    discretize_continuous,
)
from repro.data.table import Table

PathLike = Union[str, Path]

#: Columns whose distinct-value count exceeds this and parse as numbers
#: are treated as continuous and binned.
CONTINUOUS_THRESHOLD = 20


def _is_numeric(values: List[str]) -> bool:
    try:
        for v in values:
            float(v)
        return True
    except ValueError:
        return False


def infer_attribute(
    name: str,
    values: List[str],
    bins: int = DEFAULT_BINS,
    continuous_threshold: int = CONTINUOUS_THRESHOLD,
):
    """Infer one column's attribute and integer codes.

    * ≤ 2 distinct values → binary;
    * numeric with more than ``continuous_threshold`` distinct values →
      continuous, discretized into ``bins`` equi-width bins;
    * otherwise categorical over the sorted distinct labels.
    """
    distinct = sorted(set(values))
    if len(distinct) < 1:
        raise ValueError(f"column {name!r} is empty")
    if len(distinct) <= 2:
        if len(distinct) == 1:
            distinct = distinct + [f"__other_{distinct[0]}"]
        attr = Attribute(name, tuple(distinct), AttributeKind.BINARY)
        return attr, attr.encode(values)
    if _is_numeric(distinct) and len(distinct) > continuous_threshold:
        data = np.array([float(v) for v in values])
        return discretize_continuous(name, data, bins=bins)
    attr = Attribute(name, tuple(distinct), AttributeKind.CATEGORICAL)
    return attr, attr.encode(values)


def read_csv(
    path: PathLike,
    bins: int = DEFAULT_BINS,
    continuous_threshold: int = CONTINUOUS_THRESHOLD,
    delimiter: str = ",",
) -> Table:
    """Load a headed CSV file into a table with inferred schema."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        rows = [row for row in reader if row]
    if not rows:
        raise ValueError(f"{path} has a header but no data rows")
    width = len(header)
    for i, row in enumerate(rows):
        if len(row) != width:
            raise ValueError(
                f"{path}: row {i + 2} has {len(row)} fields, expected {width}"
            )
    attributes: List[Attribute] = []
    columns: Dict[str, np.ndarray] = {}
    for j, name in enumerate(header):
        values = [row[j].strip() for row in rows]
        attr, codes = infer_attribute(
            name, values, bins=bins, continuous_threshold=continuous_threshold
        )
        attributes.append(attr)
        columns[name] = codes
    return Table(attributes, columns)


def write_csv(table: Table, path: PathLike, delimiter: str = ",") -> None:
    """Write a table's decoded labels to a headed CSV file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.attribute_names)
        decoders = [attr.values for attr in table.attributes]
        matrix = table.records()
        for row in matrix:
            writer.writerow(
                [decoders[j][int(code)] for j, code in enumerate(row)]
            )
