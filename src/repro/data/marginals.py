"""Marginal and joint-distribution materialization over integer-coded tables.

Joint distributions over attribute subsets are stored as flat numpy vectors
indexed in mixed radix: for attributes ``(A_1, ..., A_m)`` with sizes
``(s_1, ..., s_m)``, the cell for values ``(v_1, ..., v_m)`` sits at
``v_1 * s_2 * ... * s_m + v_2 * s_3 * ... * s_m + ... + v_m`` (row-major,
first attribute most significant).  This is the representation PrivBayes
perturbs in its distribution-learning phase.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.data.table import Table


_INT64_MAX = np.iinfo(np.int64).max


def domain_size(sizes: Sequence[int]) -> int:
    """Product of domain sizes; 1 for the empty attribute set.

    Computed in Python integers, so the result is exact no matter how wide
    the joint domain is — use :func:`ensure_int64_domain` before trusting it
    as a numpy index bound.
    """
    size = 1
    for s in sizes:
        size *= int(s)
    return size


def ensure_int64_domain(total: int, context: str = "joint domain") -> int:
    """Reject joint domains whose flat indices would overflow int64.

    ``flatten_index`` accumulates mixed-radix indices in int64; a joint
    domain wider than ``2**63 - 1`` would wrap around silently and corrupt
    every downstream count.  ``total`` must be the exact Python-int product
    from :func:`domain_size`.
    """
    if int(total) > _INT64_MAX:
        raise ValueError(
            f"{context} has {total} cells, which exceeds the int64 indexing "
            f"limit ({_INT64_MAX}); drop attributes from the set or "
            "generalize them to coarser taxonomy levels"
        )
    return int(total)


def flatten_index(codes: np.ndarray, sizes: Sequence[int]) -> np.ndarray:
    """Mixed-radix flatten: ``(n, m)`` code matrix -> ``(n,)`` flat indices.

    Raises :class:`ValueError` (instead of silently wrapping) when the
    joint domain of ``sizes`` does not fit in int64.
    """
    ensure_int64_domain(domain_size(sizes))
    codes = np.asarray(codes, dtype=np.int64)
    if codes.ndim == 1:
        codes = codes[:, None]
    if codes.shape[1] != len(sizes):
        raise ValueError(
            f"code matrix has {codes.shape[1]} columns, expected {len(sizes)}"
        )
    flat = np.zeros(codes.shape[0], dtype=np.int64)
    for j, size in enumerate(sizes):
        flat = flat * int(size) + codes[:, j]
    return flat


def unflatten_index(flat: np.ndarray, sizes: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`flatten_index`: flat indices -> code matrix."""
    flat = np.asarray(flat, dtype=np.int64)
    out = np.zeros((flat.shape[0], len(sizes)), dtype=np.int64)
    for j in range(len(sizes) - 1, -1, -1):
        size = int(sizes[j])
        out[:, j] = flat % size
        flat = flat // size
    return out


def stacked_joint_counts(
    parent_flat: np.ndarray,
    parent_dom: int,
    child_columns: Sequence[np.ndarray],
    child_sizes: Sequence[int],
) -> Tuple[np.ndarray, Tuple[int, ...], Tuple[int, ...]]:
    """Contingency counts of several joints ``Pr[Π, X_j]`` sharing one
    flattened parent configuration, in a single ``np.bincount`` pass.

    ``parent_flat`` is the mixed-radix parent index of every row (from
    :func:`flatten_index` over the parent columns) and ``parent_dom`` its
    domain size; each child ``j`` contributes its raw codes and domain
    size.  Returns ``(block, offsets, lengths)`` where
    ``block[offsets[j] : offsets[j] + lengths[j]]`` holds the int64 counts
    of joint ``j`` (child innermost) — the exact integers ``d`` separate
    per-joint bincounts would produce, so any float derived downstream is
    bit-identical to the unbatched path.
    """
    lengths = tuple(int(parent_dom) * int(s) for s in child_sizes)
    offsets = [0]
    for length in lengths[:-1]:
        offsets.append(offsets[-1] + length)
    offsets = tuple(offsets)
    total = ensure_int64_domain(sum(lengths), "batched joint-count block")
    if not child_columns:
        return np.zeros(0, dtype=np.int64), offsets, lengths
    columns = np.stack(child_columns)
    sizes_col = np.asarray(child_sizes, dtype=np.int64)[:, None]
    offsets_col = np.asarray(offsets, dtype=np.int64)[:, None]
    flat = offsets_col + parent_flat[None, :] * sizes_col + columns
    block = np.bincount(flat.ravel(), minlength=total)
    return block, offsets, lengths


def segments_by_size(
    sizes: Sequence[int],
    offsets: Sequence[int],
    lengths: Sequence[int],
) -> "dict[int, list[Tuple[int, int, int]]]":
    """Group a :func:`stacked_joint_counts` layout by child-domain size.

    Returns ``{child_size: [(position, offset, length), ...]}`` so callers
    can stack the equal-shape count segments of each group into one
    rectangular batch for the score kernels.  ``position`` indexes the
    original child order.
    """
    groups: "dict[int, list[Tuple[int, int, int]]]" = {}
    for position, (size, offset, length) in enumerate(
        zip(sizes, offsets, lengths)
    ):
        groups.setdefault(int(size), []).append((position, offset, length))
    return groups


def marginal_counts(table, names: Sequence[str]) -> np.ndarray:
    """Contingency counts of the named attributes as a flat vector.

    ``table`` is a resident :class:`~repro.data.Table` or any
    :class:`~repro.data.chunks.ChunkedSource`; for a source the int64
    bincounts accumulate chunk by chunk, which is exact integer addition,
    so the result is bit-identical to the resident scan.  The result has
    ``prod(sizes)`` entries summing to ``table.n``.  An empty ``names``
    yields the single count ``[n]``.
    """
    sizes = [table.attribute(name).size for name in names]
    total = ensure_int64_domain(domain_size(sizes))
    if not names:
        return np.array([float(table.n)])
    if isinstance(table, Table):
        codes = np.stack([table.column(name) for name in names], axis=1)
        flat = flatten_index(codes, sizes)
        return np.bincount(flat, minlength=total).astype(float)
    accumulated = np.zeros(total, dtype=np.int64)
    for chunk in table.chunks():
        codes = np.stack([chunk[name] for name in names], axis=1)
        flat = flatten_index(codes, sizes)
        accumulated += np.bincount(flat, minlength=total)
    return accumulated.astype(float)


def joint_distribution(table: Table, names: Sequence[str]) -> np.ndarray:
    """Empirical joint probability vector ``Pr[A_1, ..., A_m]``."""
    counts = marginal_counts(table, names)
    if table.n == 0:
        return np.full_like(counts, 1.0 / counts.size)
    return counts / float(table.n)


def normalize_distribution(vector: np.ndarray) -> np.ndarray:
    """Clamp negatives to zero and renormalize to total mass 1.

    This is the post-processing of Algorithm 1 line 5 / Algorithm 3 line 5.
    Falls back to the uniform distribution when everything is clipped away.
    """
    clipped = np.clip(np.asarray(vector, dtype=float), 0.0, None)
    total = clipped.sum()
    if total <= 0.0:
        return np.full_like(clipped, 1.0 / clipped.size)
    return clipped / total


def project_distribution(
    dist: np.ndarray,
    sizes: Sequence[int],
    keep: Sequence[int],
) -> np.ndarray:
    """Marginalize a flat joint distribution onto the ``keep`` axes.

    ``keep`` lists axis positions (into ``sizes``) to retain, in the order
    they should appear in the output.
    """
    sizes = [int(s) for s in sizes]
    grid = np.asarray(dist, dtype=float).reshape(sizes)
    drop = tuple(i for i in range(len(sizes)) if i not in set(keep))
    reduced = grid.sum(axis=drop) if drop else grid
    kept_order = [i for i in range(len(sizes)) if i in set(keep)]
    # reduced's axes follow kept_order; permute them into the requested order.
    perm = [kept_order.index(i) for i in keep]
    return np.transpose(reduced, perm).reshape(-1)


def conditional_from_joint(
    joint: np.ndarray, child_size: int
) -> np.ndarray:
    """Derive ``Pr[X | Π]`` from a flat ``Pr[Π, X]`` vector.

    The joint must be laid out with the parent block most significant and
    the child as the innermost (fastest-varying) axis, i.e. shape
    ``(|dom(Π)|, child_size)`` after reshaping.  Rows with zero mass become
    uniform over the child (they are never reachable when sampling from the
    same model, but keep the output a valid stochastic matrix).
    """
    joint = np.asarray(joint, dtype=float)
    if joint.size % child_size != 0:
        raise ValueError("joint size is not a multiple of child domain size")
    matrix = joint.reshape(-1, child_size).copy()
    row_sums = matrix.sum(axis=1, keepdims=True)
    zero_rows = (row_sums <= 0.0).reshape(-1)
    matrix[zero_rows] = 1.0 / child_size
    row_sums = matrix.sum(axis=1, keepdims=True)
    return matrix / row_sums
