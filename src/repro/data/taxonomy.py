"""Taxonomy trees for hierarchical attribute generalization (Section 5.1).

A taxonomy tree generalizes an attribute's domain level by level: level 0
holds the raw values (leaves), each higher level merges groups of the level
below, and the (omitted) root would merge everything.  ``X^(i)`` in the
paper is the attribute re-coded at level ``i``.

The tree is stored bottom-up as a list of *group assignments*: for each
level ``i >= 1``, an integer array mapping each node of level ``i-1`` to its
parent node at level ``i``, plus the labels of the level-``i`` nodes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


class TaxonomyTree:
    """Generalization hierarchy over a discrete domain.

    Parameters
    ----------
    leaf_labels:
        Labels of the raw domain (level 0), in domain order.
    levels:
        For each level ``i >= 1``, a pair ``(parents, labels)`` where
        ``parents[j]`` is the index of the level-``i`` group containing
        node ``j`` of level ``i-1``, and ``labels`` names the level-``i``
        groups.  Levels must shrink strictly (fewer groups than the level
        below) and parent assignments must be surjective.
    """

    def __init__(
        self,
        leaf_labels: Sequence[str],
        levels: Sequence[Tuple[Sequence[int], Sequence[str]]] = (),
    ) -> None:
        self._leaf_labels: Tuple[str, ...] = tuple(leaf_labels)
        if not self._leaf_labels:
            raise ValueError("taxonomy needs at least one leaf")
        self._parents: List[np.ndarray] = []
        self._labels: List[Tuple[str, ...]] = [self._leaf_labels]
        prev_size = len(self._leaf_labels)
        for parents, labels in levels:
            parents = np.asarray(parents, dtype=np.int64)
            labels = tuple(labels)
            if parents.shape != (prev_size,):
                raise ValueError(
                    f"level parent array has shape {parents.shape}, "
                    f"expected ({prev_size},)"
                )
            if len(labels) >= prev_size:
                raise ValueError("each taxonomy level must be strictly smaller")
            if set(parents.tolist()) != set(range(len(labels))):
                raise ValueError("parent assignment must cover every group")
            self._parents.append(parents)
            self._labels.append(labels)
            prev_size = len(labels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def leaf_count(self) -> int:
        return len(self._leaf_labels)

    @property
    def height(self) -> int:
        """Number of usable levels (level 0 .. height-1), excluding the root."""
        return len(self._labels)

    def level_size(self, level: int) -> int:
        self._check_level(level)
        return len(self._labels[level])

    def level_labels(self, level: int) -> Tuple[str, ...]:
        self._check_level(level)
        return self._labels[level]

    def leaf_to_level(self, level: int) -> np.ndarray:
        """Map each leaf code to its group code at ``level``."""
        self._check_level(level)
        mapping = np.arange(self.leaf_count, dtype=np.int64)
        for parents in self._parents[:level]:
            mapping = parents[mapping]
        return mapping

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.height:
            raise ValueError(
                f"level {level} out of range [0, {self.height})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(labels) for labels in self._labels]
        return f"TaxonomyTree(levels={sizes})"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def balanced_binary(leaf_labels: Sequence[str]) -> "TaxonomyTree":
        """Binary tree over an ordered domain (used for binned continuous
        attributes, Figure 2): each level pairs up adjacent groups."""
        leaf_labels = tuple(leaf_labels)
        levels: List[Tuple[List[int], List[str]]] = []
        labels = list(leaf_labels)
        while len(labels) > 2:
            size = len(labels)
            parents = [j // 2 for j in range(size)]
            group_count = (size + 1) // 2
            new_labels = []
            for g in range(group_count):
                members = [labels[j] for j in range(size) if j // 2 == g]
                new_labels.append("+".join(members) if len(members) > 1 else members[0])
            levels.append((parents, new_labels))
            labels = new_labels
        return TaxonomyTree(leaf_labels, levels)

    @staticmethod
    def from_groups(
        leaf_labels: Sequence[str],
        grouping: Sequence[Tuple[str, Sequence[str]]],
    ) -> "TaxonomyTree":
        """Two-level taxonomy from named groups of leaves.

        ``grouping`` lists ``(group_label, member_leaf_labels)`` pairs that
        must partition the leaves.  This is the common shape for categorical
        attributes like ``workclass`` in Figure 3.
        """
        leaf_labels = tuple(leaf_labels)
        index = {v: i for i, v in enumerate(leaf_labels)}
        parents = np.full(len(leaf_labels), -1, dtype=np.int64)
        group_labels = []
        for g, (label, members) in enumerate(grouping):
            group_labels.append(label)
            for member in members:
                if member not in index:
                    raise ValueError(f"group member {member!r} is not a leaf")
                if parents[index[member]] != -1:
                    raise ValueError(f"leaf {member!r} assigned to two groups")
                parents[index[member]] = g
        if (parents == -1).any():
            missing = [leaf_labels[i] for i in np.nonzero(parents == -1)[0]]
            raise ValueError(f"leaves not covered by any group: {missing}")
        return TaxonomyTree(leaf_labels, [(parents.tolist(), group_labels)])
