"""Entropy, mutual information, KL divergence, total variation distance.

Inputs are flat probability vectors (see :mod:`repro.data.marginals` for the
mixed-radix layout).  Mutual information between a child attribute ``X`` and
a parent set ``Π`` expects the joint laid out as ``Pr[Π, X]`` with the child
innermost — the same layout :func:`repro.data.marginals.marginal_counts`
produces when the child is listed last.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.marginals import marginal_counts
from repro.data.table import Table

_LOG2 = np.log(2.0)


def entropy(dist: np.ndarray) -> float:
    """Shannon entropy ``H`` in bits of a probability vector."""
    p = np.asarray(dist, dtype=float)
    nz = p[p > 0.0]
    return float(-(nz * np.log(nz)).sum() / _LOG2)


def _validate_segment_ids(
    size: int, ids: np.ndarray, num_segments: int
) -> None:
    if num_segments < 0:
        raise ValueError("num_segments must be non-negative")
    if size != ids.size:
        raise ValueError("values and segment_ids must have the same length")
    if ids.size:
        if np.any(np.diff(ids) < 0):
            raise ValueError("segment_ids must be sorted non-decreasing")
        if ids[0] < 0 or ids[-1] >= num_segments:
            raise ValueError("segment_ids must lie in [0, num_segments)")


def _sums_by_count(flat: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Exact sums of contiguous segments with the given element counts.

    Shared core of :func:`segment_sums` and :func:`entropy_segmented`
    (which validate and derive ``counts`` from ``segment_ids``).  Segments
    are permuted into length order once so each length class is a single
    contiguous block, then every block reduces as the rows of a rectangular
    view — NumPy sums the trailing contiguous axis of a 2-D array with the
    same pairwise order it applies to each row as a standalone 1-D array,
    so each output is bit-identical to that segment's own ``.sum()``.
    """
    num_segments = counts.size
    sums = np.zeros(num_segments)
    if num_segments == 0 or flat.size == 0:
        return sums
    if np.any(np.diff(counts) < 0):
        order = np.argsort(counts, kind="stable")
        sorted_counts = counts[order]
        bounds = np.concatenate([[0], np.cumsum(sorted_counts)])
        starts = np.concatenate([[0], np.cumsum(counts[:-1])])
        shift = np.repeat(starts[order] - bounds[:-1], sorted_counts)
        flat = flat[shift + np.arange(flat.size, dtype=np.int64)]
    else:  # already length-sorted (e.g. uniform lengths): no permutation
        order = None
        sorted_counts = counts
        bounds = np.concatenate([[0], np.cumsum(counts)])
    groups = np.concatenate(
        [[0], np.nonzero(np.diff(sorted_counts))[0] + 1, [num_segments]]
    ).tolist()
    edges = bounds[groups].tolist()
    out = np.zeros(num_segments)
    for g in range(len(groups) - 1):
        lo, hi = groups[g], groups[g + 1]
        width = (edges[g + 1] - edges[g]) // (hi - lo)
        if width == 0:
            continue
        block = flat[edges[g] : edges[g + 1]]
        np.add.reduce(block.reshape(hi - lo, width), axis=1, out=out[lo:hi])
    if order is None:
        return out
    sums[order] = out
    return sums


def segment_sums(
    values: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Exact per-segment sums of a flat float64 array.

    ``segment_ids`` assigns each element to a segment and must be sorted
    non-decreasing (segments are contiguous runs — the layout every
    concatenated-joint caller already has).  The result is **bit-identical**
    to ``values[segment].sum()`` computed per segment: segments are grouped
    by length and reduced as the rows of rectangular views, and NumPy
    reduces the trailing contiguous axis of a 2-D array with the same
    pairwise-summation order it applies to each row as a standalone 1-D
    array.  Empty segments sum to ``0.0``, like ``np.sum`` of an empty
    array.

    This is the exact-sum core under :func:`entropy_segmented` and the
    segmented score kernels (:mod:`repro.core.score_kernels`): "vectorize
    across candidates without changing any candidate's float" is only
    possible because the per-segment reduction order is preserved.
    """
    flat = np.ascontiguousarray(values, dtype=float).reshape(-1)
    ids = np.asarray(segment_ids, dtype=np.int64).reshape(-1)
    _validate_segment_ids(flat.size, ids, num_segments)
    counts = np.bincount(ids, minlength=num_segments)
    return _sums_by_count(flat, counts)


def _entropy_by_count(p: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Entropies of contiguous segments with the given element counts.

    Core of :func:`entropy_segmented`, also driven directly by the ragged
    score kernels (which know their segment lengths and need no id
    vector).  The zero compaction and ``log`` are elementwise, and the
    per-segment nonzero counts fall out of one cumulative sum of the mask,
    so the only per-segment work is the exact reduction in
    :func:`_sums_by_count`.
    """
    mask = p > 0.0
    if mask.all():  # common for marginals: nothing to compact
        nz, nz_counts = p, counts
    else:
        bounds = np.concatenate([[0], np.cumsum(counts)])
        running = np.concatenate([[0], np.cumsum(mask)])
        nz_counts = np.diff(running[bounds])
        nz = p[mask]
    terms = np.log(nz)
    terms *= nz
    return _sums_by_count(terms, nz_counts) / -_LOG2


def entropy_segmented(
    values: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Shannon entropies (bits) of many probability vectors at once.

    ``values`` concatenates the vectors; ``segment_ids`` (sorted
    non-decreasing) says which vector each element belongs to.  Each output
    is bit-equal to :func:`entropy` on that segment alone: the nonzero
    compaction, ``log`` and multiply are elementwise (position-independent),
    and the ragged per-segment reduction goes through
    :func:`segment_sums`, which preserves NumPy's per-array pairwise
    summation order.  The expensive parts — compaction and ``np.log`` —
    run once over the whole batch instead of once per vector, which is the
    whole speedup.
    """
    p = np.ascontiguousarray(values, dtype=float).reshape(-1)
    ids = np.asarray(segment_ids, dtype=np.int64).reshape(-1)
    _validate_segment_ids(p.size, ids, num_segments)
    counts = np.bincount(ids, minlength=num_segments)
    return _entropy_by_count(p, counts)


def conditional_entropy(joint: np.ndarray, child_size: int) -> float:
    """``H(X | Π)`` from a flat ``Pr[Π, X]`` vector with child innermost."""
    joint = np.asarray(joint, dtype=float)
    matrix = joint.reshape(-1, child_size)
    parent = matrix.sum(axis=1)
    return entropy(joint) - entropy(parent)


def mutual_information(joint: np.ndarray, child_size: int) -> float:
    """``I(X, Π)`` (Equation 5) from a flat ``Pr[Π, X]`` vector.

    Computed as ``H(X) + H(Π) - H(X, Π)`` (Equation 12), which is exact for
    empirical distributions and numerically robust for sparse joints.
    Clamped at zero: floating-point cancellation can produce tiny negatives.
    """
    joint = np.asarray(joint, dtype=float)
    matrix = joint.reshape(-1, child_size)
    h_parent = entropy(matrix.sum(axis=1))
    h_child = entropy(matrix.sum(axis=0))
    value = h_child + h_parent - entropy(joint)
    return max(0.0, float(value))


def mutual_information_from_table(
    table: Table, child: str, parents: Sequence[str]
) -> float:
    """Empirical ``I(X, Π)`` of a child attribute and its parent set."""
    if not parents:
        return 0.0
    counts = marginal_counts(table, list(parents) + [child])
    total = counts.sum()
    if total <= 0:
        return 0.0
    return mutual_information(counts / total, table.attribute(child).size)


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """``D_KL(P || Q)`` in bits; ``inf`` when P puts mass where Q has none."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    mask = p > 0.0
    if np.any(q[mask] <= 0.0):
        return float("inf")
    return float((p[mask] * np.log(p[mask] / q[mask])).sum() / _LOG2)


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance: half the L1 distance between P and Q.

    This is the accuracy metric of Section 6.1 for noisy marginals.
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    return float(0.5 * np.abs(p - q).sum())
