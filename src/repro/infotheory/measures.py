"""Entropy, mutual information, KL divergence, total variation distance.

Inputs are flat probability vectors (see :mod:`repro.data.marginals` for the
mixed-radix layout).  Mutual information between a child attribute ``X`` and
a parent set ``Π`` expects the joint laid out as ``Pr[Π, X]`` with the child
innermost — the same layout :func:`repro.data.marginals.marginal_counts`
produces when the child is listed last.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.marginals import marginal_counts
from repro.data.table import Table

_LOG2 = np.log(2.0)


def entropy(dist: np.ndarray) -> float:
    """Shannon entropy ``H`` in bits of a probability vector."""
    p = np.asarray(dist, dtype=float)
    nz = p[p > 0.0]
    return float(-(nz * np.log(nz)).sum() / _LOG2)


def conditional_entropy(joint: np.ndarray, child_size: int) -> float:
    """``H(X | Π)`` from a flat ``Pr[Π, X]`` vector with child innermost."""
    joint = np.asarray(joint, dtype=float)
    matrix = joint.reshape(-1, child_size)
    parent = matrix.sum(axis=1)
    return entropy(joint) - entropy(parent)


def mutual_information(joint: np.ndarray, child_size: int) -> float:
    """``I(X, Π)`` (Equation 5) from a flat ``Pr[Π, X]`` vector.

    Computed as ``H(X) + H(Π) - H(X, Π)`` (Equation 12), which is exact for
    empirical distributions and numerically robust for sparse joints.
    Clamped at zero: floating-point cancellation can produce tiny negatives.
    """
    joint = np.asarray(joint, dtype=float)
    matrix = joint.reshape(-1, child_size)
    h_parent = entropy(matrix.sum(axis=1))
    h_child = entropy(matrix.sum(axis=0))
    value = h_child + h_parent - entropy(joint)
    return max(0.0, float(value))


def mutual_information_from_table(
    table: Table, child: str, parents: Sequence[str]
) -> float:
    """Empirical ``I(X, Π)`` of a child attribute and its parent set."""
    if not parents:
        return 0.0
    counts = marginal_counts(table, list(parents) + [child])
    total = counts.sum()
    if total <= 0:
        return 0.0
    return mutual_information(counts / total, table.attribute(child).size)


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """``D_KL(P || Q)`` in bits; ``inf`` when P puts mass where Q has none."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    mask = p > 0.0
    if np.any(q[mask] <= 0.0):
        return float("inf")
    return float((p[mask] * np.log(p[mask] / q[mask])).sum() / _LOG2)


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance: half the L1 distance between P and Q.

    This is the accuracy metric of Section 6.1 for noisy marginals.
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    return float(0.5 * np.abs(p - q).sum())
