"""Information-theoretic primitives used by the network-learning phase.

All quantities use base-2 logarithms, matching the paper ("All logarithms
used in this paper are to the base 2").
"""

from repro.infotheory.measures import (
    conditional_entropy,
    entropy,
    entropy_segmented,
    kl_divergence,
    mutual_information,
    mutual_information_from_table,
    segment_sums,
    total_variation_distance,
)

__all__ = [
    "entropy",
    "entropy_segmented",
    "segment_sums",
    "conditional_entropy",
    "mutual_information",
    "mutual_information_from_table",
    "kl_divergence",
    "total_variation_distance",
]
