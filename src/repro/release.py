"""Encoding-aware convenience wrapper around the PrivBayes core.

The experiments of Section 6.3 name their methods ``<Encoding>-<Score>``
(Binary-F, Gray-F, Vanilla-R, Hierarchical-R).  :func:`release_synthetic`
accepts exactly those names: it encodes the table, runs PrivBayes in the
matching mode, samples, and decodes back to the original schema.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.privbayes import DEFAULT_BETA, DEFAULT_THETA, PrivBayes
from repro.core.rng import fallback_rng
from repro.data.table import Table
from repro.encoding import make_encoder

#: The four method names of Section 6.3, mapping to (encoding, score).
METHODS = {
    "binary-F": ("binary", "F"),
    "gray-F": ("gray", "F"),
    "vanilla-R": ("vanilla", "R"),
    "hierarchical-R": ("hierarchical", "R"),
}


def parse_method(method: str) -> Tuple[str, str]:
    """Resolve a method name like ``'Hierarchical-R'`` to (encoding, score)."""
    for name, value in METHODS.items():
        if name.lower() == method.lower():
            return value
    raise ValueError(
        f"unknown method {method!r}; choose from {sorted(METHODS)}"
    )


def release_synthetic(
    table: Table,
    epsilon: float,
    method: str = "hierarchical-R",
    beta: float = DEFAULT_BETA,
    theta: float = DEFAULT_THETA,
    rng: Optional[np.random.Generator] = None,
    n: Optional[int] = None,
    **config_overrides,
) -> Table:
    """Release an ε-differentially private synthetic copy of ``table``.

    Parameters
    ----------
    method:
        One of ``Binary-F``, ``Gray-F``, ``Vanilla-R``, ``Hierarchical-R``
        (case-insensitive).  Bitwise methods transform attributes into bit
        columns before fitting and decode the synthetic bits afterwards.
    n:
        Synthetic cardinality; defaults to ``table.n`` as in the paper.

    Returns a synthetic :class:`~repro.data.Table` with the original schema.
    """
    rng = fallback_rng(rng)
    encoding, score = parse_method(method)
    encoder = make_encoder(encoding)
    encoded = encoder.encode(table)
    pipeline = PrivBayes(
        epsilon=epsilon,
        beta=beta,
        theta=theta,
        score=score,
        generalize=encoder.uses_generalization,
        **config_overrides,
    )
    synthetic_encoded = pipeline.fit_sample(encoded, rng=rng, n=n)
    return encoder.decode(synthetic_encoded)
