"""Binary and Gray bitwise encodings (Section 5.1, Figures 2-3).

Each attribute with ℓ values becomes ``ceil(log2 ℓ)`` binary attributes
holding the bits of the value's index — natural binary order for
:class:`BinaryEncoder`, reflected Gray code for :class:`GrayEncoder`
(successive values differ in one bit, improving robustness to noise).

Decoding clamps out-of-domain bit patterns (indices ≥ ℓ, which synthesis
can produce) to the largest valid index.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.data.attribute import Attribute, AttributeKind
from repro.data.table import Table
from repro.encoding.base import Encoder


def bits_needed(size: int) -> int:
    """Number of bits to represent indices ``0 .. size-1`` (min 1)."""
    if size < 1:
        raise ValueError("domain size must be positive")
    return max(1, math.ceil(math.log2(size)))


def to_gray(index: np.ndarray) -> np.ndarray:
    """Natural binary index -> reflected Gray code."""
    index = np.asarray(index, dtype=np.int64)
    return index ^ (index >> 1)


def from_gray(gray: np.ndarray) -> np.ndarray:
    """Reflected Gray code -> natural binary index (prefix-XOR decode)."""
    result = np.asarray(gray, dtype=np.int64).copy()
    mask = result >> 1
    while mask.any():
        result ^= mask
        mask >>= 1
    return result


class _BitwiseEncoder(Encoder):
    """Shared machinery for Binary and Gray encodings."""

    uses_generalization = False

    def _index_transform(self, index: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _index_inverse(self, code: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def encode(self, table: Table) -> Table:
        attrs: List[Attribute] = []
        cols: Dict[str, np.ndarray] = {}
        for attr in table.attributes:
            width = bits_needed(attr.size)
            codes = self._index_transform(table.column(attr.name))
            for bit in range(width):
                # Most significant bit first, matching Figures 2-3.
                shift = width - 1 - bit
                bit_attr = Attribute.binary(f"{attr.name}#b{bit}")
                attrs.append(bit_attr)
                cols[bit_attr.name] = ((codes >> shift) & 1).astype(np.int64)
        self._source_schema = table.attributes
        return Table(attrs, cols)

    def decode(self, table: Table) -> Table:
        if not hasattr(self, "_source_schema"):
            raise RuntimeError("decode called before encode")
        attrs = self._source_schema
        cols: Dict[str, np.ndarray] = {}
        for attr in attrs:
            width = bits_needed(attr.size)
            codes = np.zeros(table.n, dtype=np.int64)
            for bit in range(width):
                shift = width - 1 - bit
                codes |= table.column(f"{attr.name}#b{bit}") << shift
            index = self._index_inverse(codes)
            cols[attr.name] = np.clip(index, 0, attr.size - 1)
        return Table(attrs, cols)


class BinaryEncoder(_BitwiseEncoder):
    """Natural binary code (the "Binary" rows of Figures 2-3)."""

    def _index_transform(self, index: np.ndarray) -> np.ndarray:
        return np.asarray(index, dtype=np.int64)

    def _index_inverse(self, code: np.ndarray) -> np.ndarray:
        return np.asarray(code, dtype=np.int64)


class GrayEncoder(_BitwiseEncoder):
    """Reflected Gray code (the "Gray" rows of Figures 2-3)."""

    def _index_transform(self, index: np.ndarray) -> np.ndarray:
        return to_gray(index)

    def _index_inverse(self, code: np.ndarray) -> np.ndarray:
        return from_gray(code)
