"""The four attribute encodings of Section 5.1.

An encoder is an invertible transform applied around the PrivBayes core:
the sensitive table is encoded, PrivBayes synthesizes in the encoded
domain, and the synthetic table is decoded back to the original schema.

* :class:`BinaryEncoder` — each ℓ-value attribute becomes ``ceil(log2 ℓ)``
  binary attributes via the natural binary code.
* :class:`GrayEncoder` — same, via the reflected Gray code (adjacent values
  differ in one bit, so single-bit noise lands on an adjacent value).
* :class:`VanillaEncoder` — identity: attributes stay intact.
* :class:`HierarchicalEncoder` — identity on the data, but flags that
  taxonomy generalization (Algorithm 6) should be used during network
  learning.

Encoding/decoding is pure post-/pre-processing of the mechanism input and
output, so it carries no privacy cost.
"""

from repro.encoding.base import Encoder
from repro.encoding.bitwise import BinaryEncoder, GrayEncoder
from repro.encoding.identity import HierarchicalEncoder, VanillaEncoder

ENCODERS = {
    "binary": BinaryEncoder,
    "gray": GrayEncoder,
    "vanilla": VanillaEncoder,
    "hierarchical": HierarchicalEncoder,
}


def make_encoder(name: str) -> Encoder:
    """Instantiate an encoder by its Section 5.1 name."""
    try:
        return ENCODERS[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown encoding {name!r}; choose from {sorted(ENCODERS)}"
        ) from None


__all__ = [
    "Encoder",
    "BinaryEncoder",
    "GrayEncoder",
    "VanillaEncoder",
    "HierarchicalEncoder",
    "ENCODERS",
    "make_encoder",
]
