"""Encoder interface shared by the four Section 5.1 encodings."""

from __future__ import annotations

import abc

from repro.data.table import Table


class Encoder(abc.ABC):
    """Invertible table transform wrapped around the PrivBayes core.

    ``decode(encode(t))`` must reproduce ``t`` exactly; ``decode`` must
    also accept *any* table in the encoded schema (synthetic data may
    contain bit patterns that never occurred in the input).
    """

    #: Whether the PrivBayes core should run taxonomy generalization
    #: (Algorithm 6) on the encoded table.
    uses_generalization: bool = False

    @abc.abstractmethod
    def encode(self, table: Table) -> Table:
        """Transform the sensitive table into the encoded domain."""

    @abc.abstractmethod
    def decode(self, table: Table) -> Table:
        """Map a table in the encoded domain back to the original schema."""
