"""Vanilla and Hierarchical encodings (Section 5.1).

Both keep the data untouched: the domain of each attribute is indivisible.
They differ only in whether the PrivBayes core may *generalize* attributes
through their taxonomy trees during network learning — vanilla encoding is
the special case of hierarchical encoding "where each taxonomy tree
consists of leaf nodes only".
"""

from __future__ import annotations

from repro.data.table import Table
from repro.encoding.base import Encoder


class VanillaEncoder(Encoder):
    """Identity transform; attributes participate whole or not at all."""

    uses_generalization = False

    def encode(self, table: Table) -> Table:
        return table

    def decode(self, table: Table) -> Table:
        return table


class HierarchicalEncoder(Encoder):
    """Identity transform + taxonomy-aware parent generalization."""

    uses_generalization = True

    def encode(self, table: Table) -> Table:
        return table

    def decode(self, table: Table) -> Table:
        return table
