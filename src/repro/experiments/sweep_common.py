"""Shared task plumbing for the parameter-sweep figures (9, 10, 11).

The paper evaluates eight (dataset, task) combinations: one counting task
and one classification task per dataset — NLTCS Q4 / Y=outside, ACS Q4 /
Y=dwelling, Adult Q3 / Y=gender, BR2000 Q3 / Y=religion.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.privbayes import PrivBayes
from repro.core.scoring import ScoringCache
from repro.data.table import Table
from repro.datasets import load_dataset
from repro.svm import LinearSVM, featurize, misclassification_rate
from repro.workloads import (
    all_alpha_marginals,
    average_variation_distance,
    synthetic_marginals,
    tasks_for,
)
from repro.experiments.framework import subsample_workload
from repro.experiments.parallel import (
    SweepCell,
    get_worker_state,
    run_cells,
    set_worker_state,
)

#: dataset -> (Q_α for the counting task, SVM task index, release method).
SWEEP_TASKS = {
    "nltcs": (4, 0, "binary-F"),
    "acs": (4, 0, "binary-F"),
    "adult": (3, 0, "hierarchical-R"),
    "br2000": (3, 0, "hierarchical-R"),
}

#: Binary datasets run the core directly (no bit encoding needed).
_NATIVE_BINARY = {"nltcs", "acs"}


def private_release(
    fit_table: Table,
    epsilon: float,
    beta: float,
    theta: float,
    is_binary: bool,
    rng: np.random.Generator,
    oracle_network: bool = False,
    oracle_marginals: bool = False,
    scoring_cache: Optional[ScoringCache] = None,
) -> Table:
    """One PrivBayes release with the paper's per-dataset defaults.

    Binary datasets run the core directly in binary mode with score ``F``;
    general datasets run Hierarchical-R (general mode with taxonomy
    generalization).  The oracle switches are the Figure 11 diagnostics.
    ``scoring_cache`` shares candidate scores across the many releases of a
    sweep over the same table (see :class:`repro.core.scoring.ScoringCache`).
    """
    if is_binary:
        pipeline = PrivBayes(
            epsilon=epsilon,
            beta=beta,
            theta=theta,
            score="F",
            mode="binary",
            oracle_network=oracle_network,
            oracle_marginals=oracle_marginals,
        )
    else:
        pipeline = PrivBayes(
            epsilon=epsilon,
            beta=beta,
            theta=theta,
            score="R",
            mode="general",
            generalize=True,
            oracle_network=oracle_network,
            oracle_marginals=oracle_marginals,
        )
    return pipeline.fit_sample(fit_table, rng=rng, scoring_cache=scoring_cache)


class SweepContext:
    """Loaded dataset + the two Section 6.4 tasks, reused across a sweep."""

    def __init__(
        self,
        dataset: str,
        kind: str,
        n: Optional[int] = None,
        max_marginals: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if kind not in ("count", "svm"):
            raise ValueError("kind must be 'count' or 'svm'")
        self.dataset = dataset
        self.kind = kind
        self.seed = seed
        #: Shared across every release of the sweep: candidate scores are
        #: data statistics of the fit table, identical at every ε.
        self.scoring = ScoringCache()
        alpha, task_index, _ = SWEEP_TASKS[dataset]
        self.table = load_dataset(dataset, n=n, seed=seed)
        if kind == "count":
            self.reference = self.table
            self.fit_table = self.table
            self.workload = subsample_workload(
                all_alpha_marginals(self.table, alpha), max_marginals, seed
            )
        else:
            split_rng = np.random.default_rng(seed)
            train, test = self.table.split(0.8, split_rng)
            self.fit_table = train
            self.task = tasks_for(dataset, self.table)[task_index]
            self.X_test, self.y_test = featurize(test, self.task)

    @property
    def is_binary(self) -> bool:
        return self.dataset in _NATIVE_BINARY

    def evaluate(self, synthetic: Table) -> float:
        """Metric of one synthetic release for this context's task."""
        if self.kind == "count":
            released = synthetic_marginals(synthetic, self.workload)
            return average_variation_distance(
                self.reference, released, self.workload
            )
        return evaluate_svm_synthetic(
            synthetic, self.task, self.X_test, self.y_test
        )


def evaluate_svm_synthetic(synthetic, task, X_test, y_test) -> float:
    """Test error of an SVM trained on a synthetic release.

    A degenerate release (single label) cannot train an SVM; score it as
    the constant majority-label classifier it effectively is.  Shared by
    the svm-kind sweeps (fig 9-11) and the fig 16-19 comparison so the
    fallback semantics cannot drift apart.
    """
    X_syn, y_syn = featurize(synthetic, task)
    if len(set(y_syn.tolist())) < 2:
        majority = y_syn[0] if y_syn.size else 1.0
        return float(np.mean(y_test != majority))
    model = LinearSVM().fit(X_syn, y_syn)
    return misclassification_rate(model, X_test, y_test)


#: Worker-state key under which the sweep's context is fork-inherited.
SWEEP_CONTEXT_KEY = "sweep_common.context"


def activate_sweep_context(context: SweepContext) -> None:
    """Install ``context`` as the state :func:`release_cell` reads.

    The install half of what :func:`run_sweep_cells` does around a whole
    sweep (the fig 9/10/11 path — it also clears the state afterwards);
    use this directly only to drive :func:`release_cell` by hand, paired
    with ``clear_worker_state(SWEEP_CONTEXT_KEY)`` when done.
    """
    set_worker_state(SWEEP_CONTEXT_KEY, context)


def run_sweep_cells(context: SweepContext, cells, jobs: int = 1):
    """Map :func:`release_cell` over ``cells`` under ``context``.

    Installs the context for the (possibly forked) workers, runs the
    sweep, and always drops the state afterwards so batch drivers don't
    accumulate one context per panel.
    """
    return run_cells(SWEEP_CONTEXT_KEY, context, release_cell, cells, jobs)


def release_cell(cell: SweepCell) -> float:
    """One sweep cell: release under the cell's knobs, score the metric.

    The β/θ and Figure 11 oracle switches travel in ``cell.params``; all
    randomness comes from ``cell.rng()``, so the metric is a pure function
    of the cell — independent of which process runs it, or when.
    """
    context: SweepContext = get_worker_state(SWEEP_CONTEXT_KEY)
    synthetic = private_release(
        context.fit_table,
        cell.epsilon,
        cell.param("beta"),
        cell.param("theta"),
        context.is_binary,
        cell.rng(),
        oracle_network=bool(cell.param("oracle_network", False)),
        oracle_marginals=bool(cell.param("oracle_marginals", False)),
        scoring_cache=context.scoring,
    )
    return context.evaluate(synthetic)
