"""Shared experiment machinery: result container, rendering, helpers.

The paper plots every experiment over the privacy-budget grid
ε ∈ {0.05, 0.1, 0.2, 0.4, 0.8, 1.6} with 100 repetitions per point.  The
harnesses default to that grid but accept smaller grids / repeat counts /
dataset sizes so the whole battery runs on one machine (see DESIGN.md §3).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: The paper's privacy-budget grid (Section 6).
EPSILONS = (0.05, 0.1, 0.2, 0.4, 0.8, 1.6)

#: A reduced grid for quick runs and benchmarks.
FAST_EPSILONS = (0.1, 0.4, 1.6)


def stable_series_seed(name: str) -> int:
    """Small process-stable seed offset derived from a series/method name.

    Experiments that seed one RNG stream per named baseline must not use
    the built-in ``hash()``: string hashing is salted by ``PYTHONHASHSEED``,
    so the derived seeds — and every noise draw behind the series — change
    from process to process, silently dirtying benchmark-transcript diffs.
    CRC32 is fixed by specification, so the same name yields the same seed
    in every interpreter.
    """
    return zlib.crc32(name.encode("utf-8")) % 1000


#: Keys a serialized :class:`ExperimentResult` must carry.
_RESULT_KEYS = ("experiment", "title", "x_label", "y_label", "x", "series")


@dataclass
class ExperimentResult:
    """Series data mirroring one figure panel.

    ``series`` maps a method/line name to one metric value per ``x`` entry.
    """

    experiment: str
    title: str
    x_label: str
    y_label: str
    x: List
    series: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, name: str, values: Sequence[float]) -> None:
        values = list(float(v) for v in values)
        if len(values) != len(self.x):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(self.x)} x points"
            )
        self.series[name] = values

    def to_dict(self) -> dict:
        """JSON-compatible form (for saving experiment outputs)."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x": list(self.x),
            "series": {name: list(vals) for name, vals in self.series.items()},
        }

    @staticmethod
    def from_dict(data: dict) -> "ExperimentResult":
        missing = [key for key in _RESULT_KEYS if key not in data]
        if missing:
            raise ValueError(
                f"ExperimentResult.from_dict: missing keys {missing} "
                f"(got {sorted(data)})"
            )
        result = ExperimentResult(
            experiment=data["experiment"],
            title=data["title"],
            x_label=data["x_label"],
            y_label=data["y_label"],
            x=list(data["x"]),
        )
        for name, values in data["series"].items():
            result.add(name, values)
        return result


def render_result(result: ExperimentResult, width: int = 12) -> str:
    """Plain-text rendering: one row per method, one column per x value."""
    header = [result.x_label.ljust(18)] + [
        f"{x:>{width}}" if not isinstance(x, str) else x.rjust(width)
        for x in result.x
    ]
    lines = [
        f"== {result.experiment}: {result.title} ==",
        f"   metric: {result.y_label}",
        "".join(header),
    ]
    for name, values in result.series.items():
        row = [name.ljust(18)] + [f"{v:>{width}.4f}" for v in values]
        lines.append("".join(row))
    return "\n".join(lines)


def subsample_workload(
    workload: Sequence[Tuple[str, ...]],
    limit: Optional[int],
    seed: int = 0,
) -> List[Tuple[str, ...]]:
    """Deterministically cap a workload at ``limit`` marginals.

    The paper evaluates every marginal in ``Q_α``; capping keeps scaled
    runs tractable while remaining an unbiased sample of the workload.
    """
    workload = list(workload)
    if limit is None or len(workload) <= limit:
        return workload
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(workload), size=limit, replace=False)
    return [workload[i] for i in sorted(chosen)]


def mean_over_repeats(values: Sequence[float]) -> float:
    """Mean of one grid point's repeat metrics.

    An empty series means a sweep produced no metric for a grid point —
    a harness bug (or ``repeats=0``); ``np.mean`` would return ``nan``
    under a ``RuntimeWarning`` and silently poison every downstream plot,
    so fail loudly instead.
    """
    values = list(values)
    if not values:
        raise ValueError(
            "mean_over_repeats: empty series (no metric values to average)"
        )
    return float(np.mean(values))
