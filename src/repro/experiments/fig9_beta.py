"""Figure 9: impact of the budget-allocation parameter β.

x-axis: β ∈ {.01, .05, .1, .2, .3, .5, .7, .9}; one line per ε; one panel
per (dataset, task) combination of Section 6.4.  Expect the U-shape with a
flat near-optimal basin below the midpoint.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.privbayes import DEFAULT_THETA
from repro.experiments.framework import EPSILONS, ExperimentResult
from repro.experiments.parallel import SweepCell, cell_seed, mean_reduce
from repro.experiments.sweep_common import SweepContext, run_sweep_cells

#: The paper's β grid.
BETAS = (0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9)


def run_beta_sweep(
    dataset: str = "nltcs",
    kind: str = "count",
    betas: Sequence[float] = BETAS,
    epsilons: Sequence[float] = EPSILONS,
    repeats: int = 3,
    n: Optional[int] = None,
    max_marginals: Optional[int] = None,
    theta: float = DEFAULT_THETA,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce one panel of Figure 9."""
    context = SweepContext(
        dataset, kind, n=n, max_marginals=max_marginals, seed=seed
    )
    result = ExperimentResult(
        experiment=f"fig9-{dataset}-{kind}",
        title=f"choice of beta on {dataset} ({kind})",
        x_label="beta",
        y_label=(
            "average variation distance"
            if kind == "count"
            else "misclassification rate"
        ),
        x=list(betas),
    )
    cells = [
        SweepCell(
            dataset,
            epsilon,
            r,
            cell_seed(seed * 7919, eps_idx * 1009 + b_idx * 101 + r),
            params=(("beta", beta), ("theta", theta)),
        )
        for eps_idx, epsilon in enumerate(epsilons)
        for b_idx, beta in enumerate(betas)
        for r in range(repeats)
    ]
    metrics = run_sweep_cells(context, cells, jobs)
    means = mean_reduce(metrics, repeats)
    for eps_idx, epsilon in enumerate(epsilons):
        result.add(
            f"eps={epsilon}",
            means[eps_idx * len(betas) : (eps_idx + 1) * len(betas)],
        )
    return result
