"""Terminal (ASCII) line charts for experiment results.

The harness is plotting-library-free by design (offline environment);
this module renders an :class:`ExperimentResult` as a character grid so
trends — crossovers, basins, ceilings — are visible directly in the
terminal and in saved text reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.framework import ExperimentResult

#: Glyphs assigned to series, in insertion order.
GLYPHS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return int(round(fraction * (steps - 1)))


def render_chart(
    result: ExperimentResult,
    width: int = 60,
    height: int = 16,
    logx: bool = False,
) -> str:
    """Render the result's series as an ASCII chart with a legend.

    Parameters
    ----------
    width, height:
        Plot-area size in characters.
    logx:
        Place x positions on a log scale (natural for ε grids that double).
    """
    if not result.series:
        raise ValueError("result has no series to plot")
    xs = np.asarray([float(x) for x in result.x])
    if logx:
        if (xs <= 0).any():
            raise ValueError("log x-axis requires positive x values")
        x_positions = np.log(xs)
    else:
        x_positions = xs
    all_values = np.concatenate([np.asarray(v) for v in result.series.values()])
    y_low = float(all_values.min())
    y_high = float(all_values.max())
    if y_high <= y_low:
        y_high = y_low + 1.0
    grid = [[" "] * width for _ in range(height)]
    legend: List[Tuple[str, str]] = []
    for index, (name, values) in enumerate(result.series.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        legend.append((glyph, name))
        for x_val, y_val in zip(x_positions, values):
            col = _scale(float(x_val), float(x_positions.min()),
                         float(x_positions.max()), width)
            row = height - 1 - _scale(float(y_val), y_low, y_high, height)
            grid[row][col] = glyph
    lines = [f"{result.title}  [{result.y_label}]"]
    top_label = f"{y_high:.4f}"
    bottom_label = f"{y_low:.4f}"
    margin = max(len(top_label), len(bottom_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(margin)
        elif i == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(prefix + "|" + "".join(row))
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    x_left = f"{result.x[0]}"
    x_right = f"{result.x[-1]}"
    pad = width - len(x_left) - len(x_right)
    lines.append(
        " " * (margin + 1) + x_left + " " * max(pad, 1) + x_right
    )
    lines.append(
        " " * (margin + 1)
        + f"{result.x_label}   "
        + "  ".join(f"{glyph}={name}" for glyph, name in legend)
    )
    return "\n".join(lines)
