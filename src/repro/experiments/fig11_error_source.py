"""Figure 11: attributing the error to network vs distribution learning.

Three lines per panel:

* PrivBayes — the real pipeline;
* BestNetwork — unlimited budget for network learning (non-private argmax
  structure; marginals still noisy with ε₂);
* BestMarginal — unlimited budget for distribution learning (private
  structure with ε₁; exact marginals).

The gap PrivBayes − BestNetwork isolates the structure-selection error,
PrivBayes − BestMarginal the marginal-noise error.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.privbayes import DEFAULT_BETA, DEFAULT_THETA
from repro.experiments.framework import EPSILONS, ExperimentResult
from repro.experiments.parallel import SweepCell, cell_seed, mean_reduce
from repro.experiments.sweep_common import SweepContext, run_sweep_cells

_VARIANTS = (
    ("PrivBayes", False, False),
    ("BestNetwork", True, False),
    ("BestMarginal", False, True),
)


def run_error_source(
    dataset: str = "nltcs",
    kind: str = "count",
    epsilons: Sequence[float] = EPSILONS,
    repeats: int = 3,
    n: Optional[int] = None,
    max_marginals: Optional[int] = None,
    beta: float = DEFAULT_BETA,
    theta: float = DEFAULT_THETA,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce one panel of Figure 11."""
    context = SweepContext(
        dataset, kind, n=n, max_marginals=max_marginals, seed=seed
    )
    result = ExperimentResult(
        experiment=f"fig11-{dataset}-{kind}",
        title=f"source of error on {dataset} ({kind})",
        x_label="epsilon",
        y_label=(
            "average variation distance"
            if kind == "count"
            else "misclassification rate"
        ),
        x=list(epsilons),
    )
    # All three variants share one seed per (ε, repeat) cell — the paper's
    # paired-noise diagnostic: identical draws, only the oracle differs.
    cells = [
        SweepCell(
            dataset,
            epsilon,
            r,
            cell_seed(seed * 7919, eps_idx * 101 + r),
            series=name,
            params=(
                ("beta", beta),
                ("theta", theta),
                ("oracle_network", oracle_network),
                ("oracle_marginals", oracle_marginals),
            ),
        )
        for name, oracle_network, oracle_marginals in _VARIANTS
        for eps_idx, epsilon in enumerate(epsilons)
        for r in range(repeats)
    ]
    metrics = run_sweep_cells(context, cells, jobs)
    means = mean_reduce(metrics, repeats)
    for v_idx, (name, _, _) in enumerate(_VARIANTS):
        result.add(
            name, means[v_idx * len(epsilons) : (v_idx + 1) * len(epsilons)]
        )
    return result
