"""Figures 16-19: PrivBayes vs classification baselines on the SVM tasks.

Per Section 6.6: PrivBayes generates *one* synthetic dataset per ε and
trains all four classifiers from it; PrivateERM / PrivGene / Majority must
split the budget, training each classifier with ε/4.  "PrivateERM
(Single)" spends the full ε on one classifier — the panel's task — to show
the baseline's single-task headroom.  NoPrivacy is the non-private floor.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines import MajorityClassifier, PrivGene, PrivateERM
from repro.core.privbayes import DEFAULT_BETA, DEFAULT_THETA
from repro.core.scoring import ScoringCache
from repro.datasets import load_dataset
from repro.experiments.framework import EPSILONS, ExperimentResult
from repro.experiments.sweep_common import private_release
from repro.svm import LinearSVM, featurize, misclassification_rate
from repro.workloads import tasks_for

_BINARY_DATASETS = {"nltcs", "acs"}


def run_svm_comparison(
    dataset: str = "nltcs",
    task_index: int = 0,
    epsilons: Sequence[float] = EPSILONS,
    repeats: int = 3,
    n: Optional[int] = None,
    beta: float = DEFAULT_BETA,
    theta: float = DEFAULT_THETA,
    seed: int = 0,
    privgene_iterations: int = 10,
) -> ExperimentResult:
    """Reproduce one panel of Figures 16-19."""
    table = load_dataset(dataset, n=n, seed=seed)
    task = tasks_for(dataset, table)[task_index]
    split_rng = np.random.default_rng(seed)
    train, test = table.split(0.8, split_rng)
    X_train, y_train = featurize(train, task)
    X_test, y_test = featurize(test, task)
    is_binary = dataset in _BINARY_DATASETS

    result = ExperimentResult(
        experiment=f"fig16-19-{dataset}-task{task_index}",
        title=f"SVM classifiers on {dataset} ({task.name})",
        x_label="epsilon",
        y_label="misclassification rate",
        x=list(epsilons),
    )

    # NoPrivacy floor (deterministic; constant across ε).
    floor = misclassification_rate(
        LinearSVM().fit(X_train, y_train), X_test, y_test
    )
    result.add("NoPrivacy", [floor] * len(epsilons))

    def sweep(fit_one):
        values = []
        for eps_idx, epsilon in enumerate(epsilons):
            metrics = []
            for r in range(repeats):
                rng = np.random.default_rng(seed * 7919 + eps_idx * 101 + r)
                metrics.append(fit_one(epsilon, rng))
            values.append(float(np.mean(metrics)))
        return values

    scoring = ScoringCache()  # shared across the ε grid and repeats

    def privbayes_one(epsilon, rng):
        synthetic = private_release(
            train, epsilon, beta, theta, is_binary, rng, scoring_cache=scoring
        )
        X_syn, y_syn = featurize(synthetic, task)
        if len(set(y_syn.tolist())) < 2:
            majority = y_syn[0] if y_syn.size else 1.0
            return float(np.mean(y_test != majority))
        return misclassification_rate(
            LinearSVM().fit(X_syn, y_syn), X_test, y_test
        )

    result.add("PrivBayes", sweep(privbayes_one))
    # Budget-split baselines: four simultaneous classifiers → ε/4 each.
    result.add(
        "Majority",
        sweep(
            lambda eps, rng: misclassification_rate(
                MajorityClassifier().fit(X_train, y_train, eps / 4.0, rng),
                X_test,
                y_test,
            )
        ),
    )
    result.add(
        "PrivateERM",
        sweep(
            lambda eps, rng: misclassification_rate(
                PrivateERM().fit(X_train, y_train, eps / 4.0, rng),
                X_test,
                y_test,
            )
        ),
    )
    result.add(
        "PrivateERM (Single)",
        sweep(
            lambda eps, rng: misclassification_rate(
                PrivateERM().fit(X_train, y_train, eps, rng), X_test, y_test
            )
        ),
    )
    result.add(
        "PrivGene",
        sweep(
            lambda eps, rng: misclassification_rate(
                PrivGene(iterations=privgene_iterations).fit(
                    X_train, y_train, eps / 4.0, rng
                ),
                X_test,
                y_test,
            )
        ),
    )
    return result
