"""Figures 16-19: PrivBayes vs classification baselines on the SVM tasks.

Per Section 6.6: PrivBayes generates *one* synthetic dataset per ε and
trains all four classifiers from it; PrivateERM / PrivGene / Majority must
split the budget, training each classifier with ε/4.  "PrivateERM
(Single)" spends the full ε on one classifier — the panel's task — to show
the baseline's single-task headroom.  NoPrivacy is the non-private floor.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines import MajorityClassifier, PrivGene, PrivateERM
from repro.core.privbayes import DEFAULT_BETA, DEFAULT_THETA
from repro.core.scoring import ScoringCache
from repro.datasets import load_dataset
from repro.dp.accountant import split_epsilon_even
from repro.experiments.framework import EPSILONS, ExperimentResult
from repro.experiments.parallel import (
    SweepCell,
    cell_seed,
    get_worker_state,
    mean_reduce,
    run_cells,
)
from repro.experiments.sweep_common import (
    evaluate_svm_synthetic,
    private_release,
)
from repro.svm import LinearSVM, featurize, misclassification_rate
from repro.workloads import tasks_for

_BINARY_DATASETS = {"nltcs", "acs"}

#: Series fitted per (ε, repeat) cell, besides the NoPrivacy constant.
_SWEPT_SERIES = (
    "PrivBayes",
    "Majority",
    "PrivateERM",
    "PrivateERM (Single)",
    "PrivGene",
)

#: Worker-state key for the panel fixtures (fork-inherited by the pool).
_STATE_KEY = "fig16_19.state"


def _svm_cell(cell: SweepCell) -> float:
    """One cell: fit the cell's series at its ε, score the test error.

    Budget split per Section 6.6: the simultaneous-classifier baselines
    get ε/4, "PrivateERM (Single)" the full ε, and PrivBayes synthesizes
    one dataset from which the panel classifier trains.
    """
    state = get_worker_state(_STATE_KEY)
    rng = cell.rng()
    epsilon = cell.epsilon
    X_train, y_train = state["X_train"], state["y_train"]
    X_test, y_test = state["X_test"], state["y_test"]
    if cell.series == "PrivBayes":
        synthetic = private_release(
            state["train"],
            epsilon,
            state["beta"],
            state["theta"],
            state["is_binary"],
            rng,
            scoring_cache=state["scoring"],
        )
        return evaluate_svm_synthetic(synthetic, state["task"], X_test, y_test)
    elif cell.series == "Majority":
        model = MajorityClassifier().fit(
            X_train, y_train, split_epsilon_even(epsilon, 4), rng
        )
    elif cell.series == "PrivateERM":
        model = PrivateERM().fit(
            X_train, y_train, split_epsilon_even(epsilon, 4), rng
        )
    elif cell.series == "PrivateERM (Single)":
        model = PrivateERM().fit(X_train, y_train, epsilon, rng)
    elif cell.series == "PrivGene":
        model = PrivGene(iterations=state["privgene_iterations"]).fit(
            X_train, y_train, split_epsilon_even(epsilon, 4), rng
        )
    else:
        raise ValueError(f"unknown series {cell.series!r}")
    return misclassification_rate(model, X_test, y_test)


def run_svm_comparison(
    dataset: str = "nltcs",
    task_index: int = 0,
    epsilons: Sequence[float] = EPSILONS,
    repeats: int = 3,
    n: Optional[int] = None,
    beta: float = DEFAULT_BETA,
    theta: float = DEFAULT_THETA,
    seed: int = 0,
    privgene_iterations: int = 10,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce one panel of Figures 16-19."""
    table = load_dataset(dataset, n=n, seed=seed)
    task = tasks_for(dataset, table)[task_index]
    split_rng = np.random.default_rng(seed)
    train, test = table.split(0.8, split_rng)
    X_train, y_train = featurize(train, task)
    X_test, y_test = featurize(test, task)
    is_binary = dataset in _BINARY_DATASETS

    result = ExperimentResult(
        experiment=f"fig16-19-{dataset}-task{task_index}",
        title=f"SVM classifiers on {dataset} ({task.name})",
        x_label="epsilon",
        y_label="misclassification rate",
        x=list(epsilons),
    )

    # NoPrivacy floor (deterministic; constant across ε).
    floor = misclassification_rate(
        LinearSVM().fit(X_train, y_train), X_test, y_test
    )
    result.add("NoPrivacy", [floor] * len(epsilons))

    scoring = ScoringCache()  # shared across the ε grid and repeats
    state = {
        "train": train,
        "task": task,
        "X_train": X_train,
        "y_train": y_train,
        "X_test": X_test,
        "y_test": y_test,
        "is_binary": is_binary,
        "beta": beta,
        "theta": theta,
        "scoring": scoring,
        "privgene_iterations": privgene_iterations,
    }
    # Every series consumes the same seed per (ε, repeat) cell — the same
    # draws the serial loops used, so jobs>1 stays bit-identical.
    cells = [
        SweepCell(
            dataset,
            epsilon,
            r,
            cell_seed(seed * 7919, eps_idx * 101 + r),
            series=name,
        )
        for name in _SWEPT_SERIES
        for eps_idx, epsilon in enumerate(epsilons)
        for r in range(repeats)
    ]
    metrics = run_cells(_STATE_KEY, state, _svm_cell, cells, jobs)
    means = mean_reduce(metrics, repeats)
    for s_idx, name in enumerate(_SWEPT_SERIES):
        result.add(
            name, means[s_idx * len(epsilons) : (s_idx + 1) * len(epsilons)]
        )
    return result
