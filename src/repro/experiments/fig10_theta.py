"""Figure 10: impact of the usefulness threshold θ.

x-axis: θ ∈ {1/2, 1, 2, 3, 4, 6, 8, 12}; one line per ε; β fixed at 0.3.
Expect a wide near-optimal basin around θ ∈ [3, 6].
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.privbayes import DEFAULT_BETA
from repro.experiments.framework import EPSILONS, ExperimentResult
from repro.experiments.parallel import SweepCell, cell_seed, mean_reduce
from repro.experiments.sweep_common import SweepContext, run_sweep_cells

#: The paper's θ grid.
THETAS = (0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0)


def run_theta_sweep(
    dataset: str = "nltcs",
    kind: str = "count",
    thetas: Sequence[float] = THETAS,
    epsilons: Sequence[float] = EPSILONS,
    repeats: int = 3,
    n: Optional[int] = None,
    max_marginals: Optional[int] = None,
    beta: float = DEFAULT_BETA,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce one panel of Figure 10."""
    context = SweepContext(
        dataset, kind, n=n, max_marginals=max_marginals, seed=seed
    )
    result = ExperimentResult(
        experiment=f"fig10-{dataset}-{kind}",
        title=f"choice of theta on {dataset} ({kind})",
        x_label="theta",
        y_label=(
            "average variation distance"
            if kind == "count"
            else "misclassification rate"
        ),
        x=list(thetas),
    )
    cells = [
        SweepCell(
            dataset,
            epsilon,
            r,
            cell_seed(seed * 7919, eps_idx * 1009 + t_idx * 101 + r),
            params=(("beta", beta), ("theta", theta)),
        )
        for eps_idx, epsilon in enumerate(epsilons)
        for t_idx, theta in enumerate(thetas)
        for r in range(repeats)
    ]
    metrics = run_sweep_cells(context, cells, jobs)
    means = mean_reduce(metrics, repeats)
    for eps_idx, epsilon in enumerate(epsilons):
        result.add(
            f"eps={epsilon}",
            means[eps_idx * len(thetas) : (eps_idx + 1) * len(thetas)],
        )
    return result
