"""Figure 4: quality of score functions I / F / R vs the NoPrivacy ceiling.

For every ε the network degree (binary datasets) or the θ-usefulness bound
(general datasets) is derived from ε₂ = (1-β)ε exactly as PrivBayes would,
then a network is learned with each score function under the exponential
mechanism with budget ε₁ = βε.  The reported metric is the network quality
``Σ_i I(X_i, Π_i)`` measured on the noise-free data.  NoPrivacy runs the
same greedy construction with plain argmax over I.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bn.quality import network_mutual_information
from repro.core.greedy_bayes import greedy_bayes_fixed_k, greedy_bayes_theta
from repro.core.privbayes import DEFAULT_BETA, DEFAULT_THETA
from repro.core.scoring import ScoringCache
from repro.core.theta import choose_k_binary
from repro.datasets import load_dataset
from repro.dp.accountant import split_epsilon
from repro.experiments.framework import EPSILONS, ExperimentResult

_BINARY_DATASETS = {"nltcs", "acs"}


def _learn_network(
    table, dataset, score, epsilon1, epsilon2, theta, rng, first, scoring
):
    """One network under the dataset's mode (binary fixed-k vs general θ)."""
    scorer = scoring.scorer(table, score)
    if dataset in _BINARY_DATASETS:
        k = choose_k_binary(table.n, table.d, epsilon2, theta)
        if k == 0:
            k = 1  # the figure studies selection quality, not the k=0 corner
        return greedy_bayes_fixed_k(
            table,
            k,
            epsilon1,
            score=score,
            rng=rng,
            first_attribute=first,
            scorer=scorer,
        )
    return greedy_bayes_theta(
        table,
        epsilon1,
        epsilon2,
        theta,
        score=score,
        rng=rng,
        first_attribute=first,
        scorer=scorer,
    )


def run_fig4(
    dataset: str = "nltcs",
    epsilons: Sequence[float] = EPSILONS,
    repeats: int = 5,
    n: Optional[int] = None,
    theta: float = DEFAULT_THETA,
    beta: float = DEFAULT_BETA,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce one panel of Figure 4."""
    table = load_dataset(dataset, n=n, seed=seed)
    # One scoring cache for the whole figure: candidate scores and network
    # MI are data statistics, shared across every (score, ε, repeat) cell.
    scoring = ScoringCache()
    mi_cache = scoring.mi_cache(table)
    binary = dataset in _BINARY_DATASETS
    scores = ["I", "R", "F"] if binary else ["I", "R"]
    result = ExperimentResult(
        experiment=f"fig4-{dataset}",
        title=f"score functions on {dataset.upper()}",
        x_label="epsilon",
        y_label="sum of mutual information",
        x=list(epsilons),
    )
    first = table.attribute_names[0]
    for score in scores:
        values = []
        for eps_idx, epsilon in enumerate(epsilons):
            epsilon1, epsilon2 = split_epsilon(epsilon, (beta, 1.0 - beta))
            repeats_values = []
            for r in range(repeats):
                rng = np.random.default_rng(seed * 7919 + eps_idx * 101 + r)
                network = _learn_network(
                    table, dataset, score, epsilon1, epsilon2, theta, rng,
                    first, scoring,
                )
                repeats_values.append(
                    network_mutual_information(table, network, mi_cache=mi_cache)
                )
            values.append(float(np.mean(repeats_values)))
        result.add(score, values)
    # NoPrivacy ceiling: argmax greedy over I with the same ε-driven degree.
    ceiling = []
    for epsilon in epsilons:
        (epsilon2,) = split_epsilon(epsilon, (1.0 - beta,))
        rng = np.random.default_rng(seed)
        network = _learn_network(
            table, dataset, "I", None, epsilon2, theta, rng, first, scoring
        )
        ceiling.append(
            network_mutual_information(table, network, mi_cache=mi_cache)
        )
    result.add("NoPrivacy", ceiling)
    return result
