"""Figures 7-8: the four encodings on the SVM classification tasks.

80% train / 20% test split (Section 6.1); each encoding method synthesizes
one private dataset per (ε, repeat) from the training split, a hinge-loss
C-SVM (C = 1) is trained per task on the synthetic data, and the
misclassification rate is measured on the held-out real test split.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.privbayes import DEFAULT_BETA, DEFAULT_THETA
from repro.datasets import load_dataset
from repro.experiments.framework import EPSILONS, ExperimentResult
from repro.release import METHODS, release_synthetic
from repro.svm import LinearSVM, featurize, misclassification_rate
from repro.workloads import tasks_for


def run_encoding_svm(
    dataset: str = "adult",
    task_index: int = 0,
    epsilons: Sequence[float] = EPSILONS,
    repeats: int = 3,
    n: Optional[int] = None,
    beta: float = DEFAULT_BETA,
    theta: float = DEFAULT_THETA,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce one panel of Figure 7 (Adult) / Figure 8 (BR2000)."""
    table = load_dataset(dataset, n=n, seed=seed)
    task = tasks_for(dataset, table)[task_index]
    split_rng = np.random.default_rng(seed)
    train, test = table.split(0.8, split_rng)
    X_test, y_test = featurize(test, task)
    result = ExperimentResult(
        experiment=f"fig7/8-{dataset}-task{task_index}",
        title=f"encodings on {dataset} ({task.name})",
        x_label="epsilon",
        y_label="misclassification rate",
        x=list(epsilons),
    )
    for method in METHODS:
        values = []
        for eps_idx, epsilon in enumerate(epsilons):
            rates = []
            for r in range(repeats):
                rng = np.random.default_rng(seed * 7919 + eps_idx * 101 + r)
                synthetic = release_synthetic(
                    train, epsilon, method=method, beta=beta, theta=theta, rng=rng
                )
                X_syn, y_syn = featurize(synthetic, task)
                if len(set(y_syn.tolist())) < 2:
                    # Degenerate synthetic labels: predict the only class.
                    majority = y_syn[0] if y_syn.size else 1.0
                    rates.append(float(np.mean(y_test != majority)))
                    continue
                model = LinearSVM().fit(X_syn, y_syn)
                rates.append(misclassification_rate(model, X_test, y_test))
            values.append(float(np.mean(rates)))
        result.add(method, values)
    return result
