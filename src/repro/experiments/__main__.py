"""CLI experiment runner: ``python -m repro.experiments <experiment> [...]``.

Examples::

    python -m repro.experiments table5
    python -m repro.experiments fig4 --dataset nltcs --fast
    python -m repro.experiments fig12 --dataset nltcs --alpha 3 --repeats 5
    python -m repro.experiments fig16 --dataset adult --task 1
    python -m repro.experiments fig9 --fast --jobs 4

``--fast`` shrinks the dataset, the ε grid and the workload so a panel
finishes in seconds; omit it for paper-scale runs.  ``--jobs N`` fans a
sweep figure's (ε, repeat) cells across N forked workers with
bit-identical output (see :mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.framework import EPSILONS, FAST_EPSILONS, render_result
from repro.experiments.table5 import render_table5, run_table5
from repro.experiments.fig4_scores import run_fig4
from repro.experiments.fig5_6_encodings_marginals import run_encoding_marginals
from repro.experiments.fig7_8_encodings_svm import run_encoding_svm
from repro.experiments.fig9_beta import run_beta_sweep
from repro.experiments.fig10_theta import run_theta_sweep
from repro.experiments.fig11_error_source import run_error_source
from repro.experiments.fig12_15_marginals import run_marginals_comparison
from repro.experiments.fig16_19_svm import run_svm_comparison

_FIGURE_DEFAULT_DATASET = {
    "fig4": "nltcs",
    "fig5": "adult",
    "fig6": "br2000",
    "fig7": "adult",
    "fig8": "br2000",
    "fig9": "nltcs",
    "fig10": "nltcs",
    "fig11": "nltcs",
    "fig12": "nltcs",
    "fig13": "acs",
    "fig14": "adult",
    "fig15": "br2000",
    "fig16": "nltcs",
    "fig17": "acs",
    "fig18": "adult",
    "fig19": "br2000",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one of the paper's tables/figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_FIGURE_DEFAULT_DATASET) + ["table5"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument("--dataset", default=None, help="override the panel dataset")
    parser.add_argument("--alpha", type=int, default=None, help="Q_alpha width")
    parser.add_argument("--task", type=int, default=0, help="SVM task index (0-3)")
    parser.add_argument(
        "--kind",
        choices=["count", "svm"],
        default="count",
        help="panel kind for fig9/fig10/fig11",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--n", type=int, default=None, help="dataset size override")
    parser.add_argument(
        "--max-marginals", type=int, default=None, help="cap the Q_alpha workload"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="small dataset, reduced epsilon grid, capped workload",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the sweep figures (fig9-fig19); output "
            "is bit-identical to --jobs 1 for any value"
        ),
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be a positive integer")
    if args.experiment == "table5":
        print(render_table5(run_table5(n=args.n, seed=args.seed)))
        return 0

    dataset = args.dataset or _FIGURE_DEFAULT_DATASET[args.experiment]
    epsilons = FAST_EPSILONS if args.fast else EPSILONS
    n = args.n if args.n is not None else (4000 if args.fast else None)
    repeats = args.repeats if args.repeats is not None else (2 if args.fast else 5)
    max_marginals = args.max_marginals
    if args.fast and max_marginals is None:
        max_marginals = 30

    common = dict(dataset=dataset, epsilons=epsilons, repeats=repeats, n=n, seed=args.seed)
    if args.experiment == "fig4":
        result = run_fig4(**common)
    elif args.experiment in ("fig5", "fig6"):
        alpha = args.alpha if args.alpha is not None else 2
        result = run_encoding_marginals(
            alpha=alpha, max_marginals=max_marginals, **common
        )
    elif args.experiment in ("fig7", "fig8"):
        result = run_encoding_svm(task_index=args.task, **common)
    elif args.experiment == "fig9":
        result = run_beta_sweep(
            kind=args.kind, max_marginals=max_marginals, jobs=args.jobs,
            **common,
        )
    elif args.experiment == "fig10":
        result = run_theta_sweep(
            kind=args.kind, max_marginals=max_marginals, jobs=args.jobs,
            **common,
        )
    elif args.experiment == "fig11":
        result = run_error_source(
            kind=args.kind, max_marginals=max_marginals, jobs=args.jobs,
            **common,
        )
    elif args.experiment in ("fig12", "fig13", "fig14", "fig15"):
        default_alpha = 3 if dataset in ("nltcs", "acs") else 2
        alpha = args.alpha if args.alpha is not None else default_alpha
        result = run_marginals_comparison(
            alpha=alpha, max_marginals=max_marginals, jobs=args.jobs,
            **common,
        )
    elif args.experiment in ("fig16", "fig17", "fig18", "fig19"):
        result = run_svm_comparison(
            task_index=args.task, jobs=args.jobs, **common
        )
    else:  # pragma: no cover - argparse guards this
        raise SystemExit(f"unknown experiment {args.experiment}")
    print(render_result(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
