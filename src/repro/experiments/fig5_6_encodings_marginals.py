"""Figures 5-6: the four encodings on α-way marginal workloads.

For each encoding method (Binary-F, Gray-F, Vanilla-R, Hierarchical-R) and
each ε, release a synthetic dataset and report the average total-variation
distance over ``Q_α`` — one call per panel (Adult/BR2000 × Q2/Q3).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.privbayes import DEFAULT_BETA, DEFAULT_THETA
from repro.datasets import load_dataset
from repro.experiments.framework import EPSILONS, ExperimentResult, subsample_workload
from repro.release import METHODS, release_synthetic
from repro.workloads import (
    all_alpha_marginals,
    average_variation_distance,
    synthetic_marginals,
)


def run_encoding_marginals(
    dataset: str = "adult",
    alpha: int = 2,
    epsilons: Sequence[float] = EPSILONS,
    repeats: int = 3,
    n: Optional[int] = None,
    max_marginals: Optional[int] = None,
    beta: float = DEFAULT_BETA,
    theta: float = DEFAULT_THETA,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce one panel of Figure 5 (Adult) or Figure 6 (BR2000)."""
    table = load_dataset(dataset, n=n, seed=seed)
    workload = subsample_workload(
        all_alpha_marginals(table, alpha), max_marginals, seed
    )
    result = ExperimentResult(
        experiment=f"fig5/6-{dataset}-Q{alpha}",
        title=f"encodings on {dataset} Q{alpha}",
        x_label="epsilon",
        y_label="average variation distance",
        x=list(epsilons),
    )
    for method in METHODS:
        values = []
        for eps_idx, epsilon in enumerate(epsilons):
            distances = []
            for r in range(repeats):
                rng = np.random.default_rng(seed * 7919 + eps_idx * 101 + r)
                synthetic = release_synthetic(
                    table, epsilon, method=method, beta=beta, theta=theta, rng=rng
                )
                released = synthetic_marginals(synthetic, workload)
                distances.append(
                    average_variation_distance(table, released, workload)
                )
            values.append(float(np.mean(distances)))
        result.add(method, values)
    return result
