"""Table 5: dataset characteristics (cardinality, dimensionality, domain)."""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.datasets import LOADERS, TABLE5


def run_table5(n: Optional[int] = None, seed: int = 0) -> Dict[str, Dict]:
    """Regenerate Table 5 from the dataset generators.

    Returns per dataset the generated (cardinality, dimensionality,
    log2 domain size) alongside the paper's numbers.
    """
    rows = {}
    for name, loader in LOADERS.items():
        table = loader(n=n, seed=seed)
        paper_card, paper_dim, paper_log_dom = TABLE5[name]
        rows[name] = {
            "cardinality": table.n,
            "dimensionality": table.d,
            "log2_domain": round(math.log2(table.domain_size), 1),
            "paper_cardinality": paper_card,
            "paper_dimensionality": paper_dim,
            "paper_log2_domain": paper_log_dom,
        }
    return rows


def render_table5(rows: Dict[str, Dict]) -> str:
    lines = [
        "== table5: Dataset characteristics ==",
        f"{'dataset':<10}{'n':>10}{'d':>6}{'log2|dom|':>12}"
        f"{'paper n':>10}{'paper d':>9}{'paper log2':>12}",
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:<10}{row['cardinality']:>10}{row['dimensionality']:>6}"
            f"{row['log2_domain']:>12}{row['paper_cardinality']:>10}"
            f"{row['paper_dimensionality']:>9}{row['paper_log2_domain']:>12}"
        )
    return "\n".join(lines)
