"""Table 5: dataset characteristics, plus the million-row scale panel.

:func:`run_table5` regenerates the paper's dataset-characteristics table
from the schema-faithful generators.  :func:`run_scale_panel` extends it
past paper scale: it drives the streaming data plane end to end — chunked
synthetic ingestion, out-of-core fit, chunked sampling into a streaming
CSV release, and two-pass re-ingestion of that release — at increasing
``n``, recording wall-clock and peak *traced* memory per phase
(``tracemalloc``, which numpy's allocator reports into; the process-wide
``ru_maxrss`` high-water mark is recorded as context but never asserted
on, since it cannot shrink between phases).  The panel is the evidence
behind the scale benchmark's sublinear-memory assertion
(``benchmarks/test_bench_scale.py``).
"""

from __future__ import annotations

import math
import resource
import time
import tracemalloc
from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np

from repro.datasets import LOADERS, TABLE5


def run_table5(n: Optional[int] = None, seed: int = 0) -> Dict[str, Dict]:
    """Regenerate Table 5 from the dataset generators.

    Returns per dataset the generated (cardinality, dimensionality,
    log2 domain size) alongside the paper's numbers.
    """
    rows = {}
    for name, loader in LOADERS.items():
        table = loader(n=n, seed=seed)
        paper_card, paper_dim, paper_log_dom = TABLE5[name]
        rows[name] = {
            "cardinality": table.n,
            "dimensionality": table.d,
            "log2_domain": round(math.log2(table.domain_size), 1),
            "paper_cardinality": paper_card,
            "paper_dimensionality": paper_dim,
            "paper_log2_domain": paper_log_dom,
        }
    return rows


#: Scale-panel defaults: two decades of n, a Figure-12-like shape.
SCALE_NS = (200_000, 1_000_000)
SCALE_D = 8
SCALE_K = 2


def _phase(label: str, rows: Dict, started: float) -> None:
    """Close one measured phase: record seconds + traced-peak bytes."""
    _, peak = tracemalloc.get_traced_memory()
    rows[f"seconds_{label}"] = round(time.perf_counter() - started, 3)
    rows[f"traced_peak_{label}"] = int(peak)
    tracemalloc.reset_peak()


def run_scale_panel(
    ns: Sequence[int] = SCALE_NS,
    d: int = SCALE_D,
    k: int = SCALE_K,
    epsilon: float = 1.0,
    chunk_rows: Optional[int] = None,
    seed: int = 0,
    output_dir: Optional[str] = None,
    ingest: bool = True,
) -> Dict[int, Dict]:
    """Fit + release + re-ingest at each ``n``, streaming end to end.

    Per grid point: a :class:`~repro.datasets.NetworkSource` emits ``n``
    rows of ``d`` correlated binary attributes in chunks; ``PrivBayes``
    fits on the source (one streaming pass per greedy round); the release
    streams through ``sample_chunks`` → ``write_csv``; with ``ingest``,
    the released CSV is re-read through the two-pass
    :class:`~repro.data.io.CsvSource` and one streaming marginal proves
    the round trip.  Returns per-``n`` phase timings, per-phase traced
    memory peaks, and the released file size.  ``output_dir`` defaults to
    a temporary directory; the release files are deleted afterwards.
    """
    from tempfile import TemporaryDirectory

    from repro.core.privbayes import PrivBayes
    from repro.data.chunks import DEFAULT_CHUNK_ROWS
    from repro.data.io import CsvSource, write_csv
    from repro.data.marginals import marginal_counts
    from repro.datasets import random_binary_source

    chunk_rows = DEFAULT_CHUNK_ROWS if chunk_rows is None else int(chunk_rows)
    results: Dict[int, Dict] = {}
    with TemporaryDirectory() as scratch:
        directory = Path(output_dir) if output_dir is not None else Path(scratch)
        directory.mkdir(parents=True, exist_ok=True)
        for n in ns:
            path = directory / f"scale_release_{n}.csv"
            row: Dict = {
                "n": int(n),
                "d": int(d),
                "k": int(k),
                "chunk_rows": chunk_rows,
            }
            source = random_binary_source(
                n, d, seed=seed, chunk_rows=chunk_rows
            )
            tracemalloc.start()
            tracemalloc.reset_peak()
            started = time.perf_counter()
            model = PrivBayes(epsilon=epsilon, k=k, mode="binary").fit(
                source, np.random.default_rng(seed)
            )
            _phase("fit", row, started)
            started = time.perf_counter()
            write_csv(
                model.sample_chunks(
                    n, np.random.default_rng(seed + 1), chunk_rows=chunk_rows
                ),
                path,
            )
            _phase("release", row, started)
            if ingest:
                started = time.perf_counter()
                released = CsvSource(path, chunk_rows=chunk_rows)
                counted = marginal_counts(
                    released, [released.attribute_names[0]]
                )
                _phase("ingest", row, started)
                row["ingested_n"] = int(released.n)
                row["ingested_count_total"] = int(counted.sum())
            tracemalloc.stop()
            row["released_bytes"] = path.stat().st_size
            row["ru_maxrss_kb"] = int(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            )
            seconds = sum(
                value
                for key, value in row.items()
                if key.startswith("seconds_")
            )
            row["rows_per_second"] = (
                round(n / seconds, 1) if seconds > 0 else float("inf")
            )
            if output_dir is None:
                path.unlink()
            results[int(n)] = row
    return results


def render_scale_panel(rows: Dict[int, Dict]) -> str:
    lines = [
        "== table5-scale: streaming fit + release + ingest ==",
        f"{'n':>10}{'fit s':>9}{'release s':>11}{'ingest s':>10}"
        f"{'rows/s':>10}{'peak fit':>12}{'peak rel':>12}{'peak ing':>12}",
    ]
    for n in sorted(rows):
        row = rows[n]

        def mib(key: str) -> str:
            value = row.get(key)
            return "-" if value is None else f"{value / 2**20:.1f}M"

        lines.append(
            f"{n:>10}{row['seconds_fit']:>9}{row['seconds_release']:>11}"
            f"{row.get('seconds_ingest', '-'):>10}"
            f"{row['rows_per_second']:>10}"
            f"{mib('traced_peak_fit'):>12}{mib('traced_peak_release'):>12}"
            f"{mib('traced_peak_ingest'):>12}"
        )
    return "\n".join(lines)


def render_table5(rows: Dict[str, Dict]) -> str:
    lines = [
        "== table5: Dataset characteristics ==",
        f"{'dataset':<10}{'n':>10}{'d':>6}{'log2|dom|':>12}"
        f"{'paper n':>10}{'paper d':>9}{'paper log2':>12}",
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:<10}{row['cardinality']:>10}{row['dimensionality']:>6}"
            f"{row['log2_domain']:>12}{row['paper_cardinality']:>10}"
            f"{row['paper_dimensionality']:>9}{row['paper_log2_domain']:>12}"
        )
    return "\n".join(lines)
